"""Wake-event protocol threaded through the Xen substrates.

Every blocking point a guest can park behind — an event-channel wait, a
split-driver ring, a toolstack timer — carries an optional ``waker``
hook (default ``None``: a single attribute test, zero cost).  When an
:class:`~repro.core.engine.ExecutionEngine` is attached, those hooks
become wake kicks on the central event queue, which is what lets a
parked domain fast-forward to exactly the moment its I/O completes.
"""

from repro.core.engine import ExecutionEngine
from repro.faults.plan import Every, FaultEngine, FaultPlan, FaultSpec
from repro.faults import sites
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.blkdev import SECTOR_SIZE, BlockStore, SplitBlockDriver
from repro.xen.drivers import SplitNetDriver
from repro.xen.events import EventChannelTable
from repro.xen.hypervisor import DomainKind, XenHypervisor
from repro.xen.toolstack import Toolstack


class _RecordingWaker:
    """Captures every wake-hook call a substrate makes."""

    def __init__(self):
        self.events = []
        self.reaps = []
        self.timers = []

    def on_event(self, port):
        self.events.append(port)

    def on_ring_reap(self, count):
        self.reaps.append(count)

    def on_timer(self, domid, t_ns):
        self.timers.append((domid, t_ns))


class TestEventChannelWaker:
    def test_landed_send_fires_waker(self):
        table = EventChannelTable(CostModel(), SimClock())
        waker = _RecordingWaker()
        table.waker = waker
        port = table.bind(lambda: None)
        assert table.send(port)
        assert waker.events == [port]

    def test_dropped_send_does_not_wake(self):
        plan = FaultPlan(
            (FaultSpec(sites.EVENT_NOTIFY, "drop", Every(1)),)
        )
        table = EventChannelTable(
            CostModel(), SimClock(), faults=FaultEngine(plan)
        )
        waker = _RecordingWaker()
        table.waker = waker
        port = table.bind(lambda: None)
        assert not table.send(port)
        # A lost notify must not produce a phantom wake.
        assert waker.events == []

    def test_no_waker_is_the_default(self):
        table = EventChannelTable(CostModel(), SimClock())
        assert table.waker is None
        port = table.bind(lambda: None)
        assert table.send(port)


class TestRingWakers:
    def _net(self):
        clock = SimClock()
        xen = XenHypervisor(clock=clock)
        guest = xen.create_domain("guest")
        backend = xen.create_domain("driver", DomainKind.DRIVER)
        events = EventChannelTable(xen.costs, clock)
        return SplitNetDriver(
            guest, backend, xen.grants, events, xen.costs, clock
        )

    def test_net_reap_wakes_once_per_batch(self):
        driver = self._net()
        waker = _RecordingWaker()
        driver.waker = waker
        driver.transmit(1500)
        driver.transmit_batch((100, 200, 300))
        assert waker.reaps == [1, 3]

    def test_blk_read_and_write_reaps(self):
        driver = SplitBlockDriver(
            BlockStore(128), CostModel(), SimClock()
        )
        waker = _RecordingWaker()
        driver.waker = waker
        driver.write(0, b"\xAA" * SECTOR_SIZE)
        driver.write_many(
            [(1, b"\xBB" * SECTOR_SIZE), (2, b"\xCC" * SECTOR_SIZE)]
        )
        driver.read(0)
        driver.read_many([(1, 1), (2, 1)])
        assert waker.reaps == [1, 2, 1, 2]


class TestToolstackWaker:
    def test_boot_completion_is_a_timer_wake(self):
        xen = XenHypervisor(clock=SimClock())
        stack = Toolstack(xen)
        waker = _RecordingWaker()
        stack.waker = waker
        creation = stack.create("dom-a", full_vm_boot=False)
        assert len(waker.timers) == 1
        domid, t_ns = waker.timers[0]
        assert domid == creation.domain.domid
        assert t_ns == xen.clock.now_ns


class TestEngineIntegration:
    """The hooks end-to-end: substrate activity wakes parked domains."""

    def test_net_reap_fast_forwards_the_frontend_domain(self):
        engine = ExecutionEngine()
        dom = engine.spawn("frontend")
        driver = self._driver_on(engine)
        driver.waker = engine.ring_waker(dom.domid)
        # The domain parks; a ring reap at t~0 kicks it awake on the
        # next tick even with no mailbox work (spurious wake).
        driver.transmit(1500)
        engine.run_until(2e6)
        assert engine.stats.wake_events == 1
        assert engine.stats.spurious_wakes == 1
        assert dom.parked

    def test_event_table_attach_routes_ports_to_domains(self):
        engine = ExecutionEngine()
        a = engine.spawn("a")
        b = engine.spawn("b")
        table = EventChannelTable(CostModel(), engine.clock)
        engine.attach_events(table)
        port_a = table.bind(lambda: None)
        port_b = table.bind(lambda: None)
        engine.bind_port(port_a, a.domid)
        engine.bind_port(port_b, b.domid)
        engine.post_work(a.domid, 2, at_ns=0.0)
        table.send(port_a)
        table.send(port_b)
        engine.run_until(4e6)
        # Three kicks total: post + two sends; a's pair coalesces.
        assert engine.stats.wake_events == 3
        assert a.completed == 2
        assert b.completed == 0

    def test_toolstack_timer_wakes_engine_domain(self):
        engine = ExecutionEngine()
        dom = engine.spawn("await-boot")
        xen = XenHypervisor(clock=SimClock())
        stack = Toolstack(xen)

        class _Adapter:
            def on_timer(self, _domid, t_ns):
                engine.on_timer(dom.domid, t_ns)

        stack.waker = _Adapter()
        stack.create("dom-b", full_vm_boot=False)
        engine.run_to_quiescence()
        assert engine.stats.wake_events == 1
        assert dom.clock.now_ns > 0

    def _driver_on(self, engine):
        xen = XenHypervisor(clock=engine.clock)
        guest = xen.create_domain("guest")
        backend = xen.create_domain("driver", DomainKind.DRIVER)
        events = EventChannelTable(xen.costs, engine.clock)
        return SplitNetDriver(
            guest, backend, xen.grants, events, xen.costs, engine.clock
        )
