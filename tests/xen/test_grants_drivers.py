import pytest

from repro.perf.clock import SimClock
from repro.xen.drivers import RING_SIZE, SplitNetDriver
from repro.xen.events import EventChannelTable
from repro.xen.grant_table import GrantError, GrantTable
from repro.xen.hypercalls import HypercallTable
from repro.xen.hypervisor import XenHypervisor


def make_grants():
    return GrantTable(HypercallTable())


class TestGrantTable:
    def test_grant_and_map(self):
        grants = make_grants()
        ref = grants.grant_access(owner_domid=1, page_addr=0x1000)
        grant = grants.map_grant(ref, mapper_domid=0)
        assert grant.mapped_by == 0
        assert grants.active_grants == 1

    def test_map_charges_hypercall(self):
        grants = make_grants()
        ref = grants.grant_access(1, 0x1000)
        grants.map_grant(ref, 0)
        assert grants.hypercalls.counts["grant_table_op"] == 1

    def test_cannot_map_own_grant(self):
        grants = make_grants()
        ref = grants.grant_access(1, 0x1000)
        with pytest.raises(GrantError):
            grants.map_grant(ref, 1)

    def test_double_map_rejected(self):
        grants = make_grants()
        ref = grants.grant_access(1, 0x1000)
        grants.map_grant(ref, 0)
        with pytest.raises(GrantError):
            grants.map_grant(ref, 2)

    def test_unmap_then_end_access(self):
        grants = make_grants()
        ref = grants.grant_access(1, 0x1000)
        grants.map_grant(ref, 0)
        grants.unmap_grant(ref, 0)
        grants.end_access(ref)
        assert grants.active_grants == 0

    def test_end_access_while_mapped_rejected(self):
        grants = make_grants()
        ref = grants.grant_access(1, 0x1000)
        grants.map_grant(ref, 0)
        with pytest.raises(GrantError):
            grants.end_access(ref)

    def test_unmap_by_wrong_domain_rejected(self):
        grants = make_grants()
        ref = grants.grant_access(1, 0x1000)
        grants.map_grant(ref, 0)
        with pytest.raises(GrantError):
            grants.unmap_grant(ref, 3)


class TestSplitNetDriver:
    def _driver(self):
        xen = XenHypervisor(clock=SimClock())
        guest = xen.create_domain("guest")
        backend = xen.domain(0)
        events = EventChannelTable(xen.costs, xen.clock)
        driver = SplitNetDriver(
            guest, backend, xen.grants, events, xen.costs, xen.clock
        )
        return xen, driver

    def test_setup_maps_ring_grant(self):
        xen, driver = self._driver()
        assert xen.grants.active_grants == 1
        assert xen.hypercalls.counts["grant_table_op"] == 1

    def test_transmit_charges_and_counts(self):
        xen, driver = self._driver()
        before = xen.clock.now_ns
        cost = driver.transmit(1500)
        assert xen.clock.now_ns - before >= cost
        assert driver.stats.requests == 1
        assert driver.stats.bytes_moved == 1500
        assert driver.stats.kicks == 1

    def test_negative_payload_rejected(self):
        _, driver = self._driver()
        with pytest.raises(ValueError):
            driver.transmit(-1)

    def test_per_request_cost_scales_with_bytes(self):
        _, driver = self._driver()
        small = driver.per_request_cost_ns(100)
        large = driver.per_request_cost_ns(100_000)
        assert large > small

    def test_close_releases_grant(self):
        xen, driver = self._driver()
        driver.close()
        assert xen.grants.active_grants == 0
