import pytest

from repro.perf.clock import SimClock
from repro.xen.events import EventChannelTable


def make_table():
    return EventChannelTable(clock=SimClock())


class TestEventChannels:
    def test_bind_allocates_ports(self):
        table = make_table()
        p1 = table.bind(lambda: None)
        p2 = table.bind(lambda: None)
        assert p1 != p2

    def test_send_sets_shared_pending_flag(self):
        """§4.2: 'a variable shared by Xen and the guest kernel that
        indicates whether there is any event pending'."""
        table = make_table()
        port = table.bind(lambda: None)
        assert not table.evtchn_upcall_pending
        table.send(port)
        assert table.evtchn_upcall_pending
        assert table.pending_ports() == [port]

    def test_send_to_unbound_port_rejected(self):
        with pytest.raises(KeyError):
            make_table().send(99)

    def test_drain_runs_handlers_and_clears(self):
        table = make_table()
        fired = []
        port = table.bind(lambda: fired.append(1))
        table.send(port)
        table.send(port)
        delivered = table.drain(via_hypercall=True)
        assert delivered == 2
        assert fired == [1, 1]
        assert not table.evtchn_upcall_pending
        assert table.pending_ports() == []

    def test_hypercall_drain_charges_hypercall(self):
        """Stock PV guests hypercall to get events delivered."""
        table = make_table()
        port = table.bind(lambda: None)
        table.send(port)
        before = table.clock.now_ns
        table.drain(via_hypercall=True)
        assert table.clock.now_ns - before >= table.costs.hypercall_ns
        assert table.hypercall_deliveries == 1

    def test_direct_drain_is_cheaper(self):
        """§4.2: the X-LibOS jumps directly into handlers."""
        hyper = make_table()
        direct = make_table()
        for table in (hyper, direct):
            port = table.bind(lambda: None)
            table.send(port)
        hyper.drain(via_hypercall=True)
        direct.drain(via_hypercall=False)
        assert direct.clock.now_ns < hyper.clock.now_ns
        assert direct.direct_deliveries == 1

    def test_unbind(self):
        table = make_table()
        port = table.bind(lambda: None)
        table.unbind(port)
        with pytest.raises(KeyError):
            table.send(port)

    def test_empty_drain_is_noop(self):
        table = make_table()
        assert table.drain(via_hypercall=True) == 0
        assert table.clock.now_ns == 0
