import pytest

from repro.perf.clock import SimClock
from repro.xen.blanket import XenBlanket
from repro.xen.hypervisor import DomainKind, XenHypervisor
from repro.xen.scheduler import CreditScheduler
from repro.xen.toolstack import Toolstack


class TestCreditScheduler:
    def test_requires_pcpus(self):
        with pytest.raises(ValueError):
            CreditScheduler(0)

    def test_undersubscribed_no_overhead(self):
        sched = CreditScheduler(8)
        for domid in range(4):
            sched.add_vcpu(domid)
        shares = sched.schedule_interval(1e9)
        assert sum(shares.values()) == pytest.approx(4e9)
        assert sched.switches == 0

    def test_oversubscribed_pays_switches(self):
        sched = CreditScheduler(2)
        for domid in range(10):
            sched.add_vcpu(domid)
        shares = sched.schedule_interval(1e9)
        assert sum(shares.values()) < 2e9
        assert sched.switches > 0

    def test_vcpu_share_capped_at_one_pcpu(self):
        sched = CreditScheduler(8)
        sched.add_vcpu(0)
        shares = sched.schedule_interval(1e9)
        assert shares[0] == pytest.approx(1e9)

    def test_weights_respected(self):
        sched = CreditScheduler(1)
        sched.add_vcpu(0, weight=256)
        sched.add_vcpu(1, weight=512)
        shares = sched.schedule_interval(1e9)
        assert shares[1] == pytest.approx(shares[0] * 2, rel=0.01)

    def test_switch_cost_grows_slowly_with_vcpus(self):
        """Hierarchical scheduling's win (Fig 8): the hypervisor's
        per-switch cost is nearly flat in N."""
        small = CreditScheduler(8)
        big = CreditScheduler(8)
        for domid in range(8):
            small.add_vcpu(domid)
        for domid in range(400):
            big.add_vcpu(domid)
        assert big.switch_cost_ns() < small.switch_cost_ns() * 1.5

    def test_remove_domain(self):
        sched = CreditScheduler(2)
        sched.add_vcpu(7)
        sched.remove_domain(7)
        assert sched.schedule_interval(1e9) == {}

    def test_blocked_vcpus_get_nothing(self):
        sched = CreditScheduler(2)
        vcpu = sched.add_vcpu(0)
        vcpu.runnable = False
        assert sched.schedule_interval(1e9) == {}


class TestToolstack:
    def test_stock_xl_domain_creation_is_slow(self):
        """§4.5: ~3 s total with the stock toolstack."""
        xen = XenHypervisor(clock=SimClock())
        stack = Toolstack(xen)
        creation = stack.create("xc1", full_vm_boot=False)
        assert creation.total_ms == pytest.approx(3000.0, rel=0.01)

    def test_lightvm_toolstack_fast(self):
        xen = XenHypervisor(clock=SimClock())
        stack = Toolstack(xen, lightvm_mode=True)
        creation = stack.create("xc1", full_vm_boot=False)
        assert creation.toolstack_ms == pytest.approx(4.0)
        assert creation.total_ms < 200

    def test_full_vm_boot_much_slower(self):
        xen = XenHypervisor(clock=SimClock())
        stack = Toolstack(xen)
        vm = stack.create("vm", full_vm_boot=True)
        assert vm.boot_ms > 10 * 1000

    def test_creation_advances_clock_and_registers_domain(self):
        xen = XenHypervisor(clock=SimClock())
        stack = Toolstack(xen)
        creation = stack.create("d1", kind=DomainKind.DOMU,
                                full_vm_boot=False)
        assert xen.clock.now_ms == pytest.approx(creation.total_ms)
        assert xen.domain(creation.domain.domid).name == "d1"

    def test_destroy(self):
        xen = XenHypervisor(clock=SimClock())
        stack = Toolstack(xen)
        creation = stack.create("d1", full_vm_boot=False)
        stack.destroy(creation.domain.domid)
        with pytest.raises(KeyError):
            xen.domain(creation.domain.domid)


class TestXenBlanket:
    def test_no_nested_hw_virtualization_needed(self):
        xen = XenHypervisor(clock=SimClock())
        blanket = XenBlanket(xen, "ec2")
        assert not blanket.needs_nested_hw_virtualization()

    def test_io_overhead_in_cloud_not_on_baremetal(self):
        xen = XenHypervisor(clock=SimClock())
        cloud = XenBlanket(xen, "ec2")
        metal = XenBlanket(xen, "baremetal")
        assert cloud.io_cost_ns(1000.0) > 1000.0
        assert metal.io_cost_ns(1000.0) == 1000.0

    def test_syscall_path_unaffected(self):
        xen = XenHypervisor(clock=SimClock())
        blanket = XenBlanket(xen, "gce")
        assert blanket.syscall_cost_ns(500.0) == 500.0

    def test_unknown_cloud_rejected(self):
        xen = XenHypervisor(clock=SimClock())
        with pytest.raises(ValueError):
            XenBlanket(xen, "azure")
