import pytest

from repro.perf.clock import SimClock
from repro.xen.hypervisor import XenHypervisor
from repro.xen.memory_mgmt import (
    BalloonDriver,
    BalloonError,
    TranscendentMemory,
)


def make_balloon(memory_mb=512, **kwargs):
    xen = XenHypervisor(clock=SimClock(), total_memory_mb=16384)
    domain = xen.create_domain("u", memory_mb=memory_mb)
    return xen, domain, BalloonDriver(xen, domain, **kwargs)


class TestBalloon:
    def test_inflate_returns_memory(self):
        xen, domain, balloon = make_balloon()
        free_before = xen.free_memory_mb
        balloon.inflate(128)
        assert domain.memory_mb == 384
        assert xen.free_memory_mb == free_before + 128

    def test_deflate_reclaims_memory(self):
        xen, domain, balloon = make_balloon()
        balloon.inflate(128)
        balloon.deflate(64)
        assert domain.memory_mb == 448

    def test_floor_enforced(self):
        _, _, balloon = make_balloon(memory_mb=128, min_mb=64)
        with pytest.raises(BalloonError):
            balloon.inflate(100)

    def test_ceiling_enforced(self):
        _, _, balloon = make_balloon(memory_mb=512, max_mb=640)
        with pytest.raises(BalloonError):
            balloon.deflate(256)

    def test_cannot_deflate_beyond_free_pool(self):
        xen = XenHypervisor(clock=SimClock(), total_memory_mb=4096 + 600)
        domain = xen.create_domain("u", memory_mb=512)
        balloon = BalloonDriver(xen, domain, max_mb=4096)
        with pytest.raises(BalloonError):
            balloon.deflate(512)  # only 88 MB free

    def test_balloon_ops_are_hypercalls(self):
        xen, _, balloon = make_balloon()
        balloon.inflate(64)
        balloon.deflate(64)
        assert xen.hypercalls.counts["memory_op"] == 2

    def test_bad_sizes_rejected(self):
        _, _, balloon = make_balloon()
        with pytest.raises(ValueError):
            balloon.inflate(0)
        with pytest.raises(ValueError):
            balloon.deflate(-1)


class TestTranscendentMemory:
    def test_cleancache_roundtrip(self):
        tmem = TranscendentMemory(capacity_pages=16)
        assert tmem.cleancache_put(1, 100, b"page-data")
        assert tmem.cleancache_get(1, 100) == b"page-data"

    def test_cleancache_get_consumes(self):
        tmem = TranscendentMemory(16)
        tmem.cleancache_put(1, 100, b"x")
        tmem.cleancache_get(1, 100)
        assert tmem.cleancache_get(1, 100) is None
        assert tmem.stats.cleancache_misses == 1

    def test_domains_are_namespaced(self):
        tmem = TranscendentMemory(16)
        tmem.cleancache_put(1, 100, b"dom1")
        tmem.cleancache_put(2, 100, b"dom2")
        assert tmem.cleancache_get(2, 100) == b"dom2"

    def test_cleancache_evicts_under_pressure(self):
        """Ephemeral pool: old pages vanish when the pool fills."""
        tmem = TranscendentMemory(capacity_pages=2)
        tmem.cleancache_put(1, 1, b"a")
        tmem.cleancache_put(1, 2, b"b")
        tmem.cleancache_put(1, 3, b"c")  # evicts the oldest
        assert tmem.stats.cleancache_evictions == 1
        assert tmem.cleancache_get(1, 1) is None
        assert tmem.cleancache_get(1, 3) == b"c"

    def test_frontswap_is_persistent(self):
        """RAM-based swap must never silently lose accepted pages."""
        tmem = TranscendentMemory(capacity_pages=2)
        assert tmem.frontswap_put(1, 1, b"swapped")
        # Fill the rest with cleancache, then overflow: cleancache is
        # sacrificed, frontswap pages survive.
        tmem.cleancache_put(1, 50, b"cache")
        assert tmem.frontswap_put(1, 2, b"more-swap")
        assert tmem.frontswap_get(1, 1) == b"swapped"
        assert tmem.frontswap_get(1, 2) == b"more-swap"

    def test_frontswap_put_fails_when_truly_full(self):
        tmem = TranscendentMemory(capacity_pages=1)
        assert tmem.frontswap_put(1, 1, b"a")
        assert not tmem.frontswap_put(1, 2, b"b")

    def test_flush_domain(self):
        tmem = TranscendentMemory(16)
        tmem.cleancache_put(1, 1, b"a")
        tmem.cleancache_put(1, 2, b"b")
        tmem.cleancache_put(2, 1, b"c")
        assert tmem.cleancache_flush_domain(1) == 2
        assert tmem.cleancache_get(2, 1) == b"c"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TranscendentMemory(0)
