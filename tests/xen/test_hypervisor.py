import pytest

from repro.perf.clock import SimClock
from repro.xen.hypervisor import Domain, DomainKind, XenHypervisor


def make_xen(**kwargs):
    return XenHypervisor(clock=SimClock(), **kwargs)


class TestDomains:
    def test_dom0_exists_at_boot(self):
        xen = make_xen()
        assert xen.domain(0).kind is DomainKind.DOM0
        assert xen.domain(0).name == "Domain-0"

    def test_create_assigns_increasing_domids(self):
        xen = make_xen()
        a = xen.create_domain("a")
        b = xen.create_domain("b")
        assert (a.domid, b.domid) == (1, 2)

    def test_memory_accounting(self):
        xen = make_xen(total_memory_mb=8192)
        xen.create_domain("u", memory_mb=2048)
        assert xen.used_memory_mb == 4096 + 2048
        assert xen.free_memory_mb == 8192 - 4096 - 2048

    def test_create_beyond_memory_fails(self):
        """The Fig 8 boot-failure mechanism: out of host memory."""
        xen = make_xen(total_memory_mb=5120)
        with pytest.raises(MemoryError):
            xen.create_domain("u", memory_mb=2048)

    def test_destroy(self):
        xen = make_xen()
        dom = xen.create_domain("u")
        xen.destroy_domain(dom.domid)
        with pytest.raises(KeyError):
            xen.domain(dom.domid)

    def test_cannot_destroy_dom0(self):
        with pytest.raises(ValueError):
            make_xen().destroy_domain(0)

    def test_domain_stats_bump(self):
        dom = Domain(1, "u", DomainKind.DOMU, 1, 512)
        dom.bump("pv_syscalls")
        dom.bump("pv_syscalls", 2)
        assert dom.stats["pv_syscalls"] == 3


class TestPvSyscallPath:
    def test_cost_includes_xpti_when_patched(self):
        patched = make_xen(xpti_patched=True)
        unpatched = make_xen(xpti_patched=False)
        assert (
            patched.pv_syscall_cost_ns()
            == unpatched.pv_syscall_cost_ns()
            + patched.costs.xpti_syscall_extra_ns
        )

    def test_pv_syscall_charges_clock_and_counts(self):
        xen = make_xen()
        dom = xen.create_domain("u")
        before = xen.clock.now_ns
        cost = xen.pv_syscall(dom)
        assert xen.clock.now_ns - before == cost
        assert dom.stats["pv_syscalls"] == 1

    def test_pv_syscall_far_more_expensive_than_native(self):
        """§4.1: the x86-64 PV bounce is why 64-bit VMs prefer HVM."""
        xen = make_xen()
        assert xen.pv_syscall_cost_ns() > 10 * xen.costs.native_syscall_ns

    def test_iret_is_a_hypercall(self):
        xen = make_xen()
        dom = xen.create_domain("u")
        xen.iret(dom)
        assert xen.hypercalls.counts["iret"] == 1

    def test_context_switch_includes_vcpu_cost_cross_domain(self):
        xen = make_xen()
        same = xen.context_switch_cost_ns(same_domain=True)
        cross = xen.context_switch_cost_ns(same_domain=False)
        assert cross - same == xen.costs.vcpu_switch_ns
