import pytest

from repro.xen.xenstore import (
    LIGHTVM_WRITES_PER_DOMAIN,
    XL_WRITES_PER_DOMAIN,
    TransactionConflict,
    XenStore,
    XenstoreError,
    populate_domain,
)


class TestBasicOps:
    def test_write_read(self):
        store = XenStore()
        store.write("/local/domain/1/name", "xc1")
        assert store.read("/local/domain/1/name") == "xc1"

    def test_parents_created_implicitly(self):
        store = XenStore()
        store.write("/a/b/c", "v")
        assert store.exists("/a")
        assert store.exists("/a/b")

    def test_missing_path_errors(self):
        with pytest.raises(XenstoreError):
            XenStore().read("/nope")

    def test_invalid_path_rejected(self):
        with pytest.raises(XenstoreError):
            XenStore().write("relative/path", "x")

    def test_ls_direct_children(self):
        store = XenStore()
        store.write("/local/domain/1/name", "a")
        store.write("/local/domain/2/name", "b")
        assert store.ls("/local/domain") == ["1", "2"]

    def test_rm_subtree(self):
        store = XenStore()
        store.write("/local/domain/1/name", "a")
        store.write("/local/domain/1/memory/target", "128")
        store.rm("/local/domain/1")
        assert not store.exists("/local/domain/1/name")
        assert not store.exists("/local/domain/1")
        assert store.exists("/local/domain")

    def test_ownership_enforced_for_guests(self):
        store = XenStore()
        store.write("/local/domain/1/name", "a", domid=1)
        with pytest.raises(XenstoreError):
            store.write("/local/domain/1/name", "evil", domid=2)
        store.write("/local/domain/1/name", "fixed", domid=0)  # dom0 may


class TestWatches:
    def test_watch_fires_on_write(self):
        store = XenStore()
        fired = []
        store.watch("/local/domain/1", fired.append)
        store.write("/local/domain/1/state", "4")
        assert fired == ["/local/domain/1/state"]

    def test_watch_fires_on_rm(self):
        store = XenStore()
        store.write("/a/b", "x")
        fired = []
        store.watch("/a", fired.append)
        store.rm("/a/b")
        assert fired == ["/a/b"]

    def test_unrelated_paths_do_not_fire(self):
        store = XenStore()
        fired = []
        store.watch("/local/domain/1", fired.append)
        store.write("/local/domain/2/state", "4")
        assert fired == []

    def test_unwatch(self):
        store = XenStore()
        fired = []
        token = store.watch("/a", fired.append)
        store.unwatch(token)
        store.write("/a/x", "1")
        assert fired == []


class TestTransactions:
    def test_commit_applies_buffered_writes(self):
        store = XenStore()
        txn = store.transaction()
        txn.write("/a/b", "1")
        txn.write("/a/c", "2")
        assert not store.exists("/a/b")
        txn.commit()
        assert store.read("/a/b") == "1"
        assert store.read("/a/c") == "2"

    def test_read_your_own_writes(self):
        store = XenStore()
        txn = store.transaction()
        txn.write("/a", "mine")
        assert txn.read("/a") == "mine"

    def test_conflicting_commit_aborts(self):
        store = XenStore()
        store.write("/counter", "1")
        txn = store.transaction()
        assert txn.read("/counter") == "1"
        store.write("/counter", "2")  # concurrent writer
        txn.write("/counter", "10")
        with pytest.raises(TransactionConflict):
            txn.commit()
        assert store.read("/counter") == "2"

    def test_writeonly_transaction_never_conflicts(self):
        store = XenStore()
        txn = store.transaction()
        store.write("/other", "x")
        txn.write("/mine", "1")
        txn.commit()
        assert store.read("/mine") == "1"

    def test_finished_transaction_rejects_ops(self):
        store = XenStore()
        txn = store.transaction()
        txn.commit()
        with pytest.raises(XenstoreError):
            txn.write("/a", "1")


class TestToolstackTraffic:
    def test_xl_writes_dwarf_lightvm(self):
        """§4.5: the spawn gap, seen as store traffic."""
        stock = XenStore()
        populate_domain(stock, 1, "xc1", lightvm=False)
        light = XenStore()
        populate_domain(light, 1, "xc1", lightvm=True)
        assert stock.writes == XL_WRITES_PER_DOMAIN
        assert light.writes == LIGHTVM_WRITES_PER_DOMAIN
        assert stock.writes > 10 * light.writes
