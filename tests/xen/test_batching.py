"""Batched I/O data path: ring/grant/event batching (docs/io_batching.md).

Covers the batch scopes on the event-channel table, vectorized grant
copies, the batched ring push/reap in the net and block drivers, the
cost-model calibration invariant that keeps batch-of-one byte-identical
to the legacy per-request path, and the hypothesis equivalence property
between the batched and unbatched paths under arbitrary fault plans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import sites
from repro.faults.plan import Every, FaultPlan, FaultSpec, Probability
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.blkdev import BlockStore, SplitBlockDriver
from repro.xen.drivers import RING_SIZE, SplitNetDriver
from repro.xen.events import EventChannelTable
from repro.xen.grant_table import GrantCopyError, GrantError, GrantTable
from repro.xen.hypercalls import HypercallTable
from repro.xen.hypervisor import DomainKind, XenHypervisor

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def make_net_driver(faults=None, costs=None):
    xen = XenHypervisor()
    guest = xen.create_domain("guest")
    backend = xen.create_domain("backend", DomainKind.DRIVER)
    clock = xen.clock
    events = EventChannelTable(costs or xen.costs, clock, faults=faults)
    driver = SplitNetDriver(
        guest,
        backend,
        xen.grants,
        events,
        costs or xen.costs,
        clock,
        faults=faults,
    )
    return driver, clock


class TestCalibrationInvariant:
    """Batch-of-one must cost exactly the legacy per-request price."""

    def test_fixed_plus_marginal_equals_netfront(self):
        costs = CostModel()
        assert (
            costs.ring_batch_fixed_ns + costs.ring_per_desc_ns
            == costs.netfront_ns
        )

    def test_invariant_survives_cloud_scaling(self):
        scaled = CostModel().scaled(3.5)
        assert scaled.ring_batch_fixed_ns + scaled.ring_per_desc_ns == (
            pytest.approx(scaled.netfront_ns)
        )

    def test_net_batch_of_one_costs_like_single(self):
        driver, _ = make_net_driver()
        assert driver.per_batch_cost_ns([1000]) == pytest.approx(
            driver.per_request_cost_ns(1000)
        )

    def test_batch_amortizes_fixed_cost(self):
        driver, _ = make_net_driver()
        sizes = [1000] * 8
        batched = driver.per_batch_cost_ns(sizes)
        singles = sum(driver.per_request_cost_ns(s) for s in sizes)
        assert batched < singles
        saved = 7 * CostModel().ring_batch_fixed_ns
        assert singles - batched == pytest.approx(saved)


class TestEventBatchScope:
    def test_sends_inside_scope_deliver_once_on_exit(self):
        events = EventChannelTable()
        hits = []
        port = events.bind(lambda: hits.append(1))
        with events.batch():
            for _ in range(5):
                assert events.send(port)
            assert hits == []  # deferred
            assert events.evtchn_upcall_pending
        assert len(hits) == 5
        assert events.flushes == 1
        # First send set the shared flag; the other four coalesced.
        assert events.notifications_coalesced == 4

    def test_nested_scopes_flush_only_at_outermost_exit(self):
        events = EventChannelTable()
        hits = []
        port = events.bind(lambda: hits.append(1))
        with events.batch():
            events.send(port)
            with events.batch():
                events.send(port)
            assert hits == []  # inner exit must not flush
        assert len(hits) == 2
        assert events.flushes == 1

    def test_flush_with_nothing_pending_is_free(self):
        events = EventChannelTable()
        events.bind(lambda: None)
        assert events.flush() == 0
        assert events.flushes == 0

    def test_hypercall_flush_charges_once_for_whole_batch(self):
        clock = SimClock()
        costs = CostModel()
        events = EventChannelTable(costs, clock)
        port = events.bind(lambda: None)
        with events.batch(via_hypercall=True):
            for _ in range(10):
                events.send(port)
        assert events.hypercall_deliveries == 1
        assert clock.now_ns == pytest.approx(costs.hypercall_ns)

    def test_delayed_contract_identical_inside_and_outside_scope(self):
        """Satellite fix: ``notifications_delayed`` and the delay charge
        must not depend on whether the send sits in a batch scope."""

        def run(in_scope: bool):
            engine = FaultPlan(
                (
                    FaultSpec(
                        sites.EVENT_NOTIFY, "delay", Every(1), param=500.0
                    ),
                ),
                seed=7,
            ).compile()
            clock = SimClock()
            events = EventChannelTable(CostModel(), clock, faults=engine)
            port = events.bind(lambda: None)
            if in_scope:
                with events.batch():
                    landed = events.send(port)
            else:
                landed = events.send(port)
                events.drain(via_hypercall=False)
            return landed, events.notifications_delayed, clock.now_ns

        landed_in, delayed_in, _ = run(in_scope=True)
        landed_out, delayed_out, _ = run(in_scope=False)
        assert landed_in is landed_out is True
        assert delayed_in == delayed_out == 1

    def test_dropped_send_inside_scope_reports_false(self):
        engine = FaultPlan(
            (FaultSpec(sites.EVENT_NOTIFY, "drop", Every(1)),), seed=1
        ).compile()
        events = EventChannelTable(faults=engine)
        hits = []
        port = events.bind(lambda: hits.append(1))
        with events.batch():
            assert events.send(port) is False
        assert events.notifications_dropped == 1
        assert hits == []  # nothing landed, nothing flushed


class TestGrantCopyBatch:
    def make(self, faults=None):
        grants = GrantTable(HypercallTable(), faults=faults)
        ref = grants.grant_access(owner_domid=1, page_addr=0x1000)
        grants.map_grant(ref, mapper_domid=0)
        return grants, ref

    def test_batch_copies_and_saves_hypercalls(self):
        grants, ref = self.make()
        before = grants.hypercalls.counts["grant_table_op"]
        total = grants.copy_grant_batch(ref, 0, [100, 200, 300])
        assert total == 600
        assert grants.copies == 3
        assert grants.batched_copies == 1
        assert grants.copy_hypercalls_saved == 2
        assert grants.hypercalls.counts["grant_table_op"] == before + 1

    def test_empty_batch_is_free(self):
        grants, ref = self.make()
        before = grants.hypercalls.counts["grant_table_op"]
        assert grants.copy_grant_batch(ref, 0, []) == 0
        assert grants.hypercalls.counts["grant_table_op"] == before

    def test_negative_size_rejected(self):
        grants, ref = self.make()
        with pytest.raises(ValueError):
            grants.copy_grant_batch(ref, 0, [10, -1])

    def test_visibility_validated_once_for_whole_batch(self):
        grants, ref = self.make()
        with pytest.raises(GrantError):
            grants.copy_grant_batch(ref, 9, [10, 20])
        assert grants.copies == 0

    def test_injected_fail_loses_whole_batch(self):
        engine = FaultPlan(
            (FaultSpec(sites.GRANT_COPY, "fail", Every(2)),), seed=3
        ).compile()
        grants, ref = self.make(faults=engine)
        with pytest.raises(GrantCopyError):
            grants.copy_grant_batch(ref, 0, [10, 20, 30])
        assert grants.copy_failures == 1
        assert grants.copies == 0  # nothing partially copied

    def test_batch_of_one_matches_single_copy(self):
        grants_a, ref_a = self.make()
        grants_b, ref_b = self.make()
        assert grants_a.copy_grant(ref_a, 0, 128) == (
            grants_b.copy_grant_batch(ref_b, 0, [128])
        )
        assert (
            grants_a.hypercalls.counts["grant_table_op"]
            == grants_b.hypercalls.counts["grant_table_op"]
        )


class TestTransmitBatch:
    def test_one_kick_per_batch(self):
        driver, _ = make_net_driver()
        driver.transmit_batch([100, 200, 300, 400])
        assert driver.stats.kicks == 1
        assert driver.stats.batches == 1
        assert driver.stats.kicks_saved == 3
        assert driver.stats.requests == 4
        assert driver.stats.responses == 4
        assert driver.stats.bytes_moved == 1000
        assert driver.stats.avg_batch_size == pytest.approx(4.0)

    def test_cost_matches_pure_query(self):
        driver, clock = make_net_driver()
        sizes = [64, 1500, 4096]
        before = clock.now_ns
        cost = driver.transmit_batch(sizes)
        assert cost == pytest.approx(driver.per_batch_cost_ns(sizes))
        # The clock additionally carries the single event delivery
        # (direct-jump stack frame) for the batch's one kick.
        delivery = 6 * driver.costs.instruction_ns
        assert clock.now_ns - before == pytest.approx(cost + delivery)

    def test_single_transmit_is_batch_of_one(self):
        driver, _ = make_net_driver()
        driver.transmit(1000)
        assert driver.stats.batches == 1
        assert driver.stats.kicks_saved == 0
        assert driver.stats.avg_batch_size == pytest.approx(1.0)

    def test_empty_batch_is_noop(self):
        driver, clock = make_net_driver()
        before = clock.now_ns
        assert driver.transmit_batch([]) == 0.0
        assert driver.stats.requests == 0
        assert clock.now_ns == before

    def test_negative_size_rejected(self):
        driver, _ = make_net_driver()
        with pytest.raises(ValueError):
            driver.transmit_batch([10, -5])

    def test_ring_full_handled_mid_push(self):
        driver, _ = make_net_driver()
        driver.transmit_batch([10] * (RING_SIZE + 1))
        assert driver.stats.ring_full_stalls == 1
        assert driver.stats.requests == RING_SIZE + 1

    def test_backend_kill_retries_whole_batch(self):
        engine = FaultPlan(
            (FaultSpec(sites.NET_BACKEND, "kill", Every(3), limit=1),),
            seed=5,
        ).compile()
        driver, _ = make_net_driver(faults=engine)
        driver.transmit_batch([100, 200, 300, 400])
        assert driver.stats.backend_deaths == 1
        assert driver.stats.backend_restarts == 1
        # The whole batch was resubmitted and completed exactly once.
        assert driver.stats.requests == 4
        assert driver.stats.batches == 1
        assert engine.totals().fatal == 0

    def test_stats_as_dict_surfaces_batch_counters(self):
        driver, _ = make_net_driver()
        driver.transmit_batch([10, 20])
        d = driver.stats.as_dict()
        assert d["batches"] == 1
        assert d["kicks_saved"] == 1
        assert d["avg_batch_size"] == pytest.approx(2.0)


class TestBlockBatch:
    def make(self, faults=None):
        clock = SimClock()
        driver = SplitBlockDriver(
            BlockStore(1024), clock=clock, faults=faults
        )
        return driver, clock

    def test_write_many_read_many_roundtrip(self):
        driver, _ = self.make()
        data_a = b"a" * 512
        data_b = b"b" * 1024
        driver.write_many([(0, data_a), (10, data_b)])
        out = driver.read_many([(0, 1), (10, 2)])
        assert out == [data_a, data_b]
        assert driver.stats.batches == 2  # one write batch, one read batch
        assert driver.stats.kicks_saved == 2

    def test_batch_of_one_costs_like_single(self):
        a, clock_a = self.make()
        b, clock_b = self.make()
        a.write(0, b"x" * 512)
        b.write_many([(0, b"x" * 512)])
        assert clock_a.now_ns == pytest.approx(clock_b.now_ns)

    def test_batched_writes_cheaper_than_singles(self):
        a, clock_a = self.make()
        b, clock_b = self.make()
        for i in range(8):
            a.write(i, b"y" * 512)
        b.write_many([(i, b"y" * 512) for i in range(8)])
        assert clock_b.now_ns < clock_a.now_ns

    def test_unaligned_write_in_batch_rejected(self):
        driver, _ = self.make()
        with pytest.raises(OSError):
            driver.write_many([(0, b"z" * 100)])

    def test_backend_kill_reruns_batch_without_tearing(self):
        engine = FaultPlan(
            (FaultSpec(sites.BLK_BACKEND, "kill", Every(2), limit=1),),
            seed=9,
        ).compile()
        driver, _ = self.make(faults=engine)
        driver.write_many([(0, b"p" * 512), (1, b"q" * 512)])
        assert driver.read(0) == b"p" * 512
        assert driver.read(1) == b"q" * 512
        assert driver.stats.backend_deaths == 1
        assert driver.stats.backend_restarts == 1
        assert engine.totals().fatal == 0


class TestXContainerIoStats:
    def test_attached_drivers_surface_batch_counters(self):
        from repro.core.xcontainer import XContainer
        from repro.core.xlibos import CountingServices

        xc = XContainer(CountingServices())
        net, _ = make_net_driver()
        net.transmit_batch([100, 200])
        xc.attach_io_driver("eth0", net)
        blk = SplitBlockDriver(BlockStore(64))
        blk.write(0, b"s" * 512)
        xc.attach_io_driver("xvda", blk)
        stats = xc.io_stats()
        assert stats["eth0"]["batches"] == 1
        assert stats["eth0"]["kicks_saved"] == 1
        assert stats["xvda"]["batches"] == 1
        assert set(stats) == {"eth0", "xvda"}
        # Lives alongside the decode-cache counters.
        assert "hits" in xc.icache_stats()

    def test_duplicate_name_rejected(self):
        from repro.core.xcontainer import XContainer
        from repro.core.xlibos import CountingServices

        xc = XContainer(CountingServices())
        net, _ = make_net_driver()
        xc.attach_io_driver("eth0", net)
        with pytest.raises(ValueError):
            xc.attach_io_driver("eth0", net)


def loss_plan(seed, p_kill, p_stall, p_drop):
    return FaultPlan(
        (
            FaultSpec(sites.NET_BACKEND, "kill", Probability(p_kill)),
            FaultSpec(sites.NET_RING, "stall", Probability(p_stall), 1.0),
            FaultSpec(sites.EVENT_NOTIFY, "drop", Probability(p_drop)),
        ),
        seed,
    )


class TestBatchedUnbatchedEquivalence:
    """Satellite property: for any seed/plan the batched path at batch
    size one is indistinguishable from the unbatched path — identical
    simulated costs, identical stats, identical fault-recovery outcome —
    and any batch split moves the same bytes and recovers identically."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=SEEDS,
        sizes=st.lists(
            st.integers(min_value=0, max_value=4096), min_size=1, max_size=30
        ),
        p_kill=st.floats(min_value=1e-6, max_value=0.04),
        p_stall=st.floats(min_value=1e-6, max_value=0.04),
        p_drop=st.floats(min_value=1e-6, max_value=0.04),
    )
    def test_batch_of_one_identical_to_single_transmit(
        self, seed, sizes, p_kill, p_stall, p_drop
    ):
        single, clock_s = make_net_driver(
            faults=loss_plan(seed, p_kill, p_stall, p_drop).compile()
        )
        batched, clock_b = make_net_driver(
            faults=loss_plan(seed, p_kill, p_stall, p_drop).compile()
        )
        costs_s = [single.transmit(n) for n in sizes]
        costs_b = [batched.transmit_batch([n]) for n in sizes]
        assert costs_s == costs_b
        assert clock_s.now_ns == clock_b.now_ns
        assert single.stats == batched.stats
        assert (
            single.faults.totals().fatal
            == batched.faults.totals().fatal
            == 0
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=SEEDS,
        sizes=st.lists(
            st.integers(min_value=0, max_value=4096), min_size=1, max_size=30
        ),
        split=st.integers(min_value=1, max_value=30),
        # A killed batch retries whole: keep per-element kill probability
        # far below the 5-attempt budget even for 30-element batches.
        p_kill=st.floats(min_value=1e-6, max_value=0.002),
    )
    def test_any_batch_split_moves_same_bytes_and_recovers(
        self, seed, sizes, split, p_kill
    ):
        kill_plan = FaultPlan(
            (FaultSpec(sites.NET_BACKEND, "kill", Probability(p_kill)),),
            seed,
        )
        unbatched, _ = make_net_driver(faults=kill_plan.compile())
        batched, _ = make_net_driver(faults=kill_plan.compile())
        for n in sizes:
            unbatched.transmit(n)
        for i in range(0, len(sizes), split):
            batched.transmit_batch(sizes[i : i + split])
        assert unbatched.stats.bytes_moved == batched.stats.bytes_moved
        assert unbatched.stats.requests == batched.stats.requests
        assert unbatched.stats.responses == batched.stats.responses
        assert batched.faults.totals().fatal == 0
        assert unbatched.faults.totals().fatal == 0

    @settings(max_examples=20, deadline=None)
    @given(
        seed=SEEDS,
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.binary(min_size=512, max_size=512),
            ),
            min_size=1,
            max_size=16,
        ),
        split=st.integers(min_value=1, max_value=16),
        p_kill=st.floats(min_value=1e-6, max_value=0.005),
    )
    def test_blk_batched_stream_matches_unbatched(
        self, seed, writes, split, p_kill
    ):
        plan = FaultPlan(
            (FaultSpec(sites.BLK_BACKEND, "kill", Probability(p_kill)),),
            seed,
        )
        a = SplitBlockDriver(
            BlockStore(64), clock=SimClock(), faults=plan.compile()
        )
        b = SplitBlockDriver(
            BlockStore(64), clock=SimClock(), faults=plan.compile()
        )
        for sector, data in writes:
            a.write(sector, data)
        for i in range(0, len(writes), split):
            b.write_many(writes[i : i + split])
        for sector, _ in writes:
            assert a.read(sector) == b.read(sector)
        assert a.faults.totals().fatal == 0
        assert b.faults.totals().fatal == 0
