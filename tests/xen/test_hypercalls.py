import pytest

from repro.perf.clock import SimClock
from repro.xen.hypercalls import (
    HYPERCALL_WEIGHTS,
    LINUX_SYSCALL_SURFACE,
    XEN_HYPERCALL_SURFACE,
    HypercallTable,
    UnknownHypercall,
)


class TestHypercallTable:
    def test_known_call_counted(self):
        table = HypercallTable()
        table.call("mmu_update")
        table.call("mmu_update", batch=3)
        assert table.counts["mmu_update"] == 4
        assert table.total_calls == 4

    def test_unknown_call_rejected(self):
        with pytest.raises(UnknownHypercall):
            HypercallTable().call("not_a_hypercall")

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            HypercallTable().call("iret", batch=0)

    def test_cost_weighted_and_charged(self):
        clock = SimClock()
        table = HypercallTable(clock=clock)
        cost = table.call("mmu_update")
        expected = table.costs.hypercall_ns * HYPERCALL_WEIGHTS["mmu_update"]
        assert cost == pytest.approx(expected)
        assert clock.now_ns == pytest.approx(expected)

    def test_attack_surface_much_smaller_than_linux(self):
        """§3.4: the X-Kernel's interface is a fraction of Linux's ~350
        syscalls."""
        assert XEN_HYPERCALL_SURFACE < 50
        assert LINUX_SYSCALL_SURFACE / XEN_HYPERCALL_SURFACE > 7
        assert HypercallTable.attack_surface_ratio() > 7
