import pytest

from repro.arch import Assembler, Reg
from repro.arch.memory import PagedMemory, PageFlags
from repro.core import CountingServices, XContainer
from repro.xen.migration import (
    LiveMigration,
    checkpoint_memory,
    restore_memory,
)


class TestCheckpointRestoreMemory:
    def test_roundtrip_preserves_bytes_and_flags(self):
        memory = PagedMemory()
        memory.map_region(0x1000, 4096, PageFlags.USER | PageFlags.WRITABLE)
        memory.map_region(0x5000, 4096, PageFlags.USER)
        memory.write(0x1000, b"state")
        ckpt = checkpoint_memory(memory, {"rip": 0x42}, "t")
        restored = restore_memory(ckpt)
        assert restored.read(0x1000, 5) == b"state"
        assert restored.page_flags(0x5000) == memory.page_flags(0x5000)

    def test_restore_is_a_deep_copy(self):
        memory = PagedMemory()
        memory.map_region(0x1000, 4096, PageFlags.USER | PageFlags.WRITABLE)
        ckpt = checkpoint_memory(memory, {}, "t")
        restored = restore_memory(ckpt)
        restored.write(0x1000, b"x")
        assert memory.read(0x1000, 1) == b"\x00"

    def test_memory_bytes_accounting(self):
        memory = PagedMemory()
        memory.map_region(0x1000, 3 * 4096, PageFlags.USER)
        ckpt = checkpoint_memory(memory, {}, "t")
        assert ckpt.memory_bytes == 3 * 4096


class TestXContainerCheckpointRestore:
    def _counting_program(self, iterations):
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, iterations)
        asm.label("loop")
        asm.syscall_site(39, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        return asm.build("counter")

    def test_restored_container_resumes_mid_program(self):
        """A container checkpointed mid-run continues where it stopped —
        including all state in registers and memory."""
        binary = self._counting_program(10)
        xc = XContainer(CountingServices(results={39: 5}), name="orig")
        xc.load(binary)
        xc.cpu.regs.rip = binary.entry
        xc.step(count=30)  # part-way through the loop
        done_before = len(xc.libos.services.calls)
        assert 0 < done_before < 10

        ckpt = xc.checkpoint("mid")
        restored = XContainer.restore(
            ckpt, CountingServices(results={39: 5})
        )
        result = restored.resume()
        assert result.exit_rax == 5
        done_after = len(restored.libos.services.calls)
        assert done_before + done_after == 10

    def test_restored_container_keeps_abom_patches(self):
        """Patched text pages travel with the checkpoint: the restored
        instance never traps for already-patched sites."""
        binary = self._counting_program(5)
        xc = XContainer(CountingServices(), name="orig")
        xc.run(binary)  # patches the site
        ckpt = xc.checkpoint()
        restored = XContainer.restore(ckpt, CountingServices())
        result = restored.run_loaded(binary.entry)
        assert restored.libos.stats.forwarded_syscalls == 0
        assert restored.libos.stats.lightweight_syscalls == 5

    def test_halted_flag_restored(self):
        binary = self._counting_program(1)
        xc = XContainer(CountingServices())
        xc.run(binary)
        assert xc.cpu.halted
        restored = XContainer.restore(xc.checkpoint(), CountingServices())
        assert restored.cpu.halted


class TestLiveMigration:
    def test_idle_guest_converges_in_one_round(self):
        migration = LiveMigration(
            memory_mb=128, dirty_rate_pages_s=0.0
        )
        report = migration.run()
        assert report.converged
        assert report.rounds == 1
        assert report.pages_sent == 128 * 256  # 4 KiB pages

    def test_busy_guest_needs_more_rounds(self):
        idle = LiveMigration(128, dirty_rate_pages_s=0.0).run()
        busy = LiveMigration(
            128, dirty_rate_pages_s=200_000.0, downtime_budget_ms=10.0
        ).run()
        assert busy.rounds > idle.rounds
        assert busy.pages_sent > idle.pages_sent

    def test_downtime_within_budget_when_converged(self):
        migration = LiveMigration(
            512, dirty_rate_pages_s=50_000.0, downtime_budget_ms=300.0
        )
        report = migration.run()
        assert report.converged
        assert report.downtime_ms <= 300.0 * 1.01

    def test_write_storm_does_not_converge(self):
        """Dirtying faster than the link sends: forced stop-and-copy."""
        migration = LiveMigration(
            1024,
            dirty_rate_pages_s=1e9,
            bandwidth_mbps=1000.0,
            max_rounds=5,
        )
        report = migration.run()
        assert not report.converged
        assert report.downtime_ms > 0

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            LiveMigration(0, 0.0)
        with pytest.raises(ValueError):
            LiveMigration(128, 0.0, bandwidth_mbps=0.0)

    def test_more_bandwidth_less_downtime(self):
        slow = LiveMigration(256, 100_000.0, bandwidth_mbps=1000.0).run()
        fast = LiveMigration(256, 100_000.0, bandwidth_mbps=40000.0).run()
        assert fast.total_ms < slow.total_ms
