import pytest

from repro.perf.clock import SimClock
from repro.xen.blkdev import (
    SECTOR_SIZE,
    BlockError,
    BlockStore,
    SnapshotStore,
    SplitBlockDriver,
)
from repro.xen.remus import Epoch, FailoverError, RemusReplicator


class TestBlockStore:
    def test_read_unwritten_is_zero(self):
        store = BlockStore(8)
        assert store.read_sector(0) == b"\x00" * SECTOR_SIZE

    def test_write_read_roundtrip(self):
        store = BlockStore(8)
        payload = bytes(range(256)) * 2
        store.write_sector(3, payload)
        assert store.read_sector(3) == payload

    def test_bounds_checked(self):
        store = BlockStore(8)
        with pytest.raises(BlockError):
            store.read_sector(8)
        with pytest.raises(BlockError):
            store.write_sector(-1, b"\x00" * SECTOR_SIZE)

    def test_partial_sector_write_rejected(self):
        with pytest.raises(BlockError):
            BlockStore(8).write_sector(0, b"short")

    def test_allocation_is_sparse(self):
        store = BlockStore(1 << 20)
        store.write_sector(12345, b"\x01" * SECTOR_SIZE)
        assert store.allocated_sectors == 1


class TestSnapshotStore:
    def test_reads_fall_through_to_base(self):
        base = BlockStore(8)
        base.write_sector(1, b"B" * SECTOR_SIZE)
        snap = SnapshotStore(base)
        assert snap.read_sector(1) == b"B" * SECTOR_SIZE
        assert snap.cow_sectors == 0

    def test_writes_diverge_without_touching_base(self):
        base = BlockStore(8)
        base.write_sector(1, b"B" * SECTOR_SIZE)
        snap = SnapshotStore(base)
        snap.write_sector(1, b"S" * SECTOR_SIZE)
        assert snap.read_sector(1) == b"S" * SECTOR_SIZE
        assert base.read_sector(1) == b"B" * SECTOR_SIZE
        assert snap.cow_sectors == 1

    def test_two_snapshots_independent(self):
        base = BlockStore(8)
        a = SnapshotStore(base)
        b = SnapshotStore(base)
        a.write_sector(0, b"A" * SECTOR_SIZE)
        assert b.read_sector(0) == b"\x00" * SECTOR_SIZE


class TestSplitBlockDriver:
    def test_io_roundtrip_and_stats(self):
        clock = SimClock()
        driver = SplitBlockDriver(BlockStore(16), clock=clock)
        driver.write(0, b"X" * SECTOR_SIZE * 2)
        data = driver.read(0, count=2)
        assert data == b"X" * SECTOR_SIZE * 2
        assert driver.stats.reads == 1
        assert driver.stats.writes == 1
        assert driver.stats.bytes_moved == 4 * SECTOR_SIZE
        assert clock.now_ns > 0

    def test_split_path_costs_more_than_native(self):
        """blkfront/blkback ring vs Docker's direct device-mapper path."""
        split_clock, native_clock = SimClock(), SimClock()
        split = SplitBlockDriver(BlockStore(16), clock=split_clock)
        native = SplitBlockDriver(
            BlockStore(16), clock=native_clock, split=False
        )
        split.read(0)
        native.read(0)
        assert split_clock.now_ns > native_clock.now_ns

    def test_unaligned_write_rejected(self):
        driver = SplitBlockDriver(BlockStore(16))
        with pytest.raises(BlockError):
            driver.write(0, b"odd-sized")

    def test_bad_count_rejected(self):
        with pytest.raises(BlockError):
            SplitBlockDriver(BlockStore(16)).read(0, count=0)


class TestRemus:
    def test_epochs_replicate_and_release_output(self):
        remus = RemusReplicator(epoch_ms=25.0)
        latency = remus.run_epoch(Epoch(0, dirty_pages=100,
                                        output_packets=10))
        assert latency >= 25.0
        assert remus.stats.packets_released == 10
        assert remus.buffered_packets == 0
        assert remus.backup_epoch == 0

    def test_large_dirty_sets_add_output_latency(self):
        remus = RemusReplicator(epoch_ms=25.0, bandwidth_mbps=1000.0)
        small = remus.run_epoch(Epoch(0, 100, 1))
        large = remus.run_epoch(Epoch(1, 2_000_000, 1))
        assert large > small

    def test_failover_resumes_from_replicated_epoch(self):
        remus = RemusReplicator()
        remus.run_epoch(Epoch(0, 50, 5))
        remus.run_epoch(Epoch(1, 50, 5))
        resumed = remus.fail_primary()
        assert resumed == 1
        with pytest.raises(FailoverError):
            remus.run_epoch(Epoch(2, 1, 1))

    def test_failover_without_any_checkpoint_fails(self):
        with pytest.raises(FailoverError):
            RemusReplicator().fail_primary()

    def test_output_commit_invariant(self):
        remus = RemusReplicator()
        for index in range(5):
            remus.run_epoch(Epoch(index, 10, 3))
            assert remus.output_commit_invariant()

    def test_bad_epoch_params_rejected(self):
        with pytest.raises(ValueError):
            RemusReplicator(epoch_ms=0)
        with pytest.raises(ValueError):
            RemusReplicator().run_epoch(Epoch(0, -1, 0))
