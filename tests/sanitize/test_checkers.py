"""Unit tests for the three sanitizer checkers.

Each class drives one checker directly through its hook surface and pins
both directions: the seeded violation fires exactly the expected finding,
and the correctly synchronized counterpart stays clean.
"""

from repro.sanitize.grants import GrantSanitizer
from repro.sanitize.protocol import ProtocolChecker
from repro.sanitize.race import RaceDetector
from repro.sanitize.vclock import vc_fresh, vc_join, vc_leq


class TestVectorClocks:
    def test_fresh_clock_starts_at_one(self):
        assert vc_fresh("a") == {"a": 1}

    def test_join_is_componentwise_max(self):
        into = {"a": 3, "b": 1}
        vc_join(into, {"b": 5, "c": 2})
        assert into == {"a": 3, "b": 5, "c": 2}

    def test_leq_is_pointwise(self):
        assert vc_leq({"a": 1}, {"a": 2, "b": 1})
        assert not vc_leq({"a": 2}, {"a": 1})
        assert not vc_leq({"a": 1, "c": 1}, {"a": 1})


class TestRaceDetector:
    def test_unordered_writes_by_two_actors_race(self):
        det = RaceDetector()
        det.track_page(0x1000)
        det.write("a", 0x1000, 8)
        det.write("b", 0x1004, 8)
        assert [f.kind for f in det.findings] == ["data-race"]

    def test_release_acquire_orders_the_writes(self):
        det = RaceDetector()
        det.track_page(0x1000)
        det.write("a", 0x1000, 8)
        det.release("a", "chan")
        det.acquire("b", "chan")
        det.write("b", 0x1000, 8)
        assert det.findings == []

    def test_disjoint_ranges_do_not_conflict(self):
        det = RaceDetector()
        det.track_page(0x1000)
        det.write("a", 0x1000, 8)
        det.write("b", 0x1008, 8)
        assert det.findings == []

    def test_read_read_is_not_a_conflict(self):
        det = RaceDetector()
        det.track_page(0x1000)
        det.read("a", 0x1000, 8)
        det.read("b", 0x1000, 8)
        assert det.findings == []

    def test_untracked_pages_are_ignored(self):
        det = RaceDetector()
        det.write("a", 0x5000, 8)
        det.write("b", 0x5000, 8)
        assert det.findings == []
        assert det.accesses_checked == 0

    def test_plain_write_races_with_exec(self):
        det = RaceDetector()
        det.exec_access("vcpu0", 0x400000, 16)  # auto-tracks the page
        det.write("patcher", 0x400004, 1)
        kinds = [f.kind for f in det.findings]
        assert kinds == ["data-race"]
        assert "exec" in det.findings[0].message

    def test_locked_write_synchronizes_with_exec(self):
        # ABOM's cmpxchg: decode and LOCK store share the per-page
        # channel, so patch-then-decode and decode-then-patch are both
        # ordered — race-free by construction.
        det = RaceDetector()
        det.exec_access("vcpu0", 0x400000, 16)
        det.locked_write("vcpu1", 0x400004, 8)
        det.exec_access("vcpu0", 0x400000, 16)
        assert det.findings == []

    def test_duplicate_races_are_reported_once(self):
        det = RaceDetector()
        det.track_page(0x1000)
        for _ in range(5):
            det.write("a", 0x1000, 8)
            det.write("b", 0x1000, 8)
        assert len(det.findings) == 1

    def test_findings_reuse_analysis_finding_machinery(self):
        from repro.analysis.safety import Finding, Severity

        det = RaceDetector()
        det.track_page(0x1000)
        det.write("a", 0x1000, 8)
        det.write("b", 0x1000, 8)
        finding = det.findings[0]
        assert isinstance(finding, Finding)
        assert finding.severity is Severity.ERROR
        assert "site=" in finding.render()

    def test_window_is_bounded(self):
        det = RaceDetector()
        det.track_page(0x1000)
        for i in range(500):
            det.write("a", 0x1000 + (i % 64), 1)
        assert all(len(w) <= 64 for w in det._pages.values())


class TestGrantSanitizer:
    def test_balanced_lifecycle_is_clean(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_map(1, 2)
        san.on_copy(1)
        san.on_unmap(1)
        san.on_end(1)
        assert san.findings == []
        assert san.live_refs() == []

    def test_double_unmap_by_same_mapper_flagged(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_map(1, 2)
        san.on_unmap(1)
        san.on_unmap_attempt(1, 2)  # real table rejected the second unmap
        assert [f.kind for f in san.findings] == ["grant-double-unmap"]

    def test_unmap_of_never_mapped_ref_is_cleanup_not_misuse(self):
        # The driver's reconnect path unmaps defensively after a failed
        # map; the real table rejects it and the driver swallows the
        # error — that is idempotent cleanup.
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_unmap_attempt(1, 2)
        assert san.findings == []

    def test_map_after_end_is_use_after_end(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_end(1)
        san.on_map_attempt(1)
        assert [f.kind for f in san.findings] == ["grant-use-after-end"]

    def test_copy_after_end_is_use_after_end(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_end(1)
        san.on_copy(1)
        assert [f.kind for f in san.findings] == ["grant-use-after-end"]

    def test_double_grant_of_live_frame_flagged(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_grant(2, 1, 0xE000)
        assert [f.kind for f in san.findings] == ["double-grant"]

    def test_regrant_after_end_is_clean(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_end(1)
        san.on_grant(2, 1, 0xE000)
        assert san.findings == []

    def test_end_while_mapped_flagged_and_grant_stays_live(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_map(1, 2)
        san.on_end(1)
        assert [f.kind for f in san.findings] == ["grant-end-while-mapped"]
        # The real table raises and keeps the grant; mirror agrees.
        assert san.live_refs() == [1]

    def test_leak_reported_at_domain_destroy(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_grant(2, 1, 0xF000)
        san.on_end(1)
        san.on_domain_destroy(1)
        assert [f.kind for f in san.findings] == ["grant-leak"]
        assert "ref 2" in san.findings[0].message

    def test_mapped_by_dying_domain_is_also_a_leak(self):
        san = GrantSanitizer()
        san.on_grant(1, 1, 0xE000)
        san.on_map(1, 2)
        san.on_domain_destroy(2)
        assert [f.kind for f in san.findings] == ["grant-leak"]
        assert "mapped" in san.findings[0].message


class TestProtocolChecker:
    def _ring(self, checker, size=4):
        checker.ring_register("r", size, 0xF000_0000, 16)
        return "r"

    def test_publish_kick_consume_is_clean(self):
        pc = ProtocolChecker()
        name = self._ring(pc)
        for _ in range(3):
            pc.ring_publish(name)
        pc.ring_kick(name)
        pc.ring_consume(name, 3)
        pc.ring_quiesce(name)
        assert pc.findings == []

    def test_publish_without_kick_is_lost_wakeup_at_quiescence(self):
        pc = ProtocolChecker()
        name = self._ring(pc)
        pc.ring_publish(name)
        pc.ring_quiesce(name)
        assert [f.kind for f in pc.findings] == ["ring-lost-wakeup"]

    def test_dropped_then_retried_kick_is_clean(self):
        # The fault path: kick lost, retry re-publishes and re-kicks.
        pc = ProtocolChecker()
        name = self._ring(pc)
        pc.ring_publish(name)
        pc.ring_kick_lost(name)
        pc.ring_abort(name, 1)  # driver unwinds the failed train
        pc.ring_publish(name)   # retry
        pc.ring_kick(name)
        pc.ring_consume(name, 1)
        pc.ring_quiesce(name)
        assert pc.findings == []
        assert pc.ring(name).kicks_lost == 1

    def test_overrun_is_descriptor_reuse(self):
        pc = ProtocolChecker()
        name = self._ring(pc, size=4)
        for _ in range(5):  # fifth publish laps the unconsumed first
            pc.ring_publish(name)
        assert [f.kind for f in pc.findings] == ["ring-descriptor-reuse"]

    def test_overrun_reports_once_then_resyncs(self):
        pc = ProtocolChecker()
        name = self._ring(pc, size=4)
        for _ in range(12):
            pc.ring_publish(name)
        assert len(pc.findings) == len(
            [f for f in pc.findings if f.kind == "ring-descriptor-reuse"]
        )
        assert len(pc.findings) < 12

    def test_quiesce_all_covers_every_ring(self):
        pc = ProtocolChecker()
        pc.ring_register("a", 4, 0xF000_0000, 16)
        pc.ring_register("b", 4, 0xF000_1000, 16)
        pc.ring_publish("a")
        pc.ring_publish("b")
        pc.quiesce_all()
        assert sorted(f.message.split(":")[0] for f in pc.findings) == [
            "a", "b",
        ]
