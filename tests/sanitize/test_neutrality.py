"""Property: sanitizers are observation-only.

Attaching the full suite may add findings and counters, but must never
change a single simulated number: registers, memory bytes, clocks, stats
— all byte-identical with sanitizers on or off.  Hypothesis generates
random programs and descriptor trains; each runs both ways and the
results are compared exactly (same discipline as the telemetry
neutrality property in ``tests/obs/test_property.py``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.assembler import Assembler
from repro.arch.registers import Reg
from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices
from repro.sanitize import SanitizerSuite

OPS = st.lists(
    st.sampled_from(("inc", "dec", "sys_eax", "sys_rax")),
    min_size=1,
    max_size=10,
)


def build_program(ops, iters):
    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, iters)
    asm.mov_imm32(Reg.RCX, 0)
    asm.label("loop")
    for index, op in enumerate(ops):
        if op == "inc":
            asm.inc(Reg.RCX)
        elif op == "dec":
            asm.dec(Reg.RCX)
        elif op == "sys_eax":
            asm.syscall_site(39, style="mov_eax", symbol=f"s{index}")
        else:
            asm.syscall_site(15, style="mov_rax", symbol=f"s{index}")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build("prop")


class TestSanitizerNeutrality:
    @settings(max_examples=20, deadline=None)
    @given(ops=OPS, iters=st.integers(min_value=1, max_value=4))
    def test_random_programs_unchanged_by_sanitizers(self, ops, iters):
        binary = build_program(ops, iters)

        def run(sanitized):
            suite = SanitizerSuite() if sanitized else None
            xc = XContainer(CountingServices(), sanitizers=suite)
            result = xc.run(binary)
            if sanitized:
                suite.finish()
                # Patched text is ordered through the LOCK channel, so
                # single-vCPU ABOM must never trip the detector.
                assert suite.findings == []
            return (
                result.instructions,
                result.elapsed_ns,
                result.exit_rax,
                xc.clock.now_ns,
                xc.cpu.regs.read64(Reg.RBX),
                xc.cpu.regs.read64(Reg.RCX),
                bytes(xc.memory.read(binary.base, len(binary.code))),
                xc.libos_stats.forwarded_syscalls,
                xc.libos_stats.lightweight_syscalls,
            )

        assert run(sanitized=True) == run(sanitized=False)

    @settings(max_examples=10, deadline=None)
    @given(
        trains=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=4096),
                min_size=1,
                max_size=20,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_ring_trains_unchanged_by_sanitizers(self, trains):
        from repro.perf.clock import SimClock
        from repro.xen.drivers import SplitNetDriver
        from repro.xen.events import EventChannelTable
        from repro.xen.hypervisor import DomainKind, XenHypervisor

        def run(sanitized):
            suite = SanitizerSuite() if sanitized else None
            clock = SimClock()
            xen = XenHypervisor(clock=clock)
            if sanitized:
                xen.grants.sanitizer = suite
            guest = xen.create_domain("guest")
            backend = xen.create_domain("backend", DomainKind.DRIVER)
            events = EventChannelTable(
                xen.costs, clock, sanitizer=suite
            )
            net = SplitNetDriver(
                guest, backend, xen.grants, events, xen.costs, clock,
                sanitizer=suite,
            )
            costs = [net.transmit_batch(train) for train in trains]
            net.close()
            if sanitized:
                suite.finish()
                assert suite.findings == []
            return (
                tuple(costs),
                clock.now_ns,
                net.stats.requests,
                net.stats.bytes_moved,
                net.stats.kicks_saved,
            )

        assert run(sanitized=True) == run(sanitized=False)

    def test_clocks_identical_across_reruns(self):
        """Vector clocks themselves are deterministic state."""

        def clocks():
            unit_suites = []
            from repro.sanitize.harness import sanitize_chaos

            for unit in sanitize_chaos(seed=7, names=["event-storm-blkdev"]):
                unit_suites.append(unit)
            return [u.stats for u in unit_suites]

        assert clocks() == clocks()
