"""SanitizerSuite wired into the real substrates.

Covers the tentpole acceptance bar: the seeded-race fixtures fire
deterministic findings, the chaos catalog and fig workloads run
sanitizer-clean (injected faults the retry paths recover from must not
trip the checkers), and ABOM's concurrent patching stays race-free
under the happens-before detector.
"""

import json

from repro.sanitize import (
    SanitizerSuite,
    run_fixtures,
    run_sanitize,
    sanitize_chaos,
    sanitize_workloads,
)
from repro.sanitize.fixtures import FIXTURES


class TestFixtures:
    def test_every_fixture_fires_a_finding(self):
        for unit in run_fixtures():
            assert unit.findings, f"{unit.name} was silenced"
            assert unit.outcome == "finding"

    def test_kickless_producer_is_lost_wakeup(self):
        unit = FIXTURES["kickless-producer"]()
        assert [f.kind for f in unit.findings] == ["ring-lost-wakeup"]

    def test_double_unmap_is_flagged_through_the_real_table(self):
        unit = FIXTURES["double-unmap"]()
        assert [f.kind for f in unit.findings] == ["grant-double-unmap"]

    def test_unsynchronized_text_patch_is_a_data_race(self):
        unit = FIXTURES["unsynchronized-text-patch"]()
        assert [f.kind for f in unit.findings] == ["data-race"]
        assert "rogue-patcher" in unit.findings[0].message

    def test_fixture_findings_are_byte_identical_across_reruns(self):
        def render(units):
            return json.dumps(
                [u.as_dict() for u in units], sort_keys=True
            )

        assert render(run_fixtures()) == render(run_fixtures())


class TestChaosUnderSanitizers:
    def test_full_catalog_is_sanitizer_clean(self):
        for unit in sanitize_chaos(seed=0):
            assert unit.findings == (), (
                f"{unit.name}: {[f.render() for f in unit.findings]}"
            )

    def test_catalog_outcomes_match_unsanitized_run(self):
        # Attaching the suite must not change recovery outcomes.
        from repro.faults.report import run_scenarios

        plain = {
            r.name: r.outcome for r in run_scenarios(0).results
        }
        sanitized = {
            u.name.removeprefix("chaos:"): u.outcome
            for u in sanitize_chaos(seed=0)
        }
        assert sanitized == plain

    def test_chaos_units_audited_real_traffic(self):
        stats = {
            u.name: dict(u.stats) for u in sanitize_chaos(seed=0)
        }
        backend = stats["chaos:backend-death-memcached"]
        assert backend["ring_publishes"] > 0
        assert backend["race_accesses_checked"] > 0
        flaps = stats["chaos:grant-flaps-reconnect"]
        assert flaps["grant_maps"] > 0


class TestWorkloadsUnderSanitizers:
    def test_fig_workloads_are_sanitizer_clean(self):
        for unit in sanitize_workloads(seed=0):
            assert unit.findings == (), (
                f"{unit.name}: {[f.render() for f in unit.findings]}"
            )

    def test_scaleout_unit_exercises_concurrent_abom(self):
        units = {u.name: u for u in sanitize_workloads(seed=0)}
        scaleout = units["workload:scaleout"]
        stats = dict(scaleout.stats)
        # Two vCPUs decoded shared text while ABOM patched it: the
        # page-generation channel ordered every access.
        assert stats["race_accesses_checked"] > 0
        assert stats["race_findings"] == 0

    def test_workload_units_close_all_grants(self):
        units = {u.name: u for u in sanitize_workloads(seed=0)}
        for name in ("workload:nginx", "workload:memcached",
                     "workload:redis"):
            stats = dict(units[name].stats)
            assert stats["grant_findings"] == 0
            assert stats["grant_grants"] == stats["grant_ends"]


class TestRunSanitize:
    def test_all_target_is_clean_and_deterministic(self):
        first = run_sanitize(0, "all")
        second = run_sanitize(0, "all")
        assert first.clean
        assert first.render() == second.render()
        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )

    def test_fixtures_target_reports_findings(self):
        report = run_sanitize(0, "fixtures")
        assert not report.clean
        assert report.total_findings == len(FIXTURES)

    def test_unknown_target_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            run_sanitize(0, "nonsense")


class TestSuiteWiring:
    def test_detach_removes_exactly_the_suite_observers(self):
        from repro.core import CountingServices, XContainer

        baseline = XContainer(CountingServices(results={}))
        plain_writes = len(baseline.memory._write_observers)

        suite = SanitizerSuite()
        xc = XContainer(CountingServices(results={}), sanitizers=suite)
        assert len(xc.memory._write_observers) == plain_writes + 1
        assert len(xc.memory._lock_observers) == 1
        suite.detach()
        assert len(xc.memory._write_observers) == plain_writes
        assert not xc.memory._lock_observers

    def test_ring_names_uniquified_with_disjoint_shadow_pages(self):
        suite = SanitizerSuite()
        first = suite.ring_register("net:g1b2", 256, 16)
        second = suite.ring_register("net:g1b2", 256, 16)
        assert first == "net:g1b2"
        assert second == "net:g1b2#2"
        pages = {r.page for r in suite.rings.rings()}
        assert len(pages) == 2

    def test_telemetry_binding_exposes_sanitize_counters(self):
        from repro.obs.registry import Registry

        suite = SanitizerSuite()
        name = suite.ring_register("t", 4, 16)
        suite.ring_batch_start(name, "a")
        suite.ring_publish(name, "a")
        suite.ring_kick(name, "a")
        suite.ring_reap(name, "b", 1)
        registry = Registry()
        suite.bind_telemetry(registry)
        assert registry.value("sanitize_ring_publishes_total") == 1
        assert registry.value("sanitize_ring_consumes_total") == 1
        assert (
            registry.value("sanitize_findings_total", checker="race") == 0
        )

    def test_stats_names_are_stable(self):
        suite = SanitizerSuite()
        assert [name for name, _ in suite.stats()] == [
            "race_accesses_checked", "race_sync_edges", "race_findings",
            "grant_grants", "grant_maps", "grant_unmaps", "grant_copies",
            "grant_ends", "grant_findings",
            "ring_publishes", "ring_consumes", "event_sends",
            "event_drops", "event_deliveries", "ring_findings",
        ]
