import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_platforms_listing(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "x-container" in out
        assert "gvisor" in out

    def test_tcb_table(self, capsys):
        assert main(["tcb"]) == 0
        out = capsys.readouterr().out
        assert "x-container" in out
        assert "surface vs docker" in out

    def test_abom_demo_shows_patched_call(self, capsys):
        assert main(["abom-demo", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "callq  *0xffffffffff600008" in out
        assert "before:" in out and "after ABOM:" in out

    def test_experiments_single_id(self, capsys):
        assert main(["experiments", "spawn"]) == 0
        out = capsys.readouterr().out
        assert "Section 4.5" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(KeyError):
            main(["experiments", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAnalyzeCommand:
    def test_default_run_is_safe_and_exits_zero(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        # Per-site classification and safety verdicts are reported.
        assert "mov_eax_imm" in out
        assert "SAFE" in out
        assert "static model and online ABOM agree" in out
        assert "0 unsafe" in out

    def test_unsafe_example_exits_nonzero(self, capsys):
        assert main(["analyze", "interior_jump"]) == 1
        out = capsys.readouterr().out
        assert "UNSAFE" in out
        assert "interior-target" in out
        assert "1 unsafe" in out

    def test_tail_jump_reports_fixup_not_unsafe(self, capsys):
        assert main(["analyze", "tail_jump"]) == 0
        out = capsys.readouterr().out
        assert "needs #UD fixup" in out

    def test_no_differential_flag(self, capsys):
        assert main(["analyze", "figure2", "--no-differential"]) == 0
        out = capsys.readouterr().out
        assert "differential" not in out

    def test_list_examples(self, capsys):
        assert main(["analyze", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "[unsafe demo]" in out

    def test_unknown_example_errors(self):
        with pytest.raises(SystemExit, match="unknown example"):
            main(["analyze", "nonesuch"])


class TestChaosCommand:
    def test_full_catalog_recovers_and_exits_zero(self, capsys):
        assert main(["chaos", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "ALL RECOVERED" in out
        assert "core substrate coverage: complete" in out

    def test_output_is_byte_identical_for_same_seed(self, capsys):
        main(["chaos", "--seed", "11"])
        first = capsys.readouterr().out
        main(["chaos", "--seed", "11"])
        assert capsys.readouterr().out == first

    def test_single_scenario_run(self, capsys):
        assert main(["chaos", "nginx-packet-loss", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "nginx-packet-loss" in out
        assert "backend-death-memcached" not in out

    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "backend-death-memcached" in out
        assert "abom-cmpxchg-contention" in out

    def test_list_is_sorted_by_name(self, capsys):
        assert main(["chaos", "--list"]) == 0
        names = [
            line.split()[0]
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert names == sorted(names)

    def test_unknown_scenario_errors(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["chaos", "nonesuch"])

    def test_unknown_scenario_error_lists_names_sorted(self):
        with pytest.raises(SystemExit) as caught:
            main(["chaos", "nonesuch"])
        message = str(caught.value)
        listed = message.split("known: ")[1].split(", ")
        assert listed == sorted(listed)
        assert "fuzz-notify-drop-burst" in listed

    def test_replay_of_serialized_steps(self, tmp_path, capsys):
        from repro.fuzz.steps import dumps, step

        path = tmp_path / "steps.json"
        path.write_text(
            dumps(
                (
                    step("spawn", memory_mb=64, lightvm=True),
                    step("net_burst", count=2, size=10, batched=False),
                ),
                world_seed=4,
            )
        )
        assert main(["chaos", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fuzz world seed=4 steps=2" in out
        assert "outcome: clean" in out

    def test_replay_is_byte_identical(self, tmp_path, capsys):
        from repro.fuzz.steps import dumps, step

        path = tmp_path / "steps.json"
        path.write_text(
            dumps((step("remus_epoch", dirty_pages=5, packets=1),))
        )
        main(["chaos", "--replay", str(path)])
        first = capsys.readouterr().out
        main(["chaos", "--replay", str(path)])
        assert capsys.readouterr().out == first

    def test_replay_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "steps.json"
        path.write_text('{"version": 99, "steps": []}')
        with pytest.raises(ValueError, match="version"):
            main(["chaos", "--replay", str(path)])


class TestFuzzCommand:
    def test_clean_bounded_run_exits_zero(self, capsys):
        assert main(
            ["fuzz", "--seed", "0", "--max-examples", "3", "--steps", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "result: clean" in out
        assert "rule kinds: 14" in out

    def test_json_format(self, capsys):
        assert main(
            ["fuzz", "--seed", "0", "--max-examples", "2", "--steps", "8",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["rules"] >= 8
        assert payload["invariants"] >= 5

    def test_seeded_defect_is_found_and_exits_one(self, capsys):
        assert main(
            ["fuzz", "--seed", "7", "--max-examples", "15", "--steps", "15",
             "--defect", "blk-lost-write"]
        ) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "replay byte-identical" in out
        assert '"op": "blk_burst"' in out

    def test_fuzz_steps_feed_chaos_replay(self, tmp_path, capsys):
        assert main(
            ["fuzz", "--seed", "7", "--max-examples", "15", "--steps", "15",
             "--defect", "blk-lost-write", "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        path = tmp_path / "steps.json"
        path.write_text(payload["steps_json"])
        # Honest stack (no defect hook): the sequence replays clean.
        assert main(["chaos", "--replay", str(path)]) == 0

    def test_exit_codes_mention_fuzz(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "fuzz: no invariant violation found" in out

    def test_json_format(self, capsys):
        assert main(
            ["chaos", "nginx-packet-loss", "--seed", "3",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_recovered"] is True
        assert payload["scenarios"][0]["name"] == "nginx-packet-loss"


class TestSharedOutputSurface:
    """--format/--output behave identically on all four subcommands."""

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "usage error" in out

    def test_analyze_json_format(self, capsys):
        assert main(["analyze", "figure2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unsafe"] == 0
        assert payload["reports"][0]["has_unsafe"] is False
        assert payload["reports"][0]["sites"]

    def test_output_writes_file_instead_of_stdout(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(
            ["chaos", "nginx-packet-loss", "--format", "json",
             "--output", str(path)]
        ) == 0
        assert capsys.readouterr().out == ""
        assert json.loads(path.read_text())["all_recovered"] is True

    def test_every_subcommand_accepts_the_shared_flags(self):
        parser = build_parser()
        for command in ("analyze", "chaos", "fuzz", "metrics", "trace"):
            args = parser.parse_args([command, "--format", "json"])
            assert args.format == "json"
            assert args.output is None


class TestMetricsCommand:
    def test_table_lists_unified_metrics(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "arch_icache_hits_total{cpu=0,domain=demo}" in out
        assert "xen_ring_batches_total{domain=demo,driver=net0}" in out
        assert "faults_injected_total" in out

    def test_json_snapshot(self, capsys):
        assert main(["metrics", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"]["finished"] > 0
        assert (
            payload["histograms"]
            ["net_http_request_latency_ns{component=http,domain=demo}"]
            ["count"] == 8
        )

    def test_prometheus_exposition(self, capsys):
        assert main(["metrics", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE arch_icache_hits_total counter" in out
        assert "net_http_request_latency_ns_bucket" in out

    def test_same_seed_is_byte_identical(self, capsys):
        main(["metrics", "--format", "json", "--seed", "9"])
        first = capsys.readouterr().out
        main(["metrics", "--format", "json", "--seed", "9"])
        assert capsys.readouterr().out == first


class TestTraceCommand:
    def test_table_shows_span_tree(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "demo.syscall_bench" in out
        assert "netfront.tx" in out
        assert "http.request" in out

    def test_json_is_chrome_trace_format(self, capsys):
        assert main(["trace", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traceEvents"]
        assert all(e["ph"] == "X" for e in payload["traceEvents"])

    def test_limit_bounds_the_table(self, capsys):
        assert main(["trace", "--limit", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3  # header + 2 spans


class TestServeCommand:
    def test_list_scenarios(self, capsys):
        assert main(["serve", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ci-small" in out
        assert "fleet-100" in out
        assert "fleet-nat" in out

    def test_default_scenario_passes_slo(self, capsys):
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert "serve report — scenario=ci-small seed=0" in out
        assert "PASS" in out
        assert "conservation=ok" in out

    def test_unknown_scenario_errors(self):
        with pytest.raises(SystemExit, match="unknown serve scenario"):
            main(["serve", "fleet-9000"])

    def test_json_format(self, capsys):
        assert main(["serve", "ci-small", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "ci-small"
        assert payload["slo"]["ok"] is True
        assert payload["ipvs"]["conservation_ok"] is True
        assert len(payload["intervals"]) == 12

    def test_prometheus_export_has_latency_histogram(self, capsys):
        assert main(["serve", "ci-small", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE serve_request_latency_ns histogram" in out
        assert (
            'serve_request_latency_ns_bucket{scenario="ci-small",'
            'le="+Inf"}' in out
        )
        assert "serve_requests_total" in out
        assert "serve_ipvs_backend_deaths_total" in out

    def test_same_seed_is_byte_identical(self, capsys):
        main(["serve", "ci-small", "--seed", "3", "--format", "json"])
        first = capsys.readouterr().out
        main(["serve", "ci-small", "--seed", "3", "--format", "json"])
        assert capsys.readouterr().out == first
