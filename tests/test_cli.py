import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_platforms_listing(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "x-container" in out
        assert "gvisor" in out

    def test_tcb_table(self, capsys):
        assert main(["tcb"]) == 0
        out = capsys.readouterr().out
        assert "x-container" in out
        assert "surface vs docker" in out

    def test_abom_demo_shows_patched_call(self, capsys):
        assert main(["abom-demo", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "callq  *0xffffffffff600008" in out
        assert "before:" in out and "after ABOM:" in out

    def test_experiments_single_id(self, capsys):
        assert main(["experiments", "spawn"]) == 0
        out = capsys.readouterr().out
        assert "Section 4.5" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(KeyError):
            main(["experiments", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAnalyzeCommand:
    def test_default_run_is_safe_and_exits_zero(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        # Per-site classification and safety verdicts are reported.
        assert "mov_eax_imm" in out
        assert "SAFE" in out
        assert "static model and online ABOM agree" in out
        assert "0 unsafe" in out

    def test_unsafe_example_exits_nonzero(self, capsys):
        assert main(["analyze", "interior_jump"]) == 1
        out = capsys.readouterr().out
        assert "UNSAFE" in out
        assert "interior-target" in out
        assert "1 unsafe" in out

    def test_tail_jump_reports_fixup_not_unsafe(self, capsys):
        assert main(["analyze", "tail_jump"]) == 0
        out = capsys.readouterr().out
        assert "needs #UD fixup" in out

    def test_no_differential_flag(self, capsys):
        assert main(["analyze", "figure2", "--no-differential"]) == 0
        out = capsys.readouterr().out
        assert "differential" not in out

    def test_list_examples(self, capsys):
        assert main(["analyze", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "[unsafe demo]" in out

    def test_unknown_example_errors(self):
        with pytest.raises(SystemExit, match="unknown example"):
            main(["analyze", "nonesuch"])


class TestChaosCommand:
    def test_full_catalog_recovers_and_exits_zero(self, capsys):
        assert main(["chaos", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "ALL RECOVERED" in out
        assert "core substrate coverage: complete" in out

    def test_output_is_byte_identical_for_same_seed(self, capsys):
        main(["chaos", "--seed", "11"])
        first = capsys.readouterr().out
        main(["chaos", "--seed", "11"])
        assert capsys.readouterr().out == first

    def test_single_scenario_run(self, capsys):
        assert main(["chaos", "nginx-packet-loss", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "nginx-packet-loss" in out
        assert "backend-death-memcached" not in out

    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "backend-death-memcached" in out
        assert "abom-cmpxchg-contention" in out

    def test_unknown_scenario_errors(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["chaos", "nonesuch"])
