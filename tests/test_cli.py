import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_platforms_listing(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "x-container" in out
        assert "gvisor" in out

    def test_tcb_table(self, capsys):
        assert main(["tcb"]) == 0
        out = capsys.readouterr().out
        assert "x-container" in out
        assert "surface vs docker" in out

    def test_abom_demo_shows_patched_call(self, capsys):
        assert main(["abom-demo", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "callq  *0xffffffffff600008" in out
        assert "before:" in out and "after ABOM:" in out

    def test_experiments_single_id(self, capsys):
        assert main(["experiments", "spawn"]) == 0
        out = capsys.readouterr().out
        assert "Section 4.5" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(KeyError):
            main(["experiments", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
