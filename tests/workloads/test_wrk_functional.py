import pytest

from repro.guest.netstack import NetDevice
from repro.workloads.wrk_functional import FunctionalWrk


class TestFunctionalWrk:
    def test_run_reports_consistent_stats(self):
        wrk = FunctionalWrk(page_bytes=1024)
        report = wrk.run(20)
        assert report.requests == 20
        assert report.errors == 0
        assert len(report.latency_us) == 20
        assert report.throughput_rps > 0
        # Throughput and duration must be consistent.
        assert report.throughput_rps == pytest.approx(
            20 / (report.duration_ms / 1e3)
        )

    def test_latency_percentiles_ordered(self):
        report = FunctionalWrk().run(30)
        assert (
            report.latency_pct_us(50)
            <= report.latency_pct_us(90)
            <= report.latency_pct_us(99)
        )

    def test_device_cost_shows_up_functionally(self):
        loopback = FunctionalWrk(server_device=NetDevice.LOOPBACK).run(20)
        gvisor = FunctionalWrk(server_device=NetDevice.GVISOR).run(20)
        assert gvisor.duration_ms > loopback.duration_ms

    def test_bad_request_count_rejected(self):
        with pytest.raises(ValueError):
            FunctionalWrk().run(0)

    def test_missing_page_counts_errors(self):
        wrk = FunctionalWrk(path="/exists.html")
        wrk.path = "/missing.html"
        report = wrk.run(5)
        assert report.errors == 5


class TestValidationExperiment:
    def test_device_ordering_agrees(self):
        from repro.experiments.validation import device_ordering

        result = device_ordering(requests=15)
        assert "orderings agree: True" in result.notes
        functional = [
            row.values["functional_us_per_req"] for row in result.rows
        ]
        assert functional == sorted(functional)

    def test_merged_saving_positive(self):
        from repro.experiments.validation import merged_vs_dedicated

        result = merged_vs_dedicated(pages=8)
        assert result.value("saving", "us_per_page") > 0
        assert result.value(
            "dedicated&merged", "us_per_page"
        ) < result.value("dedicated", "us_per_page")
