import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.apps import (
    APP_BY_NAME,
    TABLE1_APPS,
    AppSpec,
    SiteSpec,
    build_trace_binary,
    measure_reduction,
)


class TestCorpusStructure:
    def test_twelve_applications(self):
        assert len(TABLE1_APPS) == 12

    def test_rounds_are_1000_invocations(self):
        for app in TABLE1_APPS:
            assert app.invocations_per_round == 1000, app.name

    def test_patchable_fraction_matches_paper_reduction(self):
        """The site mixes are constructed so the static patchable share
        equals the paper's dynamic reduction."""
        for app in TABLE1_APPS:
            assert app.patchable_fraction() == pytest.approx(
                app.paper_reduction, abs=1e-9
            ), app.name

    def test_go_apps_use_go_pattern(self):
        for name in ("etcd", "influxdb"):
            styles = {site.style for site in APP_BY_NAME[name].sites}
            assert styles == {"go_stack"}

    def test_mysql_has_two_offline_sites(self):
        """§5.2: 'two locations in the libpthread library can be
        patched'."""
        mysql = APP_BY_NAME["mysql"]
        assert len(mysql.offline_symbols) == 2
        cancellable = [
            s for s in mysql.sites if s.style == "cancellable"
        ]
        assert {s.symbol for s in cancellable} == set(
            mysql.offline_symbols
        )


class TestMeasuredReductions:
    @pytest.mark.parametrize(
        "app", TABLE1_APPS, ids=[a.name for a in TABLE1_APPS]
    )
    def test_measured_matches_paper(self, app):
        """The Table 1 values, measured by actually running ABOM."""
        result = measure_reduction(app, with_offline=False)
        assert result.abom_reduction == pytest.approx(
            app.paper_reduction, abs=0.002
        )

    def test_mysql_offline_recovers_to_92_percent(self):
        mysql = APP_BY_NAME["mysql"]
        result = measure_reduction(mysql)
        assert result.offline_reduction == pytest.approx(0.922, abs=0.002)

    def test_fully_patchable_apps_reach_exactly_100(self):
        for name in ("memcached", "redis", "etcd", "mongodb", "influxdb"):
            result = measure_reduction(APP_BY_NAME[name], with_offline=False)
            assert result.abom_reduction == 1.0, name


class TestTraceBinaries:
    def test_binary_has_all_sites(self):
        app = APP_BY_NAME["nginx"]
        binary = build_trace_binary(app)
        assert len(binary.sites) == len(app.sites)

    def test_binary_round_trips_on_plain_interpreter(self):
        from repro.core import CountingServices, XContainer

        app = APP_BY_NAME["postgres"]
        binary = build_trace_binary(app)
        xc = XContainer(CountingServices(), abom_enabled=False)
        xc.run(binary)
        assert xc.libos.stats.total_syscalls == 1000

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["mov_eax", "mov_rax", "go_stack", "cancellable", "bare"]
                ),
                st.integers(1, 50),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_mixes_measured_consistently(self, mix):
        """Property: measured reduction equals the patchable fraction of
        the mix, for any mix."""
        sites = [
            SiteSpec(style, nr=index % 100, count=count,
                     symbol=f"s{index}")
            for index, (style, count) in enumerate(mix)
        ]
        app = AppSpec("synthetic", "", "x", "y", sites)
        result = measure_reduction(app, with_offline=False)
        assert result.abom_reduction == pytest.approx(
            app.patchable_fraction(), abs=1e-9
        )
