import pytest

from repro.guest.kernel import GuestKernel
from repro.guest.socket import VirtualNetwork
from repro.perf.clock import SimClock
from repro.workloads.http import (
    HTTP_BAD_REQUEST,
    HTTP_NOT_FOUND,
    HTTP_OK,
    HttpClient,
    HttpError,
    StaticHttpServer,
    build_response,
    parse_request,
    parse_response,
)


class TestParsing:
    def test_request_roundtrip(self):
        raw = b"GET /index.html HTTP/1.1\r\nHost: example\r\n\r\n"
        request = parse_request(raw)
        assert request.method == "GET"
        assert request.path == "/index.html"
        assert request.headers["host"] == "example"

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            parse_request(b"NONSENSE\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(HttpError):
            parse_request(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n")

    def test_response_roundtrip(self):
        raw = build_response(HTTP_OK, b"body bytes")
        status, body = parse_response(raw)
        assert status == HTTP_OK
        assert body == b"body bytes"

    def test_response_carries_length(self):
        raw = build_response(HTTP_OK, b"12345")
        assert b"Content-Length: 5" in raw


def make_stack():
    clock = SimClock()
    network = VirtualNetwork(clock=clock)
    server_kernel = GuestKernel(clock=clock)
    server = StaticHttpServer(server_kernel, network)
    client_kernel = GuestKernel(clock=clock)
    client = HttpClient(client_kernel, network, server.handle_one)
    return clock, server, client


class TestEndToEnd:
    def test_serves_published_page(self):
        _, server, client = make_stack()
        server.publish("/index.html", b"<h1>hello</h1>")
        status, body = client.get(("10.0.0.1", 80), "/index.html")
        assert status == HTTP_OK
        assert body == b"<h1>hello</h1>"
        assert server.stats.requests == 1
        assert server.stats.bytes_served == len(body)

    def test_missing_page_404(self):
        _, server, client = make_stack()
        status, _ = client.get(("10.0.0.1", 80), "/nope.html")
        assert status == HTTP_NOT_FOUND
        assert server.stats.errors == 1

    def test_large_page_served_in_chunks(self):
        _, server, client = make_stack()
        payload = bytes(range(256)) * 64  # 16 KiB, crosses read chunks
        server.publish("/big", payload)
        status, body = client.get(("10.0.0.1", 80), "/big")
        assert status == HTTP_OK
        assert body == payload

    def test_many_requests_charge_simulated_time(self):
        clock, server, client = make_stack()
        server.publish("/p", b"x" * 1000)
        before = clock.now_ns
        for _ in range(10):
            status, _ = client.get(("10.0.0.1", 80), "/p")
            assert status == HTTP_OK
        assert clock.now_ns > before
        assert server.stats.requests == 10

    def test_keep_alive_reuses_one_connection(self):
        _, server, client = make_stack()
        server.publish("/p", b"page")
        for _ in range(10):
            status, _ = client.get(("10.0.0.1", 80), "/p")
            assert status == HTTP_OK
        # HTTP/1.1 keep-alive: ten requests ride one handshake.
        assert client.sockets.network.connections == 1
        assert len(server._open) == 1

    def test_connection_close_honored(self):
        _, server, client = make_stack()
        server.publish("/p", b"page")
        pid = client.proc.pid
        fd = client.sockets.socket(pid)
        client.sockets.connect(pid, fd, ("10.0.0.1", 80))
        client.sockets.send(
            pid,
            fd,
            b"GET /p HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        server.handle_one()
        status, body = parse_response(client.sockets.recv(pid, fd, 65536))
        assert status == HTTP_OK
        assert body == b"page"
        assert server._open == []  # server closed after responding

    def test_client_reconnects_after_server_close(self):
        _, server, client = make_stack()
        server.publish("/p", b"page")
        # A bad request makes the server close the pooled connection...
        client.get(("10.0.0.1", 80), "/nope")  # 404 keeps it open
        assert client.get(("10.0.0.1", 80), "/p")[0] == HTTP_OK
        # ...force one: POST by hand on the pooled fd is not possible via
        # get(), so close server-side directly and watch get() recover.
        server_fd = server._open[0]
        server.sockets.close(server.worker.pid, server_fd)
        server._open.clear()
        status, body = client.get(("10.0.0.1", 80), "/p")
        assert status == HTTP_OK
        assert body == b"page"
        assert client.sockets.network.connections == 2

    def test_client_close_reaps_server_side(self):
        _, server, client = make_stack()
        server.publish("/p", b"page")
        client.get(("10.0.0.1", 80), "/p")
        assert len(server._open) == 1
        client.close()
        assert server.handle_one() is True  # reaps the dead peer
        assert server._open == []
        assert server.handle_one() is False  # now truly idle

    def test_republish_invalidates_response_cache(self):
        _, server, client = make_stack()
        server.publish("/p", b"old")
        assert client.get(("10.0.0.1", 80), "/p")[1] == b"old"
        server.publish("/p", b"new!")
        assert client.get(("10.0.0.1", 80), "/p")[1] == b"new!"

    def test_non_get_rejected(self):
        _, server, client = make_stack()
        # Issue a POST by hand through the client's socket layer.
        pid = client.proc.pid
        fd = client.sockets.socket(pid)
        client.sockets.connect(pid, fd, ("10.0.0.1", 80))
        client.sockets.send(
            pid, fd, b"POST /x HTTP/1.1\r\n\r\n"
        )
        server.handle_one()
        status, _ = parse_response(client.sockets.recv(pid, fd, 65536))
        assert status == HTTP_BAD_REQUEST
