import pytest

from repro.perf.clock import SimClock
from repro.workloads.php_mysql_app import (
    build_dedicated_deployment,
    build_merged_deployment,
)


class TestFunctionalPages:
    def test_pages_increment_the_counter(self):
        php, mysql = build_dedicated_deployment()
        first = php.render_page()
        second = php.render_page()
        assert first.hits == 1
        assert second.hits == 2
        assert "visits: 2" in second.body
        assert mysql.queries_served == 4  # 2 pages × (read + write)

    def test_merged_deployment_functionally_identical(self):
        php, _ = build_merged_deployment()
        results = [php.render_page().hits for _ in range(5)]
        assert results == [1, 2, 3, 4, 5]

    def test_db_errors_propagate(self):
        php, _ = build_dedicated_deployment()
        with pytest.raises(RuntimeError):
            php._query("SELECT nope FROM counters")

    def test_separate_deployments_do_not_share_state(self):
        php_a, _ = build_dedicated_deployment()
        php_b, _ = build_dedicated_deployment()
        php_a.render_page()
        assert php_b.render_page().hits == 1


class TestMergedVsDedicatedCost:
    def test_merged_pages_cost_less_simulated_time(self):
        """The Fig 6c mechanism, measured functionally: the same page is
        cheaper when queries cross loopback instead of the inter-VM
        network (no device traversal, lighter stack)."""
        dedicated_clock = SimClock()
        php_d, _ = build_dedicated_deployment(dedicated_clock)
        merged_clock = SimClock()
        php_m, _ = build_merged_deployment(merged_clock)
        for _ in range(10):
            php_d.render_page()
            php_m.render_page()
        assert merged_clock.now_ns < dedicated_clock.now_ns
        # The saving is substantial, not marginal.
        assert merged_clock.now_ns < 0.8 * dedicated_clock.now_ns
