import pytest

from repro.cloud.instances import EC2
from repro.platforms import DockerPlatform
from repro.workloads.base import ServerModel
from repro.workloads.clients import (
    DEFAULT_RUNS,
    ApacheBench,
    MemtierBenchmark,
    WrkClient,
)
from repro.workloads.profiles import MEMCACHED, NGINX


class TestClients:
    def test_five_runs_reported(self):
        """§5.1: average and standard deviation of five runs."""
        client = ApacheBench()
        report = client.drive(ServerModel(DockerPlatform(), EC2), NGINX)
        assert len(report.throughput) == DEFAULT_RUNS
        assert report.throughput.std >= 0

    def test_reports_are_deterministic_per_seed(self):
        a = ApacheBench(seed="s1").drive(
            ServerModel(DockerPlatform(), EC2), NGINX
        )
        b = ApacheBench(seed="s1").drive(
            ServerModel(DockerPlatform(), EC2), NGINX
        )
        assert a.mean_throughput == b.mean_throughput

    def test_wrk_concurrency(self):
        wrk = WrkClient(threads=4, connections_per_thread=8)
        assert wrk.concurrency == 32

    def test_memtier_blends_set_get(self):
        """1:10 SET:GET shifts payload bytes between directions."""
        memtier = MemtierBenchmark()
        blended = memtier.blend_profile(MEMCACHED)
        assert blended.bytes_in > MEMCACHED.bytes_in
        assert blended.bytes_out < MEMCACHED.bytes_out

    def test_report_workload_name(self):
        report = MemtierBenchmark().drive(
            ServerModel(DockerPlatform(), EC2), MEMCACHED
        )
        assert report.workload == "memcached"
        assert report.mean_latency_ms > 0


class TestLatencyPercentiles:
    def _report(self):
        return ApacheBench().drive(
            ServerModel(DockerPlatform(), EC2), NGINX
        )

    def test_exponential_quantiles(self):
        import math

        report = self._report()
        assert report.p50_latency_ms == pytest.approx(
            report.mean_latency_ms * math.log(2)
        )
        assert report.p99_latency_ms > 4 * report.mean_latency_ms

    def test_percentile_bounds_checked(self):
        report = self._report()
        with pytest.raises(ValueError):
            report.latency_pct_ms(0.0)
        with pytest.raises(ValueError):
            report.latency_pct_ms(100.0)
