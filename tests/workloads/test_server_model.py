import pytest

from repro.cloud.instances import EC2, GCE, LOCAL_CLUSTER
from repro.perf.rand import DeterministicRng
from repro.platforms import DockerPlatform, GVisorPlatform, XContainerPlatform
from repro.workloads.base import RequestProfile, ServerModel
from repro.workloads.profiles import ALL_PROFILES, MEMCACHED, NGINX, REDIS


class TestRequestProfile:
    def test_profiles_registered(self):
        assert {"nginx", "memcached", "redis"} <= set(ALL_PROFILES)

    def test_with_processes(self):
        four = NGINX.with_processes(4)
        assert four.processes == 4
        assert NGINX.processes == 1  # frozen original untouched


class TestPerRequestCost:
    def test_positive_for_all_profiles(self):
        model = ServerModel(DockerPlatform(), EC2)
        for profile in ALL_PROFILES.values():
            assert model.per_request_ns(profile) > 0

    def test_port_forwarding_toggle(self):
        with_pf = ServerModel(DockerPlatform(), EC2, port_forwarding=True)
        without = ServerModel(DockerPlatform(), EC2, port_forwarding=False)
        assert (
            with_pf.per_request_ns(NGINX) > without.per_request_ns(NGINX)
        )

    def test_site_cost_scale_applies(self):
        ec2 = ServerModel(DockerPlatform(), EC2).per_request_ns(NGINX)
        gce = ServerModel(DockerPlatform(), GCE).per_request_ns(NGINX)
        assert gce != ec2


class TestParallelism:
    def test_multiprocess_spreads_over_cores(self):
        model = ServerModel(DockerPlatform(), LOCAL_CLUSTER)
        assert model.parallelism(NGINX.with_processes(4)) == 4.0

    def test_capped_by_machine_threads(self):
        model = ServerModel(DockerPlatform(), EC2)  # 8 threads
        assert model.parallelism(NGINX.with_processes(64)) == 8.0

    def test_gvisor_single_process_at_a_time(self):
        """§2.3: processes spawn but do not run concurrently."""
        model = ServerModel(GVisorPlatform(), LOCAL_CLUSTER)
        assert model.parallelism(NGINX.with_processes(4)) == 1.0

    def test_gvisor_threads_still_count(self):
        model = ServerModel(GVisorPlatform(), LOCAL_CLUSTER)
        assert model.parallelism(MEMCACHED) == 4.0  # 1 proc × 4 threads


class TestMeasure:
    def test_littles_law(self):
        model = ServerModel(DockerPlatform(), EC2)
        result = model.measure(NGINX, concurrency=40)
        reconstructed = 40 / (result.mean_latency_ms / 1e3)
        assert reconstructed == pytest.approx(result.throughput_rps)

    def test_bad_concurrency_rejected(self):
        model = ServerModel(DockerPlatform(), EC2)
        with pytest.raises(ValueError):
            model.measure(NGINX, concurrency=0)

    def test_unpatched_label(self):
        model = ServerModel(DockerPlatform(patched=False), EC2)
        assert model.measure(REDIS).platform == "Docker-unpatched"

    def test_line_rate_caps_throughput(self):
        fat = RequestProfile(
            name="fat", syscalls=1, kernel_work_ns=10, app_work_ns=10,
            bytes_in=100, bytes_out=10_000_000,
        )
        model = ServerModel(XContainerPlatform(), LOCAL_CLUSTER)
        result = model.measure(fat)
        assert result.throughput_rps <= model.line_rate_rps(fat) * 1.001

    def test_noise_reproducible(self):
        rng1 = DeterministicRng("seed")
        rng2 = DeterministicRng("seed")
        m1 = ServerModel(DockerPlatform(), EC2, rng=rng1)
        m2 = ServerModel(DockerPlatform(), EC2, rng=rng2)
        r1 = m1.measure(NGINX, noise=0.05)
        r2 = m2.measure(NGINX, noise=0.05)
        assert r1.throughput_rps == r2.throughput_rps
