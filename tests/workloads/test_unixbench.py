import pytest

from repro.platforms import (
    DockerPlatform,
    XContainerPlatform,
    XenContainerPlatform,
)
from repro.workloads import unixbench
from repro.workloads.iperf import iperf_bench
from repro.workloads.unixbench import build_syscall_bench


class TestSyscallBench:
    def test_binary_contains_both_patch_shapes(self):
        binary = build_syscall_bench(10)
        patterns = {site.pattern.value for site in binary.sites}
        assert "mov_eax_imm" in patterns
        assert "mov_rax_imm" in patterns

    def test_bad_iterations_rejected(self):
        with pytest.raises(ValueError):
            build_syscall_bench(0)

    def test_x_container_much_faster_than_docker(self):
        docker = unixbench.syscall_bench(DockerPlatform(), iterations=200)
        x = unixbench.syscall_bench(XContainerPlatform(), iterations=200)
        assert x.iterations_per_s > 10 * docker.iterations_per_s

    def test_concurrency_penalizes_patched_docker_only(self):
        docker_1 = unixbench.syscall_bench(
            DockerPlatform(), iterations=100, concurrency=1
        )
        docker_4 = unixbench.syscall_bench(
            DockerPlatform(), iterations=100, concurrency=4
        )
        assert docker_4.iterations_per_s < docker_1.iterations_per_s
        x_1 = unixbench.syscall_bench(
            XContainerPlatform(), iterations=100, concurrency=1
        )
        x_4 = unixbench.syscall_bench(
            XContainerPlatform(), iterations=100, concurrency=4
        )
        assert x_4.iterations_per_s == pytest.approx(x_1.iterations_per_s)


class TestLifecycleBenches:
    def test_process_creation_docker_beats_x(self):
        """§5.4: X-Containers lose Process Creation."""
        docker = unixbench.process_creation_bench(
            DockerPlatform(), iterations=20
        )
        x = unixbench.process_creation_bench(
            XContainerPlatform(), iterations=20
        )
        assert docker.iterations_per_s > x.iterations_per_s

    def test_context_switching_docker_unpatched_beats_x(self):
        docker = unixbench.context_switch_bench(
            DockerPlatform(patched=False), iterations=50
        )
        x = unixbench.context_switch_bench(
            XContainerPlatform(), iterations=50
        )
        assert docker.iterations_per_s > x.iterations_per_s

    def test_file_copy_x_beats_docker(self):
        """Syscall-bound 1KB-buffer copy: conversion wins."""
        docker = unixbench.file_copy_bench(DockerPlatform(), file_kb=32)
        x = unixbench.file_copy_bench(XContainerPlatform(), file_kb=32)
        assert x.iterations_per_s > 1.5 * docker.iterations_per_s

    def test_pipe_x_beats_docker(self):
        docker = unixbench.pipe_bench(DockerPlatform(), iterations=100)
        x = unixbench.pipe_bench(XContainerPlatform(), iterations=100)
        assert x.iterations_per_s > 1.5 * docker.iterations_per_s

    def test_execl_x_beats_patched_docker(self):
        docker = unixbench.execl_bench(DockerPlatform(), iterations=10)
        x = unixbench.execl_bench(XContainerPlatform(), iterations=10)
        assert x.iterations_per_s > docker.iterations_per_s

    def test_xen_container_worst_at_pipe(self):
        xen = unixbench.pipe_bench(XenContainerPlatform(), iterations=100)
        docker = unixbench.pipe_bench(DockerPlatform(), iterations=100)
        assert xen.iterations_per_s < docker.iterations_per_s


class TestIperf:
    def test_near_line_rate_for_native_and_x(self):
        """Fig 5: iperf is roughly flat across Docker/Xen/X."""
        docker = iperf_bench(DockerPlatform(), transfer_mb=32)
        x = iperf_bench(XContainerPlatform(), transfer_mb=32)
        ratio = x.gbits_per_s / docker.gbits_per_s
        assert 0.8 < ratio < 1.3

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            iperf_bench(DockerPlatform(), transfer_mb=0)

    def test_result_labels_unpatched(self):
        result = iperf_bench(DockerPlatform(patched=False), transfer_mb=16)
        assert result.platform.endswith("-unpatched")
