"""The serializable step schema (repro.fuzz.steps).

The serialization contract the replay gate rests on: dumps() is
canonical (byte-identity ⇔ value equality), loads() validates every
step against the op catalog, and a Step round-trips losslessly.
"""

import json

import pytest

from repro.fuzz.steps import (
    FORMAT_VERSION,
    OPS,
    Step,
    dumps,
    from_jsonable,
    loads,
    step,
)


class TestStepConstruction:
    def test_step_helper_builds_validated_step(self):
        one = step("spawn", memory_mb=128, lightvm=True)
        assert one.op == "spawn"
        assert one["memory_mb"] == 128
        assert one["lightvm"] is True

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown step op"):
            step("teleport", where="dom0")

    def test_missing_arg_rejected(self):
        with pytest.raises(ValueError, match="spawn"):
            step("spawn", memory_mb=128)  # lightvm missing

    def test_extra_arg_rejected(self):
        with pytest.raises(ValueError, match="spawn"):
            step("spawn", memory_mb=128, lightvm=True, color="red")

    def test_non_scalar_arg_rejected(self):
        with pytest.raises(ValueError):
            step("destroy", index=[1, 2])

    def test_steps_are_hashable_and_comparable(self):
        a = step("destroy", index=3)
        b = step("destroy", index=3)
        assert a == b and hash(a) == hash(b)
        assert a != step("destroy", index=4)

    def test_describe_is_deterministic(self):
        one = step("net_burst", count=2, size=100, batched=False)
        assert one.describe() == "net_burst(batched=False count=2 size=100)"

    def test_every_op_has_a_schema(self):
        assert len(OPS) >= 8  # the acceptance floor on rule kinds
        for op, names in OPS.items():
            assert isinstance(op, str) and isinstance(names, tuple)


class TestSerialization:
    def _sample(self):
        return (
            step("spawn", memory_mb=64, lightvm=False),
            step("inject_fault", name="net-kill", mode="every", n=3, limit=2),
            step("fleet_drain"),
        )

    def test_round_trip(self):
        steps = self._sample()
        seed, back = loads(dumps(steps, world_seed=42))
        assert seed == 42
        assert back == steps

    def test_dumps_is_canonical(self):
        steps = self._sample()
        text = dumps(steps, world_seed=5)
        assert text.endswith("\n")
        # Canonical form: parsing and re-dumping is byte-identical.
        seed, back = loads(text)
        assert dumps(back, world_seed=seed) == text

    def test_version_envelope(self):
        payload = json.loads(dumps(self._sample()))
        assert payload["version"] == FORMAT_VERSION

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            from_jsonable({"version": 99, "world_seed": 0, "steps": []})

    def test_malformed_steps_rejected(self):
        with pytest.raises(ValueError):
            from_jsonable(
                {"version": FORMAT_VERSION, "world_seed": 0, "steps": "nope"}
            )

    def test_bool_world_seed_rejected(self):
        with pytest.raises(ValueError, match="world_seed"):
            from_jsonable(
                {"version": FORMAT_VERSION, "world_seed": True, "steps": []}
            )

    def test_string_world_seed_survives(self):
        seed, back = loads(dumps((), world_seed="ci-run"))
        assert seed == "ci-run" and back == ()
