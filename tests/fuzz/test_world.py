"""The fuzz world (repro.fuzz.world): execution + invariant catalog.

Exercises every op handler directly (no Hypothesis), the per-step
invariant sweep, the seeded defect hooks the fuzzer must be able to
find, and trace determinism — the property ``repro chaos --replay``
byte-identity rests on.
"""

import pytest

from repro.fuzz.steps import step
from repro.fuzz.world import DEFECTS, FAULT_MENU, INVARIANTS, FuzzFailure, FuzzWorld


def _world(**kwargs):
    return FuzzWorld(seed=3, **kwargs)


class TestOps:
    def test_spawn_and_destroy(self):
        world = _world()
        world.apply(step("spawn", memory_mb=128, lightvm=True))
        world.apply(step("spawn", memory_mb=64, lightvm=False))
        assert len(world.domains) == 2
        world.apply(step("destroy", index=0))
        assert len(world.domains) == 1
        assert world.counts["spawns"] == 2 and world.counts["destroys"] == 1

    def test_destroy_with_no_domains_is_a_noop(self):
        world = _world()
        world.apply(step("destroy", index=5))
        assert "no-op" in world.trace[-1]

    def test_migrate_converged_removes_source(self):
        world = _world()
        world.apply(step("spawn", memory_mb=128, lightvm=True))
        world.apply(
            step("migrate", index=0, dirty_rate=0, downtime_ms=300)
        )
        assert world.counts["migrations_converged"] == 1
        assert len(world.domains) == 0

    def test_migrate_nonconvergent_aborts_and_source_stays(self):
        world = _world()
        world.apply(step("spawn", memory_mb=256, lightvm=True))
        world.apply(
            step("migrate", index=0, dirty_rate=400_000, downtime_ms=1)
        )
        assert world.counts["migrations_aborted"] == 1
        # Migration-safety invariant: the source is still runnable.
        assert len(world.domains) == 1

    def test_remus_epoch_then_failover(self):
        world = _world()
        world.apply(step("remus_epoch", dirty_pages=100, packets=10))
        world.apply(step("remus_failover"))
        assert world.counts["remus_failovers"] == 1

    def test_remus_failover_without_epoch_is_a_noop(self):
        world = _world()
        world.apply(step("remus_failover"))
        assert "no-op" in world.trace[-1]

    def test_abom_patch_patches_both_sites(self):
        world = _world()
        world.apply(step("abom_patch", rounds=4))
        assert world.summary()["abom_patches"] == 1

    def test_net_burst_batched_and_unbatched(self):
        world = _world()
        world.apply(step("net_burst", count=4, size=100, batched=True))
        world.apply(step("net_burst", count=3, size=50, batched=False))
        assert world.summary()["net_requests"] == 7

    def test_blk_burst_commits_and_reads_back(self):
        world = _world()
        world.apply(
            step("blk_burst", start=10, count=4, batched=True, pattern=7)
        )
        assert world.summary()["committed_sectors"] == 4

    def test_inject_and_clear_faults(self):
        world = _world()
        world.apply(
            step("inject_fault", name="net-kill", mode="every", n=2, limit=2)
        )
        assert world.faults.armed_specs()
        world.apply(step("clear_faults", name="all"))
        assert not world.faults.armed_specs()

    def test_unknown_fault_menu_name_rejected(self):
        with pytest.raises(ValueError, match="unknown step op|unknown"):
            _world().apply(
                step("inject_fault", name="nope", mode="every", n=1, limit=1)
            )

    def test_fault_budget_caps_armed_limits(self):
        world = _world()
        budget = FAULT_MENU["net-kill"].budget
        for _ in range(4):  # more arms than budget
            world.apply(
                step(
                    "inject_fault",
                    name="net-kill",
                    mode="every",
                    n=1,
                    limit=4,
                )
            )
        armed = sum(
            spec.limit or 0 for spec in world.faults.armed_specs()
        )
        assert armed <= budget

    def test_fleet_ops_run_on_both_engines(self):
        world = _world()
        world.apply(step("fleet_spawn", count=2))
        world.apply(step("fleet_post", index=0, units=3))
        world.apply(step("fleet_tick", ticks=20))
        world.apply(step("fleet_drain"))
        hybrid, stepped = world.fleets
        assert hybrid.n_domains == stepped.n_domains == 2
        assert hybrid.total_completed() == stepped.total_completed() == 3

    def test_survives_faults_during_io(self):
        world = _world()
        world.apply(
            step("inject_fault", name="blk-kill", mode="every", n=1, limit=2)
        )
        world.apply(
            step("blk_burst", start=0, count=4, batched=False, pattern=1)
        )
        assert world.summary()["faults_injected"] > 0
        assert world.summary()["faults_fatal"] == 0


class TestInvariantsAndDefects:
    def test_invariant_catalog_meets_acceptance_floor(self):
        assert len(INVARIANTS) >= 5
        assert len(DEFECTS) == 2

    def test_blk_lost_write_defect_caught_with_steps_attached(self):
        world = _world(defect="blk-lost-write")
        with pytest.raises(FuzzFailure) as caught:
            world.apply(
                step("blk_burst", start=1, count=1, batched=False, pattern=0)
            )
        assert "blk-committed-bytes" in str(caught.value)
        assert caught.value.steps  # the repro rides on the exception
        assert world.failed

    def test_fleet_skew_defect_caught_by_engine_identity(self):
        world = _world(defect="fleet-skew")
        world.apply(step("fleet_spawn", count=1))
        with pytest.raises(FuzzFailure) as caught:
            world.apply(step("fleet_post", index=0, units=1))
        assert "engine-identity" in str(caught.value)

    def test_unknown_defect_rejected(self):
        with pytest.raises(ValueError, match="unknown defect"):
            FuzzWorld(seed=0, defect="nonesuch")


class TestFinalizeAndTrace:
    def test_finalize_is_idempotent_and_returns_int_summary(self):
        world = _world()
        world.apply(step("fleet_spawn", count=1))
        world.apply(step("fleet_post", index=0, units=2))
        first = world.finalize()
        second = world.finalize()
        assert first == second
        assert all(isinstance(v, int) for v in first.values())
        assert first["fleet_units_completed"] == 2

    def test_trace_is_deterministic_for_same_seed_and_steps(self):
        ops = (
            step("spawn", memory_mb=128, lightvm=True),
            step("net_burst", count=2, size=64, batched=False),
            step("blk_burst", start=0, count=2, batched=True, pattern=9),
            step("fleet_spawn", count=1),
            step("fleet_post", index=0, units=1),
            step("fleet_drain"),
        )

        def run():
            world = FuzzWorld(seed=17)
            for one in ops:
                world.apply(one)
            world.finalize()
            return world.render_trace("clean")

        assert run() == run()

    def test_different_world_seed_changes_nothing_fatal(self):
        world = FuzzWorld(seed="string-seed")
        world.apply(step("spawn", memory_mb=64, lightvm=True))
        world.finalize()
        assert not world.failed
