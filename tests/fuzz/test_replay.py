"""Replay (repro.fuzz.replay) and the Scenario.from_steps promotion path.

Byte-identity of fresh-world replays, the chaos-context execution that
promoted scenarios use, and the shipped promoted catalog entry.
"""

import pytest

from repro.faults.chaos import ChaosHarness, Scenario
from repro.faults.registry import get_scenario
from repro.fuzz.replay import replay_steps, run_steps_in_context
from repro.fuzz.steps import step
from repro.fuzz.world import INVARIANTS

SEQUENCE = (
    step("spawn", memory_mb=128, lightvm=True),
    step("inject_fault", name="notify-drop", mode="every", n=2, limit=2),
    step("net_burst", count=6, size=1500, batched=False),
    step("clear_faults", name="all"),
    step("blk_burst", start=0, count=3, batched=True, pattern=5),
    step("fleet_spawn", count=1),
    step("fleet_post", index=0, units=2),
    step("fleet_drain"),
)


class TestReplaySteps:
    def test_replay_is_byte_identical(self):
        first = replay_steps(SEQUENCE, world_seed=9)
        second = replay_steps(SEQUENCE, world_seed=9)
        assert first == second
        assert "\noutcome: clean\n" in first

    def test_replay_trace_lists_every_step(self):
        trace = replay_steps(SEQUENCE, world_seed=9)
        for index in range(1, len(SEQUENCE) + 1):
            assert f"\n{index:03d} " in trace

    def test_failing_replay_renders_violation_not_raises(self):
        trace = replay_steps(
            (step("blk_burst", start=1, count=1, batched=False, pattern=0),),
            world_seed=7,
            defect="blk-lost-write",
        )
        assert "outcome: invariant-violated" in trace
        assert "*** INVARIANT VIOLATED" in trace

    def test_world_seed_changes_the_trace_header(self):
        assert "seed=1 " in replay_steps((), world_seed=1)
        assert "seed=2 " in replay_steps((), world_seed=2)


class TestFromStepsPromotion:
    def _promoted(self):
        return Scenario.from_steps(
            name="promoted-under-test",
            description="fuzz sequence promoted in a test",
            steps=SEQUENCE,
            substrates=("xen.events",),
            world_seed=9,
        )

    def test_promoted_scenario_recovers_under_harness(self):
        result = ChaosHarness(4).run(self._promoted())
        assert result.outcome == "recovered", result.failure
        # Every fuzz invariant lands on the scenario's ledger.
        assert len(result.invariants) == len(INVARIANTS)
        assert all(line.startswith("ok") for line in result.invariants)

    def test_promoted_scenario_reports_injections(self):
        result = ChaosHarness(4).run(self._promoted())
        assert result.injected > 0
        assert "xen.events" in result.injected_substrates

    def test_context_execution_returns_int_summary(self):
        harness = ChaosHarness(4)
        scenario = self._promoted()
        captured = {}

        def body(ctx):
            captured.update(run_steps_in_context(ctx, SEQUENCE, 9))
            return {}

        harness.run(
            Scenario(
                name="ctx-probe",
                description="",
                substrates=(),
                default_plan=scenario.default_plan,
                body=body,
            )
        )
        assert captured["net_requests"] == 6
        assert all(isinstance(v, int) for v in captured.values())


class TestShippedPromotedScenario:
    """The catalog's fuzz-notify-drop-burst entry (ISSUE 10 promotion)."""

    @pytest.mark.parametrize("seed", (0, 42, 20260806))
    def test_recovers_on_fixed_seeds(self, seed):
        result = ChaosHarness(seed).run(get_scenario("fuzz-notify-drop-burst"))
        assert result.outcome == "recovered", result.failure

    def test_injects_into_declared_substrate(self):
        result = ChaosHarness(42).run(get_scenario("fuzz-notify-drop-burst"))
        assert result.injected >= 2  # Every(2) x limit=2 over 6 kicks
        assert "xen.events" in result.injected_substrates
