"""The Hypothesis rule machine and run_fuzz (repro.fuzz.machine).

CI's acceptance bar lives here: clean bounded runs on the three fixed
seeds, deterministic self-finding of both seeded defects, and the
shrunk-counterexample → JSON → byte-identical-replay contract.
"""

import pytest

pytest.importorskip("hypothesis")

from repro.fuzz.machine import (  # noqa: E402
    StackMachine,
    build_machine,
    machine_rules,
    run_fuzz,
)
from repro.fuzz.replay import replay_steps  # noqa: E402
from repro.fuzz.steps import OPS, loads  # noqa: E402
from repro.fuzz.world import INVARIANTS  # noqa: E402

FIXED_SEEDS = (0, 42, 20260806)


class TestCoverageFloors:
    def test_one_rule_per_op(self):
        assert machine_rules() == tuple(sorted(OPS))

    def test_acceptance_floors(self):
        # ISSUE 10: at least 8 rule kinds and 5 invariant families.
        assert len(OPS) >= 8
        assert len(INVARIANTS) >= 5

    def test_rules_are_hypothesis_rules(self):
        # Every op has a bound rule on the machine class.
        for op in OPS:
            method = getattr(StackMachine, op)
            assert hasattr(method, "hypothesis_stateful_rule"), op


class TestCleanRuns:
    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_fixed_seed_runs_clean(self, seed):
        report = run_fuzz(seed=seed, max_examples=5, steps=15)
        assert report.ok, report.failure
        assert report.rules == len(OPS)
        assert report.invariants == len(INVARIANTS)

    def test_string_seed_accepted(self):
        report = run_fuzz(seed="nightly", max_examples=2, steps=8)
        assert report.ok


class TestDefectSelfFinding:
    def test_blk_lost_write_is_found_shrunk_and_replayable(self):
        report = run_fuzz(
            seed=7, max_examples=20, steps=20, defect="blk-lost-write"
        )
        assert not report.ok
        assert "blk-committed-bytes" in report.failure
        assert report.shrunk_steps >= 1
        assert report.replay_identical
        # The shrunk sequence round-trips through the JSON envelope.
        world_seed, steps = loads(report.steps_json)
        assert world_seed == 7
        assert len(steps) == report.shrunk_steps
        # And the minimal repro ends in the write that loses bytes.
        assert steps[-1].op == "blk_burst"

    def test_fleet_skew_is_found_and_shrunk(self):
        report = run_fuzz(
            seed=5, max_examples=20, steps=20, defect="fleet-skew"
        )
        assert not report.ok
        assert "engine-identity" in report.failure
        assert report.replay_identical
        _, steps = loads(report.steps_json)
        assert {one.op for one in steps} >= {"fleet_spawn", "fleet_post"}

    def test_same_seed_finds_the_same_counterexample(self):
        first = run_fuzz(
            seed=7, max_examples=15, steps=15, defect="blk-lost-write"
        )
        second = run_fuzz(
            seed=7, max_examples=15, steps=15, defect="blk-lost-write"
        )
        assert first.steps_json == second.steps_json
        assert first.replay_trace == second.replay_trace

    def test_reported_replay_trace_matches_fresh_replay(self):
        report = run_fuzz(
            seed=7, max_examples=15, steps=15, defect="blk-lost-write"
        )
        _, steps = loads(report.steps_json)
        fresh = replay_steps(steps, world_seed=7, defect="blk-lost-write")
        assert fresh == report.replay_trace


class TestBuildMachine:
    def test_unknown_defect_rejected(self):
        with pytest.raises(ValueError, match="unknown defect"):
            build_machine(defect="nonesuch")

    def test_world_seed_is_pinned_on_the_subclass(self):
        machine = build_machine(world_seed="pin")()
        assert machine.world.seed == "pin"
        machine.teardown()


class TestReportSurface:
    def test_clean_report_renders_and_serializes(self):
        report = run_fuzz(seed=0, max_examples=2, steps=8)
        text = report.render()
        assert "result: clean" in text
        assert report.as_dict()["ok"] is True

    def test_failure_report_includes_steps_json(self):
        report = run_fuzz(
            seed=7, max_examples=15, steps=15, defect="blk-lost-write"
        )
        text = report.render()
        assert "FAILED" in text
        assert '"version": 1' in text
        assert report.as_dict()["ok"] is False
