import pytest

from repro.cloud import EC2, GCE, LOCAL_CLUSTER, site_by_name
from repro.platforms import ClearContainerPlatform, DockerPlatform


class TestCloudSites:
    def test_lookup(self):
        assert site_by_name("amazon") is EC2
        assert site_by_name("google") is GCE
        assert site_by_name("local") is LOCAL_CLUSTER
        with pytest.raises(KeyError):
            site_by_name("azure")

    def test_ec2_has_no_nested_hw_virt(self):
        """§1: 'most public and private clouds, including Amazon EC2, do
        not support nested hardware virtualization'."""
        assert not EC2.nested_hw_virt
        assert GCE.nested_hw_virt

    def test_clear_containers_only_on_gce(self):
        clear = ClearContainerPlatform()
        assert not EC2.supports(clear)
        assert GCE.supports(clear)

    def test_docker_supported_everywhere(self):
        docker = DockerPlatform()
        for site in (EC2, GCE, LOCAL_CLUSTER):
            assert site.supports(docker)

    def test_cost_scaling(self):
        base = EC2.costs()
        scaled = GCE.costs()
        assert scaled.native_syscall_ns == pytest.approx(
            base.native_syscall_ns * GCE.cost_scale
        )

    def test_machines_match_section_5_1(self):
        assert EC2.machine.cores == 4 and EC2.machine.threads == 8
        assert GCE.machine.memory_gb == 16.0
        assert LOCAL_CLUSTER.machine.memory_gb == 96.0
