"""Full-pipeline integration stories across subsystems."""

import pytest

from repro.arch import Assembler, Reg
from repro.core import (
    CountingServices,
    DockerWrapper,
    PatchCache,
    XContainer,
    demo_images,
)
from repro.guest.kernel import SYS


def workload_binary(iterations=50):
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    asm.syscall_site(SYS["getpid"], style="mov_eax", symbol="getpid")
    asm.syscall_site(SYS["getuid"], style="mov_rax", symbol="getuid")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build("service")


class TestImageToExecutionPipeline:
    def test_registry_to_running_container(self):
        """Image pull → rootfs materialization → bootstrap → machine-code
        execution with live ABOM patching."""
        wrapper = DockerWrapper(fast_toolstack=True, registry=demo_images())
        container, kernel, timing = wrapper.spawn_image("nginx:1.13")
        assert timing.total_ms < 300
        # The image's files are visible inside the container's kernel.
        assert kernel.vfs.exists("/etc/nginx/nginx.conf")
        # The bootloader spawned the entrypoint directly.
        assert kernel.processes[0].name == "/usr/sbin/nginx"
        # Run a binary on it.
        binary = workload_binary(30)
        container.run(binary)
        assert container.syscall_reduction() > 0.9
        assert kernel.stats.syscalls == 60

    def test_unknown_image_rejected(self):
        wrapper = DockerWrapper(registry=demo_images())
        with pytest.raises(KeyError):
            wrapper.spawn_image("postgres:9")

    def test_no_registry_configured(self):
        with pytest.raises(RuntimeError):
            DockerWrapper().spawn_image("nginx:1.13")


class TestWarmStartPipeline:
    def test_patch_cache_plus_checkpoint_roundtrip(self):
        """The full warm-start story: run → capture patches → new
        container pre-patched → checkpoint mid-run → restore →
        completion.  Semantics identical to a cold run throughout."""
        binary = workload_binary(40)
        cache = PatchCache()

        cold = XContainer(CountingServices(), name="cold")
        cold.run(binary)
        cache.capture(binary, cold.memory)
        expected_calls = list(cold.libos.services.calls)

        warm = XContainer(CountingServices(), name="warm")
        warm.load(binary)
        cache.apply(binary, warm.memory)
        warm.cpu.regs.rip = binary.entry
        warm.step(count=500)  # partway
        ckpt = warm.checkpoint("warm-mid")

        resumed = XContainer.restore(ckpt, CountingServices())
        resumed.resume()
        all_calls = warm.libos.services.calls + resumed.libos.services.calls
        assert all_calls == expected_calls
        # No traps anywhere on the warm path.
        assert warm.libos.stats.forwarded_syscalls == 0
        assert resumed.libos.stats.forwarded_syscalls == 0


class TestScaleOutStory:
    def test_many_containers_share_clock_and_patches(self):
        """Spawn several containers of the same image; with a patch
        cache only the first one pays ABOM's patch cost."""
        binary = workload_binary(10)
        cache = PatchCache()
        total_patches = 0
        for index in range(5):
            xc = XContainer(CountingServices(), name=f"xc{index}")
            xc.load(binary)
            cache.apply(binary, xc.memory)
            xc.run_loaded(binary.entry)
            total_patches += xc.abom_stats.total_patches
            if index == 0:
                cache.capture(binary, xc.memory)
            assert xc.libos.services.count(SYS["getpid"]) == 10
        assert total_patches == 2  # both sites, once, in container 0
