"""Smoke tests: every example script must run to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[s.stem for s in EXAMPLES]
)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_present():
    """The deliverable: at least a quickstart plus domain scenarios."""
    names = {s.stem for s in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
