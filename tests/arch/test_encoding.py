import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import encoding as enc
from repro.arch.encoding import InvalidOpcode, decode
from repro.arch.registers import Reg

LOW_REGS = st.sampled_from([Reg(i) for i in range(8)])


class TestFigure2Encodings:
    """The exact byte sequences shown in Figure 2 of the paper."""

    def test_mov_eax_0_syscall(self):
        # __read: b8 00 00 00 00 ; 0f 05
        code = enc.enc_mov_r32_imm32(Reg.RAX, 0) + enc.enc_syscall()
        assert code == bytes.fromhex("b800000000") + bytes.fromhex("0f05")

    def test_patched_read_call(self):
        # callq *0xffffffffff600008 -> ff 14 25 08 00 60 ff
        code = enc.enc_call_abs_ind(0xFFFFFFFFFF600008)
        assert code == bytes.fromhex("ff142508006000" + "")[:7] or True
        assert code == bytes([0xFF, 0x14, 0x25, 0x08, 0x00, 0x60, 0xFF])

    def test_mov_rax_15_syscall(self):
        # __restore_rt: 48 c7 c0 0f 00 00 00 ; 0f 05
        code = enc.enc_mov_r64_imm32(Reg.RAX, 0xF)
        assert code == bytes([0x48, 0xC7, 0xC0, 0x0F, 0x00, 0x00, 0x00])

    def test_patched_restore_rt_call(self):
        # callq *0xffffffffff600080 -> ff 14 25 80 00 60 ff
        code = enc.enc_call_abs_ind(0xFFFFFFFFFF600080)
        assert code == bytes([0xFF, 0x14, 0x25, 0x80, 0x00, 0x60, 0xFF])

    def test_phase2_jmp_back(self):
        # jmp 0x10330 from 0x10337 -> eb f7
        assert enc.enc_jmp_rel8(-9) == bytes([0xEB, 0xF7])

    def test_go_pattern_load(self):
        # mov 0x8(%rsp),%rax -> 48 8b 44 24 08
        code = enc.enc_mov_r64_rsp_disp8(Reg.RAX, 8)
        assert code == bytes([0x48, 0x8B, 0x44, 0x24, 0x08])

    def test_patched_go_call(self):
        # callq *0xffffffffff600c08 -> ff 14 25 08 0c 60 ff
        code = enc.enc_call_abs_ind(0xFFFFFFFFFF600C08)
        assert code == bytes([0xFF, 0x14, 0x25, 0x08, 0x0C, 0x60, 0xFF])


class TestDecodeRoundtrip:
    @given(LOW_REGS, st.integers(0, 2**32 - 1))
    def test_mov_r32_imm32(self, reg, imm):
        instr = decode(enc.enc_mov_r32_imm32(reg, imm))
        assert instr.mnemonic == "mov_r32_imm32"
        assert instr.operands == (reg, imm)
        assert instr.length == 5

    @given(LOW_REGS, st.integers(-(2**31), 2**31 - 1))
    def test_mov_r64_imm32(self, reg, imm):
        instr = decode(enc.enc_mov_r64_imm32(reg, imm))
        assert instr.mnemonic == "mov_r64_imm32"
        assert instr.operands == (reg, imm)
        assert instr.length == 7

    def test_syscall(self):
        instr = decode(enc.enc_syscall())
        assert instr.mnemonic == "syscall"
        assert instr.length == 2

    @given(st.integers(-(2**31), -1))
    def test_call_abs_ind_kernel_half(self, disp):
        addr = disp % (1 << 64)
        instr = decode(enc.enc_call_abs_ind(addr))
        assert instr.mnemonic == "call_abs_ind"
        assert instr.operands == (addr,)
        assert instr.length == 7

    def test_call_abs_ind_rejects_unencodable(self):
        with pytest.raises(ValueError):
            enc.enc_call_abs_ind(0x1_0000_0000)

    @given(st.integers(-128, 127))
    def test_jmp_rel8(self, rel):
        instr = decode(enc.enc_jmp_rel8(rel))
        assert instr.mnemonic == "jmp_rel8"
        assert instr.operands == (rel,)

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_jmp_rel32(self, rel):
        instr = decode(enc.enc_jmp_rel32(rel))
        assert instr.mnemonic == "jmp_rel32"
        assert instr.operands == (rel,)

    @given(st.sampled_from(["je", "jne", "jl", "jg"]), st.integers(-128, 127))
    def test_jcc(self, cond, rel):
        instr = decode(enc.enc_jcc_rel8(cond, rel))
        assert instr.mnemonic == f"{cond}_rel8"
        assert instr.operands == (rel,)

    @given(LOW_REGS)
    def test_push_pop(self, reg):
        assert decode(enc.enc_push_r64(reg)).operands == (reg,)
        assert decode(enc.enc_pop_r64(reg)).mnemonic == "pop_r64"

    @given(LOW_REGS, LOW_REGS)
    def test_mov_r64_r64(self, dst, src):
        instr = decode(enc.enc_mov_r64_r64(dst, src))
        assert instr.mnemonic == "mov_r64_r64"
        assert instr.operands == (dst, src)

    @given(LOW_REGS, st.integers(0, 127))
    def test_rsp_loads_stores(self, reg, disp):
        load32 = decode(enc.enc_mov_r32_rsp_disp8(reg, disp))
        assert load32.mnemonic == "mov_r32_rsp_disp8"
        assert load32.operands == (reg, disp)
        load64 = decode(enc.enc_mov_r64_rsp_disp8(reg, disp))
        assert load64.mnemonic == "mov_r64_rsp_disp8"
        store32 = decode(enc.enc_mov_rsp_disp8_r32(disp, reg))
        assert store32.operands == (disp, reg)
        store64 = decode(enc.enc_mov_rsp_disp8_r64(disp, reg))
        assert store64.mnemonic == "mov_rsp_disp8_r64"

    @given(LOW_REGS, st.integers(-128, 127))
    def test_alu_imm8(self, reg, imm):
        assert decode(enc.enc_add_r64_imm8(reg, imm)).operands == (reg, imm)
        assert decode(enc.enc_sub_r64_imm8(reg, imm)).mnemonic == (
            "sub_r64_imm8"
        )
        assert decode(enc.enc_cmp_r64_imm8(reg, imm)).mnemonic == (
            "cmp_r64_imm8"
        )

    @given(LOW_REGS)
    def test_inc_dec(self, reg):
        assert decode(enc.enc_inc_r64(reg)).mnemonic == "inc_r64"
        assert decode(enc.enc_dec_r64(reg)).mnemonic == "dec_r64"

    @given(LOW_REGS, LOW_REGS)
    def test_xor(self, dst, src):
        instr = decode(enc.enc_xor_r32_r32(dst, src))
        assert instr.mnemonic == "xor_r32_r32"
        assert instr.operands == (dst, src)


class TestInvalidOpcodes:
    def test_0x60_is_invalid_in_long_mode(self):
        """The tail byte of a patched call must #UD (§4.4)."""
        with pytest.raises(InvalidOpcode) as excinfo:
            decode(bytes([0x60, 0xFF]))
        assert excinfo.value.byte == 0x60

    def test_truncated_instruction(self):
        with pytest.raises(InvalidOpcode):
            decode(bytes([0xB8, 0x01]))  # mov imm32 missing bytes

    def test_unknown_prefix(self):
        with pytest.raises(InvalidOpcode):
            decode(bytes([0x0F, 0xAE]))
