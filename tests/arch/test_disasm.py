from repro.arch import Assembler, Reg, disassemble, format_listing
from repro.arch.disasm import disassemble_memory
from repro.arch.encoding import enc_call_abs_ind
from repro.core import CountingServices, XContainer


class TestDisassembler:
    def test_figure2_case1_rendering(self):
        # b8 00 00 00 00 ; 0f 05
        code = b"\xb8\x00\x00\x00\x00\x0f\x05"
        lines = disassemble(code, base=0xEB6A9)
        assert len(lines) == 2
        assert "mov    $0x0,%eax" in lines[0].text
        assert lines[1].text == "syscall"

    def test_patched_call_rendering(self):
        lines = disassemble(enc_call_abs_ind(0xFFFFFFFFFF600008))
        assert lines[0].text == "callq  *0xffffffffff600008"

    def test_jump_targets_absolute(self):
        asm = Assembler(base=0x1000)
        asm.label("top")
        asm.nop()
        asm.jmp8("top")
        lines = disassemble(asm.build().code, base=0x1000)
        assert "jmp    0x1000" in lines[1].text

    def test_bad_bytes_rendered_as_byte_directives(self):
        # The tail of a patched call, disassembled from the middle.
        lines = disassemble(b"\x60\xff")
        assert lines[0].text == ".byte 0x60"
        assert lines[1].text == ".byte 0xff"

    def test_resyncs_at_next_decodable_offset(self):
        # Two bytes of embedded data, then a real instruction: the
        # disassembler must emit one .byte line per junk byte and pick
        # decoding back up at the nop.
        lines = disassemble(b"\x60\x61\x90\xc3", base=0x1000)
        assert [line.text for line in lines] == [
            ".byte 0x60", ".byte 0x61", "nop", "retq",
        ]
        assert [line.addr for line in lines] == [
            0x1000, 0x1001, 0x1002, 0x1003,
        ]

    def test_truncated_instruction_does_not_raise(self):
        # b8 needs 4 more immediate bytes; a truncated buffer must fall
        # back to .byte lines instead of propagating InvalidOpcode.
        lines = disassemble(b"\x90\xb8\x01\x02")
        assert lines[0].text == "nop"
        assert [line.text for line in lines[1:]] == [
            ".byte 0xb8", ".byte 0x01", ".byte 0x02",
        ]

    def test_all_subset_instructions_render(self):
        asm = Assembler()
        asm.mov_imm32(Reg.RAX, 1)
        asm.mov_imm64_low(Reg.RDI, 2)
        asm.mov_reg(Reg.RSI, Reg.RDI)
        asm.load_rsp64(Reg.RAX, 8)
        asm.store_rsp64(8, Reg.RAX)
        asm.load_rsp32(Reg.RAX, 8)
        asm.store_rsp32(8, Reg.RAX)
        asm.push(Reg.RBP)
        asm.pop(Reg.RBP)
        asm.add(Reg.RAX, 1)
        asm.sub(Reg.RAX, 1)
        asm.cmp(Reg.RAX, 0)
        asm.inc(Reg.RCX)
        asm.dec(Reg.RCX)
        asm.xor(Reg.RDX, Reg.RDX)
        asm.nop()
        asm.ret()
        asm.hlt()
        asm.raw(b"\xcc")
        lines = disassemble(asm.build().code)
        assert all(not line.text.startswith(".byte") for line in lines)
        listing = format_listing(lines)
        assert "push   %rbp" in listing
        assert "retq" in listing

    def test_disassemble_patched_site_from_memory(self):
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 2)
        asm.label("loop")
        site = asm.syscall_site(0, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        binary = asm.build()
        xc = XContainer(CountingServices())
        xc.run(binary)
        lines = disassemble_memory(xc.memory, site.syscall_addr - 5, 7)
        assert lines[0].text == "callq  *0xffffffffff600008"

    def test_line_format(self):
        lines = disassemble(b"\x90", base=0x400000)
        text = str(lines[0])
        assert text.startswith("  400000:")
        assert "nop" in text
