"""Trace cache: compilation, guards, fuel, invalidation, toggles.

The trace cache must be invisible except for speed: compiled superblocks
retire the same architectural state, counts, and faults as the
interpreter, and every guard failure re-enters the interpreter at the
architecturally exact RIP.  See ``docs/interpreter_performance.md``.
"""

import pytest

from repro.arch import Assembler, CPU, PagedMemory, Reg
from repro.arch.memory import PageFault, PageFlags
from repro.arch.tracecache import HOT_THRESHOLD, MIN_LINEAR_OPS

BASE = 0x400000
STACK_BASE = 0x7F0000


def fresh_cpu(binary, icache=True, tracecache=True, stack_pages=0x10000):
    mem = PagedMemory()
    binary.load(mem)
    mem.map_region(STACK_BASE, stack_pages, PageFlags.USER | PageFlags.WRITABLE)
    cpu = CPU(mem, icache=icache, tracecache=tracecache)
    cpu.regs.rip = binary.entry
    cpu.regs.rsp = STACK_BASE + stack_pages - 256
    return cpu


def counting_loop(iterations):
    asm = Assembler(base=BASE)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.xor(Reg.RAX, Reg.RAX)
    asm.label("loop")
    asm.inc(Reg.RAX)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build()


def call_loop(iterations):
    """A hot loop whose body calls a subroutine: exercises the
    call/ret-guard steps of the recorder."""
    asm = Assembler(base=BASE)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.xor(Reg.RAX, Reg.RAX)
    asm.jmp("loop")
    asm.label("sub")
    asm.inc(Reg.RAX)
    asm.inc(Reg.RAX)
    asm.ret()
    asm.label("loop")
    asm.call("sub")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build()


def final_state(cpu):
    return (
        cpu.regs.rip,
        cpu.regs.snapshot(),
        (cpu.regs.zf, cpu.regs.sf, cpu.regs.cf),
        cpu.instructions_retired,
    )


class TestToggles:
    def test_disabled_by_constructor_flag(self):
        cpu = fresh_cpu(counting_loop(500), tracecache=False)
        cpu.run()
        assert cpu._tracecache is None
        assert cpu.trace_stats.compiles == 0
        assert cpu.regs.rax == 500

    def test_requires_icache(self):
        """The profiler lives in the icache hit path, so icache=False
        implies no trace cache even when requested."""
        cpu = fresh_cpu(counting_loop(100), icache=False, tracecache=True)
        cpu.run()
        assert cpu._tracecache is None
        assert cpu.regs.rax == 100

    def test_enabled_by_default(self):
        cpu = fresh_cpu(counting_loop(500))
        cpu.run()
        assert cpu.trace_stats.compiles >= 1
        assert cpu.trace_stats.executions >= 1
        assert cpu.regs.rax == 500

    def test_stats_always_present_and_integral(self):
        cpu = fresh_cpu(counting_loop(500))
        cpu.run()
        d = cpu.trace_stats.as_dict()
        assert set(d) == {
            "compiles",
            "aborts",
            "executions",
            "instructions",
            "guard_exits",
            "invalidations",
            "code_bytes",
        }
        assert all(isinstance(v, int) for v in d.values())


class TestCompilation:
    def test_loop_compiles_once_and_dominates(self):
        cpu = fresh_cpu(counting_loop(1000))
        cpu.run()
        stats = cpu.trace_stats
        assert stats.compiles == 1
        # Warmup is HOT_THRESHOLD loop iterations; everything after runs
        # inside the trace.
        assert stats.instructions >= (1000 - HOT_THRESHOLD - 1) * 3
        assert stats.code_bytes > 0

    def test_call_ret_chain_is_stitched(self):
        traced = fresh_cpu(call_loop(400))
        traced.run()
        plain = fresh_cpu(call_loop(400), tracecache=False)
        plain.run()
        assert final_state(traced) == final_state(plain)
        assert traced.regs.rax == 800
        stats = traced.trace_stats
        assert stats.compiles >= 1
        # The stitched superblock spans call + body + ret per iteration.
        assert stats.instructions > 1000

    def test_short_linear_chain_aborts_once(self):
        asm = Assembler(base=BASE)
        asm.inc(Reg.RAX)
        asm.inc(Reg.RAX)
        asm.hlt()
        binary = asm.build()
        assert 3 < MIN_LINEAR_OPS
        cpu = fresh_cpu(binary)
        tc = cpu._tracecache
        tc.hot_threshold = 2
        for _ in range(6):
            cpu.halted = False
            cpu.regs.rip = binary.entry
            cpu.run()
        assert cpu.trace_stats.compiles == 0
        # Rejected once, blacklisted after: no per-entry recompile storms.
        assert cpu.trace_stats.aborts == 1
        assert tc.failed

    def test_code_memo_amortizes_identical_programs(self):
        from repro.arch import tracecache as m

        binary = counting_loop(300)
        first = fresh_cpu(binary)
        first.run()
        memo_size = len(m._CODE_MEMO)
        second = fresh_cpu(binary)
        second.run()
        # Same text, same generated source: compile() ran once.
        assert len(m._CODE_MEMO) == memo_size
        assert second.trace_stats.compiles == 1


class TestGuardsAndFuel:
    def test_loop_exit_lands_on_exact_rip(self):
        """The branch guard exits at the architectural successor: the
        instruction after the loop retires exactly once."""
        traced = fresh_cpu(counting_loop(300))
        traced.run()
        plain = fresh_cpu(counting_loop(300), tracecache=False)
        plain.run()
        assert final_state(traced) == final_state(plain)
        assert traced.trace_stats.guard_exits >= 1

    def test_budget_exhaustion_matches_interpreter(self):
        """run(max_instructions=N) retires exactly N in both modes: the
        trace's fuel accounting never overshoots the budget."""
        budget = 1000
        traced = fresh_cpu(counting_loop(5000))
        with pytest.raises(RuntimeError, match="budget"):
            traced.run(max_instructions=budget)
        plain = fresh_cpu(counting_loop(5000), tracecache=False)
        with pytest.raises(RuntimeError, match="budget"):
            plain.run(max_instructions=budget)
        assert traced.instructions_retired == budget
        assert plain.instructions_retired == budget
        assert final_state(traced) == final_state(plain)

    def test_zero_fuel_entry_returns_without_progress(self):
        cpu = fresh_cpu(counting_loop(300))
        cpu.run()
        tc = cpu._tracecache
        (head,) = tc.traces
        before = cpu.instructions_retired
        assert tc.execute(head, 0) == 0
        assert cpu.instructions_retired == before

    def test_partial_fuel_runs_bounded_iterations(self):
        binary = counting_loop(300)
        cpu = fresh_cpu(binary)
        cpu.run()
        tc = cpu._tracecache
        (head,) = tc.traces
        cpu.halted = False
        cpu.regs.rip = binary.entry
        cpu.regs.write64(Reg.RBX, 1 << 20)  # effectively endless loop
        cpu.regs.rip = head
        retired = tc.execute(head, 10)
        assert 0 < retired <= 10
        # The trace left RIP at its head: the interpreter (or the next
        # trace entry) can continue seamlessly.
        assert cpu.regs.rip == head

    def test_page_fault_inside_trace_matches_interpreter(self):
        """A store that faults mid-trace spills the exact pre-fault
        state: same RIP (the faulting op), same registers, same count."""

        def pusher(iterations):
            asm = Assembler(base=BASE)
            asm.mov_imm32(Reg.RBX, iterations)
            asm.label("loop")
            asm.push(Reg.RBX)
            asm.dec(Reg.RBX)
            asm.jne("loop")
            asm.hlt()
            return asm.build()

        binary = pusher(5000)  # overruns the one mapped stack page
        results = []
        for tracecache in (True, False):
            mem = PagedMemory()
            binary.load(mem)
            mem.map_region(STACK_BASE, 0x1000, PageFlags.USER | PageFlags.WRITABLE)
            cpu = CPU(mem, tracecache=tracecache)
            cpu.regs.rip = binary.entry
            cpu.regs.rsp = STACK_BASE + 0x1000
            with pytest.raises(PageFault):
                cpu.run()
            results.append(final_state(cpu))
        assert results[0] == results[1]


class TestInvalidation:
    def test_store_to_trace_text_evicts_and_retraces(self):
        binary = counting_loop(300)
        cpu = fresh_cpu(binary)
        cpu.run()
        tc = cpu._tracecache
        assert tc.traces
        # Patch inc rax -> dec rax in the loop body (supervisor store).
        text = cpu.mem.read(BASE, 64)
        off = text.index(b"\x48\xff\xc0")
        cpu.mem.wp_enabled = False
        cpu.mem.write(BASE + off, b"\x48\xff\xc8")
        cpu.mem.wp_enabled = True
        assert not tc.traces
        assert cpu.trace_stats.invalidations >= 1
        cpu.halted = False
        cpu.regs.rip = binary.entry
        cpu.run()
        # The rerun trace-compiled the *patched* loop: rax counted down.
        assert cpu.regs.rax == (0 - 300) % (1 << 64)
        assert cpu.trace_stats.compiles >= 2

    def test_stale_generation_caught_at_entry_without_observer(self):
        """A trace can go stale with no write observed by this CPU (the
        SMP attach-later situation): entry stamps are the ground truth."""
        binary = counting_loop(300)
        cpu = fresh_cpu(binary)
        cpu.run()
        tc = cpu._tracecache
        (head,) = tc.traces
        trace = tc.traces[head]
        # Forge a stale stamp instead of routing a write through the
        # observer protocol.
        trace.pages = tuple((index, stamp - 1) for index, stamp in trace.pages)
        assert tc.execute(head, 1000) == 0
        assert not tc.traces
        assert cpu.trace_stats.invalidations >= 1

    def test_self_modifying_loop_bails_mid_trace(self):
        """A loop that stores to its own text page: the write-observer
        flips the live cell and the trace exits before running another
        instruction from stale bytes, every iteration, with no
        divergence from the interpreter."""

        def smc_loop(iterations):
            asm = Assembler(base=BASE)
            asm.mov_imm32(Reg.RBX, iterations)
            asm.label("loop")
            asm.inc(Reg.RAX)
            asm.store_rsp32(0, Reg.RCX)  # store lands on this very page
            asm.dec(Reg.RBX)
            asm.jne("loop")
            asm.hlt()
            return asm.build()

        binary = smc_loop(120)
        states = []
        for tracecache in (True, False):
            mem = PagedMemory()
            binary.load(mem, writable_text=True)
            cpu = CPU(mem, tracecache=tracecache)
            cpu.regs.rip = binary.entry
            # RSP aims at padding at the end of the text page; RCX holds
            # the bytes already there, so the store is architecturally a
            # no-op but still bumps the page generation every iteration.
            target = BASE + 0xF00
            cpu.regs.rsp = target
            cpu.regs.write64(Reg.RCX, int.from_bytes(mem.read(target, 4), "little"))
            cpu.run()
            states.append(final_state(cpu))
            if tracecache:
                assert cpu.trace_stats.invalidations >= 1
        assert states[0] == states[1]
