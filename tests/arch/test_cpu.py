import pytest

from repro.arch import Assembler, CPU, CpuHalted, PagedMemory, Reg, Trap, TrapKind
from repro.arch.memory import PageFlags
from repro.perf.clock import SimClock

STACK_BASE = 0x7F0000


def make_cpu(binary, clock=None, instruction_ns=0.0):
    mem = PagedMemory()
    binary.load(mem)
    mem.map_region(STACK_BASE, 0x10000, PageFlags.USER | PageFlags.WRITABLE)
    cpu = CPU(mem, clock, instruction_ns)
    cpu.regs.rip = binary.entry
    cpu.regs.rsp = STACK_BASE + 0x10000 - 256
    return cpu


def run_program(build, **kwargs):
    asm = Assembler()
    build(asm)
    cpu = make_cpu(asm.build(), **kwargs)
    cpu.run()
    return cpu


class TestArithmeticAndFlags:
    def test_mov_imm_and_add(self):
        def prog(a):
            a.mov_imm32(Reg.RAX, 40)
            a.add(Reg.RAX, 2)
            a.hlt()

        assert run_program(prog).regs.rax == 42

    def test_mov32_zero_extends(self):
        def prog(a):
            a.mov_imm64_low(Reg.RAX, -1)  # rax = 0xffffffffffffffff
            a.mov_imm32(Reg.RAX, 1)  # writes eax, zero-extends
            a.hlt()

        assert run_program(prog).regs.rax == 1

    def test_mov64_sign_extends(self):
        def prog(a):
            a.mov_imm64_low(Reg.RAX, -1)
            a.hlt()

        assert run_program(prog).regs.rax == (1 << 64) - 1

    def test_sub_and_zero_flag(self):
        def prog(a):
            a.mov_imm32(Reg.RAX, 2)
            a.sub(Reg.RAX, 2)
            a.hlt()

        cpu = run_program(prog)
        assert cpu.regs.rax == 0
        assert cpu.regs.zf

    def test_dec_loop_terminates(self):
        def prog(a):
            a.mov_imm32(Reg.RBX, 10)
            a.xor(Reg.RAX, Reg.RAX)
            a.label("loop")
            a.inc(Reg.RAX)
            a.dec(Reg.RBX)
            a.jne("loop")
            a.hlt()

        assert run_program(prog).regs.rax == 10

    def test_cmp_je(self):
        def prog(a):
            a.mov_imm32(Reg.RAX, 5)
            a.cmp(Reg.RAX, 5)
            a.je("equal")
            a.mov_imm32(Reg.RCX, 1)
            a.hlt()
            a.label("equal")
            a.mov_imm32(Reg.RCX, 2)
            a.hlt()

        assert run_program(prog).regs.read64(Reg.RCX) == 2

    def test_xor_clears(self):
        def prog(a):
            a.mov_imm32(Reg.RDX, 123)
            a.xor(Reg.RDX, Reg.RDX)
            a.hlt()

        cpu = run_program(prog)
        assert cpu.regs.read64(Reg.RDX) == 0
        assert cpu.regs.zf


class TestStackAndCalls:
    def test_push_pop(self):
        def prog(a):
            a.mov_imm32(Reg.RAX, 7)
            a.push(Reg.RAX)
            a.pop(Reg.RBX)
            a.hlt()

        assert run_program(prog).regs.read64(Reg.RBX) == 7

    def test_call_ret(self):
        def prog(a):
            a.call("fn")
            a.hlt()
            a.label("fn")
            a.mov_imm32(Reg.RAX, 99)
            a.ret()

        assert run_program(prog).regs.rax == 99

    def test_rsp_balanced_after_call(self):
        def prog(a):
            a.call("fn")
            a.hlt()
            a.label("fn")
            a.ret()

        cpu = run_program(prog)
        assert cpu.regs.rsp == STACK_BASE + 0x10000 - 256

    def test_rsp_relative_load_store(self):
        def prog(a):
            a.mov_imm32(Reg.RAX, 77)
            a.store_rsp64(8, Reg.RAX)
            a.xor(Reg.RAX, Reg.RAX)
            a.load_rsp64(Reg.RCX, 8)
            a.hlt()

        assert run_program(prog).regs.read64(Reg.RCX) == 77

    def test_call_abs_indirect_through_memory(self):
        asm = Assembler()
        asm.raw(b"\xff\x14\x25" + (0x1000).to_bytes(4, "little"))
        asm.hlt()
        asm.label("target")
        asm.mov_imm32(Reg.RAX, 55)
        asm.ret()
        binary = asm.build()
        cpu = make_cpu(binary)
        cpu.mem.map_region(0x1000, 4096, PageFlags.USER | PageFlags.WRITABLE)
        cpu.mem.write_u64(0x1000, binary.symbols["target"])
        cpu.run()
        assert cpu.regs.rax == 55


class TestTraps:
    def test_syscall_without_handler_raises(self):
        def prog(a):
            a.syscall_site(39)
            a.hlt()

        asm = Assembler()
        prog(asm)
        cpu = make_cpu(asm.build())
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.kind is TrapKind.SYSCALL

    def test_syscall_handler_sees_instruction_address(self):
        asm = Assembler()
        site = asm.syscall_site(39)
        asm.hlt()
        cpu = make_cpu(asm.build())
        seen = []

        def handler(cpu, trap):
            seen.append(trap.rip)
            cpu.regs.rip = trap.rip + 2

        cpu.trap_handler = handler
        cpu.run()
        assert seen == [site.syscall_addr]

    def test_invalid_opcode_traps(self):
        asm = Assembler()
        asm.raw(b"\x60\xff")  # the patched-call tail bytes
        cpu = make_cpu(asm.build())
        with pytest.raises(Trap) as excinfo:
            cpu.step()
        assert excinfo.value.kind is TrapKind.INVALID_OPCODE

    def test_int3_traps(self):
        asm = Assembler()
        asm.raw(b"\xcc")
        cpu = make_cpu(asm.build())
        with pytest.raises(Trap) as excinfo:
            cpu.step()
        assert excinfo.value.kind is TrapKind.BREAKPOINT

    def test_fetch_from_unmapped_faults(self):
        cpu = CPU(PagedMemory())
        cpu.regs.rip = 0xDEAD000
        with pytest.raises(Trap) as excinfo:
            cpu.step()
        assert excinfo.value.kind is TrapKind.PAGE_FAULT


class TestExecutionControl:
    def test_run_after_halt_raises(self):
        asm = Assembler()
        asm.hlt()
        cpu = make_cpu(asm.build())
        cpu.run()
        with pytest.raises(CpuHalted):
            cpu.step()

    def test_instruction_budget(self):
        asm = Assembler()
        asm.label("spin")
        asm.jmp8("spin")
        cpu = make_cpu(asm.build())
        with pytest.raises(RuntimeError):
            cpu.run(max_instructions=100)

    def test_clock_charged_per_instruction(self):
        clock = SimClock()

        def prog(a):
            a.nop(9)
            a.hlt()

        asm = Assembler()
        prog(asm)
        cpu = make_cpu(asm.build(), clock=clock, instruction_ns=2.0)
        cpu.run()
        assert clock.now_ns == pytest.approx(20.0)  # 9 nops + hlt

    def test_native_stub_invoked_and_counts(self):
        asm = Assembler()
        asm.hlt()
        cpu = make_cpu(asm.build())
        hits = []

        def stub(cpu):
            hits.append(cpu.regs.rip)
            cpu.regs.rip = cpu.pop64()

        cpu.native_stubs[0xFFFF00000000] = stub
        cpu.push64(asm.build().entry)
        cpu.regs.rip = 0xFFFF00000000
        cpu.run()
        assert hits == [0xFFFF00000000]
