import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.registers import (
    MASK64,
    Reg,
    RegisterFile,
    sign_extend,
    to_signed64,
    to_unsigned64,
)


class TestRegisterFile:
    def test_registers_start_zero(self):
        regs = RegisterFile()
        for reg in Reg:
            assert regs.read64(reg) == 0
        assert regs.rip == 0

    @given(st.sampled_from(list(Reg)), st.integers(0, MASK64))
    def test_write64_masks(self, reg, value):
        regs = RegisterFile()
        regs.write64(reg, value)
        assert regs.read64(reg) == value & MASK64

    def test_write32_zero_extends(self):
        """The architectural rule ABOM's Case 1 depends on."""
        regs = RegisterFile()
        regs.write64(Reg.RAX, MASK64)
        regs.write32(Reg.RAX, 0x27)
        assert regs.read64(Reg.RAX) == 0x27

    def test_read32_truncates(self):
        regs = RegisterFile()
        regs.write64(Reg.RDX, 0x1_2345_6789)
        assert regs.read32(Reg.RDX) == 0x2345_6789

    def test_rax_rsp_properties(self):
        regs = RegisterFile()
        regs.rax = -1
        assert regs.rax == MASK64
        regs.rsp = 0x7000
        assert regs.read64(Reg.RSP) == 0x7000

    def test_snapshot_has_all_registers(self):
        regs = RegisterFile()
        regs.write64(Reg.R15, 99)
        regs.rip = 0x1234
        snap = regs.snapshot()
        assert snap["r15"] == 99
        assert snap["rip"] == 0x1234
        assert len(snap) == 17  # 16 GPRs + rip

    def test_encoding_numbers_match_modrm(self):
        """Register numbers are the hardware encoding values."""
        assert Reg.RAX == 0
        assert Reg.RSP == 4
        assert Reg.RDI == 7
        assert Reg.R15 == 15


class TestConversions:
    @given(st.integers(0, MASK64))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_unsigned64(to_signed64(value)) == value

    def test_signed_interpretation(self):
        assert to_signed64(MASK64) == -1
        assert to_signed64(1 << 63) == -(1 << 63)
        assert to_signed64(5) == 5

    @given(st.integers(-128, 127))
    def test_sign_extend_8(self, value):
        assert sign_extend(value & 0xFF, 8) == value

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_sign_extend_32(self, value):
        assert sign_extend(value & 0xFFFFFFFF, 32) == value
