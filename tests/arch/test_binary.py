"""Binary metadata validation at load time."""

import dataclasses

import pytest

from repro.arch import Assembler, Reg
from repro.arch.binary import SitePattern, SyscallSite
from repro.core import CountingServices, XContainer


def program():
    asm = Assembler(base=0x400000)
    asm.entry()
    asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.hlt()
    return asm.build()


class TestValidateSites:
    def test_well_formed_binary_loads(self):
        binary = program()
        xc = XContainer(CountingServices())
        xc.load(binary)  # no error
        assert xc.memory.read(binary.sites[0].syscall_addr, 2) == b"\x0f\x05"

    def test_drifted_site_raises_with_found_bytes(self):
        binary = program()
        good = binary.sites[0]
        # Simulate stale metadata: the address drifted by one byte.
        binary.sites[0] = dataclasses.replace(
            good, syscall_addr=good.syscall_addr - 1
        )
        with pytest.raises(ValueError) as exc:
            XContainer(CountingServices()).load(binary)
        message = str(exc.value)
        assert "does not decode to 'syscall'" in message
        assert "__read" in message
        assert "found bytes" in message

    def test_site_outside_text_raises(self):
        binary = program()
        binary.sites.append(
            SyscallSite(binary.base - 0x100, SitePattern.BARE, None, "ghost")
        )
        with pytest.raises(ValueError) as exc:
            XContainer(CountingServices()).load(binary)
        assert "outside the text segment" in str(exc.value)

    def test_validate_sites_direct_call(self):
        binary = program()
        binary.validate_sites()  # idempotent, no side effects
        binary.validate_sites()
