"""Basic-block decode cache: hits, misses, invalidation, equivalence.

The cache must be invisible except for speed: ``icache=True`` and
``icache=False`` CPUs retire identical instruction streams, and any store
to cached text (the ABOM situation, §4.4) is observed before the next
execution of the written bytes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Assembler, CPU, PagedMemory, Reg
from repro.arch.cpu import HANDLERS, MAX_BLOCK_INSTRS
from repro.arch.encoding import ALL_MNEMONICS, BLOCK_TERMINATORS
from repro.arch.memory import PAGE_SIZE, PageFlags

BASE = 0x400000
STACK_BASE = 0x7F0000


def fresh_cpu(binary, icache=True, tracecache=True):
    mem = PagedMemory()
    binary.load(mem)
    mem.map_region(STACK_BASE, 0x10000, PageFlags.USER | PageFlags.WRITABLE)
    cpu = CPU(mem, icache=icache, tracecache=tracecache)
    cpu.regs.rip = binary.entry
    cpu.regs.rsp = STACK_BASE + 0x10000 - 256
    return cpu


def counting_loop(iterations=50):
    asm = Assembler(base=BASE)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.xor(Reg.RAX, Reg.RAX)
    asm.label("loop")
    asm.inc(Reg.RAX)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build()


class TestDispatchTable:
    def test_handlers_cover_every_mnemonic(self):
        assert set(HANDLERS) == ALL_MNEMONICS

    def test_terminators_are_known_mnemonics(self):
        assert BLOCK_TERMINATORS <= ALL_MNEMONICS


class TestHitMissCounters:
    def test_loop_hits_dominate(self):
        # tracecache=False: a compiled trace would absorb the loop after
        # ~50 iterations and starve the icache hit counter.
        cpu = fresh_cpu(counting_loop(100), tracecache=False)
        cpu.run()
        stats = cpu.icache_stats
        assert cpu.regs.rax == 100
        # The loop body re-executes from the cache: a handful of decodes,
        # hundreds of cached instructions.
        assert stats.misses <= 6
        assert stats.hits > 250
        assert stats.hit_rate > 0.9

    def test_straight_line_code_misses_once_per_block(self):
        asm = Assembler(base=BASE)
        for _ in range(10):
            asm.nop()
        asm.hlt()
        cpu = fresh_cpu(asm.build())
        cpu.run()
        assert cpu.icache_stats.misses == 1
        assert cpu.icache_stats.hits == 10  # all but the first instruction

    def test_icache_off_keeps_counters_at_zero(self):
        cpu = fresh_cpu(counting_loop(20), icache=False)
        cpu.run()
        stats = cpu.icache_stats
        assert (stats.hits, stats.misses, stats.invalidations) == (0, 0, 0)
        assert stats.hit_rate == 0.0
        assert cpu.regs.rax == 20

    def test_as_dict_shape(self):
        cpu = fresh_cpu(counting_loop(5))
        cpu.run()
        d = cpu.icache_stats.as_dict()
        assert set(d) == {"hits", "misses", "invalidations", "hit_rate"}

    def test_hit_rate_zero_fetches(self):
        """hit_rate must not divide by zero before any instruction runs."""
        cpu = fresh_cpu(counting_loop(5))
        stats = cpu.icache_stats
        assert (stats.hits, stats.misses) == (0, 0)
        assert stats.hit_rate == 0.0
        assert stats.as_dict()["hit_rate"] == 0.0

    def test_blocks_cap_at_page_boundary(self):
        """A block never spans a decode across its starting page's end
        into a second *block*: execution continues via a new fill."""
        asm = Assembler(base=BASE)
        asm.nop(PAGE_SIZE + 16)
        asm.hlt()
        cpu = fresh_cpu(asm.build())
        cpu.run()
        # At least one fill per page plus the MAX_BLOCK_INSTRS splits.
        expected_min = (PAGE_SIZE + 16) // MAX_BLOCK_INSTRS
        assert cpu.icache_stats.misses >= expected_min


class TestSelfModifyingCode:
    def test_write_to_cached_text_is_observed(self):
        """Rewrite a cached instruction; the next execution must see it."""
        asm = Assembler(base=BASE)
        asm.label("loop")
        asm.mov_imm32(Reg.RCX, 1)
        asm.hlt()
        binary = asm.build()
        cpu = fresh_cpu(binary)
        cpu.run()
        assert cpu.regs.read64(Reg.RCX) == 1
        # Patch the immediate in place (supervisor store to RO text).
        cpu.mem.wp_enabled = False
        cpu.mem.write(BASE + 1, (99).to_bytes(4, "little"))
        cpu.mem.wp_enabled = True
        assert cpu.icache_stats.invalidations >= 1
        cpu.halted = False
        cpu.regs.rip = BASE
        cpu.run()
        assert cpu.regs.read64(Reg.RCX) == 99

    def test_invalidation_only_hits_written_page(self):
        """A store to one text page leaves blocks on other pages cached."""
        asm = Assembler(base=BASE)
        asm.label("loop")
        asm.nop()
        asm.nop()
        asm.hlt()
        binary = asm.build()
        cpu = fresh_cpu(binary)
        cpu.run()
        misses_before = cpu.icache_stats.misses
        # Store to an unrelated page: no eviction.
        cpu.mem.write_u64(STACK_BASE + 64, 7)
        cpu.halted = False
        cpu.regs.rip = BASE
        cpu.run()
        assert cpu.icache_stats.invalidations == 0
        assert cpu.icache_stats.misses == misses_before

    def test_two_cpus_sharing_text_both_invalidate(self):
        """SMP: a store through one vCPU's memory evicts the other's
        cached decode of the same page (shared i-cache coherence)."""
        mem = PagedMemory()
        binary = counting_loop(10)
        binary.load(mem)
        mem.map_region(STACK_BASE, 0x10000, PageFlags.USER | PageFlags.WRITABLE)
        first = CPU(mem)
        second = CPU(mem)
        for cpu in (first, second):
            cpu.regs.rip = binary.entry
            cpu.regs.rsp = STACK_BASE + 0x8000
            cpu.run()
            cpu.halted = False
        assert first.icache_stats.hits > 0
        assert second.icache_stats.hits > 0
        mem.wp_enabled = False
        mem.write(binary.entry, b"\x90")
        mem.wp_enabled = True
        assert first.icache_stats.invalidations >= 1
        assert second.icache_stats.invalidations >= 1

    def test_flush_icache(self):
        cpu = fresh_cpu(counting_loop(10))
        cpu.run()
        assert cpu._blocks
        cpu.flush_icache()
        assert not cpu._blocks
        assert not cpu._page_blocks

    def test_flush_icache_mid_execution(self):
        """Flushing while a cursor is live must not corrupt execution:
        the run continues from a fresh decode and retires the same
        stream as an unflushed CPU."""
        reference = fresh_cpu(counting_loop(40))
        reference.run()
        cpu = fresh_cpu(counting_loop(40))
        for _ in range(25):  # stop mid-loop, cursor inside a cached block
            cpu.step()
        assert cpu._cursor is not None or cpu._blocks
        misses_before = cpu.icache_stats.misses
        cpu.flush_icache()
        assert cpu._cursor is None
        cpu.run()
        assert cpu.regs.snapshot() == reference.regs.snapshot()
        assert cpu.instructions_retired == reference.instructions_retired
        # The flush forced at least one re-decode of live text.
        assert cpu.icache_stats.misses > misses_before

    def test_flush_icache_drops_traces(self):
        cpu = fresh_cpu(counting_loop(200))
        cpu.run()
        tc = cpu._tracecache
        assert tc.traces  # the hot loop was trace-compiled
        assert cpu.trace_stats.code_bytes > 0
        cpu.flush_icache()
        assert not tc.traces
        assert cpu.trace_stats.code_bytes == 0


# ----------------------------------------------------------------------
# Property: icache on/off retire identical instruction streams
# ----------------------------------------------------------------------
_REGS = [Reg.RAX, Reg.RBX, Reg.RCX, Reg.RDX, Reg.RSI, Reg.RDI]

_op = st.one_of(
    st.tuples(st.just("mov_imm32"), st.sampled_from(_REGS), st.integers(0, 2**31 - 1)),
    st.tuples(st.just("mov_imm64_low"), st.sampled_from(_REGS), st.integers(-(2**31), 2**31 - 1)),
    st.tuples(st.just("mov_reg"), st.sampled_from(_REGS), st.sampled_from(_REGS)),
    st.tuples(st.just("add"), st.sampled_from(_REGS), st.integers(-128, 127)),
    st.tuples(st.just("sub"), st.sampled_from(_REGS), st.integers(-128, 127)),
    st.tuples(st.just("cmp"), st.sampled_from(_REGS), st.integers(-128, 127)),
    st.tuples(st.just("inc"), st.sampled_from(_REGS)),
    st.tuples(st.just("dec"), st.sampled_from(_REGS)),
    st.tuples(st.just("xor"), st.sampled_from(_REGS), st.sampled_from(_REGS)),
    st.tuples(st.just("push"), st.sampled_from(_REGS)),
    st.tuples(st.just("pop"), st.sampled_from(_REGS)),
    st.tuples(st.just("nop")),
    # Forward skip over the next instruction: exercises block exits and
    # re-entry in the middle of decoded regions.
    st.tuples(st.just("skip_next")),
)


def _assemble(ops):
    asm = Assembler(base=BASE)
    pushes = 0
    skip_id = 0
    for op in ops:
        name = op[0]
        if name == "push":
            asm.push(op[1])
            pushes += 1
        elif name == "pop":
            if pushes == 0:
                continue  # keep the stack balanced
            asm.pop(op[1])
            pushes -= 1
        elif name == "skip_next":
            label = f"skip{skip_id}"
            skip_id += 1
            asm.jmp8(label)
            asm.nop(3)
            asm.label(label)
        elif name == "nop":
            asm.nop()
        else:
            getattr(asm, name)(*op[1:])
    for _ in range(pushes):
        asm.pop(Reg.RAX)
    asm.hlt()
    return asm.build()


class TestCachedUncachedEquivalence:
    @given(st.lists(_op, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_identical_streams_on_random_programs(self, ops):
        binary = _assemble(ops)
        cached = fresh_cpu(binary, icache=True)
        plain = fresh_cpu(binary, icache=False)
        # Lock-step: after every instruction both CPUs agree on the full
        # architectural state, so the retired streams are identical.
        while not (cached.halted or plain.halted):
            cached.step()
            plain.step()
            assert cached.regs.rip == plain.regs.rip
            assert cached.regs.snapshot() == plain.regs.snapshot()
            assert (cached.regs.zf, cached.regs.sf, cached.regs.cf) == (
                plain.regs.zf,
                plain.regs.sf,
                plain.regs.cf,
            )
        assert cached.halted and plain.halted
        assert cached.instructions_retired == plain.instructions_retired


def _final_state(cpu):
    return (
        cpu.regs.rip,
        cpu.regs.snapshot(),
        (cpu.regs.zf, cpu.regs.sf, cpu.regs.cf),
        cpu.instructions_retired,
    )


class TestTracedEquivalence:
    """Interpreter, icache, and trace-compiled execution are
    indistinguishable except for speed (run-to-halt comparison; traces
    retire whole superblocks per dispatch, so lock-step is meaningless)."""

    @given(st.lists(_op, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_three_modes_agree_on_random_programs(self, ops):
        binary = _assemble(ops)
        plain = fresh_cpu(binary, icache=False)
        cached = fresh_cpu(binary, icache=True, tracecache=False)
        traced = fresh_cpu(binary, icache=True, tracecache=True)
        # Straight-line programs only get hot across repeat runs; drop
        # the threshold so traces actually engage within a few passes.
        traced._tracecache.hot_threshold = 2
        for cpu in (plain, cached, traced):
            for _ in range(5):
                cpu.halted = False
                cpu.regs.rip = binary.entry
                cpu.run()
        assert _final_state(plain) == _final_state(cached) == _final_state(traced)

    def test_traces_engage_and_agree_on_hot_loop(self):
        binary = counting_loop(500)
        traced = fresh_cpu(binary)
        traced.run()
        plain = fresh_cpu(binary, icache=False)
        plain.run()
        assert _final_state(traced) == _final_state(plain)
        stats = traced.trace_stats
        assert stats.compiles >= 1
        assert stats.executions >= 1
        # The overwhelming majority of the loop ran inside the trace.
        assert stats.instructions > 1000
