"""CPU interpreter edge cases: page boundaries, stack faults, halting."""

import pytest

from repro.arch import Assembler, CPU, PagedMemory, Reg, Trap, TrapKind
from repro.arch.memory import PAGE_SIZE, PageFlags


class TestFetchAcrossPages:
    def test_instruction_straddling_page_boundary(self):
        """A 7-byte mov beginning 3 bytes before a page boundary must
        fetch and execute correctly."""
        mem = PagedMemory()
        base = 0x400000
        asm = Assembler(base=base)
        asm.nop(PAGE_SIZE - 3)
        asm.mov_imm64_low(Reg.RAX, 77)  # 7 bytes, straddles the boundary
        asm.hlt()
        binary = asm.build()
        binary.load(mem)
        mem.map_region(0x7F0000, 0x1000, PageFlags.USER | PageFlags.WRITABLE)
        cpu = CPU(mem)
        cpu.regs.rip = base + PAGE_SIZE - 3
        cpu.regs.rsp = 0x7F0F00
        cpu.run()
        assert cpu.regs.rax == 77

    def test_fetch_window_stops_at_unmapped_page(self):
        """Code ending flush against unmapped memory must still decode
        the final instruction."""
        mem = PagedMemory()
        base = 0x400000
        mem.map_region(base, PAGE_SIZE, PageFlags.USER | PageFlags.EXECUTABLE)
        mem.wp_enabled = False
        mem.write(base + PAGE_SIZE - 1, b"\xf4")  # hlt as the last byte
        mem.wp_enabled = True
        cpu = CPU(mem)
        cpu.regs.rip = base + PAGE_SIZE - 1
        cpu.run()
        assert cpu.halted


class TestFetchPermissions:
    """Instruction fetch honours PageFlags.EXECUTABLE (NX)."""

    @pytest.mark.parametrize("icache", [True, False])
    def test_fetch_from_non_executable_page_faults(self, icache):
        mem = PagedMemory()
        base = 0x400000
        mem.map_region(base, PAGE_SIZE, PageFlags.USER | PageFlags.WRITABLE)
        mem.write(base, b"\xf4")  # hlt bytes, but the page is data-only
        cpu = CPU(mem, icache=icache)
        cpu.regs.rip = base
        with pytest.raises(Trap) as excinfo:
            cpu.step()
        assert excinfo.value.kind is TrapKind.PAGE_FAULT
        assert "non-executable" in excinfo.value.detail

    def test_data_reads_from_non_executable_page_still_work(self):
        mem = PagedMemory()
        mem.map_region(0x9000, PAGE_SIZE, PageFlags.USER | PageFlags.WRITABLE)
        mem.write_u64(0x9000, 0x1234)
        assert mem.read_u64(0x9000) == 0x1234

    def test_revoking_executable_stops_cached_code(self):
        """Dropping EXECUTABLE from already-executed (cached) text must
        fault the next fetch, not serve stale decodes."""
        mem = PagedMemory()
        base = 0x400000
        asm = Assembler(base=base)
        asm.label("loop")
        asm.nop()
        asm.jmp8("loop")
        asm.build().load(mem)
        cpu = CPU(mem)
        cpu.regs.rip = base
        for _ in range(8):
            cpu.step()  # the loop body is now cached
        mem.set_page_flags(base, PageFlags.USER | PageFlags.WRITABLE)
        with pytest.raises(Trap) as excinfo:
            for _ in range(4):
                cpu.step()
        assert excinfo.value.kind is TrapKind.PAGE_FAULT

    def test_fetch_window_truncates_at_non_executable_neighbour(self):
        """Code flush against a data page decodes its final instruction,
        exactly like code flush against unmapped memory."""
        mem = PagedMemory()
        base = 0x400000
        mem.map_region(base, PAGE_SIZE, PageFlags.USER | PageFlags.EXECUTABLE)
        mem.map_region(
            base + PAGE_SIZE, PAGE_SIZE, PageFlags.USER | PageFlags.WRITABLE
        )
        mem.wp_enabled = False
        mem.write(base + PAGE_SIZE - 1, b"\xf4")  # hlt as the last byte
        mem.wp_enabled = True
        cpu = CPU(mem)
        cpu.regs.rip = base + PAGE_SIZE - 1
        cpu.run()
        assert cpu.halted


class TestStackFaults:
    def test_push_into_unmapped_stack_faults(self):
        from repro.arch.memory import PageFault

        mem = PagedMemory()
        asm = Assembler()
        asm.push(Reg.RAX)
        asm.hlt()
        asm.build().load(mem)
        cpu = CPU(mem)
        cpu.regs.rip = 0x400000
        cpu.regs.rsp = 0xDEAD0000  # nowhere
        with pytest.raises(PageFault):
            cpu.step()

    def test_ret_with_empty_stack_faults(self):
        from repro.arch.memory import PageFault

        mem = PagedMemory()
        asm = Assembler()
        asm.ret()
        asm.build().load(mem)
        cpu = CPU(mem)
        cpu.regs.rip = 0x400000
        cpu.regs.rsp = 0x12345678
        with pytest.raises(PageFault):
            cpu.step()


class TestRegisterWidthSemantics:
    def test_xor64_clears_high_bits(self):
        mem = PagedMemory()
        asm = Assembler()
        asm.mov_imm64_low(Reg.RDX, -1)
        asm.raw(b"\x48\x31\xd2")  # xor %rdx,%rdx
        asm.hlt()
        asm.build().load(mem)
        mem.map_region(0x7F0000, 0x1000, PageFlags.USER | PageFlags.WRITABLE)
        cpu = CPU(mem)
        cpu.regs.rip = 0x400000
        cpu.regs.rsp = 0x7F0F00
        cpu.run()
        assert cpu.regs.read64(Reg.RDX) == 0
        assert cpu.regs.zf

    def test_mov_r32_r32_zero_extends(self):
        mem = PagedMemory()
        asm = Assembler()
        asm.mov_imm64_low(Reg.RCX, -1)       # rcx = all ones
        asm.mov_imm32(Reg.RAX, 5)
        asm.raw(b"\x89\xc1")                 # mov %eax,%ecx
        asm.hlt()
        asm.build().load(mem)
        mem.map_region(0x7F0000, 0x1000, PageFlags.USER | PageFlags.WRITABLE)
        cpu = CPU(mem)
        cpu.regs.rip = 0x400000
        cpu.regs.rsp = 0x7F0F00
        cpu.run()
        assert cpu.regs.read64(Reg.RCX) == 5  # high bits cleared
