import pytest

from repro.arch import Assembler, Reg
from repro.arch.binary import SitePattern
from repro.arch.encoding import decode


class TestLabels:
    def test_forward_and_backward_jumps_resolve(self):
        asm = Assembler()
        asm.label("start")
        asm.jmp("end")
        asm.label("mid")
        asm.nop()
        asm.jmp8("start")
        asm.label("end")
        asm.hlt()
        binary = asm.build()
        # jmp rel32 at offset 0, target = len 5 + 1 nop + 2 jmp8 = offset 8
        instr = decode(binary.code, 0)
        assert instr.mnemonic == "jmp_rel32"
        assert instr.operands[0] == 3  # 8 - (0 + 5)

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(ValueError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(ValueError):
            asm.build()

    def test_rel8_out_of_range_rejected(self):
        asm = Assembler()
        asm.label("start")
        asm.nop(200)
        asm.jne("start")
        with pytest.raises(ValueError):
            asm.build()

    def test_symbols_are_absolute(self):
        asm = Assembler(base=0x400000)
        asm.nop()
        asm.label("fn")
        binary = asm.build()
        assert binary.symbols["fn"] == 0x400001


class TestSyscallSites:
    def test_mov_eax_site_shape(self):
        asm = Assembler(base=0x1000)
        site = asm.syscall_site(39, style="mov_eax", symbol="getpid")
        binary = asm.build()
        assert site.pattern is SitePattern.MOV_EAX_IMM
        assert site.nr == 39
        assert site.syscall_addr == 0x1005
        assert binary.code[:5] == b"\xb8\x27\x00\x00\x00"
        assert binary.code[5:7] == b"\x0f\x05"

    def test_mov_rax_site_shape(self):
        asm = Assembler(base=0x1000)
        site = asm.syscall_site(15, style="mov_rax")
        binary = asm.build()
        assert site.pattern is SitePattern.MOV_RAX_IMM
        assert site.syscall_addr == 0x1007
        assert binary.code[:3] == b"\x48\xc7\xc0"

    def test_go_stack_site_shape(self):
        asm = Assembler(base=0x1000)
        site = asm.syscall_site(1, style="go_stack")
        binary = asm.build()
        assert site.pattern is SitePattern.GO_STACK
        assert site.nr is None
        assert binary.code[:5] == b"\x48\x8b\x44\x24\x08"

    def test_cancellable_site_has_gap(self):
        """The libpthread shape: check instructions between mov and syscall."""
        asm = Assembler(base=0x1000)
        site = asm.syscall_site(0, style="cancellable")
        binary = asm.build()
        assert site.pattern is SitePattern.CANCELLABLE
        assert not site.pattern.online_patchable
        # mov(5) + 2 nops, syscall at +7
        assert site.syscall_addr == 0x1007
        assert binary.code[5:7] == b"\x90\x90"

    def test_bare_site(self):
        asm = Assembler()
        site = asm.syscall_site(0, style="bare")
        assert site.pattern is SitePattern.BARE
        assert site.nr is None

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            Assembler().syscall_site(0, style="nonsense")

    def test_online_patchable_classification(self):
        assert SitePattern.MOV_EAX_IMM.online_patchable
        assert SitePattern.MOV_RAX_IMM.online_patchable
        assert SitePattern.GO_STACK.online_patchable
        assert not SitePattern.CANCELLABLE.online_patchable
        assert not SitePattern.BARE.online_patchable

    def test_site_lookup_by_symbol(self):
        asm = Assembler()
        asm.syscall_site(39, symbol="getpid")
        binary = asm.build()
        assert binary.site_for_symbol("getpid").nr == 39
        with pytest.raises(KeyError):
            binary.site_for_symbol("missing")


class TestBinaryLoading:
    def test_text_mapped_readonly(self):
        from repro.arch.memory import PagedMemory, PageFault

        asm = Assembler(base=0x400000)
        asm.hlt()
        binary = asm.build()
        mem = PagedMemory()
        binary.load(mem)
        assert mem.read(0x400000, 1) == b"\xf4"
        with pytest.raises(PageFault):
            mem.write(0x400000, b"\x90")

    def test_loading_clears_dirty_bits(self):
        from repro.arch.memory import PagedMemory

        asm = Assembler(base=0x400000)
        asm.hlt()
        binary = asm.build()
        mem = PagedMemory()
        binary.load(mem)
        assert mem.dirty_pages() == []

    def test_entry_defaults_to_base(self):
        asm = Assembler(base=0x1234000)
        asm.nop()
        assert asm.build().entry == 0x1234000

    def test_explicit_entry(self):
        asm = Assembler(base=0x1000)
        asm.nop()
        asm.entry()
        asm.hlt()
        assert asm.build().entry == 0x1001
