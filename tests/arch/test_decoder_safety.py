"""Property: patched text always disassembles to the documented shape.

After ABOM runs over ANY program built from the supported site styles,
linearly decoding the text must yield only (a) valid subset instructions
or (b) the two known tail bytes of a 7-byte patch (`0x60`, `0xff`) —
never some third thing.  This is the static complement of the semantic
equivalence tests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Assembler, Reg
from repro.arch.disasm import disassemble_memory
from repro.core import CountingServices, XContainer

STYLES = ["mov_eax", "mov_rax", "go_stack", "cancellable", "bare"]


@given(
    st.lists(
        st.tuples(st.sampled_from(STYLES), st.integers(0, 300)),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_patched_text_decodes_to_known_shapes(sequence):
    asm = Assembler()
    for style, nr in sequence:
        if style == "go_stack":
            asm.mov_imm64_low(Reg.RCX, nr)
            asm.store_rsp64(8, Reg.RCX)
        elif style == "bare":
            asm.mov_imm32(Reg.RAX, nr)
            asm.nop(1)
        asm.syscall_site(nr, style=style)
    asm.hlt()
    binary = asm.build()
    xc = XContainer(CountingServices())
    xc.run(binary)
    lines = disassemble_memory(xc.memory, binary.base, len(binary.code))
    bad = [line for line in lines if line.text.startswith(".byte")]
    # Every undecodable byte must be part of a patched call's tail.
    for line in bad:
        assert line.raw in (b"\x60", b"\xff"), line
    # And every patched call must target the vsyscall page.
    for line in lines:
        if line.text.startswith("callq"):
            assert "0xffffffffff600" in line.text
