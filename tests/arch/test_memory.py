import pytest

from repro.arch.memory import PagedMemory, PageFault, PageFlags

RW = PageFlags.USER | PageFlags.WRITABLE
RO = PageFlags.USER


class TestMapping:
    def test_unmapped_read_faults(self):
        with pytest.raises(PageFault):
            PagedMemory().read(0x1000, 1)

    def test_map_then_read_zeroed(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        assert mem.read(0x1000, 8) == b"\x00" * 8

    def test_map_spans_pages(self):
        mem = PagedMemory()
        mem.map_region(0x1FF0, 0x20, RW)  # crosses a page boundary
        mem.write(0x1FF0, b"A" * 0x20)
        assert mem.read(0x1FF0, 0x20) == b"A" * 0x20

    def test_map_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PagedMemory().map_region(0, 0, RW)

    def test_is_mapped(self):
        mem = PagedMemory()
        mem.map_region(0x2000, 1, RW)
        assert mem.is_mapped(0x2000)
        assert mem.is_mapped(0x2FFF)
        assert not mem.is_mapped(0x3000)


class TestPermissions:
    def test_readonly_write_faults(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        with pytest.raises(PageFault):
            mem.write(0x1000, b"x")

    def test_wp_disable_allows_supervisor_write(self):
        """CR0.WP cleared: ABOM's patching mode (§4.4)."""
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        mem.wp_enabled = False
        mem.write(0x1000, b"x")
        assert mem.read(0x1000, 1) == b"x"

    def test_wp_bypass_sets_dirty_bit(self):
        """§4.4: "the page table dirty bit will be set for read-only pages"."""
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        mem.wp_enabled = False
        mem.write(0x1000, b"x")
        assert mem.page_flags(0x1000) & PageFlags.DIRTY
        assert mem.dirty_pages() == [0x1000]

    def test_normal_write_does_not_set_dirty_tracking(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write(0x1000, b"x")
        assert not mem.page_flags(0x1000) & PageFlags.DIRTY

    def test_page_flags_unmapped_faults(self):
        with pytest.raises(PageFault):
            PagedMemory().page_flags(0x0)


class TestScalarAccess:
    def test_u64_roundtrip(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write_u64(0x1008, 0xFFFFFFFFFF600008)
        assert mem.read_u64(0x1008) == 0xFFFFFFFFFF600008

    def test_u32_roundtrip_truncates(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write_u32(0x1000, 0x1_2345_6789)
        assert mem.read_u32(0x1000) == 0x2345_6789

    def test_kernel_half_addresses(self):
        mem = PagedMemory()
        base = 0xFFFFFFFFFF600000
        mem.map_region(base, 4096, RW)
        mem.write_u64(base + 8, 123)
        assert mem.read_u64(base + 8) == 123


class TestCompareExchange:
    def _mem(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write(0x1000, bytes(range(16)))
        return mem

    def test_success(self):
        mem = self._mem()
        ok = mem.compare_exchange(0x1000, bytes(range(7)), b"A" * 7)
        assert ok
        assert mem.read(0x1000, 7) == b"A" * 7

    def test_failure_leaves_memory_unchanged(self):
        mem = self._mem()
        ok = mem.compare_exchange(0x1000, b"wrong!!", b"A" * 7)
        assert not ok
        assert mem.read(0x1000, 7) == bytes(range(7))

    def test_more_than_8_bytes_rejected(self):
        """The paper's constraint: cmpxchg handles at most eight bytes."""
        mem = self._mem()
        with pytest.raises(ValueError):
            mem.compare_exchange(0x1000, bytes(9), bytes(9))

    def test_size_mismatch_rejected(self):
        mem = self._mem()
        with pytest.raises(ValueError):
            mem.compare_exchange(0x1000, bytes(4), bytes(5))

    def test_respects_write_protect(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        with pytest.raises(PageFault):
            mem.compare_exchange(0x1000, bytes(2), b"ab")
