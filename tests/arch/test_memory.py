import pytest

from repro.arch.memory import PagedMemory, PageFault, PageFlags

RW = PageFlags.USER | PageFlags.WRITABLE
RO = PageFlags.USER


class TestMapping:
    def test_unmapped_read_faults(self):
        with pytest.raises(PageFault):
            PagedMemory().read(0x1000, 1)

    def test_map_then_read_zeroed(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        assert mem.read(0x1000, 8) == b"\x00" * 8

    def test_map_spans_pages(self):
        mem = PagedMemory()
        mem.map_region(0x1FF0, 0x20, RW)  # crosses a page boundary
        mem.write(0x1FF0, b"A" * 0x20)
        assert mem.read(0x1FF0, 0x20) == b"A" * 0x20

    def test_map_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PagedMemory().map_region(0, 0, RW)

    def test_is_mapped(self):
        mem = PagedMemory()
        mem.map_region(0x2000, 1, RW)
        assert mem.is_mapped(0x2000)
        assert mem.is_mapped(0x2FFF)
        assert not mem.is_mapped(0x3000)


class TestPermissions:
    def test_readonly_write_faults(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        with pytest.raises(PageFault):
            mem.write(0x1000, b"x")

    def test_wp_disable_allows_supervisor_write(self):
        """CR0.WP cleared: ABOM's patching mode (§4.4)."""
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        mem.wp_enabled = False
        mem.write(0x1000, b"x")
        assert mem.read(0x1000, 1) == b"x"

    def test_wp_bypass_sets_dirty_bit(self):
        """§4.4: "the page table dirty bit will be set for read-only pages"."""
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        mem.wp_enabled = False
        mem.write(0x1000, b"x")
        assert mem.page_flags(0x1000) & PageFlags.DIRTY
        assert mem.dirty_pages() == [0x1000]

    def test_normal_write_does_not_set_dirty_tracking(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write(0x1000, b"x")
        assert not mem.page_flags(0x1000) & PageFlags.DIRTY

    def test_page_flags_unmapped_faults(self):
        with pytest.raises(PageFault):
            PagedMemory().page_flags(0x0)


class TestScalarAccess:
    def test_u64_roundtrip(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write_u64(0x1008, 0xFFFFFFFFFF600008)
        assert mem.read_u64(0x1008) == 0xFFFFFFFFFF600008

    def test_u32_roundtrip_truncates(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write_u32(0x1000, 0x1_2345_6789)
        assert mem.read_u32(0x1000) == 0x2345_6789

    def test_kernel_half_addresses(self):
        mem = PagedMemory()
        base = 0xFFFFFFFFFF600000
        mem.map_region(base, 4096, RW)
        mem.write_u64(base + 8, 123)
        assert mem.read_u64(base + 8) == 123


class TestGenerationsAndObservers:
    """Per-page generation counters + write observers (decode-cache
    invalidation protocol)."""

    def test_write_bumps_generation(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        before = mem.page_generation(0x1000)
        mem.write(0x1000, b"x")
        assert mem.page_generation(0x1000) == before + 1

    def test_read_does_not_bump_generation(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        before = mem.page_generation(0x1000)
        mem.read(0x1000, 64)
        mem.read_u64(0x1000)
        mem.read_u32(0x1040)
        assert mem.page_generation(0x1000) == before

    def test_scalar_writes_bump_generation(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        before = mem.page_generation(0x1000)
        mem.write_u64(0x1000, 1)
        mem.write_u32(0x1010, 2)
        assert mem.page_generation(0x1000) == before + 2

    def test_compare_exchange_bumps_generation(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        before = mem.page_generation(0x1000)
        assert mem.compare_exchange(0x1000, bytes(2), b"ab")
        assert mem.page_generation(0x1000) == before + 1

    def test_failed_compare_exchange_does_not_bump(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        before = mem.page_generation(0x1000)
        assert not mem.compare_exchange(0x1000, b"zz", b"ab")
        assert mem.page_generation(0x1000) == before

    def test_spanning_write_bumps_both_pages(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 2 * 4096, RW)
        first = mem.page_generation(0x1000)
        second = mem.page_generation(0x2000)
        mem.write(0x1FFC, b"ABCDEFGH")
        assert mem.page_generation(0x1000) == first + 1
        assert mem.page_generation(0x2000) == second + 1

    def test_reflag_bumps_generation(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        before = mem.page_generation(0x1000)
        mem.set_page_flags(0x1000, RO)
        mem.map_region(0x1000, 4096, RW)
        assert mem.page_generation(0x1000) == before + 2

    def test_generation_unmapped_faults(self):
        with pytest.raises(PageFault):
            PagedMemory().page_generation(0x5000)
        assert PagedMemory().page_generation_index(5) == -1

    def test_observer_sees_every_store(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 2 * 4096, RW)
        events = []
        mem.add_write_observer(lambda addr, size: events.append((addr, size)))
        mem.write(0x1000, b"abc")
        mem.write_u64(0x1100, 7)
        mem.write_u32(0x1200, 7)
        assert (0x1000, 3) in events
        assert (0x1100, 8) in events
        assert (0x1200, 4) in events

    def test_observer_notified_per_page_chunk(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 2 * 4096, RW)
        events = []
        mem.add_write_observer(lambda addr, size: events.append((addr, size)))
        mem.write(0x1FFE, b"ABCD")  # 2 bytes in each page
        assert events == [(0x1FFE, 2), (0x2000, 2)]

    def test_observer_removal(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        events = []
        observer = lambda addr, size: events.append(addr)  # noqa: E731
        mem.add_write_observer(observer)
        mem.write(0x1000, b"x")
        mem.remove_write_observer(observer)
        mem.write(0x1001, b"y")
        assert events == [0x1000]


class TestScalarFastPathEdges:
    """The single-page fast paths must agree with the generic loop."""

    def test_u64_across_page_boundary(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 2 * 4096, RW)
        mem.write_u64(0x1FFC, 0x1122334455667788)
        assert mem.read_u64(0x1FFC) == 0x1122334455667788

    def test_u32_across_page_boundary(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 2 * 4096, RW)
        mem.write_u32(0x1FFE, 0xDEADBEEF)
        assert mem.read_u32(0x1FFE) == 0xDEADBEEF

    def test_u64_fast_path_respects_write_protect(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        with pytest.raises(PageFault):
            mem.write_u64(0x1000, 1)
        with pytest.raises(PageFault):
            mem.write_u32(0x1000, 1)

    def test_u64_fast_path_wp_bypass_sets_dirty(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        mem.wp_enabled = False
        mem.write_u64(0x1000, 42)
        mem.wp_enabled = True
        assert mem.read_u64(0x1000) == 42
        assert mem.page_flags(0x1000) & PageFlags.DIRTY

    def test_u64_unmapped_faults(self):
        with pytest.raises(PageFault):
            PagedMemory().read_u64(0x1000)
        with pytest.raises(PageFault):
            PagedMemory().write_u64(0x1000, 1)


class TestFetch:
    def test_fetch_requires_executable(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        with pytest.raises(PageFault) as excinfo:
            mem.fetch(0x1000, 15)
        assert "non-executable" in excinfo.value.reason

    def test_fetch_unmapped_faults(self):
        with pytest.raises(PageFault) as excinfo:
            PagedMemory().fetch(0x1000, 15)
        assert "unmapped" in excinfo.value.reason

    def test_fetch_truncates_at_non_executable_tail(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, PageFlags.USER | PageFlags.EXECUTABLE)
        mem.map_region(0x2000, 4096, RW)
        mem.wp_enabled = False
        mem.write(0x1FF0, b"\x90" * 16)
        mem.wp_enabled = True
        assert mem.fetch(0x1FF8, 15) == b"\x90" * 8

    def test_fetch_spans_executable_pages(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 2 * 4096, PageFlags.USER | PageFlags.EXECUTABLE)
        mem.wp_enabled = False
        mem.write(0x1FFC, bytes(range(8)))
        mem.wp_enabled = True
        assert mem.fetch(0x1FFC, 8) == bytes(range(8))


class TestCompareExchange:
    def _mem(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RW)
        mem.write(0x1000, bytes(range(16)))
        return mem

    def test_success(self):
        mem = self._mem()
        ok = mem.compare_exchange(0x1000, bytes(range(7)), b"A" * 7)
        assert ok
        assert mem.read(0x1000, 7) == b"A" * 7

    def test_failure_leaves_memory_unchanged(self):
        mem = self._mem()
        ok = mem.compare_exchange(0x1000, b"wrong!!", b"A" * 7)
        assert not ok
        assert mem.read(0x1000, 7) == bytes(range(7))

    def test_more_than_8_bytes_rejected(self):
        """The paper's constraint: cmpxchg handles at most eight bytes."""
        mem = self._mem()
        with pytest.raises(ValueError):
            mem.compare_exchange(0x1000, bytes(9), bytes(9))

    def test_size_mismatch_rejected(self):
        mem = self._mem()
        with pytest.raises(ValueError):
            mem.compare_exchange(0x1000, bytes(4), bytes(5))

    def test_respects_write_protect(self):
        mem = PagedMemory()
        mem.map_region(0x1000, 4096, RO)
        with pytest.raises(PageFault):
            mem.compare_exchange(0x1000, bytes(2), b"ab")
