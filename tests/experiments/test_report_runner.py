import pytest

from repro.experiments.report import ExperimentResult, Row, relative_to
from repro.experiments.runner import experiment_ids, run_experiment


class TestReport:
    def _result(self):
        return ExperimentResult(
            "t",
            "Title",
            ["a", "b"],
            [
                Row("base", {"a": 10.0, "b": 20.0}),
                Row("other", {"a": 5.0, "b": None}),
            ],
            notes="hello",
        )

    def test_value_lookup(self):
        result = self._result()
        assert result.value("base", "a") == 10.0
        with pytest.raises(KeyError):
            result.value("missing", "a")

    def test_format_table_contains_everything(self):
        text = self._result().format_table()
        assert "Title" in text
        assert "base" in text
        assert "n/a" in text  # the None cell
        assert "note: hello" in text

    def test_large_numbers_grouped(self):
        result = ExperimentResult(
            "t", "T", ["v"], [Row("r", {"v": 123456.0})]
        )
        assert "123,456" in result.format_table()

    def test_relative_to(self):
        rows = [
            Row("base", {"a": 10.0}),
            Row("x", {"a": 25.0}),
            Row("none", {"a": None}),
        ]
        rel = relative_to(rows, "base", ["a"])
        assert rel[1].values["a"] == 2.5
        assert rel[2].values["a"] is None


class TestRunner:
    def test_experiment_ids_complete(self):
        assert set(experiment_ids()) == {
            "table1",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig8",
            "fig9",
            "spawn",
            "validate",
            "sweep",
        }

    def test_fig1_quantifies_the_architecture_diagram(self):
        (result,) = run_experiment("fig1")
        assert result.value("x-container", "multicore") == "True"
        assert result.value("x-container", "binary compat") == "True"
        x_tcb = result.value("x-container", "isolation TCB (kLoC)")
        docker_tcb = result.value("docker", "isolation TCB (kLoC)")
        assert x_tcb < docker_tcb / 20
        # No other architecture combines a small isolation TCB, binary
        # compatibility, multicore processing AND fast syscalls —
        # Xen-Container has the first three but pays the §4.1 PV syscall
        # bounce, which is exactly the problem the paper solves.
        for row in result.rows:
            if row.label == "x-container":
                continue
            good_tcb = row.values["isolation TCB (kLoC)"] < 1000
            fast_syscalls = row.values["syscall ns"] < 100
            assert not (
                good_tcb
                and fast_syscalls
                and row.values["multicore"] == "True"
                and row.values["binary compat"] == "True"
            ), row.label

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_returns_result_lists(self):
        results = run_experiment("spawn")
        assert len(results) == 1
        assert results[0].experiment == "spawn"
        results = run_experiment("fig9")
        assert results[0].rows


class TestExports:
    def _result(self):
        return ExperimentResult(
            "t", "Title", ["a"],
            [Row("x", {"a": 1.5}), Row("y", {"a": None})],
        )

    def test_json_roundtrip(self):
        import json

        data = json.loads(self._result().to_json())
        assert data["experiment"] == "t"
        assert data["rows"][0]["values"]["a"] == 1.5
        assert data["rows"][1]["values"]["a"] is None

    def test_csv_shape(self):
        text = self._result().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "label,a"
        assert lines[1] == "x,1.5"
        assert lines[2] == "y,"
