"""Fig 8 through the hybrid execution core.

The figure's published data must be byte-identical whether the
real-fleet sweep runs hybrid or stepped — and identical to the
no-sweep run for the analytic table itself.
"""

from repro.experiments import fig8_scalability as fig8
from repro.obs import prometheus_text
from repro.obs.registry import Registry


def _rows(result):
    return [(row.label, row.values) for row in result.rows]


class TestFig8ExecSweep:
    def test_hybrid_and_stepped_publish_identical_figure_data(self):
        hybrid_reg, stepped_reg = Registry(), Registry()
        hybrid = fig8.run(hybrid_reg, engine="hybrid")
        stepped = fig8.run(stepped_reg, engine="stepped")
        assert prometheus_text(hybrid_reg) == prometheus_text(stepped_reg)
        assert _rows(hybrid) == _rows(stepped)

    def test_exec_sweep_leaves_the_analytic_table_unchanged(self):
        plain_reg, sweep_reg = Registry(), Registry()
        plain = fig8.run(plain_reg)
        swept = fig8.run(sweep_reg, engine="hybrid")
        assert _rows(plain) == _rows(swept)
        # The sweep adds gauges, it never perturbs the curve metric.
        for config in ("docker", "x-container"):
            for n in fig8.N_VALUES:
                assert sweep_reg.value(
                    fig8.SCALABILITY_METRIC, config=config, n=n
                ) == plain_reg.value(
                    fig8.SCALABILITY_METRIC, config=config, n=n
                )

    def test_exec_gauges_cover_the_sweep_sizes(self):
        registry = Registry()
        fig8.run(registry, engine="hybrid")
        for n in fig8.EXEC_SWEEP_N:
            units = registry.value("experiment_fig8_exec_units", n=n)
            expected = sum(
                1 + (domid + wave) % 3
                for wave in range(4)
                for domid in range(n)
            )
            assert units == float(expected)
            assert registry.value(
                "experiment_fig8_exec_instructions", n=n
            ) > 0

    def test_unknown_engine_rejected(self):
        try:
            fig8.run(Registry(), engine="warp")
        except ValueError as exc:
            assert "engine" in str(exc)
        else:
            raise AssertionError("bad engine name must be rejected")
