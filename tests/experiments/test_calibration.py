"""Calibration tests: every experiment must reproduce the paper's SHAPE.

These are the repository's acceptance tests — each assertion cites the
paper claim it checks.  Absolute values are never asserted, only who wins
and by roughly what factor.
"""

import pytest

from repro.experiments import (
    fig3_macro,
    fig4_syscall,
    fig6_libos,
    fig8_scalability,
    fig9_lb,
    spawn,
    table1,
)


@pytest.fixture(scope="module")
def fig3():
    return fig3_macro.run()


@pytest.fixture(scope="module")
def fig4():
    return fig4_syscall.run()


@pytest.fixture(scope="module")
def fig6():
    return {r.experiment: r for r in fig6_libos.run()}


@pytest.fixture(scope="module")
def fig8():
    return fig8_scalability.run()


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run()

    def test_all_rows_present(self, result):
        assert len(result.rows) == 12

    def test_reductions_match_paper_column(self, result):
        for row in result.rows:
            assert row.values["measured"] == row.values["paper"], row.label

    def test_mysql_offline_column(self, result):
        assert result.value("mysql", "measured-offline") == "92.2%"


class TestFig3Throughput:
    def test_memcached_band(self, fig3):
        """§5.3: memcached improved 134–208 % over Docker."""
        throughput, _ = fig3
        for site in ("amazon", "google"):
            ratio = throughput.value("x-container", f"{site}/memcached")
            assert 2.2 <= ratio <= 3.2, site

    def test_nginx_band(self, fig3):
        """§5.3: NGINX 21–50 % over Docker."""
        throughput, _ = fig3
        for site in ("amazon", "google"):
            ratio = throughput.value("x-container", f"{site}/nginx")
            assert 1.15 <= ratio <= 1.55, site

    def test_redis_comparable(self, fig3):
        """§5.3: Redis comparable to Docker."""
        throughput, _ = fig3
        for site in ("amazon", "google"):
            ratio = throughput.value("x-container", f"{site}/redis")
            assert 0.9 <= ratio <= 1.3, site

    def test_gvisor_suffers(self, fig3):
        """§5.3: gVisor suffers significantly from ptrace."""
        throughput, _ = fig3
        for column in throughput.columns:
            assert throughput.value("gvisor", column) < 0.45, column

    def test_clear_container_below_docker_on_macro(self, fig3):
        """§5.3: nested virtualization penalty."""
        throughput, _ = fig3
        for workload in ("nginx", "memcached", "redis"):
            ratio = throughput.value(
                "clear-container", f"google/{workload}"
            )
            assert ratio < 1.0, workload

    def test_clear_container_absent_on_ec2(self, fig3):
        throughput, _ = fig3
        assert throughput.value("clear-container", "amazon/nginx") is None

    def test_xen_container_below_docker(self, fig3):
        """§5.3: 'Xen-Containers performed worse than Docker in most
        cases' — the X-Container gains come from the paper's
        modifications."""
        throughput, _ = fig3
        below = sum(
            1
            for column in throughput.columns
            if throughput.value("xen-container", column) < 1.0
        )
        assert below >= 5

    def test_meltdown_patch_does_not_move_x(self, fig3):
        throughput, _ = fig3
        for column in throughput.columns:
            patched = throughput.value("x-container", column)
            unpatched = throughput.value("x-container-unpatched", column)
            assert patched == pytest.approx(unpatched, rel=0.05)

    def test_latency_roughly_inverse_of_throughput(self, fig3):
        throughput, latency = fig3
        t = throughput.value("gvisor", "google/memcached")
        l = latency.value("gvisor", "google/memcached")
        assert l > 1.0 > t


class TestFig4:
    def test_x_container_up_to_27x(self, fig4):
        """§1/§5.4: up to 27× higher raw syscall throughput."""
        best = max(
            fig4.value("x-container", column) for column in fig4.columns
        )
        assert 20 <= best <= 30

    def test_x_over_clear_up_to_1_6(self, fig4):
        """§5.4: up to 1.6× compared to Clear Containers."""
        ratios = [
            fig4.value("x-container", column)
            / fig4.value("clear-container", column)
            for column in fig4.columns
            if fig4.value("clear-container", column)
        ]
        assert 1.3 <= max(ratios) <= 1.9

    def test_gvisor_7_to_9_percent(self, fig4):
        """§5.4: gVisor throughput is 7–9 % of Docker."""
        for column in fig4.columns:
            value = fig4.value("gvisor", column)
            assert 0.05 <= value <= 0.11, column

    def test_xen_container_far_below_docker(self, fig4):
        for column in fig4.columns:
            assert fig4.value("xen-container", column) < 0.5

    def test_patch_does_not_move_x_or_clear(self, fig4):
        for config in ("x-container", "clear-container"):
            for column in fig4.columns:
                patched = fig4.value(config, column)
                unpatched = fig4.value(f"{config}-unpatched", column)
                if patched is None:
                    continue
                assert patched == pytest.approx(unpatched, rel=0.08)

    def test_unpatched_docker_beats_patched(self, fig4):
        for column in fig4.columns:
            assert fig4.value("docker-unpatched", column) > 1.0


class TestFig6:
    def test_6a_x_comparable_to_unikernel(self, fig6):
        """§5.5: 'X-Containers achieved throughput comparable to
        Unikernel'."""
        a = fig6["fig6a"]
        ratio = a.value("X", "throughput_rps") / a.value(
            "U", "throughput_rps"
        )
        assert 0.9 <= ratio <= 1.4

    def test_6a_x_twice_graphene(self, fig6):
        """§5.5: 'over twice that of Graphene'."""
        a = fig6["fig6a"]
        ratio = a.value("X", "throughput_rps") / a.value(
            "G", "throughput_rps"
        )
        assert 1.7 <= ratio <= 2.4

    def test_6b_x_beats_graphene_by_50_percent(self, fig6):
        """§5.5: 'X-Containers outperformed Graphene by more than
        50%'."""
        b = fig6["fig6b"]
        ratio = b.value("X", "throughput_rps") / b.value(
            "G", "throughput_rps"
        )
        assert ratio >= 1.5

    def test_6b_unikernel_unsupported(self, fig6):
        assert fig6["fig6b"].value("U", "throughput_rps") is None

    def test_6c_x_over_40_percent_above_unikernel(self, fig6):
        """§5.5: 'X-Containers outperformed Unikernel by over 40%'."""
        c = fig6["fig6c"]
        for config in ("shared", "dedicated"):
            ratio = c.value("X", config) / c.value("U", config)
            assert ratio >= 1.4, config

    def test_6c_merged_three_times_unikernel_dedicated(self, fig6):
        """§5.5: 'about three times that of the Unikernel Dedicated
        configuration'."""
        c = fig6["fig6c"]
        ratio = c.value("X", "dedicated&merged") / c.value("U", "dedicated")
        assert 2.5 <= ratio <= 4.0

    def test_6c_merged_impossible_on_unikernel(self, fig6):
        assert fig6["fig6c"].value("U", "dedicated&merged") is None


class TestFig8:
    def test_docker_wins_at_small_n(self, fig8):
        """§5.6: 'Docker containers achieved higher throughput for small
        numbers of containers'."""
        for n in ("10", "50", "100"):
            assert fig8.value(n, "docker") > fig8.value(n, "x-container")

    def test_x_wins_at_400_by_about_18_percent(self, fig8):
        """§5.6: 'with N = 400, X-Containers outperformed Docker by
        18%'."""
        ratio = fig8.value("400", "x-container") / fig8.value(
            "400", "docker"
        )
        assert 1.10 <= ratio <= 1.30

    def test_docker_declines_past_peak(self, fig8):
        assert fig8.value("400", "docker") < fig8.value("100", "docker")

    def test_xen_limits(self, fig8):
        """§5.6: no more than 250 PV / 200 HVM instances would boot."""
        assert fig8.value("250", "xen-pv") is not None
        assert fig8.value("300", "xen-pv") is None
        assert fig8.value("200", "xen-hvm") is not None
        assert fig8.value("250", "xen-hvm") is None

    def test_vms_below_x_containers_at_scale(self, fig8):
        for n in ("100", "200"):
            x = fig8.value(n, "x-container")
            assert fig8.value(n, "xen-pv") < x
            assert fig8.value(n, "xen-hvm") < x


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_lb.run()

    def test_four_configurations(self, result):
        assert len(result.rows) == 4

    def test_ladder(self, result):
        values = [row.values["throughput_rps"] for row in result.rows]
        assert values == sorted(values)

    def test_dr_bottleneck_is_backends(self, result):
        assert (
            result.value("X-Container (ipvs Route)", "bottleneck")
            == "backends"
        )


class TestSpawn:
    @pytest.fixture(scope="class")
    def result(self):
        return spawn.run()

    def test_boot_and_toolstack_numbers(self, result):
        """§4.5: 180 ms boot, ~3 s with xl, 4 ms with LightVM."""
        xl = result.value("x-container (xl toolstack)", "total_ms")
        assert xl == pytest.approx(3000, rel=0.02)
        boot = result.value("x-container (xl toolstack)", "boot_ms")
        assert boot == pytest.approx(180)
        light = result.value(
            "x-container (lightvm toolstack)", "toolstack_ms"
        )
        assert light == pytest.approx(4.0)

    def test_ordinary_vm_slowest(self, result):
        vm = result.value("ordinary VM", "total_ms")
        assert vm > result.value("x-container (xl toolstack)", "total_ms")


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5_single(self):
        from repro.experiments import fig5_micro
        from repro.cloud.instances import EC2

        return fig5_micro.run_panel(EC2, concurrency=1)

    def test_x_wins_syscall_bound_benches(self, fig5_single):
        """§5.4: File Copy and Pipe are syscall-bound; conversion wins."""
        assert fig5_single.value("x-container", "file_copy") > 1.5
        assert fig5_single.value("x-container", "pipe_throughput") > 1.5

    def test_x_loses_process_lifecycle(self, fig5_single):
        """§5.4: 'noticeable overheads ... in process creation and
        context switching' (page-table ops via the X-Kernel)."""
        assert fig5_single.value("x-container", "process_creation") < 1.0
        assert fig5_single.value(
            "x-container", "context_switching"
        ) < fig5_single.value("docker-unpatched", "context_switching")

    def test_iperf_flat(self, fig5_single):
        for config in ("x-container", "xen-container"):
            assert 0.8 < fig5_single.value(config, "iperf") < 1.3

    def test_xen_container_worst_on_crossing_benches(self, fig5_single):
        assert fig5_single.value("xen-container", "pipe_throughput") < 0.5
        assert fig5_single.value("xen-container", "file_copy") < 0.5

    def test_clear_absent_on_ec2(self, fig5_single):
        assert fig5_single.value("clear-container", "file_copy") is None


class TestSweeps:
    """Sensitivity analysis: the sweeps must tell a coherent story."""

    def test_advantage_monotone_in_conversion_fraction(self):
        from repro.experiments.sweep import sweep_conversion_fraction

        result = sweep_conversion_fraction()
        values = [
            row.values["memcached_vs_docker"] for row in result.rows
        ]
        assert values == sorted(values)
        # Even 0 % conversion keeps an advantage (forwarded-path +
        # dedication), but full conversion adds a solid margin on top.
        assert values[0] > 1.3
        assert values[-1] > values[0] * 1.2

    def test_advantage_survives_zero_kpti(self):
        """The win is not just the Meltdown patch."""
        from repro.experiments.sweep import sweep_kpti_cost

        result = sweep_kpti_cost()
        assert result.value("0ns", "memcached_vs_docker") > 1.4
        # Only the (small) KPTI context-switch component remains.
        assert result.value("0ns", "docker_unpatched_gain") == (
            pytest.approx(1.0, rel=0.01)
        )

    def test_netfront_crossover_exists(self):
        """Enough ring overhead eventually erases the NGINX win —
        the sweep shows where."""
        from repro.experiments.sweep import sweep_netfront_cost

        result = sweep_netfront_cost()
        first = result.rows[0].values["nginx_vs_docker"]
        last = result.rows[-1].values["nginx_vs_docker"]
        assert first > 1.4
        assert last < 1.1
