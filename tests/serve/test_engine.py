"""The serving engine: determinism, chaos recovery, autoscaling."""

import pytest

from repro.guest.ipvs import IpvsMode
from repro.serve import get_scenario, run_serve, scenario_names
from repro.serve.scenario import (
    AutoscalerPolicy,
    ChaosOverlay,
    ServeScenario,
    SloPolicy,
)

#: An autoscaler that never acts: the up trigger is unreachable and the
#: utilization gate blocks every downscale.
FROZEN_AUTOSCALER = AutoscalerPolicy(
    min_backends=1,
    max_backends=64,
    up_p99_ms=1e6,
    down_p99_ms=1.0,
    down_utilization=0.0,
)


def small_scenario(mode, **overrides):
    defaults = dict(
        name="unit",
        description="unit-test fleet",
        mode=mode,
        backends=4,
        duration_ms=500.0,
        interval_ms=100.0,
        offered_load=0.5,
        shards=2,
        conns_per_shard=16,
        autoscaler=FROZEN_AUTOSCALER,
        slo=SloPolicy(p99_ms=50.0, recovery_window_ms=300.0),
        chaos=ChaosOverlay(
            start_ms=100.0, duration_ms=100.0, backend_kills=1
        ),
    )
    defaults.update(overrides)
    return ServeScenario(**defaults)


class TestDeterminism:
    def test_repeated_runs_are_byte_identical(self):
        first = run_serve("ci-small", seed=0).render()
        second = run_serve("ci-small", seed=0).render()
        assert first == second

    def test_serial_and_process_runs_are_byte_identical(self):
        serial = run_serve("ci-small", seed=42, workers=1).render()
        parallel = run_serve("ci-small", seed=42, workers=2).render()
        assert serial == parallel

    def test_different_seeds_differ(self):
        a = run_serve("ci-small", seed=0).render()
        b = run_serve("ci-small", seed=1).render()
        assert a != b

    def test_hybrid_and_stepped_engines_are_byte_identical(self):
        hybrid = run_serve("ci-small", seed=0, engine="hybrid")
        stepped = run_serve("ci-small", seed=0, engine="stepped")
        assert hybrid.render() == stepped.render()
        assert hybrid.as_dict() == stepped.as_dict()
        # The backend domains really executed guest code.
        fleet = hybrid.result.fleet_exec
        assert fleet["guest_instructions"] > 0
        assert fleet["units_completed"] > 0
        assert fleet["domains_spawned"] >= 4

    def test_catalog_is_wellformed(self):
        assert scenario_names() == ["ci-small", "fleet-100", "fleet-nat"]
        with pytest.raises(KeyError, match="unknown serve scenario"):
            get_scenario("nope")


class TestChaosRecovery:
    @pytest.mark.parametrize(
        "mode", [IpvsMode.NAT, IpvsMode.DIRECT_ROUTING]
    )
    def test_backend_death_errors_then_recovers(self, mode):
        result = run_serve(small_scenario(mode), seed=0).result
        assert result.ipvs_stats.backend_deaths == 1
        kill_rows = [r for r in result.intervals if r.errors > 0]
        # Errors are confined to the interval(s) where the death fired:
        # the director re-schedules orphaned connections at the next
        # boundary, so no later interval sees a dead backend.
        assert kill_rows
        assert all(r.t0_ms < 200.0 for r in kill_rows)
        assert result.reconnects > 0
        assert result.slo_ok
        assert result.conservation_ok
        assert result.recovery_ms is not None
        assert result.recovery_ms <= 300.0

    def test_survivors_absorb_the_dead_backends_load(self):
        result = run_serve(
            small_scenario(IpvsMode.DIRECT_ROUTING), seed=7
        ).result
        assert result.backends_final == 3
        last = result.intervals[-1]
        assert last.errors == 0
        assert last.p99_ms <= 50.0

    def test_fault_counters_reported(self):
        result = run_serve(small_scenario(IpvsMode.NAT), seed=0).result
        backend = result.fault_counters["xen.drivers.backend"]
        assert backend["injected"] == 1
        assert backend["recovered"] == 1
        assert backend["fatal"] == 0

    def test_packet_loss_retransmits_and_recovers(self):
        scenario = small_scenario(
            IpvsMode.NAT,
            chaos=ChaosOverlay(
                start_ms=100.0, duration_ms=200.0, packet_loss_p=0.2
            ),
        )
        result = run_serve(scenario, seed=0).result
        assert result.retransmits > 0
        assert result.errors == 0
        assert result.slo_ok
        loss_rows = [r for r in result.intervals if r.retransmits > 0]
        assert all(100.0 <= r.t0_ms < 300.0 for r in loss_rows)


class TestAutoscaler:
    def test_overload_scales_up(self):
        scenario = small_scenario(
            IpvsMode.DIRECT_ROUTING,
            offered_load=1.4,
            duration_ms=800.0,
            chaos=None,
            autoscaler=AutoscalerPolicy(
                min_backends=2,
                max_backends=12,
                up_p99_ms=20.0,
                down_p99_ms=2.0,
                down_utilization=0.3,
                up_step=2,
                cooldown_up_ms=100.0,
                spawn_delay_ms=100.0,
            ),
        )
        result = run_serve(scenario, seed=0).result
        ups = [d for d in result.decisions if d.direction == "up"]
        assert ups
        assert result.intervals[-1].provisioned > scenario.backends
        assert all(d.backends_after <= 12 for d in result.decisions)

    def test_overprovisioned_fleet_drains_down_without_errors(self):
        scenario = small_scenario(
            IpvsMode.DIRECT_ROUTING,
            backends=8,
            offered_load=0.05,
            duration_ms=800.0,
            chaos=None,
            autoscaler=AutoscalerPolicy(
                min_backends=2,
                max_backends=12,
                up_p99_ms=100.0,
                down_p99_ms=50.0,
                down_utilization=0.9,
                down_step=2,
                cooldown_down_ms=100.0,
            ),
        )
        result = run_serve(scenario, seed=0).result
        downs = [d for d in result.decisions if d.direction == "down"]
        assert downs
        assert result.backends_final < 8
        assert result.backends_final >= 2
        # Draining never resets a connection.
        assert result.errors == 0
        assert result.ipvs_stats.conns_failed == 0
        assert result.conservation_ok

    def test_no_chaos_slo_judged_on_overall_p99(self):
        result = run_serve(
            small_scenario(IpvsMode.NAT, chaos=None), seed=0
        ).result
        assert result.chaos_window_end_ms is None
        assert result.recovery_ms is None
        assert result.slo_ok


class TestAccounting:
    def test_request_totals_are_consistent(self):
        result = run_serve(small_scenario(IpvsMode.NAT), seed=0).result
        assert result.requests == sum(
            r.arrivals for r in result.intervals
        )
        assert result.completed == result.requests - result.errors
        assert result.simulated_rps > 0

    def test_report_dict_carries_the_contract_fields(self):
        report = run_serve(small_scenario(IpvsMode.NAT), seed=0)
        payload = report.as_dict()
        assert payload["scenario"] == "unit"
        assert payload["mode"] == "nat"
        assert payload["slo"]["ok"] is True
        assert payload["ipvs"]["conservation_ok"] is True
        assert len(payload["intervals"]) == 5
        assert payload["latency_ms"]["p50"] <= payload["latency_ms"]["p99"]

    def test_telemetry_histogram_matches_completions(self):
        report = run_serve(small_scenario(IpvsMode.NAT), seed=0)
        registry = report.result.telemetry.registry
        hist = registry.histogram("serve_request_latency_ns")
        assert hist.count == report.result.completed
