"""The traffic generator: arrival statistics and shard purity."""

from repro.perf.rand import DeterministicRng
from repro.serve.traffic import (
    SERVE_LATENCY_BUCKETS_NS,
    ShardConfig,
    ShardSnapshot,
    heavy_tail_factor,
    initial_shard_state,
    mix_tables,
    run_shard_interval,
)


def make_config(**overrides):
    defaults = dict(
        seed="test",
        shards=2,
        rate_rps=2000.0,
        tail_alpha=1.6,
        churn_p=1.0 / 24.0,
        mix_cum_weights=(0.7, 0.95, 1.0),
        mix_work=(0.6, 1.0, 4.0),
        backend_service_ns=1_200_000.0,
        director_service_ns=15_000.0,
        conn_setup_ns=80_000.0,
        retry_penalty_ns=2_000_000.0,
    )
    defaults.update(overrides)
    return ShardConfig(**defaults)


def make_snapshot(**overrides):
    defaults = dict(
        interval_idx=0,
        t0_ns=0.0,
        t1_ns=100e6,
        dead=frozenset(),
        loss_p=0.0,
        share_by_backend=(),
    )
    defaults.update(overrides)
    return ShardSnapshot(**defaults)


class TestHeavyTail:
    def test_factor_is_mean_one(self):
        # alpha=3 keeps the variance finite so the sample mean settles.
        rng = DeterministicRng("tail-mean")
        n = 50_000
        mean = sum(heavy_tail_factor(rng, 3.0) for _ in range(n)) / n
        assert abs(mean - 1.0) < 0.05

    def test_factor_lower_bound(self):
        # Pareto support starts at (alpha-1)/alpha.
        rng = DeterministicRng("tail-floor")
        alpha = 1.6
        floor = (alpha - 1.0) / alpha
        assert all(
            heavy_tail_factor(rng, alpha) >= floor for _ in range(2000)
        )


class TestMixTables:
    def test_cumulative_weights_close_at_one(self):
        cum, work = mix_tables(((0.7, 0.6), (0.25, 1.0), (0.05, 4.0)))
        assert cum[-1] == 1.0
        assert len(cum) == len(work) == 3
        assert work == (0.6, 1.0, 4.0)

    def test_weights_are_normalized(self):
        cum, _ = mix_tables(((7.0, 1.0), (3.0, 2.0)))
        assert abs(cum[0] - 0.7) < 1e-12
        assert cum[1] == 1.0


class TestShardInterval:
    def test_same_inputs_same_outputs(self):
        cfg = make_config()
        snap = make_snapshot()
        r1, s1 = run_shard_interval(
            cfg, 0, initial_shard_state([0, 1, 2, 3]), snap
        )
        r2, s2 = run_shard_interval(
            cfg, 0, initial_shard_state([0, 1, 2, 3]), snap
        )
        assert r1 == r2
        assert s1 == s2

    def test_streams_differ_across_shards_and_intervals(self):
        cfg = make_config()
        base, _ = run_shard_interval(
            cfg, 0, initial_shard_state([0, 1]), make_snapshot()
        )
        other_shard, _ = run_shard_interval(
            cfg, 1, initial_shard_state([0, 1]), make_snapshot()
        )
        other_iv, _ = run_shard_interval(
            cfg,
            0,
            initial_shard_state([0, 1]),
            make_snapshot(interval_idx=1, t0_ns=100e6, t1_ns=200e6),
        )
        assert base.arrivals != other_shard.arrivals or (
            base.lat_sum != other_shard.lat_sum
        )
        assert base.lat_sum != other_iv.lat_sum

    def test_dead_backend_errors_every_request(self):
        cfg = make_config()
        result, _ = run_shard_interval(
            cfg,
            0,
            initial_shard_state([7, 7, 7, 7]),
            make_snapshot(dead=frozenset({7})),
        )
        assert result.arrivals > 0
        assert result.errors == result.arrivals
        assert result.completed == 0

    def test_total_loss_retransmits_every_request(self):
        cfg = make_config()
        result, _ = run_shard_interval(
            cfg,
            0,
            initial_shard_state([0, 1]),
            make_snapshot(loss_p=0.999999),
        )
        assert result.completed > 0
        assert result.retransmits == result.completed

    def test_latency_counts_match_completions(self):
        cfg = make_config()
        result, _ = run_shard_interval(
            cfg, 0, initial_shard_state([0, 1, 2]), make_snapshot()
        )
        assert sum(result.lat_bucket_counts) == result.completed
        assert result.lat_count == result.completed
        assert result.lat_sum > 0

    def test_fresh_slots_cleared_after_first_use(self):
        cfg = make_config()
        _, state = run_shard_interval(
            cfg, 0, initial_shard_state([0, 1]), make_snapshot()
        )
        assert state.fresh == [False, False]

    def test_buckets_cover_subsecond_latencies(self):
        assert SERVE_LATENCY_BUCKETS_NS[0] == 50_000.0
        assert SERVE_LATENCY_BUCKETS_NS[-1] > 1e9
        edges = list(SERVE_LATENCY_BUCKETS_NS)
        assert edges == sorted(edges)
