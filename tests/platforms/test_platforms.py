import pytest

from repro.arch.assembler import Assembler
from repro.arch.registers import Reg
from repro.platforms import (
    ClearContainerPlatform,
    DockerPlatform,
    GraphenePlatform,
    GVisorPlatform,
    UnikernelPlatform,
    UnsupportedWorkload,
    XContainerPlatform,
    XenContainerPlatform,
    cloud_configurations,
    get_platform,
    platform_names,
)


class TestRegistry:
    def test_all_platforms_constructible(self):
        for name in platform_names():
            platform = get_platform(name)
            assert platform.syscall_cost_ns() > 0

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            get_platform("podman")

    def test_ten_cloud_configurations(self):
        """§5.1: five platforms, each patched and -unpatched."""
        configs = cloud_configurations()
        assert len(configs) == 10
        assert configs["docker"].patched
        assert not configs["docker-unpatched"].patched


class TestSyscallCosts:
    def test_fig4_cost_ordering(self):
        """The ordering every panel of Fig 4 rests on."""
        x = XContainerPlatform()
        clear = ClearContainerPlatform()
        docker = DockerPlatform()
        docker_unpatched = DockerPlatform(patched=False)
        xen = XenContainerPlatform()
        gvisor = GVisorPlatform()
        assert (
            x.syscall_cost_ns()
            < clear.syscall_cost_ns()
            < docker_unpatched.syscall_cost_ns()
            < docker.syscall_cost_ns()
            < xen.syscall_cost_ns()
            < gvisor.syscall_cost_ns()
        )

    def test_meltdown_patch_does_not_move_x_or_clear(self):
        """§5.4: the patch does not affect X-Containers or Clear
        Containers."""
        assert (
            XContainerPlatform(patched=True).syscall_cost_ns()
            == XContainerPlatform(patched=False).syscall_cost_ns()
        )
        assert (
            ClearContainerPlatform(patched=True).syscall_cost_ns()
            == ClearContainerPlatform(patched=False).syscall_cost_ns()
        )

    def test_meltdown_patch_hurts_docker_xen_gvisor(self):
        for cls in (DockerPlatform, XenContainerPlatform, GVisorPlatform):
            assert (
                cls(patched=True).syscall_cost_ns()
                > cls(patched=False).syscall_cost_ns()
            )

    def test_abom_disabled_x_container_still_beats_xen_pv(self):
        """§4.2: even unconverted syscalls skip the address-space switch."""
        x_no_abom = XContainerPlatform(abom_enabled=False)
        xen = XenContainerPlatform()
        assert x_no_abom.syscall_cost_ns() < xen.syscall_cost_ns()

    def test_converted_fraction_interpolates(self):
        none = XContainerPlatform(converted_fraction=0.0)
        full = XContainerPlatform(converted_fraction=1.0)
        half = XContainerPlatform(converted_fraction=0.5)
        assert none.syscall_cost_ns() > half.syscall_cost_ns() > (
            full.syscall_cost_ns()
        )


class TestCapabilities:
    def test_multicore_processing_flags(self):
        """§2.3's capability matrix."""
        assert DockerPlatform().multicore_processing
        assert XContainerPlatform().multicore_processing
        assert GraphenePlatform().multicore_processing
        assert not GVisorPlatform().multicore_processing
        assert not UnikernelPlatform().multicore_processing

    def test_unikernel_single_process(self):
        unikernel = UnikernelPlatform()
        unikernel.require_processes(1)
        with pytest.raises(UnsupportedWorkload):
            unikernel.require_processes(4)
        with pytest.raises(UnsupportedWorkload):
            unikernel.fork_cost_ns()

    def test_kernel_module_support(self):
        """§5.7: X-Containers can load modules, Docker/gVisor cannot."""
        assert XContainerPlatform().supports_kernel_modules
        assert XenContainerPlatform().supports_kernel_modules
        assert not DockerPlatform().supports_kernel_modules
        assert not GVisorPlatform().supports_kernel_modules

    def test_nested_virt_requirement(self):
        assert ClearContainerPlatform().needs_nested_hw_virt
        assert not XContainerPlatform().needs_nested_hw_virt

    def test_graphene_processes_validated(self):
        with pytest.raises(ValueError):
            GraphenePlatform(processes=0)

    def test_graphene_ipc_tax_with_multiple_processes(self):
        one = GraphenePlatform(processes=1)
        four = GraphenePlatform(processes=4)
        assert four.syscall_cost_ns() > one.syscall_cost_ns()


class TestLifecycleCosts:
    def test_x_container_fork_slower_than_docker(self):
        """§5.4: page-table operations must go through the X-Kernel."""
        assert (
            XContainerPlatform().fork_cost_ns()
            > DockerPlatform().fork_cost_ns()
        )

    def test_x_container_ctx_switch_slower_than_docker_unpatched(self):
        assert (
            XContainerPlatform().ctx_switch_cost_ns(4)
            > DockerPlatform(patched=False).ctx_switch_cost_ns(4)
        )

    def test_spawn_costs(self):
        assert DockerPlatform().spawn_ms() < XContainerPlatform().spawn_ms()
        assert (
            XContainerPlatform().spawn_ms()
            == XenContainerPlatform().spawn_ms()
        )


class TestEmulatedExecution:
    def _loop(self, n=50):
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, n)
        asm.label("loop")
        asm.syscall_site(39, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        return asm.build()

    def test_all_platforms_run_machine_code(self):
        binary = self._loop()
        for name in platform_names():
            run = get_platform(name).run_binary(binary)
            assert run.syscalls == 50
            assert run.elapsed_ns > 0

    def test_x_container_patches_during_run(self):
        binary = self._loop()
        x = XContainerPlatform()
        run = x.run_binary(binary)
        docker_run = DockerPlatform().run_binary(binary)
        assert run.elapsed_ns < docker_run.elapsed_ns

    def test_elapsed_scales_with_syscall_cost(self):
        binary = self._loop()
        gvisor = GVisorPlatform().run_binary(binary)
        docker = DockerPlatform().run_binary(binary)
        assert gvisor.elapsed_ns > 5 * docker.elapsed_ns
