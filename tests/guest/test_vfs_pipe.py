import errno

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.guest.pipe import Pipe, PipeError
from repro.guest.vfs import O_APPEND, O_CREAT, O_RDWR, O_TRUNC, O_WRONLY, RamFS, VfsError


class TestRamFS:
    def test_create_and_read(self):
        fs = RamFS()
        fs.create("/a", b"hello")
        handle = fs.open("/a")
        assert fs.read(handle, 10) == b"hello"

    def test_missing_file_enoent(self):
        fs = RamFS()
        with pytest.raises(VfsError) as excinfo:
            fs.open("/nope")
        assert excinfo.value.errno == errno.ENOENT

    def test_o_creat_creates(self):
        fs = RamFS()
        fs.open("/new", O_WRONLY | O_CREAT)
        assert fs.exists("/new")

    def test_umask_applied_on_create(self):
        fs = RamFS()
        fs.open("/m", O_WRONLY | O_CREAT, mode=0o666, umask=0o027)
        # mode & ~umask
        handle = fs.open("/m")
        assert handle.inode.mode == 0o640

    def test_truncate(self):
        fs = RamFS()
        fs.create("/t", b"longcontent")
        fs.open("/t", O_RDWR | O_TRUNC)
        assert fs.stat_size("/t") == 0

    def test_append_positions_at_end(self):
        fs = RamFS()
        fs.create("/log", b"abc")
        handle = fs.open("/log", O_WRONLY | O_APPEND)
        fs.write(handle, b"def")
        assert bytes(fs._lookup("/log").data) == b"abcdef"

    def test_read_from_writeonly_ebadf(self):
        fs = RamFS()
        fs.create("/w", b"x")
        handle = fs.open("/w", O_WRONLY)
        with pytest.raises(VfsError) as excinfo:
            fs.read(handle, 1)
        assert excinfo.value.errno == errno.EBADF

    def test_write_to_readonly_ebadf(self):
        fs = RamFS()
        fs.create("/r", b"x")
        handle = fs.open("/r")
        with pytest.raises(VfsError):
            fs.write(handle, b"y")

    def test_offset_advances(self):
        fs = RamFS()
        fs.create("/f", b"abcdef")
        handle = fs.open("/f")
        assert fs.read(handle, 3) == b"abc"
        assert fs.read(handle, 3) == b"def"
        assert fs.read(handle, 3) == b""

    def test_lseek(self):
        fs = RamFS()
        fs.create("/f", b"abcdef")
        handle = fs.open("/f")
        fs.lseek(handle, 4)
        assert fs.read(handle, 2) == b"ef"
        with pytest.raises(VfsError):
            fs.lseek(handle, -1)

    def test_sparse_write_zero_fills(self):
        fs = RamFS()
        handle = fs.open("/s", O_RDWR | O_CREAT)
        fs.lseek(handle, 4)
        fs.write(handle, b"x")
        assert bytes(fs._lookup("/s").data) == b"\x00\x00\x00\x00x"

    def test_unlink(self):
        fs = RamFS()
        fs.create("/a")
        fs.unlink("/a")
        assert not fs.exists("/a")
        with pytest.raises(VfsError):
            fs.unlink("/a")

    @given(st.binary(max_size=4096), st.integers(1, 512))
    def test_roundtrip_chunked(self, payload, chunk):
        fs = RamFS()
        fs.create("/data", payload)
        handle = fs.open("/data")
        out = bytearray()
        while True:
            piece = fs.read(handle, chunk)
            if not piece:
                break
            out += piece
        assert bytes(out) == payload


class TestPipe:
    def test_write_then_read(self):
        pipe = Pipe()
        assert pipe.write(b"hello") == 5
        assert pipe.read(5) == b"hello"

    def test_capacity_limits_write(self):
        pipe = Pipe(capacity=4)
        assert pipe.write(b"abcdef") == 4
        assert pipe.read(10) == b"abcd"

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Pipe(capacity=0)

    def test_read_more_than_buffered(self):
        pipe = Pipe()
        pipe.write(b"ab")
        assert pipe.read(10) == b"ab"
        assert pipe.read(10) == b""

    def test_partial_chunk_reads(self):
        pipe = Pipe()
        pipe.write(b"abcdef")
        assert pipe.read(2) == b"ab"
        assert pipe.read(2) == b"cd"
        assert pipe.buffered == 2

    def test_epipe_after_reader_closes(self):
        pipe = Pipe()
        pipe.close_read()
        with pytest.raises(PipeError) as excinfo:
            pipe.write(b"x")
        assert excinfo.value.errno == errno.EPIPE

    def test_eof_after_writer_closes(self):
        pipe = Pipe()
        pipe.write(b"x")
        pipe.close_write()
        assert not pipe.eof
        assert pipe.read(1) == b"x"
        assert pipe.eof

    def test_counters(self):
        pipe = Pipe()
        pipe.write(b"abc")
        pipe.read(2)
        assert pipe.bytes_written == 3
        assert pipe.bytes_read == 2

    @given(st.lists(st.binary(min_size=1, max_size=200), max_size=20))
    def test_fifo_order_preserved(self, chunks):
        pipe = Pipe(capacity=1 << 16)
        expected = bytearray()
        for chunk in chunks:
            accepted = pipe.write(chunk)
            expected += chunk[:accepted]
        out = pipe.read(len(expected) + 10)
        assert out == bytes(expected)
