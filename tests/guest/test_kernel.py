import errno

import pytest

from repro.guest.config import KernelConfig
from repro.guest.kernel import SYS, GuestKernel, HypercallMmu, NativeMmu
from repro.guest.process import ProcessState
from repro.guest.vfs import O_CREAT, O_RDWR, VfsError
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


def make_kernel(**kwargs):
    clock = SimClock()
    kernel = GuestKernel(clock=clock, **kwargs)
    return kernel, clock


class TestProcessLifecycle:
    def test_spawn(self):
        kernel, _ = make_kernel()
        proc = kernel.spawn("init")
        assert proc.pid == 1
        assert kernel.nr_processes == 1

    def test_fork_clones(self):
        kernel, _ = make_kernel()
        parent = kernel.spawn("nginx")
        child = kernel.fork(parent.pid)
        assert child.ppid == parent.pid
        assert child.name == "nginx"
        assert child.pid in parent.children
        assert child.aspace.asid != parent.aspace.asid
        assert child.aspace.pt_pages == parent.aspace.pt_pages

    def test_fork_shares_fd_table_snapshot(self):
        kernel, _ = make_kernel()
        parent = kernel.spawn("p")
        fd = kernel.open(parent.pid, "/f", O_RDWR | O_CREAT)
        child = kernel.fork(parent.pid)
        kernel.write(child.pid, fd, b"from child")
        handle = parent.fds[fd]
        assert handle.inode.data == bytearray(b"from child")

    def test_fork_charges_base_plus_pt_pages(self):
        kernel, clock = make_kernel()
        parent = kernel.spawn("p")
        before = clock.now_ns
        kernel.fork(parent.pid)
        costs = CostModel()
        expected = (
            costs.fork_base_ns
            + parent.aspace.pt_pages * costs.fork_per_pt_page_ns
        )
        assert clock.now_ns - before == pytest.approx(expected)

    def test_exec_rebuilds_address_space(self):
        kernel, _ = make_kernel()
        proc = kernel.spawn("sh")
        old_asid = proc.aspace.asid
        kernel.execve(proc.pid, "ls")
        assert proc.name == "ls"
        assert proc.aspace.asid != old_asid
        assert kernel.stats.execs == 1

    def test_exit_and_wait(self):
        kernel, _ = make_kernel()
        parent = kernel.spawn("p")
        child = kernel.fork(parent.pid)
        kernel.exit(child.pid, 7)
        assert child.state is ProcessState.ZOMBIE
        assert kernel.waitpid(parent.pid, child.pid) == 7
        assert kernel.nr_processes == 1

    def test_wait_for_running_child_eagain(self):
        kernel, _ = make_kernel()
        parent = kernel.spawn("p")
        child = kernel.fork(parent.pid)
        with pytest.raises(VfsError) as excinfo:
            kernel.waitpid(parent.pid, child.pid)
        assert excinfo.value.errno == errno.EAGAIN

    def test_wait_for_non_child_echild(self):
        kernel, _ = make_kernel()
        a = kernel.spawn("a")
        b = kernel.spawn("b")
        with pytest.raises(VfsError):
            kernel.waitpid(a.pid, b.pid)

    def test_unknown_pid(self):
        kernel, _ = make_kernel()
        with pytest.raises(KeyError):
            kernel.process(42)


class TestMmuBackends:
    def test_hypercall_mmu_costs_more(self):
        """§5.4: PT updates through the hypervisor make fork slower."""
        costs = CostModel()
        clock_n, clock_h = SimClock(), SimClock()
        native = GuestKernel(
            costs=costs, clock=clock_n, mmu=NativeMmu(costs, clock_n)
        )
        hyper = GuestKernel(
            costs=costs, clock=clock_h, mmu=HypercallMmu(costs, clock_h)
        )
        for kernel in (native, hyper):
            parent = kernel.spawn("p")
            kernel.fork(parent.pid)
        assert clock_h.now_ns > clock_n.now_ns

    def test_hypercall_mmu_hook_forwards(self):
        seen = []
        costs = CostModel()
        mmu = HypercallMmu(costs, mmu_update=seen.append)
        mmu.pt_update(5)
        assert seen == [5]
        assert mmu.updates == 5

    def test_runqueue_knows_about_hypercall_mmu(self):
        costs = CostModel()
        hyper = GuestKernel(costs=costs, mmu=HypercallMmu(costs))
        native = GuestKernel(costs=costs, mmu=NativeMmu(costs))
        assert (
            hyper.runqueue.switch_cost_ns(4)
            > native.runqueue.switch_cost_ns(4)
        )


class TestFileSyscalls:
    def test_open_read_write_close(self):
        kernel, _ = make_kernel()
        proc = kernel.spawn("p")
        fd = kernel.open(proc.pid, "/data", O_RDWR | O_CREAT)
        assert kernel.write(proc.pid, fd, b"abc") == 3
        handle = proc.fds[fd]
        handle.offset = 0
        assert kernel.read(proc.pid, fd, 3) == b"abc"
        kernel.close(proc.pid, fd)
        with pytest.raises(VfsError):
            kernel.read(proc.pid, fd, 1)

    def test_dup_shares_offset(self):
        kernel, _ = make_kernel()
        proc = kernel.spawn("p")
        fd = kernel.open(proc.pid, "/d", O_RDWR | O_CREAT)
        dup = kernel.dup(proc.pid, fd)
        kernel.write(proc.pid, fd, b"xy")
        assert proc.fds[dup].offset == 2  # same open-file description

    def test_pipe_between_processes(self):
        kernel, _ = make_kernel()
        parent = kernel.spawn("p")
        rfd, wfd = kernel.pipe(parent.pid)
        child = kernel.fork(parent.pid)
        kernel.write(child.pid, wfd, b"ping")
        assert kernel.read(parent.pid, rfd, 4) == b"ping"

    def test_pipe_direction_enforced(self):
        kernel, _ = make_kernel()
        proc = kernel.spawn("p")
        rfd, wfd = kernel.pipe(proc.pid)
        with pytest.raises(VfsError):
            kernel.write(proc.pid, rfd, b"x")
        with pytest.raises(VfsError):
            kernel.read(proc.pid, wfd, 1)

    def test_umask(self):
        kernel, _ = make_kernel()
        proc = kernel.spawn("p")
        old = kernel.umask(proc.pid, 0o077)
        assert old == 0o022
        assert proc.umask == 0o077

    def test_io_charges_copy_costs(self):
        kernel, clock = make_kernel()
        proc = kernel.spawn("p")
        fd = kernel.open(proc.pid, "/big", O_RDWR | O_CREAT)
        before = clock.now_ns
        kernel.write(proc.pid, fd, b"z" * 10000)
        assert clock.now_ns - before >= 10000 * CostModel().copy_per_byte_ns


class TestEmulatorServices:
    class FakeCpu:
        def __init__(self):
            from repro.arch.registers import RegisterFile

            self.regs = RegisterFile()
            self.halted = False

    def test_getpid_getuid(self):
        kernel, _ = make_kernel()
        cpu = self.FakeCpu()
        pid = kernel.invoke(SYS["getpid"], cpu)
        assert pid >= 1
        assert kernel.invoke(SYS["getuid"], cpu) == 0

    def test_dup_close_cycle(self):
        kernel, _ = make_kernel()
        cpu = self.FakeCpu()
        cpu.regs.write64(7, 0)  # rdi = fd 0
        new_fd = kernel.invoke(SYS["dup"], cpu)
        assert new_fd > 2
        cpu.regs.write64(7, new_fd)
        assert kernel.invoke(SYS["close"], cpu) == 0
        assert kernel.invoke(SYS["close"], cpu) == -errno.EBADF

    def test_exit_halts_cpu(self):
        kernel, _ = make_kernel()
        cpu = self.FakeCpu()
        cpu.regs.write64(7, 3)
        assert kernel.invoke(SYS["exit"], cpu) == 3
        assert cpu.halted

    def test_unknown_syscall_is_counted_noop(self):
        kernel, _ = make_kernel()
        cpu = self.FakeCpu()
        assert kernel.invoke(300, cpu) == 0
        assert kernel.stats.syscalls == 1

    def test_fork_via_emulator(self):
        kernel, _ = make_kernel()
        cpu = self.FakeCpu()
        child_pid = kernel.invoke(SYS["fork"], cpu)
        assert child_pid == 2
