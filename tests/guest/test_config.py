import pytest

from repro.guest.config import KernelConfig


class TestKernelConfig:
    def test_defaults(self):
        config = KernelConfig()
        assert config.smp
        assert config.kpti
        assert config.kernel_work_factor() == 1.0

    def test_nosmp_forces_one_cpu(self):
        config = KernelConfig(smp=False, nr_cpus=8)
        assert config.nr_cpus == 1

    def test_bad_cpu_count_rejected(self):
        with pytest.raises(ValueError):
            KernelConfig(nr_cpus=0)

    def test_single_concern_tuning_helps(self):
        """§3.2: dedicating and tuning the kernel unlocks performance."""
        tuned = KernelConfig(single_concern_tuned=True)
        assert tuned.kernel_work_factor() < 1.0

    def test_nosmp_compounds_with_tuning(self):
        """§3.2: disabling SMP removes locking and TLB shootdowns."""
        tuned = KernelConfig(single_concern_tuned=True)
        tuned_up = KernelConfig(single_concern_tuned=True, smp=False)
        assert tuned_up.kernel_work_factor() < tuned.kernel_work_factor()

    def test_netstack_factor_strongest_for_dedicated_kernels(self):
        shared = KernelConfig()
        tuned = KernelConfig(single_concern_tuned=True)
        assert tuned.netstack_factor() < shared.netstack_factor()

    def test_host_default_cannot_load_modules(self):
        assert not KernelConfig.host_default().modules_allowed

    def test_xlibos_profile(self):
        config = KernelConfig.xlibos()
        assert config.single_concern_tuned
        assert config.modules_allowed
        assert not config.kpti  # nothing left to protect (§4.2)

    def test_clear_guest_always_unpatched(self):
        assert not KernelConfig.clear_guest().kpti
