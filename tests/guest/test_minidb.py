import pytest

from repro.guest.minidb import MiniDB, SqlError, serve_query
from repro.perf.clock import SimClock


@pytest.fixture
def db():
    engine = MiniDB()
    engine.execute("CREATE TABLE kv (k, v)")
    engine.execute("INSERT INTO kv VALUES ('alpha', 1)")
    engine.execute("INSERT INTO kv VALUES ('beta', 2)")
    return engine


class TestDdlAndInsert:
    def test_create_duplicate_rejected(self, db):
        with pytest.raises(SqlError):
            db.execute("CREATE TABLE kv (a)")

    def test_create_needs_columns(self):
        with pytest.raises(SqlError):
            MiniDB().execute("CREATE TABLE empty ()")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SqlError):
            MiniDB().execute("CREATE TABLE t (a, a)")

    def test_insert_arity_checked(self, db):
        with pytest.raises(SqlError):
            db.execute("INSERT INTO kv VALUES (1)")

    def test_insert_into_missing_table(self):
        with pytest.raises(SqlError):
            MiniDB().execute("INSERT INTO nope VALUES (1)")

    def test_string_values_with_commas(self, db):
        db.execute("INSERT INTO kv VALUES ('a,b', 3)")
        assert db.execute("SELECT v FROM kv WHERE k = 'a,b'") == [(3,)]


class TestSelect:
    def test_select_star(self, db):
        rows = db.execute("SELECT * FROM kv")
        assert rows == [("alpha", 1), ("beta", 2)]

    def test_select_column_with_where(self, db):
        assert db.execute("SELECT v FROM kv WHERE k = 'beta'") == [(2,)]

    def test_select_no_match(self, db):
        assert db.execute("SELECT v FROM kv WHERE k = 'gamma'") == []

    def test_where_on_int_column(self, db):
        assert db.execute("SELECT k FROM kv WHERE v = 1") == [("alpha",)]

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SqlError):
            db.execute("SELECT nope FROM kv")


class TestUpdateDelete:
    def test_update_with_where(self, db):
        count = db.execute("UPDATE kv SET v = 10 WHERE k = 'alpha'")
        assert count == 1
        assert db.execute("SELECT v FROM kv WHERE k = 'alpha'") == [(10,)]

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE kv SET v = 0") == 2

    def test_delete_with_where(self, db):
        assert db.execute("DELETE FROM kv WHERE k = 'alpha'") == 1
        assert db.execute("SELECT * FROM kv") == [("beta", 2)]

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM kv") == 2
        assert db.execute("SELECT * FROM kv") == []


class TestEngineBehaviour:
    def test_unparseable_statement(self, db):
        with pytest.raises(SqlError):
            db.execute("DROP TABLE kv")

    def test_stats(self, db):
        db.execute("SELECT * FROM kv")
        assert db.stats.reads == 1
        assert db.stats.writes == 3  # create + 2 inserts
        assert db.stats.queries == 4

    def test_query_cost_charged(self):
        clock = SimClock()
        engine = MiniDB(clock)
        engine.execute("CREATE TABLE t (a)")
        assert clock.now_ns == pytest.approx(MiniDB.QUERY_COST_NS)


class TestWireProtocol:
    def test_ok_response(self, db):
        reply = serve_query(db, b"QUERY INSERT INTO kv VALUES ('c', 3)")
        assert reply == b"OK 1"

    def test_rows_response(self, db):
        reply = serve_query(db, b"QUERY SELECT v FROM kv WHERE k = 'beta'")
        assert reply == b"ROWS 2"

    def test_error_response(self, db):
        reply = serve_query(db, b"QUERY SELECT nope FROM kv")
        assert reply.startswith(b"ERR ")

    def test_bad_frame(self, db):
        assert serve_query(db, b"PING") == b"ERR bad request"
