import pytest

from repro.guest.process import AddressSpace, Process, ProcessState
from repro.guest.sched import RunQueue
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


def make_proc(pid):
    return Process(pid, 0, f"p{pid}", AddressSpace(pid))


class TestSwitchCost:
    def test_grows_with_queue_depth(self):
        rq = RunQueue()
        assert rq.switch_cost_ns(400) > rq.switch_cost_ns(4)

    def test_kpti_adds_cost(self):
        assert (
            RunQueue(kpti=True).switch_cost_ns(4)
            > RunQueue(kpti=False).switch_cost_ns(4)
        )

    def test_global_mappings_spare_kernel_refill(self):
        """§4.3: the global bit keeps kernel TLB entries across
        intra-container switches."""
        costs = CostModel()
        with_global = RunQueue(costs, global_kernel_mappings=True)
        without = RunQueue(costs, global_kernel_mappings=False)
        diff = without.switch_cost_ns(4) - with_global.switch_cost_ns(4)
        assert diff == pytest.approx(costs.tlb_kernel_refill_ns)

    def test_mmu_hypercall_component(self):
        costs = CostModel()
        rq = RunQueue(costs, mmu_hypercall_ns=1350.0)
        breakdown = rq.switch_cost(4)
        assert breakdown.mmu_ns == 1350.0

    def test_cache_pollution_linear_in_tasks(self):
        costs = CostModel()
        rq = RunQueue(costs)
        b100 = rq.switch_cost(100)
        b200 = rq.switch_cost(200)
        assert b200.cache_ns == pytest.approx(2 * b100.cache_ns)

    def test_context_switch_charges_clock(self):
        clock = SimClock()
        rq = RunQueue()
        rq.add(make_proc(1))
        rq.add(make_proc(2))
        cost = rq.context_switch(clock)
        assert clock.now_ns == pytest.approx(cost)
        assert rq.switches == 1


class TestEffectiveCapacity:
    def test_undersubscribed_full_capacity(self):
        rq = RunQueue()
        for pid in range(4):
            rq.add(make_proc(pid))
        assert rq.effective_capacity(1e9, cpus=8) == 8e9

    def test_oversubscription_costs_capacity(self):
        rq = RunQueue()
        assert rq.effective_capacity(1e9, 8, nr_running=80) < 8e9

    def test_more_tasks_less_capacity(self):
        """The Fig 8 decay: capacity shrinks as the flat queue grows."""
        rq = RunQueue()
        capacities = [
            rq.effective_capacity(1e9, 32, nr_running=n)
            for n in (100, 400, 1600)
        ]
        assert capacities[0] > capacities[1] > capacities[2]

    def test_zombies_not_runnable(self):
        rq = RunQueue()
        proc = make_proc(1)
        rq.add(proc)
        proc.state = ProcessState.ZOMBIE
        assert rq.nr_running == 0

    def test_capacity_never_negative(self):
        rq = RunQueue()
        assert rq.effective_capacity(1e3, 1, nr_running=100000) >= 0.0
