import pytest

from repro.guest.kernel import SYS, GuestKernel
from repro.guest.process import ProcessState
from repro.guest.signals import (
    SIGCHLD,
    SIGINT,
    SIGKILL,
    SIGTERM,
    SIGUSR1,
    Disposition,
    SignalError,
    SignalSubsystem,
)


def make_subsystem():
    killed = []
    subsystem = SignalSubsystem(
        terminate=lambda pid, sig: killed.append((pid, sig))
    )
    return subsystem, killed


class TestDispositions:
    def test_handler_runs(self):
        subsystem, _ = make_subsystem()
        seen = []
        subsystem.sigaction(1, SIGUSR1, Disposition.HANDLER, seen.append)
        subsystem.kill(1, SIGUSR1)
        assert seen == [SIGUSR1]
        assert subsystem.state(1).delivered == 1

    def test_default_fatal_terminates(self):
        subsystem, killed = make_subsystem()
        subsystem.kill(1, SIGTERM)
        assert killed == [(1, SIGTERM)]

    def test_default_sigchld_ignored(self):
        subsystem, killed = make_subsystem()
        subsystem.kill(1, SIGCHLD)
        assert killed == []

    def test_ignore_disposition(self):
        subsystem, killed = make_subsystem()
        subsystem.sigaction(1, SIGTERM, Disposition.IGNORE)
        subsystem.kill(1, SIGTERM)
        assert killed == []

    def test_sigkill_cannot_be_caught(self):
        subsystem, _ = make_subsystem()
        with pytest.raises(SignalError):
            subsystem.sigaction(
                1, SIGKILL, Disposition.HANDLER, lambda s: None
            )

    def test_handler_requires_callable(self):
        subsystem, _ = make_subsystem()
        with pytest.raises(SignalError):
            subsystem.sigaction(1, SIGUSR1, Disposition.HANDLER, None)

    def test_invalid_signal_rejected(self):
        subsystem, _ = make_subsystem()
        with pytest.raises(SignalError):
            subsystem.kill(1, 0)
        with pytest.raises(SignalError):
            subsystem.kill(1, 64)


class TestMasking:
    def test_blocked_signal_becomes_pending(self):
        subsystem, _ = make_subsystem()
        seen = []
        subsystem.sigaction(1, SIGUSR1, Disposition.HANDLER, seen.append)
        subsystem.block(1, SIGUSR1)
        subsystem.kill(1, SIGUSR1)
        assert seen == []
        assert subsystem.state(1).pending

    def test_unblock_delivers_pending(self):
        subsystem, _ = make_subsystem()
        seen = []
        subsystem.sigaction(1, SIGUSR1, Disposition.HANDLER, seen.append)
        subsystem.block(1, SIGUSR1)
        subsystem.kill(1, SIGUSR1)
        subsystem.unblock(1, SIGUSR1)
        assert seen == [SIGUSR1]

    def test_sigkill_cannot_be_blocked(self):
        subsystem, _ = make_subsystem()
        with pytest.raises(SignalError):
            subsystem.block(1, SIGKILL)


class TestSigreturn:
    """The __restore_rt / rt_sigreturn path of Figure 2."""

    def test_handler_blocks_own_signal_until_sigreturn(self):
        subsystem, _ = make_subsystem()
        seen = []
        subsystem.sigaction(1, SIGUSR1, Disposition.HANDLER, seen.append)
        subsystem.kill(1, SIGUSR1)
        # While "inside" the handler the signal is masked...
        subsystem.kill(1, SIGUSR1)
        assert seen == [SIGUSR1]
        # ...and rt_sigreturn restores the mask and delivers the pending
        # instance.
        subsystem.sigreturn(1)
        assert seen == [SIGUSR1, SIGUSR1]
        assert subsystem.state(1).sigreturns == 1

    def test_sigreturn_without_context_rejected(self):
        subsystem, _ = make_subsystem()
        with pytest.raises(SignalError):
            subsystem.sigreturn(1)

    def test_nested_handlers(self):
        subsystem, _ = make_subsystem()
        order = []
        subsystem.sigaction(
            1, SIGUSR1, Disposition.HANDLER, lambda s: order.append("usr1")
        )
        subsystem.sigaction(
            1, SIGINT, Disposition.HANDLER, lambda s: order.append("int")
        )
        subsystem.kill(1, SIGUSR1)
        subsystem.kill(1, SIGINT)  # different signal: nests
        assert order == ["usr1", "int"]
        assert len(subsystem.state(1).saved) == 2
        subsystem.sigreturn(1)
        subsystem.sigreturn(1)
        assert subsystem.state(1).saved == []


class TestKernelIntegration:
    def test_fatal_signal_zombifies_process(self):
        kernel = GuestKernel()
        proc = kernel.spawn("victim")
        kernel.signals.kill(proc.pid, SIGTERM)
        assert proc.state is ProcessState.ZOMBIE
        assert proc.exit_code == 128 + SIGTERM

    def test_rt_sigreturn_syscall_wired(self):
        from repro.arch.registers import RegisterFile

        class FakeCpu:
            def __init__(self):
                self.regs = RegisterFile()
                self.halted = False

        kernel = GuestKernel()
        cpu = FakeCpu()
        kernel.invoke(SYS["getpid"], cpu)  # materialize the process
        pid = next(iter(kernel._procs))
        seen = []
        kernel.signals.sigaction(
            pid, SIGUSR1, Disposition.HANDLER, seen.append
        )
        kernel.signals.kill(pid, SIGUSR1)
        assert kernel.invoke(SYS["rt_sigreturn"], cpu) == 0
        assert kernel.signals.state(pid).sigreturns == 1
