import pytest

from repro.guest.seccomp import (
    SeccompAction,
    SeccompViolation,
    docker_default_profile,
    evaluate_policy,
    tailored_profile,
)
from repro.workloads.apps import TABLE1_APPS
from repro.xen.hypercalls import XEN_HYPERCALL_SURFACE


def app_needs():
    """Syscall numbers each Table 1 application actually uses."""
    needs = {}
    for app in TABLE1_APPS:
        needs[app.name] = {site.nr for site in app.sites}
    return needs


class TestFilterMechanics:
    def test_allowed_passes(self):
        f = tailored_profile("x", {0, 1})
        f.check(0)
        assert f.checks == 1
        assert f.violations == []

    def test_blocked_raises(self):
        f = tailored_profile("x", {0})
        with pytest.raises(SeccompViolation) as excinfo:
            f.check(59)
        assert excinfo.value.nr == 59
        assert excinfo.value.action is SeccompAction.ERRNO
        assert f.violations == [59]

    def test_breaks_and_residual(self):
        f = tailored_profile("x", {0, 1, 2})
        assert f.breaks({0, 5}) == {5}
        assert f.residual_surface({0}) == 2


class TestPolicyDilemma:
    """§6.1 quantified over the Table 1 corpus."""

    def test_docker_default_keeps_apps_working_but_open(self):
        dilemma = evaluate_policy(docker_default_profile(), app_needs())
        # The generic profile breaks nothing...
        assert dilemma.apps_broken == []
        # ...precisely because it leaves hundreds of syscalls open that
        # each individual app never uses.
        assert dilemma.mean_residual_surface > 250
        assert dilemma.surface_reduction < 0.2

    def test_tailored_profile_minimal_but_fragile(self):
        needs = app_needs()
        nginx = tailored_profile("nginx", needs["nginx"])
        assert nginx.breaks(needs["nginx"]) == set()
        assert nginx.residual_surface(needs["nginx"]) == 0
        # The same tailored profile breaks a different app: you cannot
        # define one policy "for arbitrary, previously unknown
        # applications".
        broken_elsewhere = [
            name for name, other in needs.items()
            if nginx.breaks(other)
        ]
        assert broken_elsewhere  # at least one other app breaks

    def test_x_container_interface_beats_any_seccomp_outcome(self):
        """Even the generous Docker profile leaves far more interface
        than the X-Kernel's hypercall surface (§3.4)."""
        profile = docker_default_profile()
        assert len(profile.allowed) > 10 * XEN_HYPERCALL_SURFACE
