import errno

import pytest

from repro.guest.kernel import GuestKernel
from repro.guest.socket import (
    SocketError,
    SocketLayer,
    SocketState,
    VirtualNetwork,
)
from repro.perf.clock import SimClock


def make_pair():
    """A server kernel and a client kernel on one virtual network."""
    clock = SimClock()
    network = VirtualNetwork(clock=clock)
    server_kernel = GuestKernel(clock=clock)
    client_kernel = GuestKernel(clock=clock)
    server = SocketLayer(server_kernel, network)
    client = SocketLayer(client_kernel, network)
    server_pid = server_kernel.spawn("server").pid
    client_pid = client_kernel.spawn("client").pid
    return network, clock, (server, server_pid), (client, client_pid)


def make_connection():
    network, clock, (server, spid), (client, cpid) = make_pair()
    listen_fd = server.socket(spid)
    server.bind(spid, listen_fd, ("10.0.0.1", 80))
    server.listen(spid, listen_fd)
    client_fd = client.socket(cpid)
    client.connect(cpid, client_fd, ("10.0.0.1", 80))
    conn_fd = server.accept(spid, listen_fd)
    return network, clock, (server, spid, conn_fd), (client, cpid, client_fd)


class TestLifecycle:
    def test_connect_accept(self):
        network, _, (server, spid, conn_fd), (client, cpid, cfd) = (
            make_connection()
        )
        assert network.connections == 1
        assert server._sock(spid, conn_fd).state is SocketState.CONNECTED
        assert client._sock(cpid, cfd).state is SocketState.CONNECTED

    def test_connect_refused_without_listener(self):
        _, _, _, (client, cpid) = make_pair()
        fd = client.socket(cpid)
        with pytest.raises(SocketError) as excinfo:
            client.connect(cpid, fd, ("10.9.9.9", 80))
        assert excinfo.value.errno == errno.ECONNREFUSED

    def test_address_in_use(self):
        _, _, (server, spid), _ = make_pair()
        fd1 = server.socket(spid)
        server.bind(spid, fd1, ("10.0.0.1", 80))
        server.listen(spid, fd1)
        fd2 = server.socket(spid)
        server.bind(spid, fd2, ("10.0.0.1", 80))
        with pytest.raises(SocketError) as excinfo:
            server.listen(spid, fd2)
        assert excinfo.value.errno == errno.EADDRINUSE

    def test_accept_without_pending_eagain(self):
        _, _, (server, spid), _ = make_pair()
        fd = server.socket(spid)
        server.bind(spid, fd, ("10.0.0.1", 80))
        server.listen(spid, fd)
        with pytest.raises(SocketError) as excinfo:
            server.accept(spid, fd)
        assert excinfo.value.errno == errno.EAGAIN

    def test_listen_requires_bind(self):
        _, _, (server, spid), _ = make_pair()
        fd = server.socket(spid)
        with pytest.raises(SocketError):
            server.listen(spid, fd)

    def test_close_unregisters_listener(self):
        _, _, (server, spid), (client, cpid) = make_pair()
        fd = server.socket(spid)
        server.bind(spid, fd, ("10.0.0.1", 80))
        server.listen(spid, fd)
        server.close(spid, fd)
        cfd = client.socket(cpid)
        with pytest.raises(SocketError):
            client.connect(cpid, cfd, ("10.0.0.1", 80))


class TestDataPath:
    def test_request_response_across_kernels(self):
        _, _, (server, spid, conn_fd), (client, cpid, cfd) = (
            make_connection()
        )
        client.send(cpid, cfd, b"GET / HTTP/1.1")
        request = server.recv(spid, conn_fd, 1024)
        assert request == b"GET / HTTP/1.1"
        server.send(spid, conn_fd, b"200 OK")
        assert client.recv(cpid, cfd, 1024) == b"200 OK"

    def test_partial_and_ordered_recv(self):
        _, _, (server, spid, conn_fd), (client, cpid, cfd) = (
            make_connection()
        )
        client.send(cpid, cfd, b"abc")
        client.send(cpid, cfd, b"def")
        assert server.recv(spid, conn_fd, 2) == b"ab"
        assert server.recv(spid, conn_fd, 10) == b"cdef"
        assert server.recv(spid, conn_fd, 10) == b""

    def test_send_on_unconnected_socket(self):
        _, _, (server, spid), _ = make_pair()
        fd = server.socket(spid)
        with pytest.raises(SocketError) as excinfo:
            server.send(spid, fd, b"x")
        assert excinfo.value.errno == errno.ENOTCONN

    def test_send_to_closed_peer_epipe(self):
        _, _, (server, spid, conn_fd), (client, cpid, cfd) = (
            make_connection()
        )
        client.close(cpid, cfd)
        with pytest.raises(SocketError) as excinfo:
            server.send(spid, conn_fd, b"x")
        assert excinfo.value.errno == errno.EPIPE

    def test_traffic_charges_the_clock(self):
        _, clock, (server, spid, conn_fd), (client, cpid, cfd) = (
            make_connection()
        )
        before = clock.now_ns
        client.send(cpid, cfd, b"x" * 1000)
        server.recv(spid, conn_fd, 1000)
        assert clock.now_ns > before

    def test_network_accounting(self):
        network, _, (server, spid, conn_fd), (client, cpid, cfd) = (
            make_connection()
        )
        client.send(cpid, cfd, b"12345")
        assert network.bytes_carried == 5

    def test_bad_fd(self):
        _, _, (server, spid), _ = make_pair()
        with pytest.raises(SocketError):
            server.send(spid, 42, b"x")
