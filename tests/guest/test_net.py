import pytest

from repro.guest.config import KernelConfig
from repro.guest.ipvs import IPVS, IpvsMode
from repro.guest.modules import KNOWN_MODULES, ModuleLoadError, ModuleRegistry
from repro.guest.netfilter import Netfilter
from repro.guest.netstack import NetDevice, NetStack
from repro.perf.costs import CostModel


class TestModules:
    def test_load_known_module(self):
        registry = ModuleRegistry(allowed=True)
        registry.load("ip_vs")
        assert registry.is_loaded("ip_vs")

    def test_docker_cannot_load(self):
        """§5.7: module loading needs root on the host kernel."""
        registry = ModuleRegistry(allowed=False)
        with pytest.raises(ModuleLoadError):
            registry.load("ip_vs")

    def test_unknown_module_rejected(self):
        with pytest.raises(KeyError):
            ModuleRegistry().load("floppy")

    def test_require(self):
        registry = ModuleRegistry()
        with pytest.raises(ModuleLoadError):
            registry.require("ip_vs")
        registry.load("ip_vs")
        registry.require("ip_vs")

    def test_unload(self):
        registry = ModuleRegistry()
        registry.load("nf_nat")
        registry.unload("nf_nat")
        assert not registry.is_loaded("nf_nat")

    def test_soft_rdma_modules_known(self):
        """§5.7 mentions Soft-iwarp and Soft-ROCE explicitly."""
        assert "siw" in KNOWN_MODULES
        assert "rdma_rxe" in KNOWN_MODULES


class TestNetfilter:
    def test_dnat_translate(self):
        nf = Netfilter()
        nf.add_dnat(8080, "172.17.0.2", 80)
        rule, cost = nf.translate(8080)
        assert rule.dest_host == "172.17.0.2"
        assert cost == CostModel().iptables_dnat_ns
        assert nf.stats.translations == 1

    def test_duplicate_port_rejected(self):
        nf = Netfilter()
        nf.add_dnat(80, "a", 80)
        with pytest.raises(ValueError):
            nf.add_dnat(80, "b", 80)

    def test_missing_rule_drops(self):
        nf = Netfilter()
        with pytest.raises(KeyError):
            nf.translate(9999)
        assert nf.stats.dropped == 1

    def test_remove(self):
        nf = Netfilter()
        nf.add_dnat(80, "a", 80)
        nf.remove_dnat(80)
        assert nf.lookup(80) is None


class TestNetStack:
    def test_request_cost_positive_and_scales(self):
        stack = NetStack()
        small = stack.request_response_cost_ns(100, 100)
        large = stack.request_response_cost_ns(100, 100000)
        assert 0 < small < large

    def test_bad_inputs_rejected(self):
        stack = NetStack()
        with pytest.raises(ValueError):
            stack.request_response_cost_ns(-1, 0)
        with pytest.raises(ValueError):
            stack.request_response_cost_ns(0, 0, intensity=0)
        with pytest.raises(ValueError):
            stack.bulk_transfer_cost_ns(-5)

    def test_device_ordering(self):
        """bridge < netfront < nested-virtio < gVisor netstack."""
        costs = {}
        for device in NetDevice:
            stack = NetStack(device=device)
            costs[device] = stack.device_cost_ns()
        assert costs[NetDevice.LOOPBACK] == 0
        assert (
            costs[NetDevice.BRIDGE]
            < costs[NetDevice.NETFRONT]
            < costs[NetDevice.NESTED_VIRTIO]
            < costs[NetDevice.GVISOR]
        )

    def test_tuned_kernel_cheaper_stack(self):
        tuned = NetStack(config=KernelConfig(single_concern_tuned=True))
        shared = NetStack(config=KernelConfig())
        assert (
            tuned.request_response_cost_ns(100, 1000)
            < shared.request_response_cost_ns(100, 1000)
        )

    def test_loopback_skips_device_and_most_stack(self):
        loopback = NetStack(device=NetDevice.LOOPBACK)
        bridge = NetStack(device=NetDevice.BRIDGE)
        assert (
            loopback.request_response_cost_ns(100, 1000)
            < bridge.request_response_cost_ns(100, 1000)
        )

    def test_stats_accumulate(self):
        stack = NetStack()
        stack.request_response_cost_ns(10, 20)
        stack.connection_setup_cost_ns()
        assert stack.stats.requests == 1
        assert stack.stats.connections == 1
        assert stack.stats.bytes_out == 20


class TestIPVS:
    def _modules(self):
        registry = ModuleRegistry(allowed=True)
        registry.load("ip_vs")
        registry.load("ip_vs_rr")
        return registry

    def test_requires_module(self):
        with pytest.raises(ModuleLoadError):
            IPVS(ModuleRegistry(allowed=True), IpvsMode.NAT)

    def test_round_robin_scheduling(self):
        ipvs = IPVS(self._modules(), IpvsMode.NAT)
        ipvs.add_server("a", 80)
        ipvs.add_server("b", 80)
        picks = [ipvs.schedule().host for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_weighted_scheduling(self):
        ipvs = IPVS(self._modules(), IpvsMode.NAT)
        ipvs.add_server("a", 80, weight=2)
        ipvs.add_server("b", 80, weight=1)
        picks = [ipvs.schedule().host for _ in range(6)]
        assert picks.count("a") == 4

    def test_no_servers_rejected(self):
        ipvs = IPVS(self._modules(), IpvsMode.NAT)
        with pytest.raises(RuntimeError):
            ipvs.schedule()

    def test_bad_weight_rejected(self):
        ipvs = IPVS(self._modules(), IpvsMode.NAT)
        with pytest.raises(ValueError):
            ipvs.add_server("a", 80, weight=0)

    def test_dr_cheaper_than_nat(self):
        """§5.7: direct routing keeps responses off the director."""
        nat = IPVS(self._modules(), IpvsMode.NAT)
        dr = IPVS(self._modules(), IpvsMode.DIRECT_ROUTING)
        assert (
            dr.director_cost_ns(500, 6000)
            < 0.5 * nat.director_cost_ns(500, 6000)
        )

    def test_nat_cost_grows_with_response_size(self):
        nat = IPVS(self._modules(), IpvsMode.NAT)
        assert (
            nat.director_cost_ns(500, 60000)
            > nat.director_cost_ns(500, 600)
        )

    def test_dr_cost_independent_of_response_size(self):
        dr = IPVS(self._modules(), IpvsMode.DIRECT_ROUTING)
        assert (
            dr.director_cost_ns(500, 60000)
            == dr.director_cost_ns(500, 600)
        )
