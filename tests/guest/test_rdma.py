import pytest

from repro.guest.modules import ModuleLoadError, ModuleRegistry
from repro.guest.rdma import RdmaError, RdmaProvider, SoftRdmaDevice
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.platforms import DockerPlatform, XContainerPlatform


class TestDeviceCreation:
    def test_requires_module_load(self):
        """§5.7: Soft-RDMA modules are off limits inside Docker."""
        docker_modules = ModuleRegistry(allowed=False)
        with pytest.raises(ModuleLoadError):
            SoftRdmaDevice(docker_modules, RdmaProvider.SOFT_ROCE)

    def test_x_libos_can_create_both_providers(self):
        for provider in RdmaProvider:
            registry = ModuleRegistry(allowed=True)
            device = SoftRdmaDevice(registry, provider)
            assert registry.is_loaded(provider.value)
            assert device.create_qp().qp_num == 1

    def test_platform_level_distinction(self):
        x_kernel = XContainerPlatform().make_kernel()
        SoftRdmaDevice(x_kernel.modules, RdmaProvider.SOFT_IWARP)
        docker_kernel = DockerPlatform().make_kernel()
        with pytest.raises(ModuleLoadError):
            SoftRdmaDevice(docker_kernel.modules, RdmaProvider.SOFT_IWARP)


class TestQueuePairs:
    def _qp(self, clock=None):
        device = SoftRdmaDevice(
            ModuleRegistry(allowed=True),
            RdmaProvider.SOFT_ROCE,
            CostModel(),
            clock,
        )
        qp = device.create_qp()
        qp.connect()
        return device, qp

    def test_send_produces_completion(self):
        _, qp = self._qp()
        wr = qp.post_send(4096)
        completions = qp.poll_cq()
        assert [c.wr_id for c in completions] == [wr]
        assert completions[0].opcode == "SEND"
        assert qp.stats.bytes_moved == 4096

    def test_unconnected_qp_rejected(self):
        device = SoftRdmaDevice(
            ModuleRegistry(allowed=True), RdmaProvider.SOFT_ROCE
        )
        qp = device.create_qp()
        with pytest.raises(RdmaError):
            qp.post_send(10)

    def test_negative_size_rejected(self):
        _, qp = self._qp()
        with pytest.raises(RdmaError):
            qp.post_send(-1)

    def test_poll_drains_in_order(self):
        _, qp = self._qp()
        ids = [qp.post_send(1), qp.post_recv(1), qp.post_send(2)]
        polled = [c.wr_id for c in qp.poll_cq(max_entries=2)]
        polled += [c.wr_id for c in qp.poll_cq()]
        assert polled == ids
        assert qp.poll_cq() == []

    def test_sends_charge_clock(self):
        clock = SimClock()
        _, qp = self._qp(clock)
        qp.post_send(1000)
        assert clock.now_ns > 0

    def test_rdma_beats_sockets(self):
        """The point of the exercise: kernel-bypass messaging is cheaper
        than syscall + stack traversal, especially on patched kernels."""
        device, _ = self._qp()
        docker_syscall = DockerPlatform().syscall_cost_ns()
        assert device.speedup_vs_sockets(512, docker_syscall) > 2.0
