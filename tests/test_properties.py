"""Cross-cutting property-based tests on core invariants."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.netfilter import Netfilter
from repro.guest.sched import RunQueue
from repro.perf.costs import CostModel
from repro.xen.scheduler import CreditScheduler


class TestCostModelProperties:
    @given(st.floats(0.1, 10.0))
    def test_scaled_scales_every_time_field(self, factor):
        base = CostModel()
        scaled = base.scaled(factor)
        for field in dataclasses.fields(CostModel):
            original = getattr(base, field.name)
            new = getattr(scaled, field.name)
            if field.name in (
                "default_pt_pages",
                "shared_kernel_efficiency",
                "xlibos_efficiency",
                "xen_guest_efficiency",
                "clear_guest_efficiency",
                "gvisor_efficiency",
                "rumprun_efficiency",
                "graphene_efficiency",
            ):
                assert new == original
            else:
                assert new == pytest.approx(original * factor)

    @given(st.floats(0.1, 5.0), st.floats(0.1, 5.0))
    def test_scaling_composes(self, a, b):
        left = CostModel().scaled(a).scaled(b)
        right = CostModel().scaled(a * b)
        assert left.native_syscall_ns == pytest.approx(
            right.native_syscall_ns
        )


class TestSchedulerProperties:
    @given(
        st.integers(1, 16),
        st.lists(st.integers(1, 1024), min_size=1, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_credit_shares_bounded_and_weight_ordered(self, pcpus, weights):
        sched = CreditScheduler(pcpus)
        for domid, weight in enumerate(weights):
            sched.add_vcpu(domid, weight)
        shares = sched.schedule_interval(1e9)
        # Conservation: never hand out more than the machine has.
        assert sum(shares.values()) <= pcpus * 1e9 * (1 + 1e-9)
        # No vCPU exceeds one pCPU.
        assert all(share <= 1e9 * (1 + 1e-9) for share in shares.values())

    @given(st.integers(2, 4096))
    def test_runqueue_switch_cost_monotone(self, n):
        rq = RunQueue()
        assert rq.switch_cost_ns(n + 1) >= rq.switch_cost_ns(n)

    @given(st.integers(1, 5000), st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_effective_capacity_bounded(self, tasks, cpus):
        rq = RunQueue()
        capacity = rq.effective_capacity(1e9, cpus, nr_running=tasks)
        assert 0.0 <= capacity <= cpus * 1e9


class TestNetfilterProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 65535), st.integers(1, 65535)),
            min_size=1,
            max_size=30,
            unique_by=lambda t: t[0],
        )
    )
    def test_every_added_rule_translates(self, rules):
        nf = Netfilter()
        for public, dest in rules:
            nf.add_dnat(public, "10.0.0.2", dest)
        for public, dest in rules:
            rule, cost = nf.translate(public)
            assert rule.dest_port == dest
            assert cost > 0
        assert nf.stats.translations == len(rules)
