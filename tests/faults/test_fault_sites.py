"""Per-substrate injection hooks.

For every substrate: the catalog entry is honest, the disabled hook
(``faults=None``) is behaviour-identical to the pre-fault code, and each
supported fault kind does what its docstring says.
"""

import pytest

from repro.faults import sites
from repro.faults.plan import Every, FaultPlan, FaultSpec, Nth
from repro.faults.retry import RetryExhausted, RetryPolicy
from repro.perf.clock import SimClock
from repro.xen.hypervisor import DomainKind, XenHypervisor


def engine(*specs, clock=None, seed=0):
    return FaultPlan(tuple(specs), seed).compile(clock)


class TestCatalog:
    def test_every_site_has_substrate_and_kinds(self):
        for name, info in sites.SITES.items():
            assert info.name == name
            assert name.startswith(info.substrate + ".")
            assert info.kinds

    def test_core_substrates_are_known(self):
        known = {info.substrate for info in sites.SITES.values()}
        assert set(sites.CORE_SUBSTRATES) <= known

    def test_substrate_of_falls_back_on_prefix(self):
        assert sites.substrate_of(sites.VCPU) == "xen.scheduler"
        assert sites.substrate_of("a.b.c") == "a.b"


class TestEventChannels:
    def make(self, faults=None):
        from repro.xen.events import EventChannelTable

        clock = SimClock()
        table = EventChannelTable(clock=clock, faults=faults)
        hits = []
        port = table.bind(lambda: hits.append(1))
        return table, clock, port, hits

    def test_disabled_hook_is_noop(self):
        enabled, _, port_e, _ = self.make(faults=None)
        assert enabled.send(port_e) is True
        assert enabled.notifications_dropped == 0

    def test_drop_loses_the_notify(self):
        table, _, port, hits = self.make(
            engine(FaultSpec(sites.EVENT_NOTIFY, "drop", Nth(1)))
        )
        assert table.send(port) is False
        assert not table.evtchn_upcall_pending
        table.drain(via_hypercall=False)
        assert hits == []
        assert table.notifications_dropped == 1

    def test_delay_charges_param_then_delivers(self):
        table, clock, port, hits = self.make(
            engine(
                FaultSpec(sites.EVENT_NOTIFY, "delay", Nth(1), param=500.0)
            )
        )
        before = clock.now_ns
        assert table.send(port) is True
        assert clock.now_ns - before == 500.0
        table.drain(via_hypercall=False)
        assert hits == [1]


class TestGrantTable:
    def test_map_fail_is_transient_and_typed(self):
        from repro.xen.grant_table import GrantMapError

        xen = XenHypervisor()
        xen.grants.faults = engine(
            FaultSpec(sites.GRANT_MAP, "fail", Nth(1))
        )
        ref = xen.grants.grant_access(1, 0x1000)
        with pytest.raises(GrantMapError):
            xen.grants.map_grant(ref, 2)
        # Second attempt (occurrence 2) succeeds; state is clean.
        assert xen.grants.map_grant(ref, 2).mapped_by == 2
        assert xen.grants.map_failures == 1

    def test_copy_fail_and_success_accounting(self):
        from repro.xen.grant_table import GrantCopyError

        xen = XenHypervisor()
        xen.grants.faults = engine(
            FaultSpec(sites.GRANT_COPY, "fail", Nth(1))
        )
        ref = xen.grants.grant_access(1, 0x1000)
        with pytest.raises(GrantCopyError):
            xen.grants.copy_grant(ref, 1, 4096)
        assert xen.grants.copy_grant(ref, 1, 4096) == 4096
        assert xen.grants.copy_failures == 1 and xen.grants.copies == 1


class TestNetDriver:
    def make(self, faults=None, retry=None):
        from repro.xen.drivers import SplitNetDriver
        from repro.xen.events import EventChannelTable

        xen = XenHypervisor()
        guest = xen.create_domain("g")
        backend = xen.create_domain("b", DomainKind.DRIVER)
        events = EventChannelTable(xen.costs, xen.clock)
        driver = SplitNetDriver(
            guest, backend, xen.grants, events, xen.costs, xen.clock,
            faults=faults, retry=retry,
        )
        return driver

    def test_disabled_hook_same_cost(self):
        plain = self.make()
        hooked = self.make(faults=None)
        assert plain.transmit(1000) == hooked.transmit(1000)

    def test_kill_triggers_reconnect_and_success(self):
        driver = self.make(
            faults=engine(FaultSpec(sites.NET_BACKEND, "kill", Nth(1)))
        )
        driver.transmit(1000)
        assert driver.stats.backend_deaths == 1
        assert driver.stats.backend_restarts == 1
        assert driver.stats.requests == 1
        assert driver.backend_alive

    def test_persistent_kill_exhausts_retry(self):
        driver = self.make(
            faults=engine(FaultSpec(sites.NET_BACKEND, "kill", Every(1))),
            retry=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(RetryExhausted):
            driver.transmit(1000)
        assert driver.stats.requests == 0

    def test_ring_stall_charges_extra(self):
        stalled = self.make(
            faults=engine(
                FaultSpec(sites.NET_RING, "stall", Nth(1), param=4.0)
            )
        )
        plain = self.make()
        assert stalled.transmit(1000) > plain.transmit(1000)
        assert stalled.stats.ring_full_stalls == 1


class TestBlkDriver:
    def make(self, faults=None, retry=None):
        from repro.xen.blkdev import BlockStore, SplitBlockDriver

        return SplitBlockDriver(
            BlockStore(64), clock=SimClock(), faults=faults, retry=retry
        )

    def test_kill_never_tears_a_write(self):
        from repro.xen.blkdev import SECTOR_SIZE

        driver = self.make(
            faults=engine(FaultSpec(sites.BLK_BACKEND, "kill", Nth(1)))
        )
        driver.write(0, b"\xaa" * SECTOR_SIZE * 4)
        assert driver.stats.backend_deaths == 1
        assert driver.stats.writes == 1
        assert driver.read(0, 4) == b"\xaa" * SECTOR_SIZE * 4

    def test_stall_charges_latency(self):
        driver = self.make(
            faults=engine(
                FaultSpec(sites.BLK_BACKEND, "stall", Nth(1), param=10.0)
            )
        )
        plain = self.make()
        from repro.xen.blkdev import SECTOR_SIZE

        driver.write(0, b"\x01" * SECTOR_SIZE)
        plain.write(0, b"\x01" * SECTOR_SIZE)
        assert driver.clock.now_ns > plain.clock.now_ns
        assert driver.stats.ring_stalls == 1


class TestToolstack:
    def test_timeout_retries_and_never_leaks_memory(self):
        from repro.xen.toolstack import Toolstack

        xen = XenHypervisor()
        toolstack = Toolstack(
            xen, faults=engine(FaultSpec(sites.TOOLSTACK_SPAWN, "timeout", Nth(1)))
        )
        baseline = xen.used_memory_mb
        creation = toolstack.create("xc0", memory_mb=256, full_vm_boot=False)
        assert creation.domain.name == "xc0"
        assert toolstack.spawn_timeouts == 1
        assert xen.used_memory_mb == baseline + 256

    def test_persistent_timeout_exhausts_cleanly(self):
        from repro.faults.retry import RetryExhausted
        from repro.xen.toolstack import Toolstack

        xen = XenHypervisor()
        toolstack = Toolstack(
            xen,
            faults=engine(FaultSpec(sites.TOOLSTACK_SPAWN, "timeout", Every(1))),
        )
        baseline = xen.used_memory_mb
        with pytest.raises(RetryExhausted):
            toolstack.create("xc0", memory_mb=256)
        # Every half-created domain was torn down.
        assert xen.used_memory_mb == baseline
        assert len(xen.domains) == 1


class TestScheduler:
    def test_stall_parks_one_vcpu_for_one_interval(self):
        from repro.xen.scheduler import CreditScheduler

        scheduler = CreditScheduler(
            4, faults=engine(FaultSpec(sites.VCPU, "stall", Nth(1)))
        )
        for domid in (1, 2):
            scheduler.add_vcpu(domid)
        shares = scheduler.schedule_interval(10e6)
        assert scheduler.stall_events == 1
        assert len(shares) == 1  # the victim missed the interval
        shares = scheduler.schedule_interval(10e6)
        assert len(shares) == 2  # healed next interval

    def test_storm_inflates_switch_overhead(self):
        from repro.xen.scheduler import CreditScheduler

        stormy = CreditScheduler(
            2,
            faults=engine(
                FaultSpec(sites.VCPU, "storm", Nth(1), param=10.0)
            ),
        )
        calm = CreditScheduler(2)
        for s in (stormy, calm):
            for domid in (1, 2, 3, 4):
                s.add_vcpu(domid)
        stormy_shares = stormy.schedule_interval(10e6)
        calm_shares = calm.schedule_interval(10e6)
        assert stormy.storm_events == 1
        assert sum(stormy_shares.values()) < sum(calm_shares.values())


class TestNetstack:
    def make(self, faults=None, retry=None):
        from repro.guest.netstack import NetDevice, NetStack

        kwargs = {"device": NetDevice.NETFRONT}
        if faults is not None:
            kwargs["faults"] = faults
        if retry is not None:
            kwargs["retry"] = retry
        return NetStack(**kwargs)

    def test_disabled_hook_same_cost(self):
        assert self.make().request_response_cost_ns(
            100, 1000
        ) == self.make(faults=None).request_response_cost_ns(100, 1000)

    def test_drop_costs_a_retransmission(self):
        lossy = self.make(
            faults=engine(FaultSpec(sites.NET_PACKET, "drop", Nth(1)))
        )
        clean = self.make()
        assert lossy.request_response_cost_ns(
            100, 1000
        ) > clean.request_response_cost_ns(100, 1000)
        assert lossy.stats.retransmits == 1

    def test_unbounded_loss_resets_the_connection(self):
        from repro.guest.netstack import NetstackTimeout

        lossy = self.make(
            faults=engine(FaultSpec(sites.NET_PACKET, "drop", Every(1))),
            retry=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(NetstackTimeout):
            lossy.request_response_cost_ns(100, 1000)

    def test_duplicate_and_reorder_cost_but_recover(self):
        stack = self.make(
            faults=engine(
                FaultSpec(sites.NET_PACKET, "duplicate", Nth(1)),
                FaultSpec(sites.NET_PACKET, "reorder", Nth(2)),
            )
        )
        stack.request_response_cost_ns(100, 1000)
        stack.request_response_cost_ns(100, 1000)
        assert stack.stats.duplicates == 1
        assert stack.stats.reorders == 1


class TestAbom:
    def test_contention_forces_retrap_retry(self):
        from repro.arch import Assembler, Reg
        from repro.core import CountingServices, XContainer

        eng = engine(FaultSpec(sites.ABOM_CMPXCHG, "contend", Nth(1)))
        xc = XContainer(CountingServices(), faults=eng)
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 3)
        asm.label("loop")
        asm.syscall_site(39, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc.run(asm.build())
        stats = xc.abom_stats
        assert stats.cmpxchg_contentions == 1
        assert stats.total_patches == 1  # second trap won the CAS
        assert stats.unrecognized_sites == 0
        assert eng.counters[sites.ABOM_CMPXCHG].recovered == 1

    def test_9byte_phase2_loss_keeps_phase1_state_correct(self):
        from repro.arch import Assembler, Reg
        from repro.core import CountingServices, XContainer

        eng = engine(FaultSpec(sites.ABOM_CMPXCHG, "contend", Nth(2)))
        xc = XContainer(CountingServices(), faults=eng)
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 4)
        asm.label("loop")
        site = asm.syscall_site(15, style="mov_rax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc.run(asm.build())
        stats = xc.abom_stats
        # Phase 1 (occurrence 1) won; phase 2 (occurrence 2) lost — the
        # site still counts patched and the trailing syscall is skipped
        # by the LibOS return-address check.
        assert stats.patches_9byte == 1
        assert stats.patch_failures == 1
        assert xc.memory.read(site.syscall_addr, 2) == b"\x0f\x05"
        assert xc.libos_stats.lightweight_syscalls == 3
        assert xc.libos_stats.return_address_skips >= 3
