"""Property tests: seeded fuzzing of fault plans (schemathesis-style).

The central property the subsystem promises: for any seeded fault plan
whose fault rate stays below the retry budget, every scenario terminates
``recovered`` — and identically so when replayed with the same seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import sites
from repro.faults.plan import Every, FaultPlan, FaultSpec, Probability
from repro.faults.retry import RetryPolicy
from repro.faults.report import run_scenarios

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestCatalogProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=SEEDS)
    def test_every_scenario_recovers_for_any_seed(self, seed):
        report = run_scenarios(seed)
        failures = [
            f"{r.name}: {r.outcome} ({r.failure})"
            for r in report.results
            if not r.ok
        ]
        assert not failures, failures

    @settings(max_examples=5, deadline=None)
    @given(seed=SEEDS)
    def test_replay_is_byte_identical(self, seed):
        assert run_scenarios(seed).render() == run_scenarios(seed).render()


class TestSubBudgetLossProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=SEEDS,
        loss=st.floats(min_value=0.001, max_value=0.10),
        requests=st.integers(min_value=10, max_value=300),
    )
    def test_netstack_survives_any_sub_budget_loss_rate(
        self, seed, loss, requests
    ):
        """Loss probability ≪ the retransmission budget ⇒ no resets."""
        from repro.guest.netstack import NetDevice, NetStack

        engine = FaultPlan(
            (FaultSpec(sites.NET_PACKET, "drop", Probability(loss)),),
            seed,
        ).compile()
        stack = NetStack(
            device=NetDevice.NETFRONT,
            faults=engine,
            retry=RetryPolicy(max_attempts=10),
        )
        for _ in range(requests):
            stack.request_response_cost_ns(120, 1100)
        assert stack.stats.requests == requests
        assert engine.totals().fatal == 0

    @settings(max_examples=20, deadline=None)
    @given(
        seed=SEEDS,
        period=st.integers(min_value=3, max_value=50),
        limit=st.integers(min_value=1, max_value=8),
    )
    def test_netfront_survives_any_kill_schedule_below_budget(
        self, seed, period, limit
    ):
        """Kills spaced ≥3 occurrences apart never exhaust the retry
        budget: each transmit absorbs at most one death + reconnect."""
        from repro.xen.drivers import SplitNetDriver
        from repro.xen.events import EventChannelTable
        from repro.xen.hypervisor import DomainKind, XenHypervisor

        engine = FaultPlan(
            (
                FaultSpec(
                    sites.NET_BACKEND, "kill", Every(period), limit=limit
                ),
            ),
            seed,
        ).compile()
        xen = XenHypervisor()
        guest = xen.create_domain("g")
        backend = xen.create_domain("b", DomainKind.DRIVER)
        events = EventChannelTable(xen.costs, xen.clock)
        driver = SplitNetDriver(
            guest, backend, xen.grants, events, xen.costs, xen.clock,
            faults=engine,
        )
        for _ in range(60):
            driver.transmit(1000)
        assert driver.stats.requests == 60
        assert driver.stats.backend_deaths == driver.stats.backend_restarts
        assert engine.totals().fatal == 0
        counters = engine.counters[sites.NET_BACKEND]
        assert counters.recovered == counters.injected
