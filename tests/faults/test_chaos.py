"""The chaos harness and the shipped scenario catalog.

Acceptance criteria pinned here: every shipped scenario ends
``recovered`` under its default plan on fixed seeds, the catalog's
injections cover every core substrate, and ``repro chaos --seed S`` is
byte-identical for the same seed + plan.
"""

import pytest

from repro.faults import scenarios, sites
from repro.faults.chaos import (
    ChaosHarness,
    InvariantViolation,
    Scenario,
    ScenarioContext,
)
from repro.faults.plan import Every, FaultPlan, FaultSpec
from repro.faults.report import run_scenarios

FIXED_SEEDS = (0, 42, 20260806)


class TestHarness:
    def _trivial(self, body):
        return Scenario(
            name="t",
            description="",
            substrates=(),
            default_plan=lambda seed: FaultPlan((), seed),
            body=body,
        )

    def test_recovered_outcome_and_details(self):
        result = ChaosHarness(1).run(self._trivial(lambda ctx: {"a": 1}))
        assert result.outcome == "recovered" and result.ok
        assert result.details == (("a", 1),)

    def test_invariant_violation_outcome(self):
        def body(ctx):
            ctx.check(False, "must hold")

        result = ChaosHarness(1).run(self._trivial(body))
        assert result.outcome == "invariant-violated"
        assert result.failure == "must hold"
        assert result.invariants == ("FAIL must hold",)

    def test_unhandled_exception_is_fatal_not_raised(self):
        def body(ctx):
            raise RuntimeError("boom")

        result = ChaosHarness(1).run(self._trivial(body))
        assert result.outcome == "fatal"
        assert "boom" in result.failure

    def test_fatal_counters_override_clean_body(self):
        def body(ctx):
            ctx.engine.record_fatal(sites.EVENT_NOTIFY)
            return {}

        result = ChaosHarness(1).run(self._trivial(body))
        assert result.outcome == "fatal"

    def test_scenario_seed_derivation_is_per_scenario(self):
        harness = ChaosHarness(9)
        a = harness.scenario_seed(self._trivial(lambda ctx: {}))
        assert a == "9:t"

    def test_explicit_plan_overrides_default(self):
        seen = {}

        def body(ctx):
            seen["fault"] = ctx.engine.fire(sites.EVENT_NOTIFY)
            return {}

        override = FaultPlan(
            (FaultSpec(sites.EVENT_NOTIFY, "drop", Every(1)),), 0
        )
        ChaosHarness(1).run(self._trivial(body), plan=override)
        assert seen["fault"] is not None


class TestCatalog:
    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_every_scenario_recovers_on_fixed_seeds(self, seed):
        report = run_scenarios(seed)
        failures = [
            f"{r.name}: {r.outcome} ({r.failure})"
            for r in report.results
            if not r.ok
        ]
        assert not failures, failures

    def test_core_substrate_coverage(self):
        report = run_scenarios(42)
        covered = set(report.substrates_injected())
        missing = set(sites.CORE_SUBSTRATES) - covered
        assert not missing, f"core substrates never injected: {missing}"
        assert report.core_coverage_ok()

    def test_every_scenario_actually_injects(self):
        report = run_scenarios(42)
        for result in report.results:
            assert result.injected > 0, f"{result.name} injected nothing"

    def test_declared_substrates_are_injected(self):
        report = run_scenarios(42)
        by_name = {r.name: r for r in report.results}
        for scenario in scenarios.SCENARIOS.values():
            result = by_name[scenario.name]
            missing = set(scenario.substrates) - set(
                result.injected_substrates
            )
            assert not missing, f"{scenario.name}: {missing}"

    def test_report_is_byte_identical_for_same_seed(self):
        assert run_scenarios(7).render() == run_scenarios(7).render()

    def test_different_seed_changes_probabilistic_scenarios(self):
        a = run_scenarios(1).render()
        b = run_scenarios(2).render()
        assert a != b  # seeded loss/stall rates differ

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenarios.get("no-such-scenario")

    def test_single_scenario_selection(self):
        report = run_scenarios(3, names=["nginx-packet-loss"])
        assert [r.name for r in report.results] == ["nginx-packet-loss"]
        assert report.all_recovered


class TestRender:
    def test_render_contains_verdict_and_coverage(self):
        text = run_scenarios(42).render()
        assert "ALL RECOVERED" in text
        assert "core substrate coverage: complete" in text
        for name in scenarios.names():
            assert name in text

    def test_render_flags_failures(self):
        failing = Scenario(
            name="doomed",
            description="",
            substrates=(),
            default_plan=lambda seed: FaultPlan((), seed),
            body=lambda ctx: ctx.check(False, "nope"),
        )
        result = ChaosHarness(1).run(failing)
        from repro.faults.report import ChaosReport

        text = ChaosReport(seed=1, results=(result,)).render()
        assert "FAILURES: doomed" in text
        assert "INCOMPLETE" in text
