"""FaultPlan DSL: triggers, compilation, determinism, validation."""

import pytest

from repro.faults import sites
from repro.faults.plan import (
    Every,
    FaultPlan,
    FaultSpec,
    Nth,
    Probability,
    TimeWindow,
)
from repro.perf.clock import SimClock


def plan(*specs, seed=0):
    return FaultPlan(tuple(specs), seed)


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        engine = plan(FaultSpec(sites.EVENT_NOTIFY, "drop", Nth(3))).compile()
        fired = [engine.fire(sites.EVENT_NOTIFY) for _ in range(6)]
        assert [f is not None for f in fired] == [
            False, False, True, False, False, False
        ]
        assert fired[2].occurrence == 3

    def test_every_fires_periodically(self):
        engine = plan(FaultSpec(sites.EVENT_NOTIFY, "drop", Every(2))).compile()
        fired = [engine.fire(sites.EVENT_NOTIFY) for _ in range(6)]
        assert [f is not None for f in fired] == [
            False, True, False, True, False, True
        ]

    def test_limit_caps_injections(self):
        engine = plan(
            FaultSpec(sites.EVENT_NOTIFY, "drop", Every(1), limit=2)
        ).compile()
        fired = [engine.fire(sites.EVENT_NOTIFY) for _ in range(5)]
        assert sum(f is not None for f in fired) == 2

    def test_time_window_uses_sim_clock(self):
        clock = SimClock()
        engine = plan(
            FaultSpec(sites.EVENT_NOTIFY, "drop", TimeWindow(100.0, 200.0))
        ).compile(clock)
        assert engine.fire(sites.EVENT_NOTIFY) is None
        clock.advance(150.0)
        assert engine.fire(sites.EVENT_NOTIFY) is not None
        clock.advance(100.0)
        assert engine.fire(sites.EVENT_NOTIFY) is None

    def test_probability_is_seed_deterministic(self):
        def sequence(seed):
            engine = plan(
                FaultSpec(sites.EVENT_NOTIFY, "drop", Probability(0.3)),
                seed=seed,
            ).compile()
            return [
                engine.fire(sites.EVENT_NOTIFY) is not None
                for _ in range(200)
            ]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)
        rate = sum(sequence(7)) / 200
        assert 0.15 < rate < 0.45

    def test_first_matching_spec_wins(self):
        engine = plan(
            FaultSpec(sites.EVENT_NOTIFY, "delay", Nth(2), param=5.0),
            FaultSpec(sites.EVENT_NOTIFY, "drop", Every(2)),
        ).compile()
        engine.fire(sites.EVENT_NOTIFY)
        fault = engine.fire(sites.EVENT_NOTIFY)
        assert fault.kind == "delay" and fault.param == 5.0


class TestValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("xen.nonsense.thing", "drop", Nth(1))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="does not support kind"):
            FaultSpec(sites.EVENT_NOTIFY, "explode", Nth(1))

    def test_bad_trigger_parameters_rejected(self):
        with pytest.raises(ValueError):
            Nth(0)
        with pytest.raises(ValueError):
            Every(0)
        with pytest.raises(ValueError):
            Probability(0.0)
        with pytest.raises(ValueError):
            Probability(1.5)
        with pytest.raises(ValueError):
            TimeWindow(5.0, 5.0)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="limit"):
            FaultSpec(sites.EVENT_NOTIFY, "drop", Nth(1), limit=0)


class TestEngine:
    def test_counters_track_lifecycle(self):
        engine = plan(
            FaultSpec(sites.GRANT_MAP, "fail", Nth(1))
        ).compile()
        engine.fire(sites.GRANT_MAP)
        engine.record_retry(sites.GRANT_MAP)
        engine.record_recovered(sites.GRANT_MAP)
        counters = engine.counters[sites.GRANT_MAP]
        assert (
            counters.occurrences,
            counters.injected,
            counters.retried,
            counters.recovered,
            counters.fatal,
        ) == (1, 1, 1, 1, 0)

    def test_totals_merge_sites(self):
        engine = plan(
            FaultSpec(sites.GRANT_MAP, "fail", Every(1)),
            FaultSpec(sites.EVENT_NOTIFY, "drop", Every(1)),
        ).compile()
        engine.fire(sites.GRANT_MAP)
        engine.fire(sites.EVENT_NOTIFY)
        engine.record_fatal(sites.EVENT_NOTIFY)
        totals = engine.totals()
        assert totals.injected == 2 and totals.fatal == 1

    def test_injected_substrate_mapping(self):
        engine = plan(
            FaultSpec(sites.ABOM_CMPXCHG, "contend", Every(1)),
        ).compile()
        engine.fire(sites.ABOM_CMPXCHG)
        assert engine.injected_sites() == (sites.ABOM_CMPXCHG,)
        assert engine.injected_substrates() == {"core.abom"}

    def test_fire_on_unplanned_site_is_none_but_counted(self):
        engine = plan(
            FaultSpec(sites.EVENT_NOTIFY, "drop", Every(1))
        ).compile()
        assert engine.fire(sites.GRANT_MAP) is None
        assert engine.counters[sites.GRANT_MAP].occurrences == 1

    def test_reseeded_changes_probability_stream_only(self):
        base = plan(
            FaultSpec(sites.EVENT_NOTIFY, "drop", Probability(0.5)),
            seed=1,
        )
        other = base.reseeded(2)
        assert other.specs == base.specs and other.seed == 2

    def test_fault_events_reach_tracer(self):
        clock = SimClock()
        from repro.perf.trace import Tracer

        tracer = Tracer(clock)
        engine = plan(
            FaultSpec(sites.EVENT_NOTIFY, "drop", Nth(1))
        ).compile(clock, tracer=tracer)
        engine.fire(sites.EVENT_NOTIFY, port=4)
        engine.record_retry(sites.EVENT_NOTIFY)
        engine.record_recovered(sites.EVENT_NOTIFY)
        engine.record_fatal(sites.EVENT_NOTIFY)
        names = [e.name for e in tracer.events("fault")]
        assert names == ["injected", "retried", "recovered", "fatal"]
        assert tracer.events("fault")[0].detail["site"] == sites.EVENT_NOTIFY

    def test_describe_is_deterministic(self):
        p = plan(
            FaultSpec(sites.NET_RING, "stall", Every(10), param=3.0, limit=2),
            seed="s",
        )
        assert p.describe() == p.describe()
        assert "xen.drivers.ring" in p.describe()
