"""The fault-site drift check: catalog entries must stay wired.

``repro.faults.sites`` cross-checks every catalog entry against its
substrate's source at import time and refuses to import on drift, so a
renamed constant or a deleted ``faults.fire(...)`` call fails the build
instead of silently turning a chaos scenario into a no-op.
"""

import pytest

from repro.faults import sites
from repro.faults.sites import SITES, SiteInfo, verify_hooks


class TestCatalogIsLive:
    def test_current_catalog_has_no_drift(self):
        assert verify_hooks() == []

    def test_import_already_proved_it(self):
        # The module imported, which means the import-time gate passed;
        # pin that the gate actually exists rather than trusting memory.
        import inspect

        source = inspect.getsource(sites)
        assert "raise RuntimeError" in source
        assert "verify_hooks()" in source

    def test_every_site_exports_a_constant(self):
        constants = sites._constant_names()
        assert sorted(constants) == sorted(SITES)


class TestDriftIsDetected:
    def _with_site(self, monkeypatch, info, constant=None):
        patched = dict(SITES)
        patched[info.name] = info
        monkeypatch.setattr(sites, "SITES", patched)
        if constant is not None:
            monkeypatch.setattr(sites, constant, info.name, raising=False)
        return verify_hooks()

    def test_missing_substrate_module_is_reported(self, monkeypatch):
        problems = self._with_site(
            monkeypatch,
            SiteInfo("xen.ghost.op", "xen.ghost", ("fail",), "gone"),
            constant="GHOST_OP",
        )
        assert problems == [
            "xen.ghost.op: substrate module ghost.py is missing"
        ]

    def test_unexported_site_is_reported(self, monkeypatch):
        problems = self._with_site(
            monkeypatch,
            SiteInfo("xen.events.phantom", "xen.events", ("drop",), "x"),
        )
        assert problems == ["xen.events.phantom: no exported site constant"]

    def test_unreferenced_constant_is_reported(self, monkeypatch):
        # A real module that never mentions the fabricated constant.
        problems = self._with_site(
            monkeypatch,
            SiteInfo("xen.events.phantom", "xen.events", ("drop",), "x"),
            constant="PHANTOM_SITE",
        )
        assert problems == [
            "xen.events.phantom: xen.events never references "
            "fault_sites.PHANTOM_SITE"
        ]

    def test_drift_descriptions_are_sorted_by_site(self, monkeypatch):
        patched = dict(SITES)
        for name in ("a.a.one", "z.z.two"):
            patched[name] = SiteInfo(name, name.rsplit(".", 1)[0],
                                     ("fail",), "x")
        monkeypatch.setattr(sites, "SITES", patched)
        problems = verify_hooks()
        assert [p.split(":")[0] for p in problems] == ["a.a.one", "z.z.two"]


class TestPlanStillValidates:
    def test_unknown_site_rejected_by_fault_spec(self):
        from repro.faults.plan import Every, FaultSpec

        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="xen.ghost.op", kind="fail", trigger=Every(1))
