"""The decorator-based scenario registry and the deprecation shims.

ISSUE 10's API-redesign contract: registry is the canonical surface,
old call sites keep working through warning-emitting shims with zero
behavior change, and unknown-name errors list the catalog sorted.
"""

import warnings

import pytest

from repro.faults import registry
from repro.faults.chaos import Scenario
from repro.faults.plan import FaultPlan

#: The 9 hand-written scenarios + the promoted fuzz sequence.
EXPECTED_CATALOG = [
    "backend-death-memcached",
    "migration-dirty-storm",
    "nginx-packet-loss",
    "grant-flaps-reconnect",
    "toolstack-spawn-timeouts",
    "scheduler-preemption-storm",
    "abom-cmpxchg-contention",
    "wake-drop-fleet",
    "event-storm-blkdev",
    "fuzz-notify-drop-burst",
]


def _scenario(name):
    return Scenario(
        name=name,
        description="test scenario",
        substrates=(),
        default_plan=lambda seed: FaultPlan((), seed),
        body=lambda ctx: {},
    )


class TestRegistry:
    def test_shipped_catalog_registers_in_order(self):
        assert registry.scenario_names() == EXPECTED_CATALOG

    def test_list_scenarios_matches_names(self):
        assert [
            s.name for s in registry.list_scenarios()
        ] == registry.scenario_names()

    def test_get_scenario_returns_the_registered_object(self):
        scenario = registry.get_scenario("nginx-packet-loss")
        assert scenario.name == "nginx-packet-loss"

    def test_unknown_name_error_lists_catalog_sorted(self):
        with pytest.raises(KeyError) as caught:
            registry.get_scenario("nonesuch")
        message = str(caught.value)
        assert "unknown scenario 'nonesuch'" in message
        listed = message.split("known: ")[1].rstrip("\")'").split(", ")
        assert listed == sorted(registry.scenario_names())

    def test_register_and_unregister(self):
        try:
            registry.register(_scenario("temp-entry"))
            assert "temp-entry" in registry.scenario_names()
        finally:
            registry.unregister("temp-entry")
        assert "temp-entry" not in registry.scenario_names()

    def test_duplicate_registration_rejected(self):
        try:
            registry.register(_scenario("temp-dup"))
            with pytest.raises(ValueError, match="already registered"):
                registry.register(_scenario("temp-dup"))
            # replace=True is the explicit override.
            registry.register(_scenario("temp-dup"), replace=True)
        finally:
            registry.unregister("temp-dup")

    def test_decorator_registers_and_returns_scenario(self):
        try:

            @registry.scenario(
                name="temp-decorated",
                description="declared via decorator",
                substrates=("xen.events",),
                plan=lambda seed: FaultPlan((), seed),
            )
            def body(ctx):
                return {"ran": 1}

            assert isinstance(body, Scenario)
            assert body.name == "temp-decorated"
            assert registry.get_scenario("temp-decorated") is body
        finally:
            registry.unregister("temp-decorated")


class TestDeprecationShims:
    """scenarios.SCENARIOS / .get / .names keep working, warning once."""

    def test_names_shim_warns_and_matches_registry(self):
        from repro.faults import scenarios

        with pytest.warns(DeprecationWarning, match="names"):
            assert scenarios.names() == registry.scenario_names()

    def test_get_shim_warns_and_delegates(self):
        from repro.faults import scenarios

        with pytest.warns(DeprecationWarning, match="get"):
            assert (
                scenarios.get("wake-drop-fleet")
                is registry.get_scenario("wake-drop-fleet")
            )

    def test_get_shim_keeps_keyerror_contract(self):
        from repro.faults import scenarios

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(KeyError, match="unknown scenario"):
                scenarios.get("nonesuch")

    def test_scenarios_mapping_shim(self):
        from repro.faults import scenarios

        with pytest.warns(DeprecationWarning):
            assert (
                scenarios.SCENARIOS["nginx-packet-loss"].name
                == "nginx-packet-loss"
            )
        with pytest.warns(DeprecationWarning):
            assert list(scenarios.SCENARIOS) == registry.scenario_names()
        with pytest.warns(DeprecationWarning):
            assert "event-storm-blkdev" in scenarios.SCENARIOS
        assert len(scenarios.SCENARIOS) == len(registry.scenario_names())

    def test_package_exports_the_registry_surface(self):
        import repro.faults as faults

        assert faults.scenario_names() == registry.scenario_names()
        assert faults.get_scenario is registry.get_scenario
        assert faults.register is registry.register
        assert faults.scenario is registry.scenario
