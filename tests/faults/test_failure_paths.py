"""Regression tests for the Remus and migration failure paths.

Two bugs this subsystem's satellites fixed:

* failover with an uncommitted epoch must *discard* (never release)
  buffered output — releasing it would expose output whose state was
  lost with the primary;
* an aborted migration must leave the source domain runnable — the
  pre-fix code quiesced the source unconditionally.
"""

import pytest

from repro.faults import sites
from repro.faults.plan import Every, FaultPlan, FaultSpec, Nth
from repro.xen.hypervisor import XenHypervisor
from repro.xen.migration import LiveMigration, MigrationSession
from repro.xen.remus import Epoch, FailoverError, RemusReplicator


def engine(*specs, seed=0):
    return FaultPlan(tuple(specs), seed).compile()


class TestRemusUncommittedEpoch:
    def test_lost_ack_keeps_output_buffered(self):
        remus = RemusReplicator(
            faults=engine(FaultSpec(sites.REMUS_ACK, "fail", Nth(2)))
        )
        remus.run_epoch(Epoch(0, 100, 10))
        remus.run_epoch(Epoch(1, 100, 20))  # ack lost
        assert remus.backup_epoch == 0
        assert remus.buffered_packets == 20
        assert remus.stats.packets_released == 10
        assert remus.output_commit_invariant()

    def test_later_ack_releases_everything_up_to_itself(self):
        eng = engine(FaultSpec(sites.REMUS_ACK, "fail", Nth(2)))
        remus = RemusReplicator(faults=eng)
        remus.run_epoch(Epoch(0, 100, 10))
        remus.run_epoch(Epoch(1, 100, 20))  # ack lost
        remus.run_epoch(Epoch(2, 100, 30))  # ack covers epochs 1 and 2
        assert remus.backup_epoch == 2
        assert remus.buffered_packets == 0
        assert remus.stats.packets_released == 60
        assert eng.counters[sites.REMUS_ACK].recovered == 1

    def test_failover_discards_uncommitted_never_releases(self):
        remus = RemusReplicator(
            faults=engine(FaultSpec(sites.REMUS_ACK, "fail", Nth(2)))
        )
        remus.run_epoch(Epoch(0, 100, 10))
        remus.run_epoch(Epoch(1, 100, 20))  # ack lost — uncommitted
        resume = remus.fail_primary()
        assert resume == 0
        assert remus.stats.packets_released == 10  # NOT 30
        assert remus.stats.packets_discarded == 20
        assert remus.buffered_packets == 0
        assert remus.output_commit_invariant()

    def test_failover_without_any_checkpoint_refuses(self):
        remus = RemusReplicator(
            faults=engine(FaultSpec(sites.REMUS_ACK, "fail", Every(1)))
        )
        remus.run_epoch(Epoch(0, 100, 10))  # never acked
        with pytest.raises(FailoverError):
            remus.fail_primary()
        # The refusal must not have mutated anything.
        assert remus.buffered_packets == 10
        assert remus.stats.packets_discarded == 0
        remus2 = RemusReplicator()
        with pytest.raises(FailoverError):
            remus2.fail_primary()
        remus2.run_epoch(Epoch(0, 1, 1))  # still alive after refusal

    def test_unacked_epoch_adds_output_latency(self):
        lossy = RemusReplicator(
            faults=engine(FaultSpec(sites.REMUS_ACK, "fail", Nth(1)))
        )
        clean = RemusReplicator()
        assert lossy.run_epoch(Epoch(0, 100, 10)) > clean.run_epoch(
            Epoch(0, 100, 10)
        )


class TestMigrationAbortLeavesSourceRunnable:
    def _session(self, faults=None, **kwargs):
        xen = XenHypervisor()
        domain = xen.create_domain("mig")
        defaults = dict(
            memory_mb=64,
            dirty_rate_pages_s=10_000,
            downtime_budget_ms=5.0,
            faults=faults,
        )
        defaults.update(kwargs)
        return domain, MigrationSession(domain, LiveMigration(**defaults))

    def test_injected_abort_keeps_source_running(self):
        domain, session = self._session(
            faults=engine(
                FaultSpec(sites.MIGRATION_ROUND, "abort", Nth(1))
            )
        )
        report = session.run()
        assert report.aborted and not report.converged
        assert report.downtime_ms == 0.0
        assert domain.running is True

    def test_non_convergence_abort_keeps_source_running(self):
        domain, session = self._session(
            dirty_rate_pages_s=10_000_000,
            abort_on_non_convergence=True,
        )
        report = session.run()
        assert report.aborted
        assert domain.running is True

    def test_converged_migration_hands_over(self):
        domain, session = self._session()
        report = session.run()
        assert report.converged and not report.aborted
        assert domain.running is False

    def test_forced_stop_and_copy_also_hands_over(self):
        domain, session = self._session(dirty_rate_pages_s=10_000_000)
        report = session.run()
        assert not report.converged and not report.aborted
        assert domain.running is False

    def test_migrating_a_stopped_domain_is_an_error(self):
        domain, session = self._session()
        domain.running = False
        with pytest.raises(ValueError, match="not running"):
            session.run()

    def test_dirty_bursts_extend_but_do_not_break_convergence(self):
        _, lossy = self._session(
            faults=engine(
                FaultSpec(
                    sites.MIGRATION_ROUND, "dirty", Every(1),
                    param=500.0, limit=3,
                )
            )
        )
        _, clean = self._session()
        lossy_report = lossy.run()
        clean_report = clean.run()
        assert lossy_report.converged
        assert lossy_report.pages_sent > clean_report.pages_sent
