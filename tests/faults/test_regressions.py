"""The on-disk regression catalog of shrunk fuzzer step sequences.

Each ``tests/faults/regressions/*.json`` is a shrunk counterexample the
fuzzer found against a seeded defect hook, serialized canonically.  The
gate asserts, per file and on fixed world seeds:

* the file is in canonical form (load → dumps is byte-identical);
* two fresh replays are byte-identical (the repro is stable);
* the honest stack replays it *clean* — the defect is fixed/gated;
* re-enabling the matching defect still reproduces the violation
  (the regression file actually pins the bug it was minimized from).
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.fuzz.replay import replay_steps
from repro.fuzz.steps import dumps, loads

REGRESSIONS = Path(__file__).parent / "regressions"

#: file stem -> the seeded defect hook the sequence was shrunk against.
DEFECT_OF = {
    "blk_lost_write": "blk-lost-write",
    "fleet_skew": "fleet-skew",
}


def _files():
    return sorted(REGRESSIONS.glob("*.json"))


def test_catalog_has_the_required_sequences():
    stems = [path.stem for path in _files()]
    assert len(stems) >= 2
    assert set(DEFECT_OF) <= set(stems)


@pytest.mark.parametrize("path", _files(), ids=lambda p: p.stem)
class TestRegressionFiles:
    def test_file_is_canonical(self, path):
        text = path.read_text()
        world_seed, steps = loads(text)
        assert dumps(steps, world_seed=world_seed) == text

    def test_replay_is_byte_identical(self, path):
        world_seed, steps = loads(path.read_text())
        first = replay_steps(steps, world_seed=world_seed)
        second = replay_steps(steps, world_seed=world_seed)
        assert first == second

    def test_honest_stack_replays_clean(self, path):
        world_seed, steps = loads(path.read_text())
        trace = replay_steps(steps, world_seed=world_seed)
        assert "\noutcome: clean\n" in trace, trace

    def test_defect_still_reproduces(self, path):
        defect = DEFECT_OF[path.stem]
        world_seed, steps = loads(path.read_text())
        first = replay_steps(steps, world_seed=world_seed, defect=defect)
        second = replay_steps(steps, world_seed=world_seed, defect=defect)
        assert "outcome: invariant-violated" in first, first
        assert first == second  # the failing replay is stable too

    def test_cli_replay_gate(self, path, capsys):
        assert main(["chaos", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "outcome: clean" in out
