"""RetryPolicy: bounded attempts, backoff charging, lifecycle reporting."""

import pytest

from repro.faults import sites
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryExhausted, RetryPolicy
from repro.perf.clock import SimClock


class Flaky:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures, exc=OSError):
        self.remaining = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc("transient")
        return "ok"


def engine():
    return FaultPlan((), 0).compile()


class TestBackoff:
    def test_exponential_and_capped(self):
        policy = RetryPolicy(
            base_backoff_ns=100.0, multiplier=2.0, max_backoff_ns=350.0
        )
        assert policy.backoff_ns(1) == 100.0
        assert policy.backoff_ns(2) == 200.0
        assert policy.backoff_ns(3) == 350.0  # capped
        assert policy.backoff_ns(4) == 350.0

    def test_total_budget_sums_worst_case(self):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_ns=100.0, multiplier=2.0,
            max_backoff_ns=1e9,
        )
        assert policy.total_budget_ns() == 100.0 + 200.0 + 400.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_ns=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ns(0)


class TestRun:
    def test_succeeds_on_last_allowed_attempt(self):
        flaky = Flaky(4)
        assert RetryPolicy(max_attempts=5).run(flaky, OSError) == "ok"
        assert flaky.calls == 5

    def test_exhaustion_raises_with_cause(self):
        flaky = Flaky(10)
        with pytest.raises(RetryExhausted) as excinfo:
            RetryPolicy(max_attempts=3).run(flaky, OSError, site="x")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OSError)
        assert flaky.calls == 3

    def test_non_retriable_escapes_immediately(self):
        flaky = Flaky(1, exc=ValueError)
        with pytest.raises(ValueError):
            RetryPolicy().run(flaky, OSError)
        assert flaky.calls == 1

    def test_backoff_charged_to_clock(self):
        clock = SimClock()
        policy = RetryPolicy(
            base_backoff_ns=100.0, multiplier=2.0, max_backoff_ns=1e9
        )
        policy.run(Flaky(2), OSError, clock=clock)
        assert clock.now_ns == 100.0 + 200.0

    def test_lifecycle_recorded_on_recovery(self):
        eng = engine()
        RetryPolicy().run(
            Flaky(2), OSError, faults=eng, site=sites.NET_BACKEND
        )
        counters = eng.counters[sites.NET_BACKEND]
        assert counters.retried == 2
        assert counters.recovered == 1
        assert counters.fatal == 0

    def test_lifecycle_recorded_on_exhaustion(self):
        eng = engine()
        with pytest.raises(RetryExhausted):
            RetryPolicy(max_attempts=2).run(
                Flaky(5), OSError, faults=eng, site=sites.NET_BACKEND
            )
        counters = eng.counters[sites.NET_BACKEND]
        assert counters.retried == 1
        assert counters.fatal == 1
        assert counters.recovered == 0

    def test_no_lifecycle_noise_on_clean_success(self):
        eng = engine()
        RetryPolicy().run(Flaky(0), OSError, faults=eng, site="x")
        assert eng.totals().retried == 0
        assert eng.totals().recovered == 0

    def test_on_retry_hook_runs_and_its_transient_failure_is_absorbed(self):
        calls = []

        def hook(exc, failures):
            calls.append(failures)
            if failures == 1:
                raise OSError("reconnect also failed")

        assert RetryPolicy().run(Flaky(2), OSError, on_retry=hook) == "ok"
        assert calls == [1, 2]
