"""Decode cache vs. ABOM: self-modifying code must never be missed.

ABOM rewrites live text (§4.4) while the interpreter holds decoded basic
blocks for exactly those bytes.  Every test here arranges for the patched
site to be *resident in the decode cache* when the patch lands, then
asserts the very next execution observes the new bytes — for the 7-byte
patch, the Go pattern, and both phases of the 9-byte rewrite, including
the pinned phase-1-only intermediate state and SMP shared text.
"""

import pytest

from repro.arch import Assembler, Reg
from repro.core import CountingServices, XContainer
from repro.core.abom import ABOM


def container(results=None, icache=True):
    return XContainer(CountingServices(results=results or {}), icache=icache)


def loop_program(style, nr, iterations, setup=None, base=0x400000):
    asm = Assembler(base=base)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    if setup:
        setup(asm)
    site = asm.syscall_site(nr, style=style)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(), site


def go_setup(nr):
    def setup(asm):
        asm.mov_imm64_low(Reg.RCX, nr)
        asm.store_rsp64(8, Reg.RCX)

    return setup


class TestPatchOfCachedSite:
    """The first trap patches a site whose block is already cached (the
    loop executed it once); iteration 2 must run the patched bytes."""

    def test_7byte_patch_evicts_cached_block(self):
        xc = container()
        binary, _ = loop_program("mov_eax", 39, 10)
        xc.run(binary)
        assert xc.libos_stats.forwarded_syscalls == 1
        assert xc.libos_stats.lightweight_syscalls == 9
        stats = xc.icache_stats()
        assert stats["invalidations"] >= 1
        assert stats["hits"] > 0  # the loop really ran from the cache

    def test_go_pattern_patch_evicts_cached_block(self):
        xc = container()
        binary, _ = loop_program("go_stack", 7, 8, setup=go_setup(7))
        xc.run(binary)
        assert xc.libos.services.calls == [7] * 8
        assert xc.libos_stats.forwarded_syscalls == 1
        assert xc.libos_stats.lightweight_syscalls == 7
        assert xc.icache_stats()["invalidations"] >= 1

    def test_9byte_patch_evicts_cached_block(self):
        """Both phases land back to back; iteration 2 must enter the
        call, not a stale decode of mov+syscall."""
        xc = container()
        binary, _ = loop_program("mov_rax", 15, 12)
        xc.run(binary)
        assert xc.abom_stats.patches_9byte == 1
        assert xc.libos_stats.forwarded_syscalls == 1
        assert xc.libos_stats.lightweight_syscalls == 11
        assert xc.icache_stats()["invalidations"] >= 1

    def test_cached_and_uncached_agree_on_syscall_streams(self):
        for style, setup in [
            ("mov_eax", None),
            ("mov_rax", None),
            ("go_stack", go_setup(5)),
        ]:
            nr = 5 if style == "go_stack" else 39
            streams = []
            for icache in (True, False):
                xc = container(icache=icache)
                binary, _ = loop_program(style, nr, 6, setup=setup)
                xc.run(binary)
                streams.append(xc.libos.services.calls)
            assert streams[0] == streams[1], style


class TestNineBytePhases:
    def test_phase1_only_intermediate_state_with_cache(self):
        """Pin the phase-1 state (call written, syscall still live) by
        failing the second cmpxchg: the cache must observe the phase-1
        bytes and the return-address skip keeps semantics intact."""
        xc = container(results={15: 3})
        binary, site = loop_program("mov_rax", 15, 6)
        xc.load(binary)
        abom = xc.xkernel.abom

        original_cmpxchg = xc.memory.compare_exchange
        calls = {"n": 0}

        def failing_second(addr, expected, new):
            calls["n"] += 1
            if calls["n"] == 2:
                return False
            return original_cmpxchg(addr, expected, new)

        # Warm the cache on the pristine bytes: the block decoded at the
        # entry covers the whole mov+syscall site, but stop stepping
        # before the syscall itself traps (that would patch normally).
        xc.cpu.regs.rip = binary.entry
        for _ in range(2):
            xc.cpu.step()
        assert xc.cpu.icache_stats.misses >= 1

        xc.memory.compare_exchange = failing_second
        assert abom.try_patch(site.syscall_addr)
        xc.memory.compare_exchange = original_cmpxchg
        assert xc.memory.read(site.syscall_addr, 2) == b"\x0f\x05"
        assert xc.cpu.icache_stats.invalidations >= 1

        result = xc.run_loaded(binary.entry)
        assert result.exit_rax == 3
        assert xc.libos.services.count(15) == 6

    def test_phase2_jmp_back_from_cached_tail(self):
        """After phase 2, a direct jump to the old syscall address runs
        ``jmp -9`` into the call — even though the pre-patch block that
        covered that address was cached."""
        xc = container()
        binary, site = loop_program("mov_rax", 20, 4)
        xc.run(binary)  # fully patched, both phases
        assert xc.memory.read(site.syscall_addr, 2) == b"\xeb\xf7"
        before = xc.libos.services.count(20)
        xc.cpu.halted = False
        xc.cpu.regs.rip = site.syscall_addr  # land on the jmp -9 tail
        for _ in range(4):
            xc.cpu.step()
        assert xc.libos.services.count(20) == before + 1
        assert xc.libos_stats.forwarded_syscalls == 1  # still only one


class TestExternalPatchMidRun:
    @pytest.mark.parametrize("patch_after", [0, 1, 2, 3])
    def test_patch_lands_between_iterations_of_cached_loop(self, patch_after):
        """A foreign patcher (another vCPU's ABOM) rewrites a site in the
        middle of a stepped run: the remaining iterations must execute
        the patched bytes from a fresh decode."""
        loops = 5
        binary, site = loop_program("mov_rax", 20, loops)
        reference = XContainer(CountingServices(), abom_enabled=False)
        reference.run(binary)

        xc = XContainer(CountingServices(), abom_enabled=False)
        xc.load(binary)
        xc.cpu.regs.rip = binary.entry
        while (
            not xc.cpu.halted
            and len(xc.libos.services.calls) < min(patch_after, loops)
        ):
            xc.cpu.step()
        patcher = ABOM(xc.memory)
        assert patcher.try_patch(site.syscall_addr)
        if patch_after > 0:
            # The loop block was executing from the cache when the patch
            # evicted it mid-flight.
            assert xc.cpu.icache_stats.invalidations >= 1
        while not xc.cpu.halted:
            xc.cpu.step()
        assert xc.libos.services.calls == reference.libos.services.calls


class TestSmpSharedText:
    def test_two_vcpus_with_caches_race_on_patched_text(self):
        """Both vCPUs execute the SAME text with their own decode caches;
        one of them triggers the patch, BOTH caches must drop the stale
        block (the software analogue of cross-core i-cache coherence)."""
        xc = container()
        second = xc.add_vcpu()
        asm = Assembler(base=0x400000)
        asm.mov_imm32(Reg.RBX, 25)
        asm.label("loop")
        asm.syscall_site(39, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        shared = asm.build()
        xc.load(shared)
        # Warm the second vCPU's cache on the pristine text (one step,
        # before the site traps) so the patch has a stale block to evict;
        # round-robin order would otherwise let it decode post-patch.
        second.regs.rip = shared.entry
        second.step()
        xc.run_concurrent(
            [(xc.cpu, shared.entry), (second, shared.entry)], quantum=3
        )
        assert xc.libos.services.count(39) == 50
        assert xc.abom_stats.total_patches == 1
        # Each vCPU ran mostly from its cache AND observed the patch.
        assert xc.cpu.icache_stats.hits > 0
        assert second.icache_stats.hits > 0
        assert xc.cpu.icache_stats.invalidations >= 1
        assert second.icache_stats.invalidations >= 1
        # One forwarded trap; everything else took the patched fast path.
        assert xc.libos_stats.forwarded_syscalls == 1
        assert xc.libos_stats.lightweight_syscalls == 49
