import pytest

from repro.core.images import (
    ImageManifest,
    ImageRegistry,
    Layer,
    demo_images,
)


class TestLayers:
    def test_layer_size(self):
        layer = Layer.from_dict("sha256:x", {"/a": b"12345"})
        assert layer.size_bytes == 5

    def test_flatten_respects_layer_order(self):
        base = Layer.from_dict("sha256:base", {"/conf": b"default",
                                               "/bin": b"v1"})
        override = Layer.from_dict("sha256:custom", {"/conf": b"tuned"})
        manifest = ImageManifest("app", "1", [base, override])
        view = manifest.flatten()
        assert view["/conf"] == b"tuned"
        assert view["/bin"] == b"v1"


class TestRegistry:
    def test_push_pull(self):
        registry = demo_images()
        nginx = registry.pull("nginx:1.13")
        assert nginx.entrypoint == "/usr/sbin/nginx"

    def test_missing_image(self):
        with pytest.raises(KeyError):
            demo_images().pull("postgres:9")

    def test_digest_collision_rejected(self):
        registry = ImageRegistry()
        a = ImageManifest("a", "1", [Layer.from_dict("sha256:d",
                                                     {"/x": b"1"})])
        b = ImageManifest("b", "1", [Layer.from_dict("sha256:d",
                                                     {"/x": b"2"})])
        registry.push(a)
        with pytest.raises(ValueError):
            registry.push(b)

    def test_base_layers_shared_between_images(self):
        registry = demo_images()
        shared = registry.shared_layers("nginx:1.13", "redis:3.2.11")
        assert "sha256:base-ubuntu16" in shared


class TestMaterialization:
    def test_rootfs_contains_flattened_view(self):
        registry = demo_images()
        rootfs, snapshot = registry.materialize("nginx:1.13")
        handle = rootfs.open("/etc/nginx/nginx.conf")
        assert rootfs.read(handle, 100) == b"worker_processes 1;"
        assert rootfs.exists("/etc/os-release")

    def test_each_container_gets_private_cow_snapshot(self):
        registry = demo_images()
        _, snap_a = registry.materialize("nginx:1.13")
        _, snap_b = registry.materialize("nginx:1.13")
        snap_a.write_sector(0, b"A" * 512)
        assert snap_b.read_sector(0) == b"\x00" * 512
        assert snap_a.base is registry.base_device

    def test_rootfs_instances_independent(self):
        registry = demo_images()
        fs_a, _ = registry.materialize("redis:3.2.11")
        fs_b, _ = registry.materialize("redis:3.2.11")
        fs_a.unlink("/usr/bin/redis-server")
        assert fs_b.exists("/usr/bin/redis-server")
