"""Trace cache vs. ABOM: §4.4 patches must evict compiled traces.

The icache SMC suite (``test_icache_smc.py``) proves stores to cached
text are observed at block granularity; this suite proves the same
write-observer protocol reaches compiled superblocks: an ABOM
``cmpxchg`` landing on a page a trace was compiled from evicts it (even
mid-run, even from another vCPU's patcher), rejected chains get a fresh
look once the text changes, and post-patch traces stitch straight
through the patched call into the LibOS stub.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Assembler, Reg
from repro.core import CountingServices, XContainer
from repro.core.abom import ABOM

BASE = 0x400000


def loop_program(style, nr, iterations, setup=None, base=BASE):
    asm = Assembler(base=base)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    if setup:
        setup(asm)
    site = asm.syscall_site(nr, style=style)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(), site


def go_setup(nr):
    def setup(asm):
        asm.mov_imm64_low(Reg.RCX, nr)
        asm.store_rsp64(8, Reg.RCX)

    return setup


def trace_stats(xc):
    return xc.cpu.trace_stats


class TestPatchedSiteTraces:
    """After ABOM converts a site, the hot loop around it compiles into
    a trace that calls the LibOS stub inline — dispatch-free syscalls."""

    def test_mov_eax_loop_traces_through_patched_call(self):
        xc = XContainer(CountingServices())
        binary, _ = loop_program("mov_eax", 39, 300)
        xc.run(binary)
        assert xc.libos_stats.forwarded_syscalls == 1
        assert xc.libos_stats.lightweight_syscalls == 299
        stats = trace_stats(xc)
        assert stats.compiles >= 1
        assert stats.executions >= 1
        # The loop body (call + stub + dec + jne) ran inside the trace.
        assert stats.instructions > 500

    def test_mov_rax_loop_folds_dead_tail_skip(self):
        """The 9-byte patch leaves a dead ``jmp -9``/``syscall`` at the
        stub's return address; the recorder folds the LibOS skip into
        the trace, so iterations do not guard-exit on the skipped RIP."""
        xc = XContainer(CountingServices())
        binary, _ = loop_program("mov_rax", 15, 300)
        xc.run(binary)
        assert xc.libos_stats.lightweight_syscalls == 299
        stats = trace_stats(xc)
        assert stats.compiles >= 1
        # One guard exit per loop end, not one per iteration.
        assert stats.guard_exits < 20
        assert stats.instructions > 500

    def test_go_pattern_loop_traces(self):
        xc = XContainer(CountingServices())
        binary, _ = loop_program("go_stack", 7, 300, setup=go_setup(7))
        xc.run(binary)
        assert xc.libos.services.calls == [7] * 300
        assert trace_stats(xc).compiles >= 1

    def test_rejected_chain_retried_after_patch(self):
        """Pre-patch the chain ends in ``syscall`` (untraceable, goes on
        the failed list); the patch write clears the blacklist so the
        site retraces as a patched call."""
        # ABOM off: the site stays an unpatched syscall for the whole
        # first run, so every recording attempt aborts at the trap.
        xc = XContainer(CountingServices(), abom_enabled=False)
        binary, site = loop_program("mov_eax", 39, 60)
        xc.load(binary)
        tc = xc.cpu._tracecache
        tc.hot_threshold = 10
        xc.run_loaded(binary.entry)
        assert trace_stats(xc).aborts >= 1
        assert tc.failed
        assert trace_stats(xc).compiles == 0
        # A foreign patcher converts the site: the text write clears the
        # blacklist, and the rerun stitches through the patched call.
        patcher = ABOM(xc.memory)
        assert patcher.try_patch(site.syscall_addr)
        assert not tc.failed
        xc.cpu.halted = False
        xc.run_loaded(binary.entry)
        assert trace_stats(xc).compiles >= 1
        assert xc.libos.services.count(39) == 120


class TestPatchEvictsInstalledTrace:
    def test_patch_on_trace_page_evicts_mid_run(self):
        """A counting loop on the same page as a syscall site: the loop
        traces first, then the site's first trap patches the page —
        the installed trace must die before its next entry."""
        asm = Assembler(base=BASE)
        # Hot counting loop: compiles into a trace.
        asm.mov_imm32(Reg.RBX, 200)
        asm.xor(Reg.RAX, Reg.RAX)
        asm.label("count")
        asm.inc(Reg.RAX)
        asm.dec(Reg.RBX)
        asm.jne("count")
        # Then a syscall loop on the SAME page: iteration 1 traps and
        # ABOM rewrites text, invalidating the counting trace.
        asm.mov_imm32(Reg.RBX, 60)
        asm.label("sys")
        asm.syscall_site(39, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("sys")
        asm.hlt()
        binary = asm.build()
        xc = XContainer(CountingServices())
        xc.run(binary)
        assert xc.libos.services.count(39) == 60
        stats = trace_stats(xc)
        assert stats.compiles >= 1
        assert stats.invalidations >= 1

    def test_foreign_vcpu_patch_evicts_this_vcpus_trace(self):
        """Cross-vCPU i-cache coherence for traces: a patcher driven by
        another vCPU's ABOM rewrites shared text; this vCPU's compiled
        trace observes it through the shared write-observer protocol."""
        # A hot counting loop followed by a never-executed syscall site
        # on the same page: the loop traces, the site is patch bait.
        asm = Assembler(base=BASE)
        asm.mov_imm32(Reg.RBX, 200)
        asm.xor(Reg.RAX, Reg.RAX)
        asm.label("count")
        asm.inc(Reg.RAX)
        asm.dec(Reg.RBX)
        asm.jne("count")
        asm.hlt()
        site = asm.syscall_site(20, style="mov_rax")
        binary = asm.build()
        xc = XContainer(CountingServices())
        xc.run(binary)
        assert xc.cpu.regs.rax == 200
        assert trace_stats(xc).compiles >= 1
        installed = dict(xc.cpu._tracecache.traces)
        assert installed
        # Foreign patcher (models another vCPU's ABOM) rewrites the page.
        patcher = ABOM(xc.memory)
        assert patcher.try_patch(site.syscall_addr)
        assert trace_stats(xc).invalidations >= 1
        assert not set(installed) & set(xc.cpu._tracecache.traces)
        # Rerun on the patched page: still exact, trace recompiles.
        xc.cpu.halted = False
        xc.run_loaded(binary.entry)
        assert xc.cpu.regs.rax == 200
        assert trace_stats(xc).compiles >= 2


class TestEquivalenceUnderAbom:
    @given(
        style=st.sampled_from(["mov_eax", "mov_rax", "go_stack"]),
        iterations=st.integers(min_value=60, max_value=120),
        threshold=st.sampled_from([5, 50]),
    )
    @settings(max_examples=20, deadline=None)
    def test_traced_and_untraced_streams_agree(
        self, style, iterations, threshold
    ):
        """Hypothesis: for every site style, iteration count, and
        hotness threshold, traced execution produces the identical
        syscall stream, counters, and final state as the interpreter —
        ABOM mid-run patches included."""
        nr = 5 if style == "go_stack" else 39
        setup = go_setup(nr) if style == "go_stack" else None
        outcomes = []
        for tracecache in (True, False):
            xc = XContainer(CountingServices(), tracecache=tracecache)
            binary, _ = loop_program(style, nr, iterations, setup=setup)
            if tracecache:
                xc.cpu._tracecache.hot_threshold = threshold
            result = xc.run(binary)
            outcomes.append(
                (
                    xc.libos.services.calls,
                    xc.libos_stats.lightweight_syscalls,
                    xc.libos_stats.forwarded_syscalls,
                    xc.cpu.regs.snapshot(),
                    result.instructions,
                )
            )
        assert outcomes[0] == outcomes[1]
