import pytest

from repro.arch.cpu import CPU
from repro.arch.memory import PagedMemory, PageFlags
from repro.core.xlibos import CountingServices, XLibOS
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


def make_libos(results=None, clock=None):
    mem = PagedMemory()
    services = CountingServices(results=results or {})
    libos = XLibOS(mem, services, CostModel(), clock)
    mem.map_region(0x7000, 4096, PageFlags.USER | PageFlags.WRITABLE)
    cpu = CPU(mem)
    cpu.regs.rsp = 0x7800
    libos.attach(cpu)
    return libos, cpu, services


class TestLightweightEntry:
    def _push_return(self, cpu, addr):
        cpu.push64(addr)

    def test_dispatch_and_return(self):
        libos, cpu, services = make_libos(results={39: 42})
        # Map a fake return site with benign bytes.
        libos.memory.map_region(0x5000, 4096, PageFlags.USER)
        self._push_return(cpu, 0x5000)
        rsp_before_call = cpu.regs.rsp + 8
        libos.lightweight_entry(cpu, 39)
        assert cpu.regs.rax == 42
        assert cpu.regs.rip == 0x5000
        assert cpu.regs.rsp == rsp_before_call
        assert services.calls == [39]
        assert libos.stats.lightweight_syscalls == 1

    def test_skip_trailing_syscall(self):
        """Phase-1 9-byte state: return address holds the dead syscall."""
        libos, cpu, _ = make_libos()
        libos.memory.map_region(0x5000, 4096, PageFlags.USER)
        libos.memory.wp_enabled = False
        libos.memory.write(0x5000, b"\x0f\x05")
        libos.memory.wp_enabled = True
        self._push_return(cpu, 0x5000)
        libos.lightweight_entry(cpu, 0)
        assert cpu.regs.rip == 0x5002
        assert libos.stats.return_address_skips == 1

    def test_skip_trailing_jmp_back(self):
        """Phase-2 state: return address holds ``jmp -9``."""
        libos, cpu, _ = make_libos()
        libos.memory.map_region(0x5000, 4096, PageFlags.USER)
        libos.memory.wp_enabled = False
        libos.memory.write(0x5000, b"\xeb\xf7")
        libos.memory.wp_enabled = True
        self._push_return(cpu, 0x5000)
        libos.lightweight_entry(cpu, 0)
        assert cpu.regs.rip == 0x5002

    def test_no_skip_for_ordinary_bytes(self):
        libos, cpu, _ = make_libos()
        libos.memory.map_region(0x5000, 4096, PageFlags.USER)
        libos.memory.wp_enabled = False
        libos.memory.write(0x5000, b"\x90\x90")
        libos.memory.wp_enabled = True
        self._push_return(cpu, 0x5000)
        libos.lightweight_entry(cpu, 0)
        assert cpu.regs.rip == 0x5000
        assert libos.stats.return_address_skips == 0

    def test_unmapped_return_address_no_probe_fault(self):
        libos, cpu, _ = make_libos()
        self._push_return(cpu, 0xDEAD0000)
        libos.lightweight_entry(cpu, 0)  # must not raise
        assert cpu.regs.rip == 0xDEAD0000

    def test_charges_function_call_cost(self):
        clock = SimClock()
        libos, cpu, _ = make_libos(clock=clock)
        libos.memory.map_region(0x5000, 4096, PageFlags.USER)
        self._push_return(cpu, 0x5000)
        libos.lightweight_entry(cpu, 0)
        assert clock.now_ns == pytest.approx(
            CostModel().xc_func_call_syscall_ns
        )


class TestForwardedEntry:
    def test_dispatch_via_rax(self):
        libos, cpu, services = make_libos(results={1: 8})
        cpu.regs.rax = 1
        libos.forwarded_entry(cpu, 0x4000)
        assert cpu.regs.rax == 8
        assert cpu.regs.rip == 0x4002
        assert libos.stats.forwarded_syscalls == 1
        assert services.calls == [1]

    def test_total_syscalls_sums_both_paths(self):
        libos, cpu, _ = make_libos()
        libos.memory.map_region(0x5000, 4096, PageFlags.USER)
        cpu.push64(0x5000)
        libos.lightweight_entry(cpu, 0)
        cpu.regs.rax = 0
        libos.forwarded_entry(cpu, 0x4000)
        assert libos.stats.total_syscalls == 2


class TestUserModeMechanisms:
    def test_user_mode_iret_restores_frame(self):
        libos, cpu, _ = make_libos()
        libos.user_mode_iret(cpu, {"rip": 0x1234, "rsp": 0x7700, "rax": 9})
        assert cpu.regs.rip == 0x1234
        assert cpu.regs.rsp == 0x7700
        assert cpu.regs.rax == 9
        assert libos.stats.user_mode_irets == 1

    def test_deliver_pending_events_runs_handlers(self):
        libos, _, _ = make_libos()
        fired = []
        count = libos.deliver_pending_events(
            [lambda: fired.append(1), lambda: fired.append(2)]
        )
        assert count == 2
        assert fired == [1, 2]
        assert libos.stats.events_delivered == 2


class TestCountingServices:
    def test_count_per_nr(self):
        services = CountingServices()
        services.invoke(1, None)
        services.invoke(1, None)
        services.invoke(2, None)
        assert services.count(1) == 2
        assert services.count(3) == 0

    def test_default_result(self):
        services = CountingServices(default_result=-38)
        assert services.invoke(5, None) == -38
