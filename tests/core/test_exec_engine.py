"""The hybrid discrete-event execution core (`repro.core.engine`).

The load-bearing contract is byte-identity: a hybrid run and a stepped
run of the same schedule must agree on the full engine snapshot AND on
the exported telemetry text — pinned here by unit cases and by a
Hypothesis property over random fleet schedules, with and without
SCHED_WAKE fault plans.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    DEFAULT_SPIN,
    MAX_REDELIVERIES,
    REDELIVER_TICKS,
    ExecutionEngine,
    build_worker,
)
from repro.faults import sites
from repro.faults.plan import Every, FaultEngine, FaultPlan, FaultSpec, Nth
from repro.obs import prometheus_text
from repro.obs.registry import Registry
from repro.sanitize.suite import SanitizerSuite


def _pair(**kwargs):
    return (
        ExecutionEngine(hybrid=True, **kwargs),
        ExecutionEngine(hybrid=False, **kwargs),
    )


def _assert_identical(a: ExecutionEngine, b: ExecutionEngine) -> None:
    assert a.snapshot() == b.snapshot()
    ra, rb = Registry(), Registry()
    a.bind_telemetry(ra)
    b.bind_telemetry(rb)
    assert prometheus_text(ra) == prometheus_text(rb)


class TestWorker:
    def test_boot_parks_in_idle_loop(self):
        engine = ExecutionEngine()
        dom = engine.spawn("a")
        assert dom.parked
        assert dom.cpu.halted
        assert dom.completed == 0
        assert engine.n_parked == 1

    def test_work_units_complete_and_repark(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        engine.post_work(dom.domid, 3, at_ns=0.0)
        engine.run_until(2e6)
        assert dom.completed == 3
        assert dom.parked
        assert dom.pending_units == 0

    def test_completed_total_accumulates_across_wakes(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        engine.post_work(dom.domid, 2, at_ns=0.0)
        engine.post_work(dom.domid, 5, at_ns=4e6)
        engine.run_until(10e6)
        assert dom.completed == 7

    def test_spin_scales_burst_length(self):
        short = build_worker(spin=2)
        long = build_worker(spin=40)
        assert len(short.code) == len(long.code)
        a = ExecutionEngine(spin=2)
        b = ExecutionEngine(spin=40)
        a.spawn()
        b.spawn()
        a.post_work(0, 4, at_ns=0.0)
        b.post_work(0, 4, at_ns=0.0)
        a.run_until(1e6)
        b.run_until(1e6)
        assert b.stats.instructions > a.stats.instructions
        assert a.domain(0).completed == b.domain(0).completed == 4


class TestWakeProtocol:
    def test_spurious_wake_reparks_cheaply(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        before = engine.stats.instructions
        engine.post_kick(dom.domid)
        engine.run_until(2e6)
        assert engine.stats.spurious_wakes == 1
        assert dom.parked
        # hlt resume + mailbox load + compare + branch back to hlt.
        assert engine.stats.instructions - before < 10

    def test_kicks_coalesce_into_one_burst(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        # Two posts land on the same tick: the first delivery drains
        # both payloads, the second wake is spurious.
        engine.post_work(dom.domid, 2, at_ns=0.5e6)
        engine.post_work(dom.domid, 3, at_ns=0.5e6)
        engine.run_until(2e6)
        assert dom.completed == 5
        assert engine.stats.wake_events == 2
        assert engine.stats.spurious_wakes == 1
        assert engine.stats.bursts == 2

    def test_dead_domain_swallows_kicks(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        engine.post_work(dom.domid, 2, at_ns=0.0)
        engine.retire(dom.domid)
        engine.run_until(2e6)
        assert engine.stats.dead_wakes == 1
        assert engine.n_parked == 0

    def test_fastforward_counts_idle_gap_only(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        engine.post_work(dom.domid, 1, at_ns=99e6)
        engine.run_until(200e6)
        # Parked from ~0 to the 100 ms delivery tick.
        assert engine.stats.fastforward_ns >= 99e6
        assert engine.stats.fastforward_ns <= 100e6
        assert dom.clock.now_ns >= 100e6

    def test_late_spawn_does_not_backdate_fastforward(self):
        engine = ExecutionEngine()
        engine.spawn()
        engine.post_work(0, 1, at_ns=0.0)
        engine.run_until(50e6)
        late = engine.spawn()
        engine.post_work(late.domid, 1, at_ns=50e6)
        before = engine.stats.fastforward_ns
        engine.run_until(52e6)
        # The late domain was born at t=50ms; its first wake closes a
        # 1-tick gap, not a 51 ms one.
        assert engine.stats.fastforward_ns - before <= 2 * engine.tick_ns

    def test_run_until_rejects_off_grid_times(self):
        engine = ExecutionEngine()
        engine.spawn()
        try:
            engine.run_until(1.5e6)
        except ValueError as exc:
            assert "tick grid" in str(exc)
        else:
            raise AssertionError("off-grid run_until must be rejected")


class TestExternalWakeSources:
    def test_event_channel_send_wakes_bound_domain(self):
        from repro.perf.costs import CostModel
        from repro.xen.events import EventChannelTable

        engine = ExecutionEngine()
        dom = engine.spawn()
        table = EventChannelTable(CostModel(), engine.clock)
        engine.attach_events(table)
        port = table.bind(lambda: None)
        engine.bind_port(port, dom.domid)
        dom.pending_units = 0
        assert table.send(port)
        engine.run_until(2e6)
        assert engine.stats.wake_events == 1

    def test_timer_wake_from_toolstack(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        engine.on_timer(dom.domid, 7e6)
        engine.run_until(10e6)
        assert engine.stats.wake_events == 1
        assert dom.clock.now_ns >= 8e6

    def test_ring_reap_wakes_frontend_domain(self):
        engine = ExecutionEngine()
        dom = engine.spawn()
        waker = engine.ring_waker(dom.domid)
        waker.on_ring_reap(3)
        engine.run_until(2e6)
        assert engine.stats.wake_events == 1


class TestFaults:
    def _engine(self, hybrid, specs):
        plan = FaultPlan(tuple(specs))
        return ExecutionEngine(hybrid=hybrid, faults=FaultEngine(plan))

    def test_dropped_kick_strands_units_until_watchdog(self):
        specs = [FaultSpec(sites.SCHED_WAKE, "drop", Nth(1))]
        engine = self._engine(True, specs)
        dom = engine.spawn()
        engine.post_work(dom.domid, 2, at_ns=0.0)
        engine.run_until(2e6)
        # Kick lost: the published units are stranded in the ring.
        assert dom.completed == 0
        assert dom.pending_units == 2
        assert engine.stats.drops == 1
        engine.run_to_quiescence()
        # The bounded watchdog re-kicked and the work completed.
        assert dom.completed == 2
        assert engine.stats.redeliveries == 1
        assert engine.now_ns <= (REDELIVER_TICKS + 2) * engine.tick_ns

    def test_delay_defers_delivery(self):
        specs = [FaultSpec(sites.SCHED_WAKE, "delay", Nth(1), param=5e6)]
        engine = self._engine(True, specs)
        dom = engine.spawn()
        engine.post_work(dom.domid, 1, at_ns=0.0)
        engine.run_until(4e6)
        assert dom.completed == 0
        engine.run_until(8e6)
        assert dom.completed == 1
        assert engine.stats.delays == 1

    def test_persistent_drops_abandon_after_bound(self):
        specs = [FaultSpec(sites.SCHED_WAKE, "drop", Every(1))]
        engine = self._engine(True, specs)
        dom = engine.spawn()
        engine.post_work(dom.domid, 1, at_ns=0.0)
        engine.run_to_quiescence()
        assert dom.completed == 0
        assert engine.stats.abandoned == 1
        assert engine.stats.drops == MAX_REDELIVERIES
        assert engine.faults.totals().fatal == 1

    def test_recovery_is_recorded(self):
        specs = [FaultSpec(sites.SCHED_WAKE, "drop", Nth(1))]
        engine = self._engine(True, specs)
        dom = engine.spawn()
        engine.post_work(dom.domid, 1, at_ns=0.0)
        engine.run_to_quiescence()
        totals = engine.faults.totals()
        assert totals.retried == 1
        assert totals.recovered == 1
        assert totals.fatal == 0
        assert dom.completed == 1


class TestSanitizerMirroring:
    def test_clean_run_has_no_findings(self):
        suite = SanitizerSuite()
        engine = ExecutionEngine(sanitizer=suite)
        for _ in range(3):
            engine.spawn()
        for domid in range(3):
            engine.post_work(domid, 2, at_ns=domid * 1e6)
        engine.run_to_quiescence()
        for domid in range(3):
            engine.retire(domid)
        assert suite.findings == []

    def test_dropped_kick_is_visible_to_the_checker(self):
        suite = SanitizerSuite()
        plan = FaultPlan((FaultSpec(sites.SCHED_WAKE, "drop", Nth(1)),))
        engine = ExecutionEngine(
            sanitizer=suite, faults=FaultEngine(plan)
        )
        dom = engine.spawn()
        engine.post_work(dom.domid, 1, at_ns=0.0)
        engine.run_to_quiescence()
        engine.retire(dom.domid)
        # The watchdog recovered the lost kick, so quiesce stays clean.
        assert suite.findings == []


# ---------------------------------------------------------------------------
# Byte-identity: hybrid vs stepped oracle
# ---------------------------------------------------------------------------

schedule_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),    # domain
        st.integers(min_value=1, max_value=6),    # units
        st.integers(min_value=0, max_value=40),   # post tick
    ),
    min_size=1,
    max_size=30,
)


class TestByteIdentity:
    def test_identity_simple_fleet(self):
        engines = _pair()
        for engine in engines:
            for _ in range(4):
                engine.spawn()
            for domid in range(4):
                engine.post_work(domid, 1 + domid, at_ns=domid * 3e6)
            engine.run_until(50e6)
        _assert_identical(*engines)

    def test_identity_with_retire_and_kicks(self):
        engines = _pair()
        for engine in engines:
            for _ in range(3):
                engine.spawn()
            engine.post_work(0, 2, at_ns=1e6)
            engine.post_work(1, 3, at_ns=1e6)
            engine.retire(1)
            engine.post_kick(2, at_ns=5e6)
            engine.run_until(20e6)
        _assert_identical(*engines)

    @settings(max_examples=40, deadline=None)
    @given(schedule=schedule_strategy)
    def test_identity_random_schedules(self, schedule):
        engines = _pair()
        for engine in engines:
            for _ in range(6):
                engine.spawn()
            for domid, units, tick in schedule:
                engine.post_work(domid, units, at_ns=tick * 1e6)
            engine.run_until(60e6)
            engine.run_to_quiescence()
        _assert_identical(*engines)
        assert engines[0].total_completed() == sum(
            units for _, units, _ in schedule
        )

    @settings(max_examples=25, deadline=None)
    @given(
        schedule=schedule_strategy,
        drop_every=st.integers(min_value=2, max_value=9),
        delay_nth=st.integers(min_value=1, max_value=12),
    )
    def test_identity_under_fault_plans(
        self, schedule, drop_every, delay_nth
    ):
        def build(hybrid):
            plan = FaultPlan((
                FaultSpec(
                    sites.SCHED_WAKE, "drop", Every(drop_every), limit=6
                ),
                FaultSpec(
                    sites.SCHED_WAKE, "delay", Nth(delay_nth), param=4e6
                ),
            ))
            engine = ExecutionEngine(
                hybrid=hybrid, faults=FaultEngine(plan)
            )
            for _ in range(6):
                engine.spawn()
            for domid, units, tick in schedule:
                engine.post_work(domid, units, at_ns=tick * 1e6)
            engine.run_until(60e6)
            engine.run_to_quiescence()
            return engine

        a, b = build(True), build(False)
        _assert_identical(a, b)
        # Fault accounting is part of the identity contract too.
        assert a.faults.totals() == b.faults.totals()

    def test_hybrid_skips_polls_stepped_pays_them(self):
        engines = _pair()
        for engine in engines:
            for _ in range(5):
                engine.spawn()
            engine.post_work(0, 1, at_ns=500e6)
            engine.run_until(1000e6)
        hybrid, stepped = engines
        _assert_identical(hybrid, stepped)
        # 1000 ticks x 5 domains for the oracle; one delivery for hybrid.
        assert stepped.stats.polls == 5000
        assert hybrid.stats.polls == 1
