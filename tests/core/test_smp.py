"""Multicore processing inside one X-Container (§4.3).

"no existing LibOS, except X-Containers, provides both these features"
(binary compatibility AND multicore processing) — so multiple vCPUs
running concurrently over shared, live-patched text is the platform's
signature capability.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Assembler, Reg
from repro.core import CountingServices, XContainer


def loop_binary(nr, iterations, base):
    asm = Assembler(base=base)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    asm.syscall_site(nr, style="mov_eax")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(f"loop-{nr}")


class TestMultipleVcpus:
    def test_add_vcpu_shares_address_space(self):
        xc = XContainer(CountingServices())
        second = xc.add_vcpu()
        assert second.mem is xc.memory
        assert len(xc.cpus) == 2
        assert second.regs.rsp != xc.cpu.regs.rsp  # own stack

    def test_two_vcpus_run_different_programs(self):
        xc = XContainer(CountingServices())
        second = xc.add_vcpu()
        a = loop_binary(39, 10, base=0x400000)
        b = loop_binary(102, 10, base=0x500000)
        xc.load(a)
        xc.load(b)
        xc.run_concurrent([(xc.cpu, a.entry), (second, b.entry)])
        services = xc.libos.services
        assert services.count(39) == 10
        assert services.count(102) == 10

    def test_interleaving_actually_happens(self):
        xc = XContainer(CountingServices())
        second = xc.add_vcpu()
        a = loop_binary(39, 20, base=0x400000)
        b = loop_binary(102, 20, base=0x500000)
        xc.load(a)
        xc.load(b)
        xc.run_concurrent([(xc.cpu, a.entry), (second, b.entry)],
                          quantum=2)
        calls = xc.libos.services.calls
        # With a 2-instruction quantum the two syscall streams interleave.
        first_39 = calls.index(39)
        first_102 = calls.index(102)
        assert abs(first_39 - first_102) < 10
        assert calls.count(39) == 20 and calls.count(102) == 20

    def test_vcpus_racing_on_the_same_text(self):
        """Both vCPUs run the SAME binary: one of them patches each site,
        the other observes either the old or new bytes — semantics must
        hold either way (§4.4 concurrency safety)."""
        xc = XContainer(CountingServices())
        second = xc.add_vcpu()
        shared = loop_binary(39, 25, base=0x400000)
        xc.load(shared)
        xc.run_concurrent(
            [(xc.cpu, shared.entry), (second, shared.entry)], quantum=3
        )
        assert xc.libos.services.count(39) == 50
        # The site was patched exactly once despite two racing vCPUUs.
        assert xc.abom_stats.total_patches == 1

    def test_bad_quantum_rejected(self):
        xc = XContainer(CountingServices())
        with pytest.raises(ValueError):
            xc.run_concurrent([], quantum=0)

    @given(st.integers(1, 9), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_total_work_independent_of_quantum(self, quantum, vcpus):
        """Property: scheduling granularity never changes the syscall
        totals."""
        xc = XContainer(CountingServices())
        cpus = [xc.cpu] + [xc.add_vcpu() for _ in range(vcpus - 1)]
        programs = []
        for index, cpu in enumerate(cpus):
            binary = loop_binary(
                30 + index, 8, base=0x400000 + index * 0x100000
            )
            xc.load(binary)
            programs.append((cpu, binary.entry))
        xc.run_concurrent(programs, quantum=quantum)
        for index in range(vcpus):
            assert xc.libos.services.count(30 + index) == 8


class TestEventDeliveryDuringExecution:
    def test_pending_events_handled_without_hypercall(self):
        """§4.2: the X-LibOS 'can emulate the interrupt stack frame when
        it sees any pending events and jump directly into interrupt
        handlers without trapping into the X-Kernel first'."""
        from repro.xen.events import EventChannelTable

        xc = XContainer(CountingServices())
        events = EventChannelTable(xc.costs, xc.clock)
        ticks = []
        port = events.bind(lambda: ticks.append(xc.clock.now_ns))
        binary = loop_binary(39, 5, base=0x400000)
        xc.load(binary)
        xc.cpu.regs.rip = binary.entry
        # Interleave execution with event arrivals.
        for _ in range(3):
            xc.step(count=8)
            events.send(port)
            if events.evtchn_upcall_pending:
                xc.libos.deliver_pending_events(
                    [events._channels[port].handler]
                    * len(events.pending_ports())
                )
                events.drain(via_hypercall=False)
        while not xc.cpu.halted:
            xc.cpu.step()
        assert len(ticks) >= 3
        assert events.hypercall_deliveries == 0
        assert xc.libos.services.count(39) == 5
