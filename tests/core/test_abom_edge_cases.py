"""ABOM edge cases: page boundaries, odd placements, pathological code."""

import pytest

from repro.arch import Assembler, Reg
from repro.arch.memory import PAGE_SIZE
from repro.core import CountingServices, XContainer


def site_at_offset(offset_in_page: int, style: str, nr: int = 39,
                   iterations: int = 4):
    """Build a binary whose syscall site starts at a chosen page offset,
    so patches can straddle the 4 KiB boundary."""
    base = 0x400000
    asm = Assembler(base=base)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.jmp("site")  # jump over the padding
    pad = offset_in_page - (len(asm._code) % PAGE_SIZE)
    if pad < 0:
        pad += PAGE_SIZE
    asm.nop(pad)
    asm.label("site")
    asm.label("loop")
    site = asm.syscall_site(nr, style=style)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(), site


class TestPageStraddlingPatches:
    @pytest.mark.parametrize("style,length", [
        ("mov_eax", 7),
        ("mov_rax", 9),
        ("go_stack", 7),
    ])
    def test_patch_across_page_boundary(self, style, length):
        """A site whose bytes straddle two pages must patch and execute
        correctly (the cmpxchg window spans the boundary)."""
        # Place the site so the boundary falls inside the replaced bytes.
        for split in range(1, length):
            offset = PAGE_SIZE - split
            binary, _ = site_at_offset(offset, style)
            xc = XContainer(CountingServices())
            if style == "go_stack":
                # go_stack needs the number staged; use a bare prelude in
                # the loop instead: rebuild with the stage.
                base = 0x400000
                asm = Assembler(base=base)
                asm.mov_imm32(Reg.RBX, 4)
                asm.mov_imm64_low(Reg.RCX, 39)
                asm.store_rsp64(8, Reg.RCX)
                asm.jmp("site")
                pad = offset - (len(asm._code) % PAGE_SIZE)
                if pad < 0:
                    pad += PAGE_SIZE
                asm.nop(pad)
                asm.label("site")
                asm.label("loop")
                asm.syscall_site(39, style=style)
                asm.dec(Reg.RBX)
                asm.jne("loop")
                asm.hlt()
                binary = asm.build()
            xc.run(binary)
            assert xc.libos.services.count(39) == 4, (style, split)
            assert xc.abom_stats.total_patches == 1, (style, split)

    def test_dirty_bits_cover_both_pages(self):
        binary, site = site_at_offset(PAGE_SIZE - 3, "mov_eax")
        xc = XContainer(CountingServices())
        xc.run(binary)
        dirty = xc.memory.dirty_pages()
        assert len([a for a in dirty if a < 0x500000]) == 2


class TestPathologicalPlacements:
    def test_back_to_back_sites(self):
        """Adjacent sites: patching one must not corrupt its neighbour."""
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 3)
        asm.label("loop")
        for nr in (10, 11, 12, 13):
            asm.syscall_site(nr, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc = XContainer(CountingServices())
        xc.run(asm.build())
        assert xc.libos.services.calls == [10, 11, 12, 13] * 3
        assert xc.abom_stats.patches_7byte == 4

    def test_mixed_patterns_back_to_back(self):
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 3)
        asm.label("loop")
        asm.syscall_site(1, style="mov_eax")
        asm.syscall_site(2, style="mov_rax")
        asm.syscall_site(3, style="mov_eax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc = XContainer(CountingServices())
        xc.run(asm.build())
        assert xc.libos.services.calls == [1, 2, 3] * 3

    def test_imm_bytes_that_mimic_a_mov_prefix(self):
        """A 9-byte site whose imm32 ends in 0xb8 must not be mistaken
        for a 5-byte mov_eax site (the 9-byte check runs first)."""
        nr = 0xB8  # 184 < NUM_SYSCALLS; imm32 = b8 00 00 00
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 4)
        asm.label("loop")
        asm.syscall_site(nr, style="mov_rax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc = XContainer(CountingServices())
        xc.run(asm.build())
        assert xc.abom_stats.patches_9byte == 1
        assert xc.abom_stats.patches_7byte == 0
        assert xc.libos.services.calls == [nr] * 4
