import pytest

from repro.arch.cpu import CPU
from repro.arch.memory import PagedMemory, PageFault, PageFlags
from repro.core import vsyscall
from repro.core.vsyscall import VsyscallPage


class TestLayout:
    """Slot addresses inferred from Figure 2 must hold exactly."""

    def test_read_slot_matches_figure2(self):
        # __read is syscall 0; Fig 2 patches it to call *0xffffffffff600008.
        assert vsyscall.slot_addr(0) == 0xFFFFFFFFFF600008

    def test_restore_rt_slot_matches_figure2(self):
        # __restore_rt is rt_sigreturn (15): call *0xffffffffff600080.
        assert vsyscall.slot_addr(15) == 0xFFFFFFFFFF600080

    def test_go_dynamic_slot_matches_figure2(self):
        # syscall.Syscall loads the number from 0x8(%rsp):
        # call *0xffffffffff600c08.
        assert vsyscall.dynamic_slot_addr(8) == 0xFFFFFFFFFF600C08

    def test_all_slots_fit_in_the_page(self):
        last_static = vsyscall.slot_addr(vsyscall.NUM_SYSCALLS - 1)
        assert last_static < vsyscall.VSYSCALL_BASE + 0x1000
        last_dynamic = vsyscall.dynamic_slot_addr(vsyscall.DYNAMIC_DISPS[-1])
        assert last_dynamic < vsyscall.VSYSCALL_BASE + 0x1000

    def test_slots_encodable_as_disp32(self):
        from repro.arch.encoding import enc_call_abs_ind

        for nr in (0, 1, 15, vsyscall.NUM_SYSCALLS - 1):
            enc_call_abs_ind(vsyscall.slot_addr(nr))  # must not raise

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            vsyscall.slot_addr(vsyscall.NUM_SYSCALLS)
        with pytest.raises(ValueError):
            vsyscall.dynamic_slot_addr(3)  # not a multiple of 8 in range


class TestInstall:
    def test_table_points_at_stubs(self):
        mem = PagedMemory()
        page = VsyscallPage(mem)
        page.install()
        assert mem.read_u64(vsyscall.slot_addr(0)) == vsyscall.stub_addr(0)
        assert mem.read_u64(vsyscall.slot_addr(39)) == vsyscall.stub_addr(39)
        assert (
            mem.read_u64(vsyscall.dynamic_slot_addr(8))
            == vsyscall.dynamic_stub_addr(8)
        )

    def test_page_is_readonly_to_user_code(self):
        mem = PagedMemory()
        VsyscallPage(mem).install()
        with pytest.raises(PageFault):
            mem.write_u64(vsyscall.slot_addr(0), 0xBAD)

    def test_page_is_global(self):
        """§4.3: the vsyscall/LibOS mappings carry the global bit."""
        mem = PagedMemory()
        VsyscallPage(mem).install()
        assert mem.page_flags(vsyscall.VSYSCALL_BASE) & PageFlags.GLOBAL

    def test_attach_before_install_rejected(self):
        mem = PagedMemory()
        page = VsyscallPage(mem)
        with pytest.raises(RuntimeError):
            page.attach(CPU(mem), lambda cpu, nr: None)


class TestStubs:
    def test_static_stub_passes_number(self):
        mem = PagedMemory()
        page = VsyscallPage(mem)
        page.install()
        cpu = CPU(mem)
        seen = []
        page.attach(cpu, lambda cpu, nr: seen.append(nr))
        cpu.native_stubs[vsyscall.stub_addr(39)](cpu)
        assert seen == [39]

    def test_dynamic_stub_reads_number_from_stack(self):
        mem = PagedMemory()
        page = VsyscallPage(mem)
        page.install()
        mem.map_region(0x7000, 4096, PageFlags.USER | PageFlags.WRITABLE)
        cpu = CPU(mem)
        cpu.regs.rsp = 0x7100
        # Original code stored the number at 8(%rsp) BEFORE the call pushed
        # a return address, so the stub must read it at 16(%rsp).
        mem.write_u64(0x7100 + 16, 202)
        seen = []
        page.attach(cpu, lambda cpu, nr: seen.append(nr))
        cpu.native_stubs[vsyscall.dynamic_stub_addr(8)](cpu)
        assert seen == [202]
