from repro.arch import Assembler, Reg
from repro.arch.binary import SitePattern
from repro.core import CountingServices, XContainer
from repro.core.offline import OfflinePatcher


def cancellable_program(nr, iterations):
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    site = asm.syscall_site(nr, style="cancellable", symbol="pthread_read")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(), site


class TestOfflinePatcher:
    def test_patches_cancellable_site(self):
        """The MySQL path of Table 1: offline tool recovers what ABOM
        cannot (§5.2)."""
        xc = XContainer(CountingServices(results={0: 6}))
        binary, site = cancellable_program(0, 8)
        xc.load(binary)
        report = OfflinePatcher(xc.memory).patch_sites(binary, [site])
        assert report.patched == ["pthread_read"]
        result = xc.run_loaded(binary.entry)
        assert result.exit_rax == 6
        # All 8 iterations must now take the lightweight path.
        assert xc.libos_stats.lightweight_syscalls == 8
        assert xc.libos_stats.forwarded_syscalls == 0
        assert xc.libos.services.count(0) == 8

    def test_semantics_preserved_vs_unpatched(self):
        binary, site = cancellable_program(2, 5)
        xc_plain = XContainer(CountingServices())
        xc_plain.run(binary)
        xc_patched = XContainer(CountingServices())
        xc_patched.load(binary)
        OfflinePatcher(xc_patched.memory).patch_sites(binary, [site])
        xc_patched.run_loaded(binary.entry)
        assert (
            xc_patched.libos.services.calls == xc_plain.libos.services.calls
        )

    def test_skips_non_cancellable_sites(self):
        asm = Assembler()
        site = asm.syscall_site(39, style="mov_eax", symbol="getpid")
        asm.hlt()
        binary = asm.build()
        xc = XContainer(CountingServices())
        xc.load(binary)
        report = OfflinePatcher(xc.memory).patch_sites(binary, [site])
        assert report.patched == []
        assert report.skipped == ["getpid"]

    def test_skips_sites_without_static_number(self):
        from repro.arch.binary import SyscallSite

        xc = XContainer(CountingServices())
        site = SyscallSite(0x400000, SitePattern.CANCELLABLE, nr=None)
        report = OfflinePatcher(xc.memory).patch_sites(None, [site])
        assert report.skipped
