import pytest

from repro.arch.cpu import CPU, Trap, TrapKind
from repro.arch.memory import PagedMemory, PageFlags
from repro.core.xkernel import XKernel
from repro.core.xlibos import CountingServices, XLibOS
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


def make_stack():
    mem = PagedMemory()
    kernel = XKernel(mem, clock=SimClock())
    libos = XLibOS(mem, CountingServices(results={0: 5}), kernel.costs)
    mem.map_region(0x7000, 4096, PageFlags.USER | PageFlags.WRITABLE)
    cpu = CPU(mem)
    cpu.regs.rsp = 0x7800
    kernel.attach(cpu, libos)
    return kernel, libos, cpu


class TestModeDiscovery:
    """§4.2: guest mode judged by the stack pointer's most significant bit."""

    def test_user_half_is_user_mode(self):
        _, _, cpu = make_stack()
        cpu.regs.rsp = 0x00007FFF_FFFFF000
        assert not XKernel.in_guest_kernel_mode(cpu)

    def test_kernel_half_is_kernel_mode(self):
        _, _, cpu = make_stack()
        cpu.regs.rsp = 0xFFFF8800_00001000
        assert XKernel.in_guest_kernel_mode(cpu)


class TestTrapDispatch:
    def test_syscall_trap_forwards_to_libos(self):
        kernel, libos, cpu = make_stack()
        kernel.memory.map_region(0x4000, 4096, PageFlags.USER)
        cpu.regs.rax = 0
        kernel.handle_trap(cpu, Trap(TrapKind.SYSCALL, 0x4000), libos)
        assert cpu.regs.rax == 5
        assert cpu.regs.rip == 0x4002
        assert kernel.stats.syscalls_trapped == 1
        assert libos.stats.forwarded_syscalls == 1

    def test_unknown_trap_reraised(self):
        kernel, libos, cpu = make_stack()
        with pytest.raises(Trap):
            kernel.handle_trap(
                cpu, Trap(TrapKind.PAGE_FAULT, 0x1000), libos
            )

    def test_ud_without_patch_context_reraised(self):
        kernel, libos, cpu = make_stack()
        kernel.memory.map_region(0x4000, 4096, PageFlags.USER)
        with pytest.raises(Trap):
            kernel.handle_trap(
                cpu, Trap(TrapKind.INVALID_OPCODE, 0x4000), libos
            )
        assert kernel.stats.ud_traps == 1


class TestHypercalls:
    def test_hypercall_counted_and_charged(self):
        kernel, _, _ = make_stack()
        before = kernel.clock.now_ns
        kernel.hypercall("update_va_mapping")
        kernel.hypercall("update_va_mapping")
        assert kernel.stats.hypercalls["update_va_mapping"] == 2
        assert kernel.clock.now_ns - before == pytest.approx(
            2 * kernel.costs.hypercall_ns
        )

    def test_mmu_update_batches(self):
        kernel, _, _ = make_stack()
        before = kernel.clock.now_ns
        kernel.mmu_update(entries=10)
        assert kernel.stats.pt_updates == 10
        assert kernel.clock.now_ns - before == pytest.approx(
            10 * kernel.costs.pt_update_hypercall_ns
        )

    def test_meltdown_patch_flag_default_on(self):
        kernel, _, _ = make_stack()
        assert kernel.meltdown_patched
