"""Failure injection: ABOM's concurrency-safety story (§4.4).

    "Since each cmpxchg instruction can handle at most eight bytes, if we
     need to modify more than eight bytes, we need to make sure that any
     intermediate state of the binary is still valid for the sake of
     multicore concurrency safety."

These tests race two patchers, interleave execution with half-applied
patches, and inject cmpxchg failures, asserting that no interleaving ever
changes program semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Assembler, Reg
from repro.core import CountingServices, XContainer
from repro.core.abom import ABOM


def nine_byte_program(nr, iterations):
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    site = asm.syscall_site(nr, style="mov_rax")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(), site


class TestRacingPatchers:
    def test_two_abom_instances_race_on_one_site(self):
        """Two vCPUs trap on the same site concurrently: the second
        patcher's cmpxchg must fail harmlessly."""
        xc = XContainer(CountingServices())
        binary, site = nine_byte_program(15, 5)
        xc.load(binary)
        first = xc.xkernel.abom
        second = ABOM(xc.memory, first.costs)
        assert first.try_patch(site.syscall_addr)
        # The racing vCPU sees already-patched bytes: no pattern match.
        assert not second.try_patch(site.syscall_addr)
        assert second.stats.total_patches == 0
        # Execution is still correct.
        xc.run_loaded(binary.entry)
        assert xc.libos.services.count(15) == 5

    def test_cmpxchg_failure_mid_9byte_is_safe(self):
        """Phase 2 loses its race (bytes changed underneath): phase-1
        state must still execute correctly, forever."""
        xc = XContainer(CountingServices(results={15: 3}))
        binary, site = nine_byte_program(15, 6)
        xc.load(binary)
        abom = xc.xkernel.abom

        original_cmpxchg = xc.memory.compare_exchange
        calls = {"n": 0}

        def failing_second(addr, expected, new):
            calls["n"] += 1
            if calls["n"] == 2:  # phase 2 of the 9-byte patch
                return False
            return original_cmpxchg(addr, expected, new)

        xc.memory.compare_exchange = failing_second
        assert abom.try_patch(site.syscall_addr)
        xc.memory.compare_exchange = original_cmpxchg
        assert abom.stats.patch_failures == 1
        # The site stays in phase-1 state: call + live syscall; the
        # return-address skip keeps semantics intact.
        assert xc.memory.read(site.syscall_addr, 2) == b"\x0f\x05"
        result = xc.run_loaded(binary.entry)
        assert result.exit_rax == 3
        assert xc.libos.services.count(15) == 6

    def test_all_cmpxchg_failures_leave_site_untouched(self):
        xc = XContainer(CountingServices())
        binary, site = nine_byte_program(15, 4)
        xc.load(binary)
        xc.memory.compare_exchange = lambda *a: False
        assert not xc.xkernel.abom.try_patch(site.syscall_addr)
        del xc.memory.compare_exchange  # restore the real method
        # Nothing changed: all calls go the forwarded path... until the
        # next trap patches normally.
        xc.run_loaded(binary.entry)
        assert xc.libos.services.count(15) == 4


class TestInterleavedExecution:
    @given(st.integers(0, 3), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_patch_at_arbitrary_loop_iteration(self, patch_after, loops):
        """Patch the site externally after N iterations of another
        container's run: the remaining iterations must behave
        identically."""
        binary, site = nine_byte_program(20, loops)
        reference = XContainer(CountingServices(), abom_enabled=False)
        reference.run(binary)

        xc = XContainer(CountingServices(), abom_enabled=False)
        xc.load(binary)
        xc.cpu.regs.rip = binary.entry
        iterations_done = 0
        # Step until `patch_after` syscalls have happened, then patch by
        # hand (as if another vCPU's trap triggered ABOM).
        while (
            not xc.cpu.halted
            and len(xc.libos.services.calls) < min(patch_after, loops)
        ):
            xc.cpu.step()
        patcher = ABOM(xc.memory)
        patcher.try_patch(site.syscall_addr)
        while not xc.cpu.halted:
            xc.cpu.step()
        assert xc.libos.services.calls == reference.libos.services.calls
