import pytest

from repro.arch import Assembler, Reg
from repro.core import CountingServices, DockerImage, DockerWrapper, XContainer
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


class TestXContainer:
    def test_run_reports_instructions_and_time(self):
        xc = XContainer(CountingServices())
        asm = Assembler()
        asm.nop(5)
        asm.hlt()
        result = xc.run(asm.build())
        assert result.instructions == 6
        assert result.elapsed_ns > 0

    def test_syscall_reduction_metric(self):
        xc = XContainer(CountingServices())
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 10)
        asm.label("loop")
        asm.syscall_site(39)
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc.run(asm.build())
        assert xc.syscall_reduction() == pytest.approx(0.9)

    def test_syscall_reduction_zero_when_idle(self):
        assert XContainer(CountingServices()).syscall_reduction() == 0.0

    def test_shared_clock(self):
        clock = SimClock()
        xc = XContainer(CountingServices(), clock=clock)
        asm = Assembler()
        asm.nop(10)
        asm.hlt()
        xc.run(asm.build())
        assert clock.now_ns > 0


class TestDockerWrapper:
    def test_spawn_timing_matches_section_4_5(self):
        """§4.5: X-LibOS boots in 180 ms; the xl toolstack brings total
        instantiation to ~3 s."""
        wrapper = DockerWrapper()
        _, timing = wrapper.spawn(DockerImage("bash"))
        assert timing.boot_ms == pytest.approx(180.0)
        assert timing.total_ms == pytest.approx(3000.0, rel=0.01)

    def test_fast_toolstack_lightvm_style(self):
        wrapper = DockerWrapper(fast_toolstack=True)
        _, timing = wrapper.spawn(DockerImage("bash"))
        assert timing.toolstack_ms == pytest.approx(4.0)
        assert timing.total_ms < 200.0

    def test_spawn_advances_clock(self):
        clock = SimClock()
        wrapper = DockerWrapper(clock=clock)
        wrapper.spawn(DockerImage("redis"))
        assert clock.now_ms == pytest.approx(3000.0, rel=0.01)

    def test_container_is_usable_after_spawn(self):
        wrapper = DockerWrapper(fast_toolstack=True)
        container, _ = wrapper.spawn(
            DockerImage("nginx"), services=CountingServices(results={39: 3})
        )
        asm = Assembler()
        asm.syscall_site(39)
        asm.hlt()
        assert container.run(asm.build()).exit_rax == 3

    def test_multi_process_images_cost_more_bootloader_time(self):
        wrapper = DockerWrapper(fast_toolstack=True)
        _, one = wrapper.spawn(DockerImage("nginx", processes=1))
        _, four = wrapper.spawn(DockerImage("nginx", processes=4))
        assert four.bootloader_ms > one.bootloader_ms

    def test_ordinary_vm_much_slower(self):
        wrapper = DockerWrapper()
        _, timing = wrapper.spawn(DockerImage("bash"))
        assert wrapper.ordinary_vm_spawn_ms() > 5 * timing.total_ms
