"""ABOM behaviour tests — the paper's §4.4 mechanism, byte for byte."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Assembler, Reg
from repro.arch.encoding import decode
from repro.arch.memory import PageFlags
from repro.core import CountingServices, XContainer
from repro.core.abom import ABOM
from repro.perf.clock import SimClock


def container(results=None, abom_enabled=True):
    return XContainer(
        CountingServices(results=results or {}), abom_enabled=abom_enabled
    )


def loop_program(style, nr, iterations, setup=None):
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    if setup:
        setup(asm)
    site = asm.syscall_site(nr, style=style)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(), site


class TestCase1MovEax:
    def test_patched_bytes_match_figure2(self):
        """__read: ``b8 00 00 00 00; 0f 05`` becomes
        ``ff 14 25 08 00 60 ff``."""
        xc = container()
        binary, site = loop_program("mov_eax", 0, 2)
        xc.run(binary)
        patched = xc.memory.read(site.syscall_addr - 5, 7)
        assert patched == bytes([0xFF, 0x14, 0x25, 0x08, 0x00, 0x60, 0xFF])

    def test_first_call_forwarded_rest_lightweight(self):
        xc = container()
        binary, _ = loop_program("mov_eax", 39, 10)
        xc.run(binary)
        assert xc.libos_stats.forwarded_syscalls == 1
        assert xc.libos_stats.lightweight_syscalls == 9
        assert xc.abom_stats.patches_7byte == 1

    def test_patch_happens_once_per_site(self):
        xc = container()
        binary, _ = loop_program("mov_eax", 39, 50)
        xc.run(binary)
        assert xc.abom_stats.total_patches == 1
        assert len(xc.abom_stats.patched_sites) == 1

    def test_results_flow_back(self):
        xc = container(results={39: 1234})
        binary, _ = loop_program("mov_eax", 39, 3)
        result = xc.run(binary)
        assert result.exit_rax == 1234

    def test_dirty_bit_set_on_text_page(self):
        """§4.4: patching a read-only page sets its dirty bit."""
        xc = container()
        binary, site = loop_program("mov_eax", 39, 2)
        xc.run(binary)
        page_addr = site.syscall_addr & ~0xFFF
        assert xc.memory.page_flags(page_addr) & PageFlags.DIRTY

    def test_wp_restored_after_patch(self):
        xc = container()
        binary, _ = loop_program("mov_eax", 39, 2)
        xc.run(binary)
        assert xc.memory.wp_enabled
        assert not xc.xkernel.abom.irqs_disabled


class TestCase2Go:
    def _go_program(self, nr, iterations):
        def setup(asm):
            asm.mov_imm64_low(Reg.RCX, nr)
            asm.store_rsp64(8, Reg.RCX)

        return loop_program("go_stack", nr, iterations, setup=setup)

    def test_patched_bytes_use_dynamic_slot(self):
        xc = container()
        binary, site = self._go_program(1, 2)
        xc.run(binary)
        patched = xc.memory.read(site.syscall_addr - 5, 7)
        # call *0xffffffffff600c08 (Fig 2, Case 2)
        assert patched == bytes([0xFF, 0x14, 0x25, 0x08, 0x0C, 0x60, 0xFF])

    def test_number_resolved_from_stack_each_call(self):
        xc = container()
        binary, _ = self._go_program(7, 6)
        xc.run(binary)
        services = xc.libos.services
        assert services.calls == [7] * 6
        assert xc.abom_stats.patches_go == 1
        assert xc.libos_stats.lightweight_syscalls == 5


class TestNineBytePatch:
    def test_phase1_and_phase2_bytes(self):
        """__restore_rt: mov becomes the call, syscall becomes jmp -9."""
        xc = container()
        binary, site = loop_program("mov_rax", 15, 2)
        xc.run(binary)
        call = xc.memory.read(site.syscall_addr - 7, 7)
        assert call == bytes([0xFF, 0x14, 0x25, 0x80, 0x00, 0x60, 0xFF])
        tail = xc.memory.read(site.syscall_addr, 2)
        assert tail == bytes([0xEB, 0xF7])  # jmp -9, Fig 2 phase 2

    def test_return_address_skip_counted(self):
        xc = container()
        binary, _ = loop_program("mov_rax", 15, 5)
        xc.run(binary)
        # every lightweight call returns onto the dead jmp and skips it
        assert xc.libos_stats.return_address_skips == 4
        assert xc.libos_stats.lightweight_syscalls == 4

    def test_phase1_only_state_still_correct(self):
        """The intermediate state (call + original syscall) must execute
        correctly — the concurrency-safety argument of §4.4."""
        xc = container(results={15: 7})
        binary, site = loop_program("mov_rax", 15, 5)
        xc.load(binary)
        # Patch phase 1 by hand, then sabotage phase 2 by restoring the
        # original syscall bytes (as if another vCPU raced us).
        xc.xkernel.abom.try_patch(site.syscall_addr)
        xc.memory.wp_enabled = False
        xc.memory.write(site.syscall_addr, b"\x0f\x05")
        xc.memory.wp_enabled = True
        result = xc.run_loaded(binary.entry)
        assert result.exit_rax == 7
        # All five iterations must dispatch exactly once each.
        assert xc.libos.services.count(15) == 5

    def test_direct_jump_to_old_syscall_address(self):
        """Code jumping straight at the (now ``jmp -9``) old syscall
        address still issues the syscall exactly once."""
        xc = container(results={15: 3})
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 2)
        asm.label("loop")
        asm.mov_imm64_low(Reg.RAX, 15)  # the 9-byte site, hand-laid so we
        asm.label("old_syscall")        # can label the syscall address
        asm.raw(b"\x0f\x05")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        # RSI guards the epilogue so the post-jump fallthrough exits.
        asm.cmp(Reg.RSI, 1)
        asm.je("done")
        asm.mov_imm32(Reg.RSI, 1)
        asm.mov_imm32(Reg.RBX, 1)
        # Direct jump at the old syscall address: after phase 2 this lands
        # on ``jmp -9``, which re-enters the patched call.
        asm.mov_imm64_low(Reg.RAX, 15)
        asm.jmp("old_syscall")
        asm.label("done")
        asm.hlt()
        binary = asm.build()
        xc.run(binary)
        # 2 loop iterations + 1 via the direct jump = 3 dispatches; the
        # return-address skip then resumes after the dead instruction.
        assert xc.libos.services.count(15) == 3
        assert xc.abom_stats.patches_9byte == 1


class TestUdFixup:
    def test_jump_into_patched_tail_is_fixed_up(self):
        """§4.4: a jump to the original syscall of a 7-byte patch lands on
        ``60 ff`` bytes, #UDs, and the X-Kernel rewinds RIP."""
        xc = container(results={39: 11})
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 2)
        asm.label("loop")
        asm.mov_imm32(Reg.RAX, 39)
        asm.label("syscall_here")
        asm.raw(b"\x0f\x05")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        # RSI guards the epilogue so the post-jump fallthrough exits.
        asm.cmp(Reg.RSI, 1)
        asm.je("done")
        asm.mov_imm32(Reg.RSI, 1)
        asm.mov_imm32(Reg.RBX, 1)
        # Direct jump into what is now the middle of the call instruction.
        asm.jmp("syscall_here")
        asm.label("done")
        asm.hlt()
        binary = asm.build()
        xc.run(binary)
        assert xc.abom_stats.ud_fixups == 1
        # Loop twice + once via the fixed-up jump (which re-executes the
        # whole call) = exactly 3 dispatches.
        assert xc.libos.services.count(39) == 3

    def test_unrelated_ud_still_raises(self):
        from repro.arch.cpu import Trap, TrapKind

        xc = container()
        asm = Assembler()
        asm.raw(b"\x60\xff")  # not preceded by a patched call
        binary = asm.build()
        xc.load(binary)
        xc.cpu.regs.rip = binary.entry
        with pytest.raises(Trap) as excinfo:
            xc.cpu.run()
        assert excinfo.value.kind is TrapKind.INVALID_OPCODE


class TestUnrecognizedPatterns:
    def test_cancellable_never_patched(self):
        """The libpthread shape (MySQL, Table 1) defeats ABOM."""
        xc = container()
        binary, _ = loop_program("cancellable", 0, 10)
        xc.run(binary)
        assert xc.abom_stats.total_patches == 0
        assert xc.libos_stats.forwarded_syscalls == 10
        assert xc.libos_stats.lightweight_syscalls == 0
        assert xc.abom_stats.unrecognized_sites > 0

    def test_bare_syscall_never_patched(self):
        xc = container()

        def setup(asm):
            asm.mov_imm32(Reg.RAX, 39)
            asm.nop(3)

        binary, _ = loop_program("bare", 39, 5, setup=setup)
        xc.run(binary)
        assert xc.abom_stats.total_patches == 0
        assert xc.libos_stats.forwarded_syscalls == 5

    def test_syscall_number_out_of_table_not_patched(self):
        xc = container()
        binary, _ = loop_program("mov_eax", 999, 3)
        xc.run(binary)
        assert xc.abom_stats.total_patches == 0
        assert xc.libos.services.calls == [999] * 3

    def test_disabled_abom_forwards_everything(self):
        xc = container(abom_enabled=False)
        binary, _ = loop_program("mov_eax", 39, 10)
        xc.run(binary)
        assert xc.abom_stats.total_patches == 0
        assert xc.libos_stats.forwarded_syscalls == 10

    def test_site_at_start_of_mapping_not_crashing(self):
        """A syscall too close to the start of its page: ABOM must not
        fault probing unmapped bytes before it."""
        xc = container()
        asm = Assembler(base=0x400000)
        asm.raw(b"\x0f\x05")  # bare syscall at the very first byte
        asm.hlt()
        binary = asm.build()
        xc.cpu.regs.write64(Reg.RAX, 39)
        xc.run(binary)
        assert xc.abom_stats.total_patches == 0


class TestPatchCost:
    def test_patch_charges_clock_once(self):
        clock = SimClock()
        xc = XContainer(CountingServices(), clock=clock)
        binary, _ = loop_program("mov_eax", 39, 5)
        xc.run(binary)
        # The cost model says one abom_patch_ns charge total.
        assert xc.abom_stats.total_patches == 1


class TestSemanticEquivalence:
    """Property: ABOM on/off must never change what the program does."""

    STYLES = ["mov_eax", "mov_rax", "cancellable", "bare", "go_stack"]

    @staticmethod
    def _build(sequence):
        asm = Assembler()
        for index, (style, nr) in enumerate(sequence):
            if style == "go_stack":
                asm.mov_imm64_low(Reg.RCX, nr)
                asm.store_rsp64(8, Reg.RCX)
            elif style == "bare":
                asm.mov_imm32(Reg.RAX, nr)
                asm.nop(1)
            asm.syscall_site(nr, style=style, symbol=f"s{index}")
        asm.hlt()
        return asm.build()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(STYLES),
                st.integers(0, 200),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_same_dispatch_sequence_with_and_without_abom(self, sequence):
        binary = self._build(sequence)
        runs = {}
        for enabled in (False, True):
            xc = container(abom_enabled=enabled)
            xc.run(binary)
            runs[enabled] = list(xc.libos.services.calls)
        assert runs[True] == runs[False]
        expected = [nr for _, nr in sequence]
        assert runs[True] == expected

    @given(
        st.lists(
            st.tuples(st.sampled_from(STYLES), st.integers(0, 200)),
            min_size=1,
            max_size=8,
        ),
        st.integers(2, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_loop_executions_identical(self, sequence, iterations):
        """Run the whole sequence in a loop: patched re-executions must
        behave exactly like the first (trapping) execution."""
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, iterations)
        asm.label("loop")
        for index, (style, nr) in enumerate(sequence):
            if style == "go_stack":
                asm.mov_imm64_low(Reg.RCX, nr)
                asm.store_rsp64(8, Reg.RCX)
            elif style == "bare":
                asm.mov_imm32(Reg.RAX, nr)
                asm.nop(1)
            asm.syscall_site(nr, style=style)
        asm.dec(Reg.RBX)
        # The loop body can exceed rel8 range with many sites: branch
        # forward (rel8) and jump back with rel32.
        asm.je("done")
        asm.jmp("loop")
        asm.label("done")
        asm.hlt()
        binary = asm.build()

        xc_on = container(abom_enabled=True)
        xc_on.run(binary)
        xc_off = container(abom_enabled=False)
        xc_off.run(binary)
        assert xc_on.libos.services.calls == xc_off.libos.services.calls
        expected = [nr for _, nr in sequence] * iterations
        assert xc_on.libos.services.calls == expected


class TestAbomDirect:
    """Unit-level checks on the patcher against hand-built memory."""

    def _abom(self):
        from repro.arch.memory import PagedMemory

        mem = PagedMemory()
        mem.map_region(0x400000, 4096, PageFlags.USER | PageFlags.EXECUTABLE)
        return ABOM(mem), mem

    def test_try_patch_unmapped_returns_false(self):
        abom, _ = self._abom()
        assert not abom.try_patch(0x999000)

    def test_patched_site_cached(self):
        abom, mem = self._abom()
        mem.wp_enabled = False
        mem.write(0x400000, b"\xb8\x27\x00\x00\x00\x0f\x05")
        mem.wp_enabled = True
        assert abom.try_patch(0x400005)
        before = abom.stats.total_patches
        assert abom.try_patch(0x400005)  # cached, no new patch
        assert abom.stats.total_patches == before

    def test_patched_code_decodes_cleanly(self):
        abom, mem = self._abom()
        mem.wp_enabled = False
        mem.write(0x400000, b"\xb8\x27\x00\x00\x00\x0f\x05\xf4")
        mem.wp_enabled = True
        abom.try_patch(0x400005)
        instr = decode(mem.read(0x400000, 7))
        assert instr.mnemonic == "call_abs_ind"
        assert instr.length == 7
