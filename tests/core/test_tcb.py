import pytest

from repro.core.tcb import (
    PROFILES,
    compare_to_docker,
    process_isolation_redundant,
    profile,
)


class TestIsolationProfiles:
    def test_all_platforms_profiled(self):
        assert set(PROFILES) == {
            "docker",
            "gvisor",
            "clear-container",
            "xen-container",
            "x-container",
            "graphene",
            "unikernel",
        }

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            profile("lxd")

    def test_x_container_tcb_tiny_vs_docker(self):
        """§3.4: the X-Kernel has a small TCB."""
        x = profile("x-container")
        docker = profile("docker")
        assert x.tcb_kloc < docker.tcb_kloc / 20

    def test_x_container_surface_small(self):
        x = profile("x-container")
        docker = profile("docker")
        assert x.attack_surface < docker.attack_surface / 7

    def test_xlibos_not_in_isolation_tcb(self):
        """Compromising the X-LibOS only compromises its own container,
        so it does not appear on the isolation boundary."""
        x = profile("x-container")
        assert "linux-kernel" not in x.tcb_components

    def test_graphene_keeps_full_linux_tcb(self):
        """§6.2: Graphene's host kernel 'does not reduce the TCB and
        attack surface'."""
        g = profile("graphene")
        assert "linux-kernel" in g.tcb_components
        assert g.attack_surface == profile("docker").attack_surface

    def test_gvisor_reduces_surface_not_tcb(self):
        gv = profile("gvisor")
        assert gv.attack_surface < profile("docker").attack_surface
        assert gv.tcb_kloc > profile("docker").tcb_kloc  # sentry ADDS code

    def test_clear_container_still_trusts_host_kernel(self):
        assert "linux-kernel" in profile("clear-container").tcb_components

    def test_comparison_table(self):
        rows = {r.platform: r for r in compare_to_docker()}
        assert rows["docker"].tcb_vs_docker == 1.0
        assert rows["x-container"].tcb_vs_docker < 0.05
        assert rows["x-container"].surface_vs_docker < 0.15


class TestSingleConcernPrinciple:
    def test_process_isolation_redundant_for_single_concern(self):
        """§2.2: within a single-concerned container, processes of the
        same service are mutually trusting."""
        assert process_isolation_redundant(
            single_concerned=True, processes_mutually_trusting=True
        )

    def test_not_redundant_for_multi_tenant_containers(self):
        assert not process_isolation_redundant(
            single_concerned=False, processes_mutually_trusting=True
        )
        assert not process_isolation_redundant(
            single_concerned=True, processes_mutually_trusting=False
        )
