"""Trampoline-injection mode of the offline patcher (§4.4: 'inject code
into the binary and re-direct a bigger chunk of code')."""

from repro.arch import Assembler, Reg
from repro.arch.binary import SitePattern, SyscallSite
from repro.core import CountingServices, XContainer
from repro.core.offline import OfflinePatcher


def side_effect_cancellable(nr, iterations):
    """A cancellable wrapper whose check has an observable side effect:
    it increments RCX.  In-place patching would delete it; the trampoline
    must preserve it."""
    asm = Assembler()
    asm.xor(Reg.RCX, Reg.RCX)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    asm.mov_imm32(Reg.RAX, nr)
    asm.inc(Reg.RCX)  # the "cancellation check" with a side effect
    asm.inc(Reg.RCX)
    site_addr = asm.raw_syscall()
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build("pthread_like")
    site = SyscallSite(site_addr, SitePattern.CANCELLABLE, nr,
                       "pthread_read")
    binary.sites.append(site)
    return binary, site


class TestTrampolinePatching:
    def test_trampoline_converts_and_preserves_side_effects(self):
        binary, site = side_effect_cancellable(0, iterations=6)
        xc = XContainer(CountingServices(results={0: 9}))
        xc.load(binary)
        report = OfflinePatcher(xc.memory).patch_sites(
            binary, [site], preserve_intervening=True
        )
        assert report.patched == ["pthread_read"]
        assert report.trampolines == ["pthread_read"]
        result = xc.run_loaded(binary.entry)
        # All six syscalls took the lightweight path...
        assert xc.libos.stats.lightweight_syscalls == 6
        assert xc.libos.stats.forwarded_syscalls == 0
        # ...and the side-effecting check still ran every iteration.
        assert xc.cpu.regs.read64(Reg.RCX) == 12
        assert result.exit_rax == 9

    def test_semantics_match_unpatched_run(self):
        binary, site = side_effect_cancellable(2, iterations=4)
        plain = XContainer(CountingServices())
        plain.run(binary)
        patched = XContainer(CountingServices())
        patched.load(binary)
        OfflinePatcher(patched.memory).patch_sites(
            binary, [site], preserve_intervening=True
        )
        patched.run_loaded(binary.entry)
        assert (
            patched.libos.services.calls == plain.libos.services.calls
        )
        assert (
            patched.cpu.regs.read64(Reg.RCX)
            == plain.cpu.regs.read64(Reg.RCX)
        )

    def test_multiple_sites_share_the_trampoline_page(self):
        asm = Assembler()
        sites = []
        asm.mov_imm32(Reg.RBX, 3)
        asm.label("loop")
        for nr in (0, 1, 3):
            asm.mov_imm32(Reg.RAX, nr)
            asm.nop(4)
            addr = asm.raw_syscall()
            site = SyscallSite(
                addr, SitePattern.CANCELLABLE, nr, f"site{nr}"
            )
            sites.append(site)
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        binary = asm.build()
        binary.sites.extend(sites)
        xc = XContainer(CountingServices())
        xc.load(binary)
        patcher = OfflinePatcher(xc.memory)
        report = patcher.patch_sites(
            binary, sites, preserve_intervening=True
        )
        assert len(report.trampolines) == 3
        xc.run_loaded(binary.entry)
        assert xc.libos.stats.lightweight_syscalls == 9
        assert xc.libos.services.calls == [0, 1, 3] * 3

    def test_non_cancellable_site_skipped(self):
        asm = Assembler()
        site = asm.syscall_site(39, style="mov_eax", symbol="plain")
        asm.hlt()
        binary = asm.build()
        xc = XContainer(CountingServices())
        xc.load(binary)
        report = OfflinePatcher(xc.memory).patch_sites(
            binary, [site], preserve_intervening=True
        )
        assert report.skipped == ["plain"]
