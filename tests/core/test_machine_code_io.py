"""End-to-end: machine code doing real file I/O through the X-LibOS.

These integration tests close the loop between the arch substrate and the
guest kernel: a program on the interpreter reads and writes RamFS files
and pipes through (ABOM-patched) syscalls, with buffers living in guest
memory.
"""

import pytest

from repro.arch import Assembler, Reg
from repro.arch.memory import PageFlags
from repro.core import XContainer
from repro.guest.kernel import SYS, GuestKernel
from repro.guest.vfs import O_CREAT, O_RDWR

DATA_BUF = 0x00700000


def make_container():
    kernel = GuestKernel()
    xc = XContainer(kernel)
    xc.memory.map_region(
        DATA_BUF, 0x1000, PageFlags.USER | PageFlags.WRITABLE
    )
    return xc, kernel


def emit_syscall3(asm, nr, rdi, rsi, rdx, style="mov_eax"):
    """nr(rdi, rsi, rdx) with the glibc wrapper shape."""
    asm.mov_imm64_low(Reg.RDI, rdi)
    asm.mov_imm64_low(Reg.RSI, rsi)
    asm.mov_imm64_low(Reg.RDX, rdx)
    return asm.syscall_site(nr, style=style)


class TestMachineCodeFileIO:
    def test_write_then_read_through_real_syscalls(self):
        xc, kernel = make_container()
        # Pre-open a file for the (machine-code) process.
        pid = kernel.invoke(SYS["getpid"], xc.cpu)
        fd = kernel.open(pid, "/data", O_RDWR | O_CREAT)
        # Stage payload bytes in guest memory.
        payload = b"hello from ring 3"
        xc.memory.write(DATA_BUF, payload)

        asm = Assembler()
        emit_syscall3(asm, SYS["write"], fd, DATA_BUF, len(payload))
        asm.hlt()
        result = xc.run(asm.build())
        assert result.exit_rax == len(payload)
        # The bytes really landed in the RamFS.
        handle = kernel.process(pid).fds[fd]
        assert bytes(handle.inode.data) == payload

        # Now read them back into a different buffer, via syscall 0.
        handle.offset = 0
        asm2 = Assembler(base=0x480000)
        emit_syscall3(asm2, SYS["read"], fd, DATA_BUF + 0x100,
                      len(payload))
        asm2.hlt()
        result2 = xc.run(asm2.build())
        assert result2.exit_rax == len(payload)
        assert xc.memory.read(DATA_BUF + 0x100, len(payload)) == payload

    def test_open_by_path_from_guest_memory(self):
        xc, kernel = make_container()
        kernel.invoke(SYS["getpid"], xc.cpu)  # materialize process
        xc.memory.write(DATA_BUF, b"/etc/config\x00")
        asm = Assembler()
        asm.mov_imm64_low(Reg.RDI, DATA_BUF)
        asm.mov_imm64_low(Reg.RSI, O_RDWR | O_CREAT)
        asm.syscall_site(SYS["open"], style="mov_eax")
        asm.hlt()
        result = xc.run(asm.build())
        assert result.exit_rax >= 3
        assert kernel.vfs.exists("/etc/config")

    def test_io_loop_is_abom_patched(self):
        """A read/write loop converts to function calls like anything
        else — File Copy's fast path, end to end."""
        xc, kernel = make_container()
        pid = kernel.invoke(SYS["getpid"], xc.cpu)
        fd = kernel.open(pid, "/sink", O_RDWR | O_CREAT)
        xc.memory.write(DATA_BUF, b"z" * 64)
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 20)
        asm.label("loop")
        emit_syscall3(asm, SYS["write"], fd, DATA_BUF, 64)
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc.run(asm.build())
        assert xc.libos.stats.lightweight_syscalls == 19
        assert xc.abom_stats.total_patches == 1
        handle = kernel.process(pid).fds[fd]
        assert handle.inode.size == 20 * 64

    def test_bad_fd_returns_negative_errno(self):
        import errno

        xc, kernel = make_container()
        kernel.invoke(SYS["getpid"], xc.cpu)
        asm = Assembler()
        emit_syscall3(asm, SYS["write"], 99, DATA_BUF, 4)
        asm.hlt()
        result = xc.run(asm.build())
        assert result.exit_rax == (-errno.EBADF) & ((1 << 64) - 1)
