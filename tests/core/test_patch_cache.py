from repro.arch import Assembler, Reg
from repro.core import CountingServices, PatchCache, XContainer


def loop_binary(iterations=10, name="app"):
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    asm.syscall_site(39, style="mov_eax")
    asm.syscall_site(1, style="mov_rax")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build(name)


class TestPatchCache:
    def test_capture_records_dirty_text_pages(self):
        binary = loop_binary()
        xc = XContainer(CountingServices())
        xc.run(binary)
        cache = PatchCache()
        captured = cache.capture(binary, xc.memory)
        assert captured >= 1
        assert binary.name in cache
        assert cache.entry(binary.name).page_count == captured

    def test_apply_prepatches_next_instance(self):
        """§4.4: flushing the patched pages means 'the same patch is not
        needed in the future' — the next instance never traps."""
        binary = loop_binary()
        cache = PatchCache()
        first = XContainer(CountingServices())
        first.run(binary)
        cache.capture(binary, first.memory)

        second = XContainer(CountingServices())
        second.load(binary)
        applied = cache.apply(binary, second.memory)
        assert applied >= 1
        second.run_loaded(binary.entry)
        assert second.libos.stats.forwarded_syscalls == 0
        assert second.libos.stats.lightweight_syscalls == 20
        assert second.abom_stats.total_patches == 0

    def test_applied_pages_are_clean(self):
        binary = loop_binary()
        cache = PatchCache()
        first = XContainer(CountingServices())
        first.run(binary)
        cache.capture(binary, first.memory)
        second = XContainer(CountingServices())
        second.load(binary)
        cache.apply(binary, second.memory)
        assert second.memory.dirty_pages() == []

    def test_apply_without_capture_is_noop(self):
        binary = loop_binary()
        xc = XContainer(CountingServices())
        xc.load(binary)
        assert PatchCache().apply(binary, xc.memory) == 0

    def test_cache_keyed_by_binary_name(self):
        a = loop_binary(name="app-a")
        b = loop_binary(name="app-b")
        cache = PatchCache()
        xc = XContainer(CountingServices())
        xc.run(a)
        cache.capture(a, xc.memory)
        assert "app-a" in cache
        assert "app-b" not in cache
        fresh = XContainer(CountingServices())
        fresh.load(b)
        assert cache.apply(b, fresh.memory) == 0

    def test_semantics_identical_with_prepatched_text(self):
        binary = loop_binary(iterations=7)
        cache = PatchCache()
        warm = XContainer(CountingServices())
        warm.run(binary)
        cache.capture(binary, warm.memory)
        cold = XContainer(CountingServices())
        cold.run(binary)
        prepatched = XContainer(CountingServices())
        prepatched.load(binary)
        cache.apply(binary, prepatched.memory)
        prepatched.run_loaded(binary.entry)
        assert (
            prepatched.libos.services.calls == cold.libos.services.calls
        )

    def test_clear(self):
        binary = loop_binary()
        cache = PatchCache()
        xc = XContainer(CountingServices())
        xc.run(binary)
        cache.capture(binary, xc.memory)
        cache.clear(binary.name)
        assert binary.name not in cache
