import pytest

from repro.perf.clock import SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now_ns == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_ns == 12.5

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(50.0)
        assert clock.now_ns == 50.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(100.0)
        clock.advance_to(50.0)
        assert clock.now_ns == 100.0

    def test_unit_conversions(self):
        clock = SimClock(2_500_000_000.0)
        assert clock.now_us == pytest.approx(2_500_000.0)
        assert clock.now_ms == pytest.approx(2_500.0)
        assert clock.now_s == pytest.approx(2.5)

    def test_reset(self):
        clock = SimClock(5.0)
        clock.reset()
        assert clock.now_ns == 0.0

    def test_reset_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().reset(-3.0)


class TestStopwatch:
    def test_measures_elapsed(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        watch.start()
        clock.advance(42.0)
        assert watch.stop() == 42.0

    def test_context_manager(self):
        clock = SimClock()
        with Stopwatch(clock) as watch:
            clock.advance(7.0)
        assert watch.elapsed_ns == 7.0

    def test_stop_without_start_rejected(self):
        watch = Stopwatch(SimClock())
        with pytest.raises(RuntimeError):
            watch.stop()
