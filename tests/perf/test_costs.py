import dataclasses

import pytest

from repro.perf.costs import (
    DEFAULT_COSTS,
    DELL_R720,
    EC2_C4_2XLARGE,
    GCE_CUSTOM,
    CostModel,
    MachineSpec,
)


class TestCostModel:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COSTS.native_syscall_ns = 1.0

    def test_scaled_multiplies_times(self):
        scaled = DEFAULT_COSTS.scaled(2.0)
        assert scaled.native_syscall_ns == DEFAULT_COSTS.native_syscall_ns * 2
        assert scaled.hypercall_ns == DEFAULT_COSTS.hypercall_ns * 2

    def test_scaled_preserves_counts_and_efficiencies(self):
        scaled = DEFAULT_COSTS.scaled(3.0)
        assert scaled.default_pt_pages == DEFAULT_COSTS.default_pt_pages
        assert scaled.xlibos_efficiency == DEFAULT_COSTS.xlibos_efficiency
        assert scaled.gvisor_efficiency == DEFAULT_COSTS.gvisor_efficiency

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DEFAULT_COSTS.scaled(0.0)

    def test_calibration_orderings(self):
        """The mechanism-cost orderings every figure depends on."""
        c = DEFAULT_COSTS
        # Fig 4: function call << native << native+KPTI << Xen PV bounce
        # << gVisor ptrace.
        assert c.xc_func_call_syscall_ns < c.clear_guest_syscall_ns
        assert c.clear_guest_syscall_ns < c.native_syscall_ns
        assert (
            c.native_syscall_ns
            < c.native_syscall_ns + c.kpti_syscall_extra_ns
            < c.xen_pv_syscall_ns
            < c.gvisor_syscall_ns
        )
        # §5.4: X-Container syscalls avoid the hypervisor, so the forwarded
        # (unpatched) path must still beat the stock Xen PV bounce.
        assert c.xc_forwarded_syscall_ns < c.xen_pv_syscall_ns
        # §3.2: a dedicated tuned LibOS beats the shared kernel.
        assert c.xlibos_efficiency < c.shared_kernel_efficiency
        # §5.5: Rumprun loses to Linux on database-style work.
        assert c.rumprun_efficiency > c.xlibos_efficiency

    def test_spawn_constants_match_section_4_5(self):
        c = DEFAULT_COSTS
        assert c.xlibos_boot_ms == pytest.approx(180.0)
        assert c.xlibos_boot_ms + c.xl_toolstack_ms == pytest.approx(
            3000.0, rel=0.01
        )
        assert c.lightvm_toolstack_ms == pytest.approx(4.0)


class TestMachineSpec:
    def test_paper_machines(self):
        assert EC2_C4_2XLARGE.cores == 4
        assert EC2_C4_2XLARGE.threads == 8
        assert GCE_CUSTOM.memory_gb == 16.0
        assert DELL_R720.memory_gb == 96.0
        assert DELL_R720.threads == 32

    def test_cycle_ns(self):
        spec = MachineSpec("m", 1, 1, 1.0, ghz=2.0)
        assert spec.cycle_ns == 0.5
