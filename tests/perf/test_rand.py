from repro.perf.rand import DeterministicRng


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_string_seeds_are_stable(self):
        a = DeterministicRng("fig3")
        b = DeterministicRng("fig3")
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert DeterministicRng("a").random() != DeterministicRng("b").random()

    def test_fork_is_independent_and_stable(self):
        parent = DeterministicRng(7)
        child1 = parent.fork("worker")
        child2 = DeterministicRng(7).fork("worker")
        assert child1.random() == child2.random()
        other = DeterministicRng(7).fork("other")
        assert child1.seed != other.seed

    def test_gauss_factor_clamped_positive(self):
        rng = DeterministicRng(1)
        for _ in range(200):
            assert rng.gauss_factor(2.0) >= 0.05

    def test_expovariate_rejects_bad_rate(self):
        import pytest

        with pytest.raises(ValueError):
            DeterministicRng(1).expovariate(0.0)

    def test_choices_weighted(self):
        rng = DeterministicRng(3)
        picks = rng.choices(["a", "b"], weights=[1.0, 0.0], k=10)
        assert picks == ["a"] * 10
