import pytest

from repro.arch import Assembler, Reg
from repro.core import CountingServices, XContainer
from repro.perf.clock import SimClock
from repro.perf.trace import TraceEvent, Tracer


class TestTracer:
    def test_emit_records_timestamp(self):
        clock = SimClock()
        tracer = Tracer(clock)
        clock.advance(100.0)
        tracer.emit("cat", "event", x=1)
        (event,) = tracer.events()
        assert event.ts_ns == 100.0
        assert event.detail == {"x": 1}

    def test_filtering(self):
        tracer = Tracer(SimClock())
        tracer.emit("a", "one")
        tracer.emit("b", "two")
        tracer.emit("a", "two")
        assert tracer.count("a") == 2
        assert len(tracer.events(name="two")) == 2
        assert len(tracer.events(category="a", name="two")) == 1

    def test_ring_buffer_drops_oldest_and_warns_once(self):
        tracer = Tracer(SimClock(), capacity=2)
        tracer.emit("c", "e0")
        tracer.emit("c", "e1")
        with pytest.warns(RuntimeWarning, match="ring overflowed"):
            tracer.emit("c", "e2")
        # Further overflow is counted but does not warn again.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracer.emit("c", "e3")
        assert tracer.dropped == 2
        assert [e.name for e in tracer.events()] == ["e2", "e3"]

    def test_clear_rearms_the_overflow_warning(self):
        tracer = Tracer(SimClock(), capacity=1)
        tracer.emit("c", "e0")
        with pytest.warns(RuntimeWarning):
            tracer.emit("c", "e1")
        tracer.clear()
        tracer.emit("c", "e0")
        with pytest.warns(RuntimeWarning):
            tracer.emit("c", "e1")

    def test_raising_capacity_rearms_the_overflow_warning(self):
        """Regression: growing the ring used to leave the warn-once flag
        set, so the next overflow episode dropped events silently."""
        tracer = Tracer(SimClock(), capacity=2)
        tracer.emit("c", "e0")
        tracer.emit("c", "e1")
        with pytest.warns(RuntimeWarning, match="ring overflowed"):
            tracer.emit("c", "e2")
        tracer.capacity = 3
        assert tracer.capacity == 3
        # Existing events survive the rebuild ...
        assert [e.name for e in tracer.events()] == ["e1", "e2"]
        tracer.emit("c", "e3")
        # ... and the next overflow warns again.
        with pytest.warns(RuntimeWarning, match="ring overflowed"):
            tracer.emit("c", "e4")

    def test_shrinking_capacity_keeps_newest_without_rearming(self):
        import warnings

        tracer = Tracer(SimClock(), capacity=3)
        for index in range(4):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                tracer.emit("c", f"e{index}")
        tracer.capacity = 2
        assert [e.name for e in tracer.events()] == ["e2", "e3"]
        # Shrinking adds no headroom: the episode is still in progress,
        # so the warning stays disarmed.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracer.emit("c", "e4")

    def test_capacity_setter_rejects_bad_values(self):
        tracer = Tracer(SimClock())
        with pytest.raises(ValueError):
            tracer.capacity = 0

    def test_disabled_tracer_is_silent(self):
        tracer = Tracer(SimClock())
        tracer.enabled = False
        tracer.emit("c", "e")
        assert tracer.count() == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(SimClock(), capacity=0)

    def test_render_hexifies_addresses(self):
        event = TraceEvent(1000.0, "abom", "patch", {"site": 0x400005})
        assert "0x400005" in event.render()

    def test_span(self):
        clock = SimClock()
        tracer = Tracer(clock)
        tracer.emit("c", "start")
        clock.advance(500.0)
        tracer.emit("c", "end")
        assert tracer.span_ns("c") == 500.0
        assert tracer.span_ns("other") == 0.0

    def test_clear(self):
        tracer = Tracer(SimClock())
        tracer.emit("c", "e")
        tracer.clear()
        assert tracer.count() == 0


class TestContainerTracing:
    def test_syscall_lifecycle_visible(self):
        xc = XContainer(CountingServices())
        tracer = Tracer(xc.clock)
        xc.attach_tracer(tracer)
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 5)
        asm.label("loop")
        asm.syscall_site(39)
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc.run(asm.build())
        assert len(tracer.events("syscall", "forwarded")) == 1
        assert len(tracer.events("syscall", "lightweight")) == 4
        assert len(tracer.events("abom", "patch")) == 1
        # The patch event records the site address.
        (patch,) = tracer.events("abom", "patch")
        assert patch.detail["site"] > 0x400000

    def test_fault_lifecycle_visible_through_attach_tracer(self):
        """Chaos runs are capturable: ``xc.attach_tracer`` wires the
        fault engine's injected/retried/recovered events in too."""
        from repro.faults import sites
        from repro.faults.plan import FaultPlan, FaultSpec, Nth

        engine = FaultPlan(
            (FaultSpec(sites.ABOM_CMPXCHG, "contend", Nth(1)),), 0
        ).compile()
        xc = XContainer(CountingServices(), faults=engine)
        tracer = Tracer(xc.clock)
        xc.attach_tracer(tracer)
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, 3)
        asm.label("loop")
        asm.syscall_site(39)
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc.run(asm.build())
        assert len(tracer.events("fault", "injected")) == 1
        assert len(tracer.events("fault", "retried")) == 1
        assert len(tracer.events("fault", "recovered")) == 1
        (injected,) = tracer.events("fault", "injected")
        assert injected.detail["site"] == sites.ABOM_CMPXCHG

    def test_unrecognized_sites_traced(self):
        xc = XContainer(CountingServices())
        tracer = Tracer(xc.clock)
        xc.attach_tracer(tracer)
        asm = Assembler()
        asm.syscall_site(39, style="cancellable")
        asm.hlt()
        xc.run(asm.build())
        assert len(tracer.events("abom", "unrecognized")) == 1
