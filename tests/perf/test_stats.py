import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf.stats import RunStats, percentile, summarize


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_extremes(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50),
           st.floats(0, 100))
    def test_percentile_within_bounds(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(0, 1e9), min_size=2, max_size=50))
    def test_monotone_in_pct(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


class TestSummarize:
    def test_mean_and_std(self):
        summary = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.mean == pytest.approx(5.0)
        assert summary.std == pytest.approx(2.138, abs=1e-3)

    def test_single_sample_std_zero(self):
        assert summarize([3.0]).std == 0.0

    def test_extrema(self):
        summary = summarize([3.0, -1.0, 2.0])
        assert summary.minimum == -1.0
        assert summary.maximum == 3.0
        assert summary.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRunStats:
    def test_accumulates(self):
        stats = RunStats("x")
        stats.add(1.0)
        stats.extend([2.0, 3.0])
        assert len(stats) == 3
        assert stats.mean == 2.0

    def test_percentile_passthrough(self):
        stats = RunStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.pct(100) == 4.0
