"""Legacy-accessor shims: exact dict shapes, DeprecationWarning, parity.

The redesigned surface is ``XContainer.telemetry()``; the old accessors
must keep returning byte-for-byte what they always did (resolved through
the registry, so the two surfaces cannot drift) while warning.
"""

import warnings

import pytest

from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices
from repro.workloads.unixbench import build_syscall_bench
from repro.xen.blkdev import BlockStore, SplitBlockDriver
from repro.xen.drivers import SplitNetDriver
from repro.xen.events import EventChannelTable
from repro.xen.hypervisor import DomainKind, XenHypervisor


def make_net_driver():
    xen = XenHypervisor()
    guest = xen.create_domain("guest")
    backend = xen.create_domain("backend", DomainKind.DRIVER)
    events = EventChannelTable(xen.costs, xen.clock)
    return SplitNetDriver(
        guest, backend, xen.grants, events, xen.costs, xen.clock
    )


def run_workload(**kwargs):
    xc = XContainer(CountingServices(), **kwargs)
    xc.run(build_syscall_bench(10))
    return xc


class TestIcacheShim:
    def test_emits_deprecation_warning(self):
        xc = run_workload()
        with pytest.warns(DeprecationWarning, match="icache_stats"):
            xc.icache_stats()

    def test_exact_legacy_shape_via_registry(self):
        xc = run_workload()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = xc.icache_stats()
        direct = xc.xkernel._icache_summary()
        assert shimmed == direct
        assert set(shimmed) == {
            "hits", "misses", "invalidations", "hit_rate"
        }
        assert isinstance(shimmed["hits"], int)

    def test_telemetry_disabled_falls_back_to_structs(self):
        xc = run_workload(telemetry=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert xc.icache_stats() == xc.xkernel._icache_summary()
        with pytest.raises(RuntimeError):
            xc.telemetry()

    def test_xkernel_summary_shim_warns_and_matches(self):
        xc = run_workload()
        with pytest.warns(DeprecationWarning, match="icache_summary"):
            assert xc.xkernel.icache_summary() == (
                xc.xkernel._icache_summary()
            )


class TestIoStatsShim:
    def make_container(self):
        xc = XContainer(CountingServices())
        net = make_net_driver()
        net.transmit_batch([100, 200, 300])
        net.transmit(50)
        xc.attach_io_driver("eth0", net)
        blk = SplitBlockDriver(BlockStore(64))
        blk.write(0, b"s" * 512)
        blk.read(0)
        xc.attach_io_driver("xvda", blk)
        return xc, net, blk

    def test_emits_deprecation_warning(self):
        xc, _, _ = self.make_container()
        with pytest.warns(DeprecationWarning, match="io_stats"):
            xc.io_stats()

    def test_exact_legacy_shapes_via_registry(self):
        xc, net, blk = self.make_container()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = xc.io_stats()
        assert shimmed == {
            "eth0": net.stats.as_dict(),
            "xvda": blk.stats.as_dict(),
        }
        # counters stay ints; the ratio stays a float
        assert isinstance(shimmed["eth0"]["requests"], int)
        assert isinstance(shimmed["eth0"]["avg_batch_size"], float)

    def test_driver_attached_after_telemetry_is_wired(self):
        xc = XContainer(CountingServices())
        tel = xc.telemetry()  # built before any driver exists
        net = make_net_driver()
        net.transmit_batch([10, 20])
        xc.attach_io_driver("late0", net)
        assert tel.value("xen_ring_batches_total", driver="late0") == 1

    def test_one_snapshot_reports_every_surface(self):
        """The acceptance query: one structure, all the counters."""
        from repro.faults import sites
        from repro.faults.plan import FaultPlan, FaultSpec, Nth

        engine = FaultPlan(
            (FaultSpec(sites.NET_BACKEND, "kill", Nth(1)),), seed=3
        ).compile()
        xc = XContainer(CountingServices(), faults=engine)
        xc.run(build_syscall_bench(5))
        net = make_net_driver()
        net.faults = engine
        net.transmit(100)
        xc.attach_io_driver("eth0", net)
        tel = xc.telemetry()
        tel.histogram("net_http_request_latency_ns").observe(500.0)
        snap = tel.snapshot()
        counters = snap["counters"]

        def have(prefix):
            return any(key.startswith(prefix) for key in counters)

        assert have("arch_icache_hits_total")
        assert have("core_xkernel_syscalls_trapped_total")
        assert have("xen_ring_batches_total")
        assert have("faults_injected_total")
        assert "net_http_request_latency_ns{domain=xc0}" in (
            snap["histograms"]
        )
