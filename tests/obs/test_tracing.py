"""Span recording: nesting, determinism, bounds, Tracer integration."""

import pytest

from repro.obs.tracing import SpanRecorder
from repro.perf.clock import SimClock
from repro.perf.trace import Tracer


class TestSpans:
    def test_span_measures_simulated_time(self):
        clock = SimClock()
        recorder = SpanRecorder(clock)
        with recorder.span("work") as ctx:
            clock.advance(250.0)
        assert ctx.finished.duration_ns == 250.0
        assert recorder.total_ns("work") == 250.0

    def test_nested_spans_get_parent_ids(self):
        clock = SimClock()
        recorder = SpanRecorder(clock)
        with recorder.span("outer"):
            clock.advance(10)
            with recorder.span("inner"):
                clock.advance(5)
        inner, outer = recorder.spans("inner")[0], recorder.spans("outer")[0]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert recorder.children_of(outer) == [inner]

    def test_ids_are_sequential_and_deterministic(self):
        clock = SimClock()
        recorder = SpanRecorder(clock)
        for _ in range(3):
            with recorder.span("s"):
                pass
        assert [s.span_id for s in recorder.finished] == [1, 2, 3]

    def test_out_of_order_end_raises(self):
        recorder = SpanRecorder(SimClock())
        a = recorder.begin("a")
        recorder.begin("b")
        with pytest.raises(RuntimeError):
            recorder.end(a)

    def test_labels_are_sorted_and_stringified(self):
        recorder = SpanRecorder(SimClock())
        with recorder.span("s", b=2, a=1) as ctx:
            pass
        assert ctx.finished.labels == (("a", "1"), ("b", "2"))

    def test_spans_never_advance_the_clock(self):
        clock = SimClock()
        recorder = SpanRecorder(clock)
        with recorder.span("s"):
            pass
        assert clock.now_ns == 0.0


class TestBounds:
    def test_capacity_drops_oldest(self):
        recorder = SpanRecorder(SimClock(), capacity=2)
        for name in ("a", "b", "c"):
            with recorder.span(name):
                pass
        assert [s.name for s in recorder.finished] == ["b", "c"]
        assert recorder.dropped == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(SimClock(), capacity=0)

    def test_clear_resets(self):
        recorder = SpanRecorder(SimClock(), capacity=1)
        for name in ("a", "b"):
            with recorder.span(name):
                pass
        recorder.clear()
        assert recorder.finished == [] and recorder.dropped == 0


class TestTracerIntegration:
    def test_begin_end_emitted_into_flat_tracer(self):
        clock = SimClock()
        tracer = Tracer(clock)
        recorder = SpanRecorder(clock, tracer=tracer)
        with recorder.span("netfront.tx"):
            clock.advance(100)
        names = [e.name for e in tracer.events("span")]
        assert names == ["netfront.tx.begin", "netfront.tx.end"]
        end = tracer.events("span", "netfront.tx.end")[0]
        assert end.detail["dur_ns"] == 100.0

    def test_render_is_fixed_width(self):
        clock = SimClock()
        recorder = SpanRecorder(clock)
        with recorder.span("s", k="v"):
            clock.advance(1500)
        out = recorder.render()
        assert "s k=v" in out
        assert "1.500" in out  # duration in microseconds
