"""Property: telemetry is observation-only.

Wiring the registry, taking snapshots, exporting — none of it may change
simulated results.  Hypothesis generates random programs and descriptor
trains; each runs twice (telemetry on, with exports taken mid-flight, vs
``telemetry=False``) and every simulated number must match exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.assembler import Assembler
from repro.arch.registers import Reg
from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices
from repro.obs.registry import Registry

OPS = st.lists(
    st.sampled_from(("inc", "dec", "sys_eax", "sys_rax")),
    min_size=1,
    max_size=10,
)


def build_program(ops, iters):
    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, iters)
    asm.mov_imm32(Reg.RCX, 0)
    asm.label("loop")
    for index, op in enumerate(ops):
        if op == "inc":
            asm.inc(Reg.RCX)
        elif op == "dec":
            asm.dec(Reg.RCX)
        elif op == "sys_eax":
            asm.syscall_site(39, style="mov_eax", symbol=f"s{index}")
        else:
            asm.syscall_site(15, style="mov_rax", symbol=f"s{index}")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build("prop")


class TestTelemetryNeutrality:
    @settings(max_examples=20, deadline=None)
    @given(ops=OPS, iters=st.integers(min_value=1, max_value=4))
    def test_random_programs_unchanged_by_telemetry(self, ops, iters):
        binary = build_program(ops, iters)

        def run(telemetry_on):
            xc = XContainer(
                CountingServices(), telemetry=telemetry_on
            )
            if telemetry_on:
                tel = xc.telemetry()  # wire everything up front
            result = xc.run(binary)
            if telemetry_on:
                # Exports mid-workload must be pure reads too.
                tel.snapshot()
                tel.prometheus_text()
                tel.render_table()
            return (
                result.instructions,
                result.elapsed_ns,
                result.exit_rax,
                xc.clock.now_ns,
                xc.libos.stats.lightweight_syscalls,
                xc.libos.stats.forwarded_syscalls,
                xc.abom_stats.total_patches,
            )

        assert run(True) == run(False)

    @settings(max_examples=20, deadline=None)
    @given(
        trains=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=9000),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_net_rings_unchanged_by_telemetry(self, trains):
        from repro.xen.drivers import SplitNetDriver
        from repro.xen.events import EventChannelTable
        from repro.xen.hypervisor import DomainKind, XenHypervisor

        def run(wired):
            xen = XenHypervisor()
            guest = xen.create_domain("guest")
            backend = xen.create_domain("backend", DomainKind.DRIVER)
            events = EventChannelTable(xen.costs, xen.clock)
            driver = SplitNetDriver(
                guest, backend, xen.grants, events, xen.costs, xen.clock
            )
            registry = None
            if wired:
                registry = Registry()
                driver.bind_telemetry(registry, "eth0")
                events.bind_telemetry(registry)
                xen.grants.bind_telemetry(registry)
            costs = [driver.transmit_batch(train) for train in trains]
            if wired:
                registry.snapshot()
            return costs, xen.clock.now_ns, driver.stats.as_dict()

        assert run(True) == run(False)
