"""Exporters: format correctness plus byte-identical golden fixtures.

The golden files under ``tests/obs/golden/`` were produced by
``run_demo(seed=1234, requests=8, syscall_iters=25)`` — the same
workload ``repro metrics`` / ``repro trace`` run.  If an intentional
change shifts the output, regenerate them with::

    PYTHONPATH=src python -c "
    from repro.obs.demo import run_demo
    tel = run_demo(seed=1234, requests=8, syscall_iters=25)
    open('tests/obs/golden/metrics.prom', 'w').write(tel.prometheus_text())
    open('tests/obs/golden/trace.json', 'w').write(tel.chrome_trace_json())"
"""

import json
from pathlib import Path

from repro.obs import (
    Registry,
    SpanRecorder,
    chrome_trace_json,
    prometheus_text,
    render_table,
)
from repro.obs.demo import run_demo
from repro.perf.clock import SimClock

GOLDEN = Path(__file__).parent / "golden"


class TestPrometheusText:
    def test_counter_line_with_labels(self):
        registry = Registry()
        registry.counter("a_total", help="things", x="v").inc(3)
        text = prometheus_text(registry)
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{x="v"} 3' in text

    def test_histogram_expands_to_buckets_sum_count(self):
        registry = Registry()
        hist = registry.histogram("h_ns", buckets=(10.0, 100.0))
        hist.observe(5)
        hist.observe(50)
        hist.observe(5000)
        text = prometheus_text(registry)
        assert 'h_ns_bucket{le="10"} 1' in text
        assert 'h_ns_bucket{le="100"} 2' in text
        assert 'h_ns_bucket{le="+Inf"} 3' in text
        assert "h_ns_sum 5055" in text
        assert "h_ns_count 3" in text

    def test_label_values_escaped(self):
        registry = Registry()
        registry.counter("a_total", x='say "hi"\n').inc()
        assert 'x="say \\"hi\\"\\n"' in prometheus_text(registry)


class TestChromeTrace:
    def test_events_are_complete_phase_in_us(self):
        clock = SimClock()
        spans = SpanRecorder(clock)
        with spans.span("tx", port=3):
            clock.advance(2000.0)
        payload = json.loads(chrome_trace_json(spans))
        [event] = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == 0.0
        assert event["dur"] == 2.0  # microseconds
        assert event["args"] == {"span_id": 1, "port": "3"}
        assert payload["otherData"]["dropped_spans"] == 0


class TestRenderTable:
    def test_empty_registry(self):
        assert "no metrics" in render_table(Registry())

    def test_rows_sorted_and_aligned(self):
        registry = Registry()
        registry.counter("b_total").inc()
        registry.gauge("a").set(2)
        lines = render_table(registry).splitlines()
        assert lines[2].startswith("a ")
        assert lines[3].startswith("b_total ")


class TestGoldenFiles:
    def test_prometheus_matches_fixture(self):
        tel = run_demo(seed=1234, requests=8, syscall_iters=25)
        expected = (GOLDEN / "metrics.prom").read_text()
        assert tel.prometheus_text() == expected

    def test_chrome_trace_matches_fixture(self):
        tel = run_demo(seed=1234, requests=8, syscall_iters=25)
        expected = (GOLDEN / "trace.json").read_text()
        assert tel.chrome_trace_json() == expected

    def test_demo_is_deterministic_across_runs(self):
        first = run_demo(seed=7, requests=3, syscall_iters=5)
        second = run_demo(seed=7, requests=3, syscall_iters=5)
        assert first.prometheus_text() == second.prometheus_text()
        assert first.chrome_trace_json() == second.chrome_trace_json()
        assert first.snapshot() == second.snapshot()
