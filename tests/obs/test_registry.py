"""The metrics registry: instruments, labels, scoping, lazy bindings."""

import pytest

from repro.obs.registry import (
    DEFAULT_NS_BUCKETS,
    Registry,
    format_value,
    render_sample_key,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = Registry()
        counter = registry.counter("a_total")
        counter.inc()
        counter.inc(4)
        assert registry.value("a_total") == 5

    def test_negative_increment_rejected(self):
        counter = Registry().counter("a_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_same_labels_is_same_instrument(self):
        registry = Registry()
        assert registry.counter("a_total", x=1) is registry.counter(
            "a_total", x=1
        )

    def test_same_name_different_labels_are_distinct(self):
        registry = Registry()
        registry.counter("a_total", x=1).inc(2)
        registry.counter("a_total", x=2).inc(3)
        assert registry.value("a_total", x=1) == 2
        assert registry.value("a_total", x=2) == 3
        assert registry.value("a_total") == 5  # sums across label sets


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Registry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_kind_conflict_raises(self):
        registry = Registry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper(self):
        hist = Registry().histogram("h_ns", buckets=(10.0, 100.0))
        hist.observe(10.0)   # lands in the first bucket (le=10)
        hist.observe(10.5)   # second bucket
        hist.observe(1000.0)  # beyond the last edge: +Inf only
        assert hist.bucket_counts == [1, 1]
        assert hist.cumulative() == [1, 2]
        assert hist.count == 3
        assert hist.sum == pytest.approx(1020.5)

    def test_mean(self):
        hist = Registry().histogram("h_ns")
        assert hist.mean == 0.0
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == 3.0

    def test_default_buckets_are_log_scale_ns(self):
        assert DEFAULT_NS_BUCKETS[0] == 16.0
        ratios = {
            round(b / a)
            for a, b in zip(DEFAULT_NS_BUCKETS, DEFAULT_NS_BUCKETS[1:])
        }
        assert ratios == {4}

    def test_quantile_interpolates_within_bucket(self):
        hist = Registry().histogram("h_ns", buckets=(10.0, 20.0, 40.0))
        for value in (5.0, 15.0, 15.0, 35.0):
            hist.observe(value)
        # rank 2 of 4 sits halfway through the (10, 20] bucket.
        assert hist.quantile(0.5) == pytest.approx(15.0)
        # rank 1 exhausts the (0, 10] bucket: its upper edge.
        assert hist.quantile(0.25) == pytest.approx(10.0)
        # rank 3 exhausts the (10, 20] bucket.
        assert hist.quantile(0.75) == pytest.approx(20.0)

    def test_quantile_clamps_to_last_edge(self):
        hist = Registry().histogram("h_ns", buckets=(10.0, 20.0))
        hist.observe(999.0)  # beyond every finite edge
        assert hist.quantile(0.99) == 20.0

    def test_quantile_of_empty_histogram_is_zero(self):
        hist = Registry().histogram("h_ns", buckets=(10.0,))
        assert hist.quantile(0.5) == 0.0

    def test_quantile_rejects_out_of_range(self):
        hist = Registry().histogram("h_ns", buckets=(10.0,))
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.0)

    def test_merge_counts_accumulates(self):
        hist = Registry().histogram("h_ns", buckets=(10.0, 20.0))
        hist.observe(5.0)
        hist.merge_counts([1, 2], 45.0, 3)
        assert hist.bucket_counts == [2, 2]
        assert hist.count == 4
        assert hist.sum == pytest.approx(50.0)

    def test_merge_counts_rejects_shape_mismatch(self):
        hist = Registry().histogram("h_ns", buckets=(10.0, 20.0))
        with pytest.raises(ValueError):
            hist.merge_counts([1], 1.0, 1)


class TestChildScoping:
    def test_child_labels_apply_to_instruments(self):
        registry = Registry()
        child = registry.child(domain="xc0")
        child.counter("a_total").inc()
        [sample] = registry.collect()
        assert sample.labels == (("domain", "xc0"),)

    def test_child_shares_the_store(self):
        registry = Registry()
        child = registry.child(domain="xc0")
        child.counter("a_total").inc(7)
        assert registry.value("a_total", domain="xc0") == 7

    def test_nested_children_merge_labels(self):
        registry = Registry()
        leaf = registry.child(domain="xc0").child(component="http")
        leaf.counter("a_total").inc()
        [sample] = registry.collect()
        assert sample.labels == (
            ("component", "http"),
            ("domain", "xc0"),
        )


class TestBindings:
    def test_bind_reads_lazily(self):
        registry = Registry()
        state = {"n": 0}
        registry.bind("a_total", lambda: state["n"])
        state["n"] = 42
        assert registry.value("a_total") == 42

    def test_bind_family_expands_dict_keys(self):
        registry = Registry()
        calls = {"read": 3, "write": 1}
        registry.bind_family("hc_total", "name", lambda: calls)
        values = {
            render_sample_key(s.name, s.labels): s.value
            for s in registry.collect()
        }
        assert values == {
            "hc_total{name=read}": 3,
            "hc_total{name=write}": 1,
        }

    def test_value_raises_for_unknown_metric(self):
        with pytest.raises(KeyError):
            Registry().value("nope_total")


class TestSnapshot:
    def test_snapshot_shape_and_determinism(self):
        registry = Registry()
        registry.counter("b_total").inc(2)
        registry.gauge("a").set(1.5)
        registry.histogram("h_ns", buckets=(10.0,)).observe(3)
        snap = registry.snapshot()
        assert snap["counters"] == {"b_total": 2}
        assert snap["gauges"] == {"a": 1.5}
        assert snap["histograms"]["h_ns"]["count"] == 1
        assert snap == registry.snapshot()

    def test_integral_floats_render_without_decimal(self):
        assert format_value(5.0) == "5"
        assert format_value(5.5) == "5.5"
