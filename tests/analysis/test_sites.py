"""Site discovery and classification, incl. the static==dynamic property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sites import (
    discover_binary_sites,
    reconcile_with_metadata,
)
from repro.arch import Assembler, Reg
from repro.arch.binary import SitePattern
from repro.core import CountingServices, XContainer
from repro.core.vsyscall import dynamic_slot_addr, slot_addr
from repro.perf.trace import Tracer


def discover(binary):
    return discover_binary_sites(binary)


class TestClassification:
    def test_mov_eax_site(self):
        asm = Assembler()
        asm.syscall_site(39, style="mov_eax")
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.MOV_EAX_IMM
        assert site.nr == 39
        assert site.abom_patchable
        assert site.window == (site.syscall_addr - 5, 7)
        assert site.predicted_bytes[:3] == b"\xff\x14\x25"
        assert site.predicted_bytes[-2:] == b"\x60\xff"

    def test_mov_rax_site(self):
        asm = Assembler()
        asm.syscall_site(15, style="mov_rax")
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.MOV_RAX_IMM
        assert site.nr == 15
        assert site.abom_patchable
        assert site.window == (site.syscall_addr - 7, 9)
        # Final state: 7-byte call + jmp -9.
        assert len(site.predicted_bytes) == 9
        assert site.predicted_bytes[7:] == b"\xeb\xf7"

    def test_go_stack_site(self):
        asm = Assembler()
        asm.syscall_site(1, style="go_stack")
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.GO_STACK
        assert site.nr is None
        assert site.disp == 8
        assert site.abom_patchable
        slot = dynamic_slot_addr(8)
        assert site.predicted_bytes[3:7] == (
            slot & 0xFFFFFFFF).to_bytes(4, "little")

    def test_go_stack_unknown_disp_not_patchable(self):
        asm = Assembler()
        asm.load_rsp64(Reg.RAX, 12)  # 12 has no dynamic slot
        asm.raw_syscall()
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.GO_STACK
        assert not site.abom_patchable

    def test_out_of_range_number_not_patchable(self):
        asm = Assembler()
        asm.syscall_site(100_000, style="mov_eax")
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.MOV_EAX_IMM
        assert not site.abom_patchable
        assert site.predicted_bytes is None

    def test_cancellable_site(self):
        asm = Assembler()
        declared = asm.syscall_site(3, style="cancellable", cancel_gap=4)
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.CANCELLABLE
        assert site.nr == 3
        assert site.region_start == declared.syscall_addr - 4 - 5
        assert not site.abom_patchable

    def test_bare_site_rax_from_alu(self):
        asm = Assembler()
        asm.xor(Reg.RAX, Reg.RAX)
        asm.raw_syscall()
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.BARE
        assert site.nr is None

    def test_rax_clobber_between_mov_and_syscall_is_bare(self):
        # mov $3,%eax; pop %rax; syscall — the pop kills the wrapper.
        asm = Assembler()
        asm.push(Reg.RCX)
        asm.mov_imm32(Reg.RAX, 3)
        asm.pop(Reg.RAX)
        asm.raw_syscall()
        asm.hlt()
        (site,) = discover(asm.build())
        assert site.pattern is SitePattern.BARE

    def test_predicted_call_slot_matches_vsyscall_table(self):
        asm = Assembler()
        asm.syscall_site(7, style="mov_eax")
        asm.hlt()
        (site,) = discover(asm.build())
        slot = slot_addr(7)
        assert site.predicted_bytes[3:7] == (
            slot & 0xFFFFFFFF).to_bytes(4, "little")

    def test_reconcile_pairs_declared_with_discovered(self):
        asm = Assembler()
        asm.syscall_site(0, style="mov_eax", symbol="__read")
        asm.syscall_site(3, style="cancellable", symbol="__close")
        asm.hlt()
        binary = asm.build()
        pairs = reconcile_with_metadata(discover(binary), binary)
        assert len(pairs) == 2
        for declared, found in pairs:
            assert found is not None
            assert found.pattern is declared.pattern
            assert found.nr == declared.nr

    def test_unreachable_declared_site_reconciles_to_none(self):
        asm = Assembler()
        asm.hlt()
        asm.label("dead")
        declared = asm.syscall_site(0, style="mov_eax")
        asm.hlt()
        binary = asm.build()
        binary.symbols.pop("dead")  # not an entry: genuinely unreachable
        pairs = reconcile_with_metadata(discover(binary), binary)
        assert pairs == [(declared, None)]


# ----------------------------------------------------------------------
# Property: static discovery == dynamic trap sites
# ----------------------------------------------------------------------
_SITE_STYLES = ("mov_eax", "mov_rax", "go_stack", "cancellable", "bare")

site_specs = st.lists(
    st.tuples(
        st.sampled_from(_SITE_STYLES),
        st.integers(min_value=0, max_value=383),
        st.integers(min_value=1, max_value=6),  # cancel gap
        st.integers(min_value=0, max_value=3),  # filler nops after
    ),
    min_size=0,
    max_size=8,
)


def build_program(specs, junk):
    """A straight-line program executing every site exactly once."""
    asm = Assembler(base=0x400000)
    asm.entry()
    declared = []
    for style, nr, gap, filler in specs:
        if style == "go_stack":
            asm.mov_imm64_low(Reg.RCX, nr)
            asm.store_rsp64(8, Reg.RCX)
        elif style == "bare":
            # %rax set by an ALU op so the site stays genuinely bare.
            asm.xor(Reg.RAX, Reg.RAX)
        declared.append(
            asm.syscall_site(nr, style=style, cancel_gap=gap)
        )
        asm.nop(filler)
    if junk:
        # Data in text, jumped over: must confuse neither side.
        asm.jmp("over")
        asm.raw(junk)
        asm.label("over")
    asm.hlt()
    return asm.build(), declared


@settings(max_examples=60, deadline=None)
@given(
    specs=site_specs,
    junk=st.binary(min_size=0, max_size=12).filter(
        lambda b: b"\x0f\x05" not in b
    ),
)
def test_static_discovery_equals_interpreter_traps(specs, junk):
    binary, declared = build_program(specs, junk)
    discovered = discover(binary)

    # ABOM off: every execution of every site traps to the X-Kernel.
    xc = XContainer(CountingServices(), abom_enabled=False)
    tracer = Tracer(xc.clock, capacity=65536)
    xc.attach_tracer(tracer)
    xc.run(binary)
    trapped = {
        event.detail["rip"]
        for event in tracer.events("syscall", "forwarded")
    }

    assert {site.syscall_addr for site in discovered} == trapped
    # And the static classification agrees with the assembler's intent.
    by_addr = {site.syscall_addr: site for site in discovered}
    for site in declared:
        assert by_addr[site.syscall_addr].pattern is site.pattern
