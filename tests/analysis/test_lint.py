"""The determinism lint: wall-clock, unseeded randomness, set iteration."""

from pathlib import Path

from repro.analysis.lint import (
    ALLOWLIST,
    LintIssue,
    lint_paths,
    lint_source,
    main,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules(source):
    return [issue.rule for issue in lint_source(source)]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules("import time\nx = time.time()\n") == ["wall-clock"]

    def test_perf_counter_flagged(self):
        assert rules("import time\nx = time.perf_counter()\n") == [
            "wall-clock"
        ]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nx = datetime.now()\n"
        assert rules(src) == ["wall-clock"]

    def test_from_time_import_flagged(self):
        assert rules("from time import time\n") == ["wall-clock"]

    def test_sim_clock_usage_clean(self):
        src = (
            "from repro.perf.clock import SimClock\n"
            "clock = SimClock()\n"
            "now = clock.now_ns\n"
        )
        assert rules(src) == []

    def test_non_clock_time_attribute_clean(self):
        # `time.sleep` does not read the clock; not this lint's business.
        assert rules("import time\ntime.sleep(0)\n") == []


class TestUnseededRandom:
    def test_module_level_random_flagged(self):
        src = "import random\nx = random.randint(0, 9)\n"
        assert rules(src) == ["unseeded-random"]

    def test_unseeded_random_instance_flagged(self):
        src = "import random\nrng = random.Random()\n"
        assert rules(src) == ["unseeded-random"]

    def test_seeded_random_instance_clean(self):
        src = "import random\nrng = random.Random(42)\n"
        assert rules(src) == []

    def test_numpy_module_level_random_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules(src) == ["unseeded-random"]

    def test_uuid4_and_urandom_flagged(self):
        src = "import os, uuid\na = uuid.uuid4()\nb = os.urandom(8)\n"
        assert rules(src) == ["unseeded-random", "unseeded-random"]

    def test_deterministic_rng_clean(self):
        src = (
            "from repro.perf.rand import DeterministicRng\n"
            "rng = DeterministicRng('seed').fork('body')\n"
        )
        assert rules(src) == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        assert rules("for x in {1, 2, 3}:\n    pass\n") == [
            "set-iteration"
        ]

    def test_for_over_set_call_flagged(self):
        assert rules("for x in set([1, 2]):\n    pass\n") == [
            "set-iteration"
        ]

    def test_comprehension_over_set_flagged(self):
        assert rules("ys = [x for x in frozenset((1, 2))]\n") == [
            "set-iteration"
        ]

    def test_sorted_set_iteration_clean(self):
        assert rules("for x in sorted(set([2, 1])):\n    pass\n") == []

    def test_dict_and_list_iteration_clean(self):
        assert rules("for x in {'a': 1}:\n    pass\nfor y in [1]:\n    pass\n") == []


class TestRepositoryGate:
    def test_simulation_sources_are_lint_clean(self):
        issues = lint_paths([REPO_SRC])
        assert issues == [], "\n".join(i.render() for i in issues)

    def test_allowlist_paths_are_skipped(self, tmp_path):
        shadow = tmp_path / "repro"
        (shadow / "obs").mkdir(parents=True)
        (shadow / "cli.py").write_text("import time\nt = time.time()\n")
        (shadow / "obs" / "exporters.py").write_text(
            "import time\nt = time.time()\n"
        )
        (shadow / "sim.py").write_text("import time\nt = time.time()\n")
        issues = lint_paths([shadow])
        assert [Path(i.path).name for i in issues] == ["sim.py"]
        assert any(s.endswith("cli.py") for s in ALLOWLIST)

    def test_issues_sort_deterministically(self):
        src = "import time\nb = time.time()\na = time.time()\n"
        first = lint_source(src, "m.py")
        assert first == sorted(
            first, key=lambda i: (i.path, i.line, i.rule, i.message)
        )
        assert isinstance(first[0], LintIssue)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nx = time.time()\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out
