"""Static predictions vs. online ABOM, diffed."""

import dataclasses

from repro.analysis.differential import run_differential
from repro.analysis.examples import EXAMPLES
from repro.analysis.sites import discover_binary_sites
from repro.arch import Assembler, Reg
from repro.core import CountingServices, XContainer
from repro.core.offline import OfflinePatcher


class TestDecisionDiff:
    def test_figure2_zero_mismatches(self):
        """Every Figure-2 shape: static and ABOM must agree exactly."""
        result = run_differential(EXAMPLES["figure2"].build())
        assert result.ok
        assert result.decision_mismatches == []
        assert result.byte_mismatches == []
        assert result.unpredicted_patches == []
        # All five sites trapped at least once; three were patchable.
        assert result.traps == 5
        patched = [o for o in result.outcomes if o.abom_patched]
        assert {o.pattern for o in patched} == {
            "mov_eax_imm", "mov_rax_imm", "go_stack",
        }

    def test_all_safe_examples_agree(self):
        for example in EXAMPLES.values():
            if not (example.safe and example.runnable):
                continue
            result = run_differential(example.build())
            assert result.ok, example.name

    def test_unexercised_site_matches_vacuously(self):
        # The site sits on the never-taken fall-through of a branch:
        # statically discovered, never trapped, never patched.
        asm = Assembler(base=0x400000)
        asm.entry()
        asm.xor(Reg.RBX, Reg.RBX)
        asm.cmp(Reg.RBX, 0)
        asm.je("skip")
        asm.syscall_site(0, style="mov_eax", symbol="cold")
        asm.label("skip")
        asm.hlt()
        result = run_differential(asm.build())
        assert result.ok
        assert result.traps == 0
        (outcome,) = result.outcomes
        assert not outcome.executed
        assert outcome.predicted_patch and not outcome.abom_patched
        assert result.unexercised == [outcome]


class TestByteDiff:
    def test_patched_loop_bytes_converge(self):
        result = run_differential(EXAMPLES["patched_loop"].build())
        assert result.ok
        assert result.byte_mismatches == []

    def test_wrong_prediction_is_caught(self):
        binary = EXAMPLES["patched_loop"].build()
        sites = discover_binary_sites(binary)
        doctored = [
            dataclasses.replace(
                site, predicted_bytes=b"\x90" * len(site.predicted_bytes)
            )
            if site.pattern.value == "mov_eax_imm"
            else site
            for site in sites
        ]
        result = run_differential(binary, sites=doctored)
        assert not result.ok
        assert result.byte_mismatches

    def test_wrong_decision_is_caught(self):
        binary = EXAMPLES["patched_loop"].build()
        sites = discover_binary_sites(binary)
        doctored = [
            dataclasses.replace(site, abom_patchable=False)
            if site.pattern.value == "mov_eax_imm"
            else site
            for site in sites
        ]
        result = run_differential(binary, sites=doctored)
        assert not result.ok
        assert result.decision_mismatches


class TestTraceCacheDiff:
    """The trace cache is an optimization, never a semantic change."""

    def test_figure2_identical_with_and_without_trace_cache(self):
        result = run_differential(EXAMPLES["figure2"].build())
        assert result.ok
        assert result.tracecache_trap_mismatches == []
        assert result.tracecache_byte_mismatches == []

    def test_all_safe_examples_cache_neutral(self):
        for example in EXAMPLES.values():
            if not (example.safe and example.runnable):
                continue
            result = run_differential(example.build())
            assert result.tracecache_trap_mismatches == [], example.name
            assert result.tracecache_byte_mismatches == [], example.name

    def test_tracecache_divergence_would_fail_ok(self):
        result = run_differential(EXAMPLES["patched_loop"].build())
        assert result.ok
        doctored = dataclasses.replace(
            result, tracecache_trap_mismatches=[0x400000]
        )
        assert not doctored.ok

    def test_report_dict_carries_tracecache_fields(self):
        from repro.analysis.report import analyze

        report = analyze(EXAMPLES["patched_loop"].build())
        diff = report.as_dict()["differential"]
        assert diff["tracecache_trap_mismatches"] == 0
        assert diff["tracecache_byte_mismatch_regions"] == 0


class TestOfflineConvergence:
    def test_patch_discovered_matches_symbol_list_patching(self):
        """Discovered-site patching == the paper's symbol-list workflow."""
        def build():
            asm = Assembler(base=0x400000)
            asm.entry()
            asm.mov_imm32(Reg.RBX, 4)
            asm.label("loop")
            asm.syscall_site(
                3, style="cancellable", cancel_gap=4, symbol="pthread_close"
            )
            asm.dec(Reg.RBX)
            asm.jne("loop")
            asm.hlt()
            return asm.build("wrapped")

        by_symbols = XContainer(CountingServices())
        binary = build()
        by_symbols.load(binary)
        OfflinePatcher(by_symbols.memory).patch_sites(binary, binary.sites)

        by_discovery = XContainer(CountingServices())
        binary2 = build()
        by_discovery.load(binary2)
        report = OfflinePatcher(by_discovery.memory).patch_discovered(binary2)
        assert len(report.patched) == 1

        size = len(binary.code)
        assert by_symbols.memory.read(binary.base, size) == (
            by_discovery.memory.read(binary2.base, size)
        )
        # And the discovered-site patch behaves: all lightweight.
        result = by_discovery.run_loaded(binary2.entry)
        assert result is not None
        assert by_discovery.libos_stats.forwarded_syscalls == 0
        assert by_discovery.libos_stats.lightweight_syscalls == 4
