"""CFG recovery: blocks, edges, leaders, and undecodable bytes."""

from repro.analysis.cfg import EdgeKind, recover_binary_cfg, recover_cfg
from repro.arch import Assembler, Reg
from repro.arch.encoding import enc_call_abs_ind


def test_straight_line_is_one_block():
    asm = Assembler(base=0x1000)
    asm.nop()
    asm.inc(Reg.RCX)
    asm.dec(Reg.RCX)
    asm.hlt()
    cfg = recover_binary_cfg(asm.build())
    assert len(cfg.blocks) == 1
    block = cfg.blocks[0x1000]
    assert [i.mnemonic for _, i in block.instructions] == [
        "nop", "inc_r64", "dec_r64", "hlt",
    ]
    assert cfg.successors(0x1000) == []


def test_loop_edges():
    asm = Assembler(base=0x1000)
    asm.mov_imm32(Reg.RBX, 3)
    asm.label("loop")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build()
    cfg = recover_binary_cfg(binary)
    loop = binary.symbols["loop"]
    kinds = {(e.dst, e.kind) for e in cfg.edges}
    assert (loop, EdgeKind.BRANCH) in kinds          # jne back-edge
    hlt_addr = loop + 3 + 2
    assert (hlt_addr, EdgeKind.FALLTHROUGH) in kinds  # jne not taken
    # The back-edge target starts a block even mid-run.
    assert loop in cfg.blocks


def test_jump_target_splits_block():
    asm = Assembler(base=0x1000)
    asm.nop()
    asm.label("target")
    asm.inc(Reg.RCX)
    asm.jmp("target")
    cfg = recover_binary_cfg(asm.build())
    target = 0x1001
    assert target in cfg.blocks
    # The nop block falls through into the split-off target block.
    fallthrough = [
        e for e in cfg.edges
        if e.kind is EdgeKind.FALLTHROUGH and e.dst == target
    ]
    assert fallthrough
    assert cfg.block_containing(0x1000).end == target


def test_call_edges_and_return_resumption():
    asm = Assembler(base=0x1000)
    asm.entry()
    asm.call("fn")
    asm.hlt()
    asm.label("fn")
    asm.nop()
    asm.ret()
    binary = asm.build()
    cfg = recover_binary_cfg(binary)
    fn = binary.symbols["fn"]
    kinds = {(e.dst, e.kind) for e in cfg.edges}
    assert (fn, EdgeKind.CALL) in kinds
    assert (0x1005, EdgeKind.CALL_RETURN) in kinds  # after the 5-byte call
    # ret ends its block with no successors.
    assert cfg.successors(fn) == []
    # Both the call target and the return point are landing targets.
    assert {fn, 0x1005} <= cfg.landing_targets()


def test_syscall_gets_trap_resume_edge():
    asm = Assembler(base=0x1000)
    asm.syscall_site(0, style="mov_eax")
    asm.hlt()
    cfg = recover_binary_cfg(asm.build())
    resume = [e for e in cfg.edges if e.kind is EdgeKind.TRAP_RESUME]
    assert len(resume) == 1
    assert resume[0].src == 0x1005   # the syscall
    assert resume[0].dst == 0x1007   # the hlt after it


def test_indirect_call_target_recorded_external():
    slot = 0xFFFFFFFFFF600008
    code = enc_call_abs_ind(slot) + b"\xf4"
    cfg = recover_cfg(code, 0x1000, [0x1000])
    assert slot in cfg.external_targets
    assert (0x1007, EdgeKind.CALL_RETURN) in {
        (e.dst, e.kind) for e in cfg.edges
    }


def test_reachable_invalid_bytes_recorded():
    # Entry walks straight into a 0x60 byte (invalid in 64-bit mode).
    cfg = recover_cfg(b"\x90\x60\xff", 0x1000, [0x1000])
    assert cfg.invalid_addrs == {0x1001}
    assert 0x1000 in cfg.instructions


def test_unreachable_data_not_decoded():
    asm = Assembler(base=0x1000)
    asm.jmp("over")
    asm.raw(b"\x60\x61\x62\x63")
    asm.label("over")
    asm.hlt()
    cfg = recover_binary_cfg(asm.build())
    assert cfg.invalid_addrs == set()
    assert all(a not in cfg.instructions for a in range(0x1005, 0x1009))


def test_landing_targets_exclude_plain_fallthrough():
    asm = Assembler(base=0x1000)
    asm.mov_imm32(Reg.RBX, 1)
    asm.dec(Reg.RBX)
    asm.jne("done")
    asm.nop()
    asm.label("done")
    asm.hlt()
    binary = asm.build()
    cfg = recover_binary_cfg(binary)
    targets = cfg.landing_targets()
    assert binary.symbols["done"] in targets
    # The nop after the branch is reached only by fall-through.
    nop_addr = binary.symbols["done"] - 1
    assert nop_addr not in targets


def test_instruction_before_walks_one_step():
    asm = Assembler(base=0x1000)
    asm.nop()
    asm.inc(Reg.RCX)
    asm.hlt()
    cfg = recover_binary_cfg(asm.build())
    addr, instr = cfg.instruction_before(0x1001)
    assert (addr, instr.mnemonic) == (0x1000, "nop")
    # Nothing straight-line flows into the entry.
    assert cfg.instruction_before(0x1000) is None
