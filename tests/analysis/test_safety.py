"""Patch-safety verification: the §4.4 invariants as findings."""

from repro.analysis.cfg import recover_binary_cfg
from repro.analysis.examples import EXAMPLES
from repro.analysis.report import analyze
from repro.analysis.safety import Severity, verify_sites
from repro.analysis.sites import discover_sites
from repro.arch import Assembler, Reg
from repro.arch.encoding import enc_jmp_rel32
from repro.core import CountingServices, XContainer
from repro.core.offline import OfflinePatcher


def findings_for(binary):
    cfg = recover_binary_cfg(binary)
    sites = discover_sites(cfg, binary.code, binary.base)
    return verify_sites(cfg, sites)


def kinds(findings, severity=None):
    return {
        f.kind for f in findings
        if severity is None or f.severity is severity
    }


class TestCleanPrograms:
    def test_figure2_has_no_errors(self):
        findings = findings_for(EXAMPLES["figure2"].build())
        assert kinds(findings, Severity.ERROR) == set()
        # Every site still gets at least an INFO-level verdict trail.
        assert "unpatchable-site" in kinds(findings)
        assert "offline-patchable" in kinds(findings)

    def test_straight_line_site_no_findings_above_info(self):
        asm = Assembler()
        asm.syscall_site(0, style="mov_eax")
        asm.hlt()
        findings = findings_for(asm.build())
        assert all(f.severity is Severity.INFO for f in findings)


class TestTailJumps:
    def test_tail_jump_is_info_not_error(self):
        findings = findings_for(EXAMPLES["tail_jump"].build())
        assert kinds(findings, Severity.ERROR) == set()
        info = [f for f in findings if f.kind == "ud-fixup-tail"]
        assert len(info) == 1
        assert info[0].severity is Severity.INFO
        assert "#UD" in info[0].message

    def test_9byte_tail_jump_is_info(self):
        # Loop back to the old syscall address of a 9-byte site: the
        # phase-2 jmp -9 re-enters the call, no fixup needed.
        asm = Assembler(base=0x400000)
        asm.entry()
        asm.mov_imm32(Reg.RBX, 2)
        asm.label("loop")
        site = asm.syscall_site(15, style="mov_rax")
        asm.dec(Reg.RBX)
        asm.je("done")
        asm.raw(enc_jmp_rel32(site.syscall_addr - (asm.here + 5)))
        asm.label("done")
        asm.hlt()
        findings = findings_for(asm.build())
        assert kinds(findings, Severity.ERROR) == set()
        tail = [f for f in findings if f.kind == "nine-byte-tail"]
        assert len(tail) == 1
        assert tail[0].severity is Severity.INFO


class TestInteriorTargets:
    def test_interior_jump_is_error(self):
        findings = findings_for(EXAMPLES["interior_jump"].build())
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert len(errors) == 1
        assert errors[0].kind == "interior-target"
        assert "byte 2" in errors[0].message

    def test_interior_jump_report_is_unsafe(self):
        report = analyze(EXAMPLES["interior_jump"].build())
        assert report.has_unsafe
        assert "UNSAFE" in report.render()

    def test_safe_examples_reports_are_safe(self):
        for example in EXAMPLES.values():
            if not example.safe:
                continue
            report = analyze(example.build())
            assert not report.has_unsafe, example.name


class TestOfflineRegions:
    def _wrapper_with_interior_jump(self):
        # A cancellable wrapper whose *interior* (the check between mov
        # and syscall) is also a jump target from elsewhere.
        asm = Assembler(base=0x400000)
        asm.entry()
        asm.jmp("check")          # jumps into the wrapper's interior
        asm.label("wrapper")
        asm.mov_imm32(Reg.RAX, 3)
        asm.label("check")
        asm.nop(2)
        asm.raw_syscall()
        asm.hlt()
        return asm.build("interior_wrapper")

    def test_interior_target_in_wrapper_is_warning(self):
        binary = self._wrapper_with_interior_jump()
        findings = findings_for(binary)
        warn = [f for f in findings if f.kind == "offline-interior-target"]
        assert len(warn) == 1
        assert warn[0].severity is Severity.WARNING
        # A warning is not an ERROR: ABOM forwarding still works.
        assert kinds(findings, Severity.ERROR) == set()

    def test_patch_discovered_skips_flagged_wrapper(self):
        binary = self._wrapper_with_interior_jump()
        xc = XContainer(CountingServices())
        xc.load(binary)
        report = OfflinePatcher(xc.memory).patch_discovered(binary)
        assert report.patched == []
        assert report.skipped  # the flagged site, by address

    def test_patch_discovered_patches_clean_wrapper(self):
        asm = Assembler(base=0x400000)
        asm.entry()
        asm.syscall_site(3, style="cancellable", cancel_gap=4)
        asm.hlt()
        binary = asm.build()
        xc = XContainer(CountingServices())
        xc.load(binary)
        report = OfflinePatcher(xc.memory).patch_discovered(binary)
        assert len(report.patched) == 1
        assert report.skipped == []


class TestUndecodableBytes:
    def test_reachable_bad_bytes_flagged(self):
        asm = Assembler(base=0x400000)
        asm.entry()
        asm.dec(Reg.RBX)
        asm.je("over")
        asm.raw(b"\x60")          # fall-through path hits this byte
        asm.label("over")
        asm.hlt()
        findings = findings_for(asm.build())
        warn = [f for f in findings if f.kind == "undecodable-bytes"]
        assert len(warn) == 1
        assert warn[0].severity is Severity.WARNING

    def test_jumped_over_data_not_flagged(self):
        findings = findings_for(EXAMPLES["data_in_text"].build())
        assert "undecodable-bytes" not in kinds(findings)
