"""IPVS scheduler, live server churn, and accounting conservation."""

import pytest

from repro.guest.ipvs import IPVS, IpvsMode, ServerState
from repro.guest.modules import ModuleLoadError, ModuleRegistry
from repro.platforms.x_container import XContainerPlatform


def make_ipvs(scheduler="wrr", mode=IpvsMode.NAT, backends=3):
    kernel = XContainerPlatform().make_kernel()
    kernel.modules.load("ip_vs")
    kernel.modules.load("ip_vs_rr")
    ipvs = IPVS(kernel.modules, mode, scheduler=scheduler)
    for i in range(backends):
        ipvs.add_server(f"10.0.0.{i + 2}", 80)
    return ipvs


class TestSchedulers:
    def test_wrr_round_robin_order(self):
        ipvs = make_ipvs("wrr")
        hosts = [ipvs.schedule().host for _ in range(6)]
        assert hosts == ["10.0.0.2", "10.0.0.3", "10.0.0.4"] * 2

    def test_wrr_respects_weights(self):
        ipvs = make_ipvs("wrr", backends=0)
        ipvs.add_server("10.0.0.2", 80, weight=2)
        ipvs.add_server("10.0.0.3", 80, weight=1)
        hosts = [ipvs.schedule().host for _ in range(6)]
        assert hosts.count("10.0.0.2") == 4
        assert hosts.count("10.0.0.3") == 2

    def test_wlc_picks_least_connected(self):
        ipvs = make_ipvs("wlc")
        first = ipvs.open_connection()
        second = ipvs.open_connection()
        third = ipvs.open_connection()
        # Three idle servers -> insertion-order tie-breaks.
        assert [s.host for s in (first, second, third)] == [
            "10.0.0.2", "10.0.0.3", "10.0.0.4",
        ]
        ipvs.close_connection(second)
        # 10.0.0.3 now has the fewest active connections.
        assert ipvs.open_connection().host == "10.0.0.3"

    def test_wlc_weight_scales_capacity(self):
        ipvs = make_ipvs("wlc", backends=0)
        ipvs.add_server("10.0.0.2", 80, weight=3)
        ipvs.add_server("10.0.0.3", 80, weight=1)
        conns = [ipvs.open_connection().host for _ in range(8)]
        assert conns.count("10.0.0.2") == 6
        assert conns.count("10.0.0.3") == 2

    def test_unknown_scheduler_rejected(self):
        kernel = XContainerPlatform().make_kernel()
        kernel.modules.load("ip_vs")
        kernel.modules.load("ip_vs_rr")
        with pytest.raises(ValueError, match="scheduler"):
            IPVS(kernel.modules, IpvsMode.NAT, scheduler="lblc")

    def test_weight_must_be_positive(self):
        ipvs = make_ipvs()
        with pytest.raises(ValueError, match="weight"):
            ipvs.add_server("10.0.0.9", 80, weight=0)


class TestLiveChurn:
    def test_added_server_receives_new_connections(self):
        ipvs = make_ipvs("wlc")
        for _ in range(6):
            ipvs.open_connection()
        newcomer = ipvs.add_server("10.0.0.9", 80)
        assert ipvs.open_connection() is newcomer
        assert ipvs.stats.servers_added == 4

    def test_drain_stops_new_work_immediately(self):
        ipvs = make_ipvs("wlc")
        victim = ipvs.open_connection()
        assert ipvs.remove_server(victim.host, victim.port) == 0
        assert victim.state is ServerState.DRAINING
        assert ipvs.stats.drains_started == 1
        for _ in range(12):
            assert ipvs.open_connection() is not victim
        # Still on the books until the last connection closes.
        assert ipvs.stats.servers_removed == 0

    def test_drain_finalizes_on_last_close(self):
        ipvs = make_ipvs("wlc")
        victim = ipvs.open_connection()
        ipvs.remove_server(victim.host, victim.port)
        ipvs.close_connection(victim)
        assert victim.state is ServerState.REMOVED
        assert ipvs.stats.servers_removed == 1
        assert ipvs.stats.conns_failed == 0
        assert victim not in ipvs.servers

    def test_drain_idle_server_removes_at_once(self):
        ipvs = make_ipvs("wlc")
        assert ipvs.remove_server("10.0.0.4", 80) == 0
        assert ipvs.stats.servers_removed == 1
        assert ipvs.stats.drains_started == 0

    def test_forced_removal_fails_connections(self):
        ipvs = make_ipvs("wlc")
        victim = ipvs.open_connection()
        failed = ipvs.remove_server(victim.host, victim.port, drain=False)
        assert failed == 1
        assert ipvs.stats.conns_failed == 1
        assert victim.state is ServerState.REMOVED

    def test_kill_fails_connections_and_keeps_books(self):
        ipvs = make_ipvs("wlc")
        conns = [ipvs.open_connection() for _ in range(6)]
        victim = conns[0]
        failed = ipvs.kill_server(victim.host, victim.port)
        assert failed == 2  # wlc spread 6 conns over 3 servers
        assert victim.state is ServerState.DEAD
        assert victim in ipvs.servers  # stays for accounting
        assert ipvs.stats.backend_deaths == 1
        for _ in range(12):
            assert ipvs.open_connection() is not victim

    def test_kill_is_idempotent(self):
        ipvs = make_ipvs("wlc")
        ipvs.kill_server("10.0.0.2", 80)
        assert ipvs.kill_server("10.0.0.2", 80) == 0
        assert ipvs.stats.backend_deaths == 1

    def test_dead_server_not_removable(self):
        ipvs = make_ipvs("wlc")
        ipvs.kill_server("10.0.0.2", 80)
        with pytest.raises(ValueError, match="dead"):
            ipvs.remove_server("10.0.0.2", 80)

    def test_unknown_server_raises(self):
        ipvs = make_ipvs()
        with pytest.raises(KeyError):
            ipvs.remove_server("10.9.9.9", 80)

    def test_close_without_connection_raises(self):
        ipvs = make_ipvs()
        server = ipvs.servers[0]
        with pytest.raises(ValueError, match="no active connections"):
            ipvs.close_connection(server)

    def test_no_schedulable_servers_raises(self):
        ipvs = make_ipvs("wlc", backends=1)
        ipvs.kill_server("10.0.0.2", 80)
        with pytest.raises(RuntimeError, match="no schedulable"):
            ipvs.schedule()


class TestConservation:
    def test_books_balance_through_full_churn(self):
        ipvs = make_ipvs("wlc", backends=4)
        conns = [ipvs.open_connection() for _ in range(16)]
        # A death, a drained removal, a forced removal, an addition.
        ipvs.kill_server("10.0.0.2", 80)
        drained = next(s for s in ipvs.servers
                       if s.host == "10.0.0.3")
        ipvs.remove_server("10.0.0.3", 80, drain=True)
        ipvs.remove_server("10.0.0.4", 80, drain=False)
        ipvs.add_server("10.0.0.9", 80)
        for server in conns:
            if server.active_conns > 0:
                ipvs.close_connection(server)
        for _ in range(8):
            ipvs.open_connection()
        assert drained.state is ServerState.REMOVED
        assert ipvs.conservation_ok()
        stats = ipvs.stats
        assert stats.conns_opened == (
            stats.conns_closed + stats.conns_failed
            + ipvs.active_connections()
        )
        assert stats.scheduled == ipvs.total_served()

    def test_wrr_serving_is_conserved(self):
        ipvs = make_ipvs("wrr")
        for _ in range(50):
            ipvs.schedule()
        assert ipvs.conservation_ok()


class TestModes:
    def test_nat_costs_more_than_dr(self):
        nat = make_ipvs(mode=IpvsMode.NAT)
        dr = make_ipvs(mode=IpvsMode.DIRECT_ROUTING)
        assert nat.director_cost_ns(450, 14000) > dr.director_cost_ns(
            450, 14000
        )

    def test_requires_ip_vs_module(self):
        registry = ModuleRegistry()  # nothing loaded
        with pytest.raises(ModuleLoadError):
            IPVS(registry, IpvsMode.NAT)
