import pytest

from repro.lb import HAProxyModel, LoadBalancedCluster
from repro.platforms import DockerPlatform, XContainerPlatform


class TestHAProxy:
    def test_single_threaded_capacity(self):
        model = HAProxyModel(XContainerPlatform())
        assert model.capacity_rps() == pytest.approx(
            1e9 / model.per_request_ns()
        )

    def test_x_container_haproxy_cheaper_than_docker(self):
        x = HAProxyModel(XContainerPlatform())
        docker = HAProxyModel(DockerPlatform())
        assert x.per_request_ns() < docker.per_request_ns()


class TestCluster:
    @pytest.fixture(scope="class")
    def results(self):
        return LoadBalancedCluster().measure_all()

    def test_fig9_ladder(self, results):
        """Fig 9's ordering: docker-haproxy < X-haproxy < ipvs NAT <
        ipvs DR."""
        order = [
            "docker-haproxy",
            "xcontainer-haproxy",
            "xcontainer-ipvs-nat",
            "xcontainer-ipvs-dr",
        ]
        values = [results[name].throughput_rps for name in order]
        assert values == sorted(values)

    def test_x_haproxy_roughly_doubles_docker(self, results):
        """§5.7: 'X-Containers with HAProxy achieved twice the
        throughput of Docker containers'."""
        ratio = (
            results["xcontainer-haproxy"].throughput_rps
            / results["docker-haproxy"].throughput_rps
        )
        assert 1.7 <= ratio <= 2.4

    def test_nat_improves_on_haproxy_modestly(self, results):
        """§5.7: 'IPVS kernel level load balancing ... further improve
        throughput by 12%'."""
        ratio = (
            results["xcontainer-ipvs-nat"].throughput_rps
            / results["xcontainer-haproxy"].throughput_rps
        )
        assert 1.05 <= ratio <= 1.35

    def test_dr_multiplies_nat(self, results):
        """§5.7: 'total throughput improved by another factor of 2.5'."""
        ratio = (
            results["xcontainer-ipvs-dr"].throughput_rps
            / results["xcontainer-ipvs-nat"].throughput_rps
        )
        assert 2.0 <= ratio <= 3.0

    def test_dr_shifts_bottleneck_to_backends(self, results):
        """§5.7: 'With direct routing mode, the bottleneck shifted to
        the NGINX servers'."""
        assert results["xcontainer-ipvs-nat"].bottleneck == "director"
        assert results["xcontainer-ipvs-dr"].bottleneck == "backends"

    def test_docker_cannot_use_ipvs(self):
        assert LoadBalancedCluster().docker_cannot_use_ipvs()

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            LoadBalancedCluster().measure("podman-haproxy")
