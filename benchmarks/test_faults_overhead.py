"""Bench: the fault-injection hooks are free when injection is off.

Threading :mod:`repro.faults` through the substrates added one guard
(``self.faults is not None``) to each hot path.  Two claims pinned here:

* the guard costs <2% of the cheapest hot path it sits on (the netfront
  transmit — everything else is more expensive per occurrence);
* with injection disabled the *simulated* results are not merely close
  but byte-identical: same per-op costs, same clock, same stats, whether
  ``faults`` is ``None`` or an armed engine whose plan never matches.

The wall-time comparison uses min-of-rounds on both sides so scheduler
noise cannot fail the build, and over-counts the guards 2x for slack
(the happy transmit path evaluates exactly one).
"""

import time

from repro.faults import sites
from repro.faults.plan import FaultPlan, FaultSpec, Nth
from repro.guest.netstack import NetDevice, NetStack
from repro.xen.drivers import SplitNetDriver
from repro.xen.events import EventChannelTable
from repro.xen.hypervisor import DomainKind, XenHypervisor

#: Guards charged per transmit in the cost model below; the real happy
#: path evaluates one (see ``SplitNetDriver._transmit_once``).
GUARDS_PER_OP = 2

TRANSMITS = 2000


def _min_time(fn, rounds=7):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _driver(faults=None):
    xen = XenHypervisor()
    guest = xen.create_domain("guest")
    backend = xen.create_domain("backend", DomainKind.DRIVER)
    events = EventChannelTable(xen.costs, xen.clock)
    return xen, SplitNetDriver(
        guest, backend, xen.grants, events, xen.costs, xen.clock,
        faults=faults,
    )


def _never_matching_engine():
    """Armed engine whose only spec targets a site the driver never
    fires — the strictest 'enabled but idle' configuration."""
    return FaultPlan(
        (FaultSpec(sites.TOOLSTACK_SPAWN, "timeout", Nth(1)),), 0
    ).compile()


def test_disabled_hook_guard_cost_under_two_percent(benchmark, record_rate):
    _, driver = _driver()

    def transmits():
        for _ in range(TRANSMITS):
            driver.transmit(1000)
        return TRANSMITS

    ops = benchmark(transmits)
    transmit_s = _min_time(transmits)

    def guards():
        for _ in range(TRANSMITS * GUARDS_PER_OP):
            if driver.faults is not None:
                pass

    def loop_only():
        for _ in range(TRANSMITS * GUARDS_PER_OP):
            pass

    guard_s = max(0.0, _min_time(guards) - _min_time(loop_only))
    overhead = guard_s / transmit_s
    assert overhead < 0.02, (
        f"disabled fault hooks cost {overhead:.2%} of the transmit path"
    )
    record_rate(
        benchmark, ops, disabled_hook_overhead=round(overhead, 5)
    )


def test_disabled_hooks_leave_driver_results_identical():
    xen_off, off = _driver(faults=None)
    xen_idle, idle = _driver(faults=_never_matching_engine())
    for nbytes in (0, 1, 64, 1500, 65536):
        assert off.transmit(nbytes) == idle.transmit(nbytes)
    assert xen_off.clock.now_ns == xen_idle.clock.now_ns
    assert off.stats == idle.stats
    assert idle.faults.totals().injected == 0


def test_disabled_hooks_leave_netstack_results_identical():
    off = NetStack(device=NetDevice.NETFRONT)
    idle = NetStack(
        device=NetDevice.NETFRONT, faults=_never_matching_engine()
    )
    for _ in range(50):
        assert off.request_response_cost_ns(
            120, 1100
        ) == idle.request_response_cost_ns(120, 1100)
    assert off.stats == idle.stats
