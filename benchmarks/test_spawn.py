"""Bench: regenerate the §4.5 spawn-time numbers."""

from repro.experiments import spawn


def test_spawn_times(once):
    result = once(spawn.run)
    print()
    print(result.format_table())
    xl = result.value("x-container (xl toolstack)", "total_ms")
    assert 2900 < xl < 3100  # "~3 seconds"
    assert result.value("x-container (xl toolstack)", "boot_ms") == 180.0
    light = result.value("x-container (lightvm toolstack)", "total_ms")
    assert light < 200
