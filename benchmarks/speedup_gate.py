"""CI gate on library-benchmark speedups vs the frozen seed baseline.

Reads ``BENCH_interpreter.json`` (written by the library benchmarks via
``benchmarks/conftest.py``), renders a markdown speedup table — appended
to the GitHub Actions step summary when ``$GITHUB_STEP_SUMMARY`` is set,
printed to stdout otherwise — and exits non-zero if any
``speedup_vs_seed`` entry drops below the threshold (default 0.9), or
if a regression-gated benchmark falls below ``--best-ratio`` (default
0.9) of its recorded best ops/sec (the ``best_ops_per_sec`` high-water
marks the conftest maintains across runs).

Usage::

    python benchmarks/speedup_gate.py [--json PATH] [--threshold 0.9]
                                      [--best-ratio 0.9]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_interpreter.json"

#: Benchmarks additionally gated against their recorded best (not just
#: the frozen seed): a tentpole optimization must not quietly erode.
REGRESSION_GATED = (
    "test_interpreter_instruction_rate",
    "test_serve_fleet_request_rate",
    "test_fleet_scale_1000",
)


def render_table(payload: dict, threshold: float) -> tuple[str, list[str]]:
    """Build the markdown table; returns (markdown, failing benchmark names)."""
    baseline = payload.get("seed_baseline", {})
    results = payload.get("results", {})
    speedups = payload.get("speedup_vs_seed", {})
    lines = [
        "## Library benchmark speedups vs seed",
        "",
        "| benchmark | seed ops/s | current ops/s | speedup | status |",
        "|---|---:|---:|---:|---|",
    ]
    failing = []
    for name, speedup in sorted(speedups.items()):
        seed = baseline.get(name) or {}
        seed_ops = seed.get("ops_per_sec")
        cur_ops = results.get(name, {}).get("ops_per_sec")
        cur_text = f"{cur_ops:,}" if cur_ops is not None else "—"
        if speedup is None:
            # Explicit null baseline: reported, never gated.
            lines.append(
                f"| `{name}` | — | {cur_text} | n/a | ➖ no seed baseline |"
            )
            continue
        ok = speedup >= threshold
        if not ok:
            failing.append(name)
        lines.append(
            f"| `{name}` | {seed_ops:,} | {cur_text} | {speedup:.2f}x "
            f"| {'✅' if ok else f'❌ below {threshold}'} |"
        )
    ablation = results.get("test_ring_batch_ablation", {}).get(
        "ablation_ns_per_desc"
    )
    if ablation:
        lines += [
            "",
            "### Ring batch-size ablation (host ns/descriptor)",
            "",
            "| batch size | ns/descriptor |",
            "|---:|---:|",
        ]
        lines += [
            f"| {size} | {ns:,} |" for size, ns in ablation.items()
        ]
    return "\n".join(lines) + "\n", failing


def regression_failures(
    payload: dict, ratio: float
) -> list[tuple[str, int, int]]:
    """Gated benchmarks below ``ratio`` × their recorded best ops/sec."""
    best = payload.get("best_ops_per_sec", {})
    results = payload.get("results", {})
    failing = []
    for name in REGRESSION_GATED:
        best_ops = best.get(name)
        cur_ops = results.get(name, {}).get("ops_per_sec")
        if best_ops and cur_ops and cur_ops < ratio * best_ops:
            failing.append((name, cur_ops, best_ops))
    return failing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    parser.add_argument("--threshold", type=float, default=0.9)
    parser.add_argument("--best-ratio", type=float, default=0.9)
    args = parser.parse_args(argv)

    if not args.json.exists():
        print(f"speedup gate: {args.json} not found — did the library "
              f"benchmarks run?", file=sys.stderr)
        return 2
    payload = json.loads(args.json.read_text())
    table, failing = render_table(payload, args.threshold)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table)
    print(table)

    regressions = regression_failures(payload, args.best_ratio)
    if failing:
        print(
            f"speedup gate FAILED: {len(failing)} benchmark(s) below "
            f"{args.threshold}x seed: {', '.join(failing)}",
            file=sys.stderr,
        )
        return 1
    if regressions:
        for name, cur_ops, best_ops in regressions:
            print(
                f"regression gate FAILED: {name} at {cur_ops:,} ops/s, "
                f"below {args.best_ratio}x of recorded best {best_ops:,}",
                file=sys.stderr,
            )
        return 1
    print(
        f"speedup gate passed (threshold {args.threshold}x seed, "
        f"regression {args.best_ratio}x best)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
