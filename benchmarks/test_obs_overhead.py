"""Bench: telemetry costs <2% on the functional HTTP request path.

The registry observes the substrates through lazy bindings — hot paths
keep mutating their own stat structs and the registry reads them at
collect time, so bound instruments are free by construction.  What DOES
run per request when a :class:`repro.obs.Telemetry` is attached to
:class:`FunctionalWrk` is:

* two ``self.telemetry is not None`` guards,
* one ``http.request`` span (two clock reads + record), and
* one latency ``Histogram.observe``.

The span and histogram only run for callers who opted in; the gate is
on what every *un-instrumented* request now pays: the guards.  Two
claims pinned here, mirroring ``test_faults_overhead``:

* with no telemetry attached, the added guards cost <2% of one
  whole-stack HTTP request (connect, parse, RamFS read, respond) —
  this is the CI overhead gate for ``test_functional_http_request_rate``;
* the *simulated* results are byte-identical with telemetry on or off:
  same latency samples, same simulated clock, same throughput — even
  with exports taken mid-run.

The opt-in instrument cost (span + observe per request) is measured and
recorded alongside the benchmark for trending, but not gated: a span is
real work the caller asked for, priced in wall time, never in simulated
time.  Wall-time uses min-of-rounds on both sides so scheduler noise
cannot fail the build.
"""

import time

from repro.obs import Telemetry
from repro.perf.clock import SimClock
from repro.workloads.wrk_functional import FunctionalWrk

#: Guards charged per request in the cost model below; ``run()``
#: evaluates one before the request and one after (see
#: ``FunctionalWrk.run``).
GUARDS_PER_OP = 2

REQUESTS = 500


def _min_time(fn, rounds=7):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead_under_two_percent(benchmark, record_rate):
    wrk = FunctionalWrk()

    def requests():
        for _ in range(REQUESTS):
            status, _body = wrk.client.get(("10.0.0.1", 80), wrk.path)
            assert status == 200
        return REQUESTS

    ops = benchmark(requests)
    request_s = _min_time(requests)

    def loop_only():
        for _ in range(REQUESTS * GUARDS_PER_OP):
            pass

    # What every request pays now: the telemetry-is-attached guards.
    def guards():
        for _ in range(REQUESTS * GUARDS_PER_OP):
            if wrk.telemetry is not None:
                pass

    guard_s = max(0.0, _min_time(guards) - _min_time(loop_only))
    overhead = guard_s / request_s
    assert overhead < 0.02, (
        f"telemetry guards cost {overhead:.2%} of the HTTP request path"
    )

    # What opted-in callers pay: one span + one observe per request.
    # Informational only — it is work the caller asked for.
    tel = Telemetry(clock=SimClock())
    hist = tel.histogram("net_http_request_latency_ns")

    def instruments():
        for _ in range(REQUESTS):
            with tel.span("http.request", path="/index.html"):
                pass
            hist.observe(123456.0)

    instrument_s = max(
        0.0, _min_time(instruments) - _min_time(loop_only)
    )
    record_rate(
        benchmark,
        ops,
        telemetry_overhead=round(overhead, 5),
        opt_in_instrument_overhead=round(instrument_s / request_s, 5),
    )


def test_wired_telemetry_leaves_http_results_identical():
    def run(wired):
        tel = Telemetry(clock=SimClock()) if wired else None
        wrk = FunctionalWrk(
            clock=tel.clock if wired else None, telemetry=tel
        )
        first = wrk.run(40)
        if wired:
            tel.snapshot()  # exports mid-run are pure reads
            tel.prometheus_text()
        second = wrk.run(10)
        return (
            first.requests,
            first.errors,
            round(first.duration_ms, 9),
            round(first.throughput_rps, 9),
            tuple(first.latency_us.samples),
            tuple(second.latency_us.samples),
            wrk.clock.now_ns,
        )

    assert run(wired=True) == run(wired=False)


def test_wired_telemetry_records_what_it_observed():
    tel = Telemetry(clock=SimClock())
    wrk = FunctionalWrk(clock=tel.clock, telemetry=tel)
    report = wrk.run(25)
    snap = tel.snapshot()
    assert report.errors == 0
    assert snap["histograms"]["net_http_request_latency_ns"]["count"] == 25
    assert snap["spans"]["by_name"]["http.request"]["count"] == 25
    assert tel.value("net_http_requests_total") == 25
