"""Bench: regenerate Figure 4 (relative syscall throughput, 4 panels).

This one executes real machine code: the UnixBench System Call loop runs
on the CPU interpreter through each configuration's syscall path, with
real ABOM patching for the X-Container rows.
"""

from repro.experiments import fig4_syscall


def test_fig4_syscall_throughput(once):
    result = once(fig4_syscall.run)
    print()
    print(result.format_table())
    best = max(result.value("x-container", c) for c in result.columns)
    assert best > 20  # "up to 27x" (§5.4)
    for column in result.columns:
        assert 0.05 <= result.value("gvisor", column) <= 0.11  # 7-9 %
