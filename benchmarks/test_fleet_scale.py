"""Bench: fleet-scale sweep through the hybrid execution core.

The Fig-8 story at benchmark scale: boot 10 / 100 / 1000 real
X-Container domains (each one an interpreted guest parked in ``hlt``),
post two sparse work waves across a 100-second simulated window, and
run the sweep under both engines.  The stepped oracle visits every
domain on every millisecond tick — O(domains × ticks) wall-clock for a fleet
that is idle almost all the time; the hybrid engine fast-forwards
between wake events and its wall cost tracks the work actually done.

Asserted here (and regression-gated in ``speedup_gate.py``):

* hybrid and stepped snapshots are byte-identical at every fleet size;
* hybrid is >= 10x faster than stepped at 1000 domains.

``ops_per_sec`` for the gate is domains swept per wall second through
the full hybrid 1000-domain run (spawn + post + execute).
"""

import time

from repro.core.engine import ExecutionEngine

#: Simulated sweep window: 100 000 one-ms ticks, two wake waves.  The
#: window is sized so the structural speedup (~40x unloaded) clears the
#: 10x gate with margin even when the suite shares the machine.
SWEEP_TICKS = 100_000
WAKE_WAVES = 2
#: Light per-unit spin keeps the guest burst a handful of instructions —
#: the sweep is quiescent-heavy by design (that is the workload the
#: hybrid engine exists for).
SPIN = 4

#: The acceptance floor for hybrid vs stepped wall-clock at 1000 domains.
MIN_SPEEDUP_1000 = 10.0

FLEET_SIZES = (10, 100, 1000)


def _build(hybrid: bool, n: int) -> ExecutionEngine:
    engine = ExecutionEngine(hybrid=hybrid, spin=SPIN)
    for _ in range(n):
        engine.spawn()
    for wave in range(WAKE_WAVES):
        for domid in range(n):
            engine.post_work(
                domid,
                1,
                at_ns=((wave + 1) * SWEEP_TICKS // 3 + domid % 50) * 1e6,
            )
    return engine


def _timed_run(hybrid: bool, n: int) -> tuple[ExecutionEngine, float]:
    engine = _build(hybrid, n)
    t0 = time.perf_counter()
    engine.run_until(SWEEP_TICKS * 1e6)
    return engine, time.perf_counter() - t0


def test_fleet_scale_1000(once, record_rate, benchmark):
    sweep = {}
    for n in FLEET_SIZES:
        hybrid_eng, hybrid_s = _timed_run(True, n)
        stepped_eng, stepped_s = _timed_run(False, n)
        assert hybrid_eng.snapshot() == stepped_eng.snapshot(), (
            f"hybrid/stepped divergence at {n} domains"
        )
        assert hybrid_eng.total_completed() == n * WAKE_WAVES
        assert hybrid_eng.n_parked == n
        sweep[str(n)] = {
            "hybrid_s": round(hybrid_s, 4),
            "stepped_s": round(stepped_s, 4),
            "speedup": round(stepped_s / hybrid_s, 2),
        }
    speedup_1000 = sweep["1000"]["speedup"]
    assert speedup_1000 >= MIN_SPEEDUP_1000, (
        f"hybrid only {speedup_1000}x faster than stepped at 1000 domains"
    )

    # The gated number: domains/sec through the full hybrid 1000-domain
    # sweep, timed by the benchmark harness (spawn + post + execute).
    def full_run():
        engine = _build(True, 1000)
        engine.run_until(SWEEP_TICKS * 1e6)
        return engine

    engine = once(full_run)
    assert engine.total_completed() == 1000 * WAKE_WAVES
    record_rate(
        benchmark,
        1000,
        sweep=sweep,
        speedup_vs_stepped_1000=speedup_1000,
    )
