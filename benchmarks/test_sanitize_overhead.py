"""Bench: disabled sanitizer hooks cost <2% on the functional HTTP path.

The sanitizer suite observes the substrates through the same pattern as
telemetry: every instrumented operation pays one ``self.sanitizer is not
None`` guard, and the checker work behind the guard only runs for
callers who attached a :class:`repro.sanitize.SanitizerSuite`.  The gate
here is on what every *un-sanitized* run now pays: the guards.

``GUARDS_PER_OP`` prices one whole-stack request generously.  A
16-descriptor transmit train evaluates the guard at batch start, once
per descriptor publish, at the kick, and on the backend reap/event
delivery path; grant map/copy/unmap each add one.  Twenty-four guards
per request over-counts the real functional path (which keeps its
descriptor trains shorter), so the 2% bound holds with margin.

Two claims pinned, mirroring ``test_obs_overhead``:

* with no suite attached, ``GUARDS_PER_OP`` attribute-test guards cost
  <2% of one whole-stack HTTP request (connect, parse, RamFS read,
  respond);
* the enabled-hook cost (vector-clock stamping per ring publish) is
  measured and recorded for trending but not gated — checking is work
  the caller asked for, and neutrality of the *simulated* numbers is
  pinned separately in ``tests/sanitize/test_neutrality.py``.

Wall-time uses min-of-rounds on both sides so scheduler noise cannot
fail the build.
"""

import time

from repro.perf.clock import SimClock
from repro.sanitize import SanitizerSuite
from repro.workloads.wrk_functional import FunctionalWrk
from repro.xen.drivers import SplitNetDriver
from repro.xen.events import EventChannelTable
from repro.xen.hypervisor import DomainKind, XenHypervisor

#: Sanitizer guards charged per request in the cost model: batch start +
#: 16 descriptor publishes + kick + reap/delivery + grant lifecycle.
GUARDS_PER_OP = 24

REQUESTS = 500


def _min_time(fn, rounds=7):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _net_driver(suite=None):
    clock = SimClock()
    xen = XenHypervisor(clock=clock)
    if suite is not None:
        xen.grants.sanitizer = suite
    guest = xen.create_domain("guest")
    backend = xen.create_domain("backend", DomainKind.DRIVER)
    events = EventChannelTable(xen.costs, clock, sanitizer=suite)
    return SplitNetDriver(
        guest, backend, xen.grants, events, xen.costs, clock,
        sanitizer=suite,
    )


def test_sanitizer_overhead_under_two_percent(benchmark, record_rate):
    wrk = FunctionalWrk()
    net = _net_driver()
    assert net.sanitizer is None

    def requests():
        for _ in range(REQUESTS):
            status, _body = wrk.client.get(("10.0.0.1", 80), wrk.path)
            assert status == 200
        return REQUESTS

    ops = benchmark(requests)
    request_s = _min_time(requests)

    def loop_only():
        for _ in range(REQUESTS * GUARDS_PER_OP):
            pass

    # What every request pays now: the sanitizer-is-attached guards,
    # evaluated against the real attribute on a real driver.
    def guards():
        for _ in range(REQUESTS * GUARDS_PER_OP):
            if net.sanitizer is not None:
                pass

    guard_s = max(0.0, _min_time(guards) - _min_time(loop_only))
    overhead = guard_s / request_s
    assert overhead < 0.02, (
        f"sanitizer guards cost {overhead:.2%} of the HTTP request path"
    )

    # What opted-in callers pay: one ring publish stamped through the
    # vector-clock detector.  Informational only.
    suite = SanitizerSuite()
    name = suite.ring_register("bench", 1 << 30, 16)
    suite.ring_batch_start(name, "frontend")

    def checker_work():
        for _ in range(REQUESTS):
            suite.ring_publish(name, "frontend")

    checker_s = max(0.0, _min_time(checker_work) - _min_time(loop_only))
    record_rate(
        benchmark,
        ops,
        sanitizer_overhead=round(overhead, 5),
        opt_in_checker_overhead=round(checker_s / request_s, 5),
    )


def test_sanitized_driver_costs_identical():
    """Simulated transmit costs are byte-identical with the suite on."""

    def run(suite):
        net = _net_driver(suite)
        costs = [
            net.transmit_batch([1500] * 16) for _ in range(20)
        ]
        net.close()
        if suite is not None:
            suite.finish()
            assert suite.findings == []
        return (
            tuple(costs),
            net.clock.now_ns,
            net.stats.requests,
            net.stats.bytes_moved,
        )

    assert run(SanitizerSuite()) == run(None)
