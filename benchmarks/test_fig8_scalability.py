"""Bench: regenerate Figure 8 (scalability to 400 containers)."""

from repro.experiments import fig8_scalability


def test_fig8_scalability(once):
    result = once(fig8_scalability.run)
    print()
    print(result.format_table())
    # Crossover: Docker wins at 100, X wins at 400 by ~18 %.
    assert result.value("100", "docker") > result.value(
        "100", "x-container"
    )
    ratio = result.value("400", "x-container") / result.value(
        "400", "docker"
    )
    assert 1.1 < ratio < 1.3
    assert result.value("300", "xen-pv") is None
    assert result.value("250", "xen-hvm") is None
