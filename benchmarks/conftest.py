"""Benchmark harness configuration.

Every figure benchmark regenerates one of the paper's tables/figures and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
whole evaluation section.  Experiments are deterministic simulations; each
is run once per benchmark round.

The library benchmarks additionally record their throughput (ops/sec) and
decode-cache hit rates via the ``record_rate`` fixture; at session end the
collected numbers are written to ``BENCH_interpreter.json`` at the repo
root, next to the frozen pre-cache seed baseline, so before/after is one
file diff.
"""

import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_JSON = _REPO_ROOT / "BENCH_interpreter.json"

#: Library-benchmark results collected this session, keyed by test name.
_RESULTS: dict[str, dict] = {}

#: Numbers measured at the pre-decode-cache seed (commit 6c3bbca), same
#: machine class as CI: the "before" column for every later run.
SEED_BASELINE = {
    "test_interpreter_instruction_rate": {
        "mean_s": 0.10776,
        "ops_per_round": 6002,
        "ops_per_sec": 55_697,
    },
    "test_syscall_dispatch_rate": {
        "mean_s": 0.03556,
        "ops_per_round": 500,
        "ops_per_sec": 14_061,
    },
    "test_abom_patch_rate": {
        "mean_s": 0.001216,
        "ops_per_round": 100,
        "ops_per_sec": 82_237,
    },
    "test_functional_http_request_rate": {
        "mean_s": 3.86e-05,
        "ops_per_round": 1,
        "ops_per_sec": 25_907,
    },
    # These benchmarks postdate the seed freeze, so no "before" number
    # exists; the explicit null keeps speedup coverage aligned with the
    # results section instead of silently omitting them.
    "test_e2e_http_throughput": None,
    "test_ring_batch_ablation": None,
    "test_serve_fleet_request_rate": None,
    "test_fleet_scale_1000": None,
}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result (the experiments are deterministic; repeated rounds only
    re-measure harness time)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner


def _mean_seconds(benchmark):
    """Best-effort mean round time; None under --benchmark-disable."""
    for probe in ("stats.stats.mean", "stats.mean"):
        obj = benchmark
        try:
            for attr in probe.split("."):
                obj = getattr(obj, attr)
            return float(obj)
        except (AttributeError, TypeError, ValueError):
            continue
    return None


@pytest.fixture
def record_rate(request):
    """Record a library benchmark's throughput for BENCH_interpreter.json.

    ``record_rate(benchmark, ops_per_round, icache=...)`` — call after the
    timed run; ops/sec is derived from the benchmark's mean round time.
    """

    def record(benchmark, ops_per_round, **extra):
        mean = _mean_seconds(benchmark)
        entry = {
            "mean_s": mean,
            "ops_per_round": ops_per_round,
            "ops_per_sec": round(ops_per_round / mean) if mean else None,
        }
        entry.update(extra)
        _RESULTS[request.node.name] = entry

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    baseline = {
        name: dict(values) if values is not None else None
        for name, values in SEED_BASELINE.items()
    }
    speedups = {}
    for name, entry in _RESULTS.items():
        baseline.setdefault(name, None)
        seed = baseline[name]
        if seed and entry.get("ops_per_sec"):
            speedups[name] = round(
                entry["ops_per_sec"] / seed["ops_per_sec"], 2
            )
        else:
            # Explicit null: every result row has a speedup entry, even
            # when there is no seed to compare against.
            speedups[name] = None
    # High-water marks for the regression gate (speedup_gate.py): keep
    # the best ops/sec ever recorded for each benchmark.
    best: dict[str, int] = {}
    if _BENCH_JSON.exists():
        try:
            previous = json.loads(_BENCH_JSON.read_text())
            best = {
                name: value
                for name, value in previous.get("best_ops_per_sec", {}).items()
                if isinstance(value, (int, float))
            }
        except (ValueError, OSError):
            best = {}
    for name, entry in _RESULTS.items():
        ops = entry.get("ops_per_sec")
        if ops:
            best[name] = max(best.get(name, 0), ops)
    payload = {
        "generated_by": "benchmarks/test_library_perf.py",
        "seed_baseline": baseline,
        "results": _RESULTS,
        "speedup_vs_seed": speedups,
        "best_ops_per_sec": dict(sorted(best.items())),
    }
    _BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
