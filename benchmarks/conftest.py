"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the whole
evaluation section.  Experiments are deterministic simulations; each is
run once per benchmark round.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result (the experiments are deterministic; repeated rounds only
    re-measure harness time)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
