"""Bench: regenerate Figure 3 (macrobenchmarks, EC2 + GCE, 10 configs)."""

from repro.experiments import fig3_macro


def test_fig3_macrobenchmarks(once):
    throughput, latency = once(fig3_macro.run)
    print()
    print(throughput.format_table())
    print()
    print(latency.format_table())
    # Headline shapes.
    assert throughput.value("x-container", "amazon/memcached") > 2.0
    assert 1.1 < throughput.value("x-container", "amazon/nginx") < 1.6
    assert throughput.value("gvisor", "google/memcached") < 0.4
    assert latency.value("gvisor", "google/memcached") > 2.0
