"""Bench: regenerate Table 1 (ABOM syscall reduction, 12 applications)."""

from repro.experiments import table1


def test_table1_abom_reduction(once):
    result = once(table1.run)
    print()
    print(result.format_table())
    # Every measured value must equal the paper's column (Table 1 is the
    # one artifact we reproduce exactly, not just in shape).
    for row in result.rows:
        assert row.values["measured"] == row.values["paper"], row.label
    assert result.value("mysql", "measured-offline") == "92.2%"
