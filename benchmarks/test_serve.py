"""Bench: serving-fleet request throughput (simulated + wall-clock).

``ops_per_sec`` here is wall-clock: completed requests divided by the
engine's real run time — the number the regression gate watches so the
sharded control loop never quietly slows down.  ``simulated_rps`` (the
fleet's in-model throughput) rides along as an extra column.
"""

from repro.serve import run_serve


def test_serve_fleet_request_rate(once, record_rate, benchmark):
    report = once(lambda: run_serve("ci-small", seed=0, workers=1))
    result = report.result
    assert result.slo_ok
    assert result.conservation_ok
    record_rate(
        benchmark,
        result.completed,
        simulated_rps=round(result.simulated_rps, 1),
    )
