"""Library performance benchmarks (real wall time, multiple rounds).

Unlike the figure benchmarks — which regenerate *simulated* results once —
these measure the library's own speed: interpreter throughput with and
without the basic-block decode cache, ABOM patch rate, syscall dispatch,
and the functional HTTP stack.  Useful for catching performance
regressions in the reproduction itself.  Each benchmark records its
ops/sec (and cache hit rate where applicable) into
``BENCH_interpreter.json`` via the ``record_rate`` fixture.
"""

from repro.arch import Assembler, CPU, PagedMemory, Reg
from repro.arch.memory import PageFlags
from repro.core import CountingServices, XContainer
from repro.core.abom import ABOM
from repro.guest.kernel import GuestKernel
from repro.guest.socket import VirtualNetwork
from repro.workloads.http import HttpClient, StaticHttpServer


def _counting_binary():
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, 2000)
    asm.label("loop")
    asm.inc(Reg.RAX)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build()


def _loaded_memory(binary):
    memory = PagedMemory()
    binary.load(memory)
    memory.map_region(0x7F0000, 0x1000, PageFlags.USER | PageFlags.WRITABLE)
    return memory


def test_interpreter_instruction_rate(benchmark, record_rate):
    """Plain instruction dispatch, no syscalls (decode cache on)."""
    binary = _counting_binary()
    memory = _loaded_memory(binary)
    last = {}

    def run():
        cpu = CPU(memory)
        cpu.regs.rip = binary.entry
        cpu.regs.rsp = 0x7F0F00
        cpu.run()
        last["cpu"] = cpu
        return cpu.instructions_retired

    retired = benchmark(run)
    assert retired > 6000
    record_rate(
        benchmark,
        retired,
        icache=last["cpu"].icache_stats.as_dict(),
        trace=last["cpu"].trace_stats.as_dict(),
    )


def test_interpreter_instruction_rate_notrace(benchmark, record_rate):
    """Ablation: decode cache on, trace cache off — isolates the win
    from superblock compilation over per-instruction dispatch."""
    binary = _counting_binary()
    memory = _loaded_memory(binary)
    last = {}

    def run():
        cpu = CPU(memory, tracecache=False)
        cpu.regs.rip = binary.entry
        cpu.regs.rsp = 0x7F0F00
        cpu.run()
        last["cpu"] = cpu
        return cpu.instructions_retired

    retired = benchmark(run)
    assert retired > 6000
    record_rate(
        benchmark,
        retired,
        icache=last["cpu"].icache_stats.as_dict(),
        trace=None,
    )


def test_interpreter_instruction_rate_uncached(benchmark, record_rate):
    """Same program with ``icache=False``: the before/after control."""
    binary = _counting_binary()
    memory = _loaded_memory(binary)

    def run():
        cpu = CPU(memory, icache=False)
        cpu.regs.rip = binary.entry
        cpu.regs.rsp = 0x7F0F00
        cpu.run()
        return cpu.instructions_retired

    retired = benchmark(run)
    assert retired > 6000
    record_rate(benchmark, retired, icache=None)


def test_abom_patch_rate(benchmark, record_rate):
    """Patching throughput over fresh sites each round."""
    def run():
        memory = PagedMemory()
        memory.map_region(
            0x400000, 0x10000, PageFlags.USER | PageFlags.EXECUTABLE
        )
        memory.wp_enabled = False
        for index in range(100):
            addr = 0x400000 + index * 16
            memory.write(
                addr, b"\xb8" + (index % 200).to_bytes(4, "little")
                + b"\x0f\x05"
            )
        memory.wp_enabled = True
        abom = ABOM(memory)
        for index in range(100):
            assert abom.try_patch(0x400000 + index * 16 + 5)
        return abom.stats.total_patches

    patches = benchmark(run)
    assert patches == 100
    record_rate(benchmark, patches)


def test_syscall_dispatch_rate(benchmark, record_rate):
    """Full converted-syscall round trips through the LibOS stub."""
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, 500)
    asm.label("loop")
    asm.syscall_site(39)
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build()
    last = {}

    def run():
        xc = XContainer(CountingServices())
        xc.run(binary)
        last["xc"] = xc
        return xc.libos.stats.total_syscalls

    total = benchmark(run)
    assert total == 500
    tel = last["xc"].telemetry()
    # Counters are integers: int() the registry reads (collection
    # returns floats) so the JSON never reports "hits": 1499.0.
    record_rate(
        benchmark,
        total,
        icache={
            "hits": int(tel.value("arch_icache_hits_total")),
            "misses": int(tel.value("arch_icache_misses_total")),
            "invalidations": int(tel.value("arch_icache_invalidations_total")),
        },
        trace={
            "compiles": int(tel.value("arch_trace_compiles_total")),
            "executions": int(tel.value("arch_trace_executions_total")),
            "instructions": int(tel.value("arch_trace_instructions_total")),
            "guard_exits": int(tel.value("arch_trace_guard_exits_total")),
            "invalidations": int(tel.value("arch_trace_invalidations_total")),
        },
    )


def test_functional_http_request_rate(benchmark, record_rate):
    """Whole-stack request: connect, parse, serve from RamFS, respond."""
    network = VirtualNetwork()
    server = StaticHttpServer(GuestKernel(), network)
    server.publish("/page", b"x" * 2048)
    client = HttpClient(GuestKernel(), network, server.handle_one)

    def run():
        status, body = client.get(("10.0.0.1", 80), "/page")
        assert status == 200
        return len(body)

    size = benchmark(run)
    assert size == 2048
    record_rate(benchmark, 1, response_bytes=size)


def test_e2e_http_throughput(benchmark, record_rate):
    """End-to-end throughput: 100 keep-alive requests per round through
    the full functional stack (client socket → virtual network → server
    parse → RamFS-backed response cache → client parse)."""
    network = VirtualNetwork()
    server = StaticHttpServer(GuestKernel(), network)
    server.publish("/page", b"x" * 2048)
    client = HttpClient(GuestKernel(), network, server.handle_one)
    rounds = 100

    def run():
        ok = 0
        for _ in range(rounds):
            status, _body = client.get(("10.0.0.1", 80), "/page")
            ok += status == 200
        return ok

    ok = benchmark(run)
    assert ok == rounds
    record_rate(
        benchmark,
        rounds,
        connections=network.connections,
    )


def test_ring_batch_ablation(benchmark, record_rate):
    """Batched ring push/reap throughput, plus a batch-size ablation.

    The timed benchmark drives 32-descriptor trains; the ablation sweep
    measures host-Python wall time per descriptor at several batch sizes
    and lands in ``BENCH_interpreter.json`` so the batching win (and its
    knee) is tracked run over run.
    """
    import time

    from repro.xen.drivers import SplitNetDriver
    from repro.xen.events import EventChannelTable
    from repro.xen.hypervisor import DomainKind, XenHypervisor

    def make_driver():
        xen = XenHypervisor()
        guest = xen.create_domain("guest")
        backend = xen.create_domain("backend", DomainKind.DRIVER)
        events = EventChannelTable(xen.costs, xen.clock)
        return SplitNetDriver(
            guest, backend, xen.grants, events, xen.costs, xen.clock
        )

    driver = make_driver()
    batch = [1500] * 32

    def run():
        driver.transmit_batch(batch)
        return len(batch)

    pushed = benchmark(run)
    assert pushed == 32

    ablation = {}
    for size in (1, 2, 4, 8, 16, 32, 64):
        sweep_driver = make_driver()
        train = [1500] * size
        descs = 0
        start = time.perf_counter()
        while descs < 4096:
            sweep_driver.transmit_batch(train)
            descs += size
        elapsed = time.perf_counter() - start
        ablation[str(size)] = round(elapsed / descs * 1e9)  # ns/descriptor
    record_rate(
        benchmark,
        32,
        ablation_ns_per_desc=ablation,
        kicks_saved=driver.stats.kicks_saved,
        avg_batch_size=driver.stats.avg_batch_size,
    )
