"""Bench: regenerate Figure 6 (Graphene / Unikernel / X-Container)."""

from repro.experiments import fig6_libos


def test_fig6_libos_comparison(once):
    panels = once(fig6_libos.run)
    print()
    by_id = {}
    for panel in panels:
        print(panel.format_table())
        print()
        by_id[panel.experiment] = panel
    a, b, c = by_id["fig6a"], by_id["fig6b"], by_id["fig6c"]
    assert a.value("X", "throughput_rps") > 1.7 * a.value(
        "G", "throughput_rps"
    )
    assert b.value("X", "throughput_rps") > 1.5 * b.value(
        "G", "throughput_rps"
    )
    assert c.value("X", "dedicated&merged") > 2.5 * c.value(
        "U", "dedicated"
    )
