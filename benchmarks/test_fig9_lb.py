"""Bench: regenerate Figure 9 (kernel-level load balancing)."""

from repro.experiments import fig9_lb


def test_fig9_load_balancing(once):
    result = once(fig9_lb.run)
    print()
    print(result.format_table())
    values = [row.values["throughput_rps"] for row in result.rows]
    assert values == sorted(values)  # the Fig 9 ladder
    docker, hap, nat, dr = values
    assert 1.7 < hap / docker < 2.4  # "twice the throughput"
    assert 1.05 < nat / hap < 1.35  # "+12%"
    assert 2.0 < dr / nat < 3.0  # "another factor of 2.5"
