"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation turns OFF one mechanism from §4 and measures what it was
buying — the quantitative version of the paper's design arguments.
"""

from dataclasses import replace

from repro.cloud.instances import EC2
from repro.perf.costs import CostModel
from repro.platforms import DockerPlatform, XContainerPlatform
from repro.workloads.base import ServerModel
from repro.workloads.profiles import MEMCACHED
from repro.workloads.unixbench import build_syscall_bench


def test_ablation_abom_conversion(once):
    """§4.4: what does converting syscalls into function calls buy?

    ABOM off leaves every syscall on the (already cheap) forwarded path;
    ABOM on converts them.  The delta is the paper's headline mechanism.
    """

    def run():
        binary = build_syscall_bench(800)
        with_abom = XContainerPlatform(abom_enabled=True).run_binary(binary)
        without = XContainerPlatform(abom_enabled=False).run_binary(binary)
        return without.elapsed_ns / with_abom.elapsed_ns

    speedup = once(run)
    print(f"\nABOM on vs off: {speedup:.1f}x faster syscall loop")
    assert 3.0 < speedup < 15.0


def test_ablation_global_bit(once):
    """§4.3: the global bit on LibOS mappings spares the kernel-range
    TLB refill on intra-container switches."""
    from repro.guest.sched import RunQueue

    def run():
        costs = CostModel()
        with_global = RunQueue(costs, global_kernel_mappings=True)
        without = RunQueue(costs, global_kernel_mappings=False)
        return (
            without.switch_cost_ns(4) - with_global.switch_cost_ns(4),
            with_global.switch_cost_ns(4),
        )

    saved_ns, base_ns = once(run)
    print(f"\nglobal bit saves {saved_ns:.0f} ns per intra-container "
          f"switch (base {base_ns:.0f} ns)")
    assert saved_ns == CostModel().tlb_kernel_refill_ns


def test_ablation_kernel_dedication(once):
    """§3.2: how much of the macro win comes from the dedicated, tuned
    X-LibOS rather than from syscall conversion?"""

    def run():
        tuned_costs = CostModel()
        # Ablate the tuning: the X-LibOS behaves like a shared kernel.
        untuned_costs = replace(
            tuned_costs, xlibos_efficiency=1.0
        )
        tuned = ServerModel(XContainerPlatform(tuned_costs), EC2)
        untuned = ServerModel(XContainerPlatform(untuned_costs), EC2)
        docker = ServerModel(DockerPlatform(tuned_costs), EC2)
        base = docker.per_request_ns(MEMCACHED)
        return (
            base / tuned.per_request_ns(MEMCACHED),
            base / untuned.per_request_ns(MEMCACHED),
        )

    tuned_ratio, untuned_ratio = once(run)
    print(f"\nmemcached vs Docker: {tuned_ratio:.2f}x tuned, "
          f"{untuned_ratio:.2f}x with dedication ablated")
    assert tuned_ratio > untuned_ratio > 1.0


def test_ablation_meltdown_patch(once):
    """§5.1: the KPTI tax on kernel-crossing platforms — and its absence
    on X-Containers."""

    def run():
        binary = build_syscall_bench(800)
        docker_p = DockerPlatform(patched=True).run_binary(binary)
        docker_u = DockerPlatform(patched=False).run_binary(binary)
        x_p = XContainerPlatform(patched=True).run_binary(binary)
        x_u = XContainerPlatform(patched=False).run_binary(binary)
        return (
            docker_p.elapsed_ns / docker_u.elapsed_ns,
            x_p.elapsed_ns / x_u.elapsed_ns,
        )

    docker_tax, x_tax = once(run)
    print(f"\nKPTI tax on the syscall loop: Docker {docker_tax:.1f}x, "
          f"X-Container {x_tax:.2f}x")
    assert docker_tax > 4.0
    assert 0.99 < x_tax < 1.01


def test_ablation_hierarchical_scheduling(once):
    """§5.6: flat 4N-process scheduling vs N vCPUs × 4 processes at
    N = 400."""
    from repro.experiments.fig8_scalability import (
        docker_throughput,
        xcontainer_throughput,
    )
    from repro.cloud.instances import LOCAL_CLUSTER

    def run():
        costs = LOCAL_CLUSTER.costs()
        return (
            docker_throughput(400, costs),
            xcontainer_throughput(400, costs),
        )

    flat, hierarchical = once(run)
    print(f"\nN=400: flat scheduling {flat:,.0f} rps, hierarchical "
          f"{hierarchical:,.0f} rps")
    assert hierarchical > flat


def test_ablation_lightvm_toolstack(once):
    """§4.5: what the LightVM toolstack would buy X-Containers."""
    from repro.core import DockerImage, DockerWrapper

    def run():
        stock = DockerWrapper()
        _, slow = stock.spawn(DockerImage("bash"))
        fast_wrapper = DockerWrapper(fast_toolstack=True)
        _, fast = fast_wrapper.spawn(DockerImage("bash"))
        return slow.total_ms, fast.total_ms

    slow_ms, fast_ms = once(run)
    print(f"\nspawn: {slow_ms:.0f} ms stock xl vs {fast_ms:.0f} ms "
          "LightVM-style")
    assert slow_ms / fast_ms > 10
