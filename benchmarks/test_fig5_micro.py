"""Bench: regenerate Figure 5 (UnixBench microbenchmarks + iperf)."""

from repro.experiments import fig5_micro


def test_fig5_microbenchmarks(once):
    panels = once(fig5_micro.run)
    print()
    for panel in panels:
        print(panel.format_table())
        print()
    single = panels[0]  # EC2, single
    # §5.4: X wins the syscall-bound benches, loses process lifecycle.
    assert single.value("x-container", "file_copy") > 1.5
    assert single.value("x-container", "pipe_throughput") > 1.5
    assert single.value("x-container", "process_creation") < (
        single.value("docker-unpatched", "process_creation")
    )
    assert 0.8 < single.value("x-container", "iperf") < 1.3
