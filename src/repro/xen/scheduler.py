"""Credit scheduler — Xen's vCPU scheduler.

Figure 8's scalability result hinges on *hierarchical scheduling*: with N
containers of 4 processes each, the Linux kernel under Docker schedules 4N
processes on one runqueue, while the X-Kernel schedules N vCPUs and each
X-LibOS schedules its own 4 processes.  This module provides the
hypervisor half: a weighted round-robin credit scheduler over vCPUs with a
per-switch cost that grows slowly with the number of runnable vCPUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults import sites as fault_sites
from repro.perf.costs import CostModel


@dataclass
class VCpu:
    """One virtual CPU belonging to a domain."""

    vcpu_id: int
    domid: int
    weight: int = 256
    credits: float = 0.0
    runnable: bool = True
    scheduled_ns: float = 0.0


class CreditScheduler:
    """Weighted proportional-share scheduling of vCPUs onto physical CPUs."""

    def __init__(
        self,
        physical_cpus: int,
        costs: CostModel | None = None,
        quantum_ns: float = 30e6,  # Xen's 30 ms default time slice
        faults=None,
    ) -> None:
        if physical_cpus < 1:
            raise ValueError(f"need at least one pCPU: {physical_cpus}")
        self.physical_cpus = physical_cpus
        self.costs = costs or CostModel()
        self.quantum_ns = quantum_ns
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        self._vcpus: list[VCpu] = []
        #: domid -> its vCPUs; keeps park/wake O(vCPUs of one domain)
        #: so a 1000-domain fleet doesn't scan the world per wake event.
        self._by_domid: dict[int, list[VCpu]] = {}
        self.switches = 0
        self.stall_events = 0
        self.storm_events = 0
        #: Domains parked in / woken from the idle loop by the
        #: discrete-event engine (:mod:`repro.core.engine`).
        self.parks = 0
        self.wakes = 0
        #: Scheduler faults auto-heal at the next interval; this carries
        #: the recovery count across the call boundary.
        self._pending_recoveries = 0
        #: Optional telemetry histogram of per-interval switch overhead
        #: (set by :meth:`bind_telemetry`; pure observation, never charged).
        self._overhead_hist = None

    def bind_telemetry(self, registry) -> None:
        """Expose ``xen_sched_*`` metrics plus an overhead histogram."""
        from repro.obs import wire

        wire.wire_scheduler(registry, self)
        self._overhead_hist = registry.histogram(
            "xen_sched_overhead_ns",
            help="per-interval vCPU switch overhead (oversubscribed only)",
        )

    def add_vcpu(self, domid: int, weight: int = 256) -> VCpu:
        vcpu = VCpu(len(self._vcpus), domid, weight)
        self._vcpus.append(vcpu)
        self._by_domid.setdefault(domid, []).append(vcpu)
        return vcpu

    def remove_domain(self, domid: int) -> None:
        self._vcpus = [v for v in self._vcpus if v.domid != domid]
        self._by_domid.pop(domid, None)

    @property
    def runnable(self) -> list[VCpu]:
        return [v for v in self._vcpus if v.runnable]

    @property
    def parked(self) -> list[VCpu]:
        return [v for v in self._vcpus if not v.runnable]

    # ------------------------------------------------------------------
    # Park / wake (the discrete-event engine's blocked-vCPU protocol)
    # ------------------------------------------------------------------
    def park_domain(self, domid: int) -> None:
        """All of a domain's vCPUs blocked (idle loop / event wait):
        take them off the run queue until a wake event arrives."""
        changed = False
        for vcpu in self._by_domid.get(domid, ()):
            if vcpu.runnable:
                vcpu.runnable = False
                changed = True
        if changed:
            self.parks += 1

    def wake_domain(self, domid: int) -> None:
        """A wake event landed: the domain's vCPUs re-enter the queue."""
        changed = False
        for vcpu in self._by_domid.get(domid, ()):
            if not vcpu.runnable:
                vcpu.runnable = True
                changed = True
        if changed:
            self.wakes += 1

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def switch_cost_ns(self) -> float:
        """Cost of one vCPU switch.

        A vCPU switch is a full context + address-space switch with a
        complete TLB flush; cache pressure grows gently (logarithmically)
        with the number of runnable vCPUs.
        """
        n = max(1, len(self.runnable))
        pressure = 1.0 + 0.05 * math.log2(n)
        return self.costs.vcpu_switch_ns * pressure

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def schedule_interval(self, interval_ns: float) -> dict[int, float]:
        """Distribute ``interval_ns`` of pCPU time over runnable vCPUs.

        Returns useful (non-overhead) nanoseconds per domain.  Switch
        overhead is deducted once per quantum per pCPU whenever more
        vCPUs are runnable than pCPUs.
        """
        runnable = self.runnable
        if not runnable:
            return {}
        overhead_factor = 1.0
        if self.faults is not None:
            if self._pending_recoveries:
                # Last interval's stall/storm healed by rescheduling.
                for _ in range(self._pending_recoveries):
                    self.faults.record_recovered(fault_sites.VCPU)
                self._pending_recoveries = 0
            fault = self.faults.fire(
                fault_sites.VCPU, runnable=len(runnable)
            )
            if fault is not None:
                if fault.kind == "stall" and len(runnable) > 1:
                    # One vCPU misses this interval (stuck in a long
                    # hypercall / blocked on a dead event channel).
                    victim = runnable[fault.occurrence % len(runnable)]
                    runnable = [v for v in runnable if v is not victim]
                    self.stall_events += 1
                    self._pending_recoveries += 1
                elif fault.kind == "storm":
                    overhead_factor = max(1.0, fault.param or 8.0)
                    self.storm_events += 1
                    self._pending_recoveries += 1
        total_capacity = interval_ns * self.physical_cpus
        oversubscribed = (
            len(runnable) > self.physical_cpus or overhead_factor > 1.0
        )
        if oversubscribed:
            quanta = total_capacity / self.quantum_ns * overhead_factor
            overhead = quanta * self.switch_cost_ns()
            self.switches += int(quanta)
            total_capacity = max(0.0, total_capacity - overhead)
            if self._overhead_hist is not None:
                self._overhead_hist.observe(overhead)
        total_weight = sum(v.weight for v in runnable)
        shares: dict[int, float] = {}
        for vcpu in runnable:
            share = total_capacity * vcpu.weight / total_weight
            # A vCPU cannot use more than one pCPU's worth of time.
            share = min(share, interval_ns)
            vcpu.scheduled_ns += share
            shares[vcpu.domid] = shares.get(vcpu.domid, 0.0) + share
        return shares
