"""Xen-Blanket — running the Xen PV platform inside a public-cloud VM.

    "We leveraged Xen-Blanket drivers to run the platform efficiently in
     public clouds." (§4)

Xen-Blanket [Williams et al., EuroSys'12] provides blanket drivers so a Xen
instance can itself run as a guest of EC2/GCE without nested *hardware*
virtualization.  The performance effect is a modest constant factor on the
I/O path (the blanket driver adds one more ring traversal), and none on the
syscall path — which is why X-Containers work in clouds where Clear
Containers cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.costs import CostModel
from repro.xen.hypervisor import XenHypervisor


@dataclass
class BlanketStats:
    io_requests: int = 0


class XenBlanket:
    """Wraps a hypervisor's I/O path with the blanket-driver overhead."""

    #: One extra ring traversal relative to bare-metal netfront.
    IO_OVERHEAD_FACTOR = 1.18

    def __init__(self, xen: XenHypervisor, cloud: str = "ec2") -> None:
        if cloud not in ("ec2", "gce", "baremetal"):
            raise ValueError(f"unknown cloud {cloud!r}")
        self.xen = xen
        self.cloud = cloud
        self.stats = BlanketStats()

    @property
    def costs(self) -> CostModel:
        return self.xen.costs

    def needs_nested_hw_virtualization(self) -> bool:
        """Xen-Blanket never does — that is its point."""
        return False

    def io_cost_ns(self, base_cost_ns: float) -> float:
        """I/O cost after the blanket layer."""
        self.stats.io_requests += 1
        if self.cloud == "baremetal":
            return base_cost_ns
        return base_cost_ns * self.IO_OVERHEAD_FACTOR

    def syscall_cost_ns(self, base_cost_ns: float) -> float:
        """Syscall path is CPU-only: the blanket adds nothing."""
        return base_cost_ns
