"""Split device drivers (§4.1).

    "The Domain-U installs a front-end driver, which is connected to a
     corresponding back-end driver in the Driver Domain which gets access
     to real hardware, and data is transferred using shared memory
     (asynchronous buffer descriptor rings)."

The model tracks ring occupancy, grant usage and event-channel kicks, and
charges per-batch plus per-descriptor ring costs and per-byte copy costs —
the network-path overhead Xen-Containers and X-Containers both pay
relative to native Docker.

Batching (the real PV drivers' shape): the frontend *pushes* a whole
train of descriptors onto the shared ring, notifies the backend with ONE
event-channel kick, and *reaps* all completed responses in one pass.  A
batch of N descriptors therefore costs one fixed ring service
(:attr:`CostModel.ring_batch_fixed_ns`) plus N marginal descriptor costs
(:attr:`CostModel.ring_per_desc_ns`) instead of N full per-request
prices; :meth:`SplitNetDriver.transmit` is exactly a batch of one, so the
legacy path and its costs are unchanged.

Resilience: the frontend survives backend death, ring stalls, lost kicks
and transient grant failures (all injectable via :mod:`repro.faults`) by
reconnecting — tear down the dead ring, re-grant, re-map, re-bind — under
a bounded :class:`~repro.faults.retry.RetryPolicy`.  Fault hooks fire once
per logical descriptor even on the batched path; a dropped kick loses the
whole batch, which the retry loop resubmits in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.faults import sites as fault_sites
from repro.faults.retry import RetryPolicy
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.events import EventChannelTable
from repro.xen.grant_table import GrantError, GrantTable
from repro.xen.hypervisor import Domain

RING_SIZE = 256


class BackendDeadError(RuntimeError):
    """The backend driver domain died mid-ring; reconnect required."""


class NotificationLost(RuntimeError):
    """An event-channel kick was dropped; the frontend must re-kick."""


@dataclass
class RingStats:
    requests: int = 0
    responses: int = 0
    bytes_moved: int = 0
    kicks: int = 0
    ring_full_stalls: int = 0
    backend_deaths: int = 0
    backend_restarts: int = 0
    #: Completed descriptor batches (a single transmit is a batch of one).
    batches: int = 0
    #: Event-channel kicks elided by batching (descriptors - batches).
    kicks_saved: int = 0

    @property
    def avg_batch_size(self) -> float:
        """Mean descriptors per completed batch."""
        if self.batches == 0:
            return 0.0
        return self.requests / self.batches

    def as_dict(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "bytes_moved": self.bytes_moved,
            "kicks": self.kicks,
            "ring_full_stalls": self.ring_full_stalls,
            "backend_deaths": self.backend_deaths,
            "backend_restarts": self.backend_restarts,
            "batches": self.batches,
            "avg_batch_size": self.avg_batch_size,
            "kicks_saved": self.kicks_saved,
        }


class SplitNetDriver:
    """One netfront/netback pair between a guest and the driver domain."""

    def __init__(
        self,
        guest: Domain,
        backend: Domain,
        grants: GrantTable,
        events: EventChannelTable,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        faults=None,
        retry: RetryPolicy | None = None,
        sanitizer=None,
    ) -> None:
        self.guest = guest
        self.backend = backend
        self.grants = grants
        self.events = events
        self.costs = costs or CostModel()
        self.clock = clock
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        self.retry = retry or RetryPolicy()
        #: Optional :class:`repro.sanitize.suite.SanitizerSuite`; mirrors
        #: the ring protocol (publish/kick/reap) and attributes slot
        #: accesses to the frontend/backend domains.
        self.sanitizer = sanitizer
        self.stats = RingStats()
        self.backend_alive = True
        #: Optional ring waker (``ExecutionEngine.ring_waker(domid)``):
        #: response reaps wake the frontend's parked domain.
        self.waker = None
        self._in_flight = 0
        self._frontend_actor = f"dom{guest.domid}"
        self._backend_actor = f"dom{backend.domid}"
        self._ring_name = f"net:g{guest.domid}b{backend.domid}"
        if sanitizer is not None:
            self._ring_name = sanitizer.ring_register(
                self._ring_name, RING_SIZE, 16
            )
        # The shared ring page: granted by the guest, mapped by the backend.
        self._ring_grant = grants.grant_access(guest.domid, 0xF000)
        grants.map_grant(self._ring_grant, backend.domid)
        self._event_port = events.bind(self._on_backend_kick)
        self._completed_since_kick = 0

    def _on_backend_kick(self) -> None:
        self.stats.kicks += 1

    def bind_telemetry(self, registry, name: str = "net") -> None:
        """Expose the ``xen_ring_*`` metrics with ``driver=name``."""
        from repro.obs import wire

        wire.wire_ring_driver(registry, name, self)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def transmit(self, nbytes: int) -> float:
        """Send one request of ``nbytes`` and receive its response.

        Exactly a batch of one descriptor — see :meth:`transmit_batch`;
        the calibrated batch constants make the cost identical to the
        pre-batching per-request price.
        """
        if nbytes < 0:
            raise ValueError(f"negative payload: {nbytes}")
        return self.retry.run(
            lambda: self._transmit_batch_once((nbytes,)),
            retriable=(BackendDeadError, NotificationLost, GrantError),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.NET_BACKEND,
        )

    def transmit_batch(self, sizes: Iterable[int]) -> float:
        """Send a train of requests with ONE kick and reap all responses.

        Pushes one descriptor per payload in ``sizes`` (ring-full stalls
        are handled mid-push exactly like the single path), notifies the
        backend once, and reaps every response in one pass.  Returns the
        simulated cost.  Fault hooks fire per descriptor; backend death or
        a lost kick fails the whole batch, which :attr:`retry` resubmits —
        re-pushing a descriptor train is idempotent.
        """
        batch = tuple(sizes)
        for nbytes in batch:
            if nbytes < 0:
                raise ValueError(f"negative payload: {nbytes}")
        if not batch:
            return 0.0
        return self.retry.run(
            lambda: self._transmit_batch_once(batch),
            retriable=(BackendDeadError, NotificationLost, GrantError),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.NET_BACKEND,
        )

    def _transmit_batch_once(self, batch: Sequence[int]) -> float:
        if not self.backend_alive:
            self._restart_backend()
        san = self.sanitizer
        if san is not None:
            san.ring_batch_start(self._ring_name, self._frontend_actor)
        cost = (
            self.costs.ring_batch_fixed_ns
            + len(batch) * self.costs.ring_per_desc_ns
        )
        pushed = 0
        try:
            for nbytes in batch:
                cost += nbytes * self.costs.copy_per_byte_ns
                if self.faults is not None:
                    fault = self.faults.fire(
                        fault_sites.NET_BACKEND, bytes=nbytes
                    )
                    if fault is not None and fault.kind == "kill":
                        self.backend_alive = False
                        self.stats.backend_deaths += 1
                        raise BackendDeadError(
                            f"netback in domain {self.backend.domid} died "
                            f"mid-ring"
                        )
                    stall = self.faults.fire(
                        fault_sites.NET_RING, bytes=nbytes
                    )
                    if stall is not None and stall.kind == "stall":
                        self.stats.ring_full_stalls += 1
                        cost += self.costs.netfront_ns * max(1.0, stall.param)
                if self._in_flight >= RING_SIZE:
                    self.stats.ring_full_stalls += 1
                    cost += self.costs.netfront_ns
                    self._in_flight = 0
                    if san is not None:
                        san.ring_stall_drain(
                            self._ring_name,
                            self._frontend_actor,
                            self._backend_actor,
                        )
                self._in_flight += 1
                pushed += 1
                if san is not None:
                    san.ring_publish(self._ring_name, self._frontend_actor)
            # One kick for the whole descriptor train; delivery of any
            # other producers' pending events rides the same flush.
            with self.events.batch():
                if not self.events.send(self._event_port):
                    if san is not None:
                        san.ring_kick_lost(self._ring_name)
                    raise NotificationLost(
                        f"kick lost on port {self._event_port}"
                    )
            if san is not None:
                san.ring_kick(self._ring_name, self._frontend_actor)
        except BaseException:
            # Unwind the push; the mid-push ring-full reset may have
            # already zeroed the occupancy counter, so clamp at empty.
            self._in_flight = max(0, self._in_flight - pushed)
            if san is not None:
                san.ring_abort(self._ring_name, pushed)
            raise
        # Reap: every response completes in the same service pass.
        if san is not None:
            san.ring_reap(self._ring_name, self._backend_actor, len(batch))
        self.stats.requests += len(batch)
        self.stats.responses += len(batch)
        self.stats.bytes_moved += sum(batch)
        self.stats.batches += 1
        self.stats.kicks_saved += len(batch) - 1
        if self.clock is not None:
            self.clock.advance(cost)
        self._in_flight = max(0, self._in_flight - len(batch))
        if self.waker is not None:
            # The reap completes the frontend's wait: wake its domain.
            self.waker.on_ring_reap(len(batch))
        return cost

    def _restart_backend(self) -> None:
        """Reconnect after backend death: fresh grant, map, event port.

        Idempotent under partial failure — a :class:`GrantMapError` raised
        mid-restart leaves state the next attempt can clean up.
        """
        try:
            self.grants.unmap_grant(self._ring_grant, self.backend.domid)
        except GrantError:
            pass  # the dead backend's mapping died with it
        try:
            self.grants.end_access(self._ring_grant)
        except GrantError:
            pass
        self.events.unbind(self._event_port)
        self._in_flight = 0
        self._ring_grant = self.grants.grant_access(self.guest.domid, 0xF000)
        self.grants.map_grant(self._ring_grant, self.backend.domid)
        self._event_port = self.events.bind(self._on_backend_kick)
        self.backend_alive = True
        self.stats.backend_restarts += 1

    def per_request_cost_ns(self, nbytes: int) -> float:
        """Pure cost query without charging (used by the macro models)."""
        return self.costs.netfront_ns + nbytes * self.costs.copy_per_byte_ns

    def per_batch_cost_ns(self, sizes: Sequence[int]) -> float:
        """Pure batched-cost query without charging or fault hooks."""
        return (
            self.costs.ring_batch_fixed_ns
            + len(sizes) * self.costs.ring_per_desc_ns
            + sum(sizes) * self.costs.copy_per_byte_ns
        )

    def close(self) -> None:
        if self.sanitizer is not None:
            # Teardown is a quiescence point: published-but-unkicked
            # descriptors would never wake the backend again.
            self.sanitizer.ring_quiesce(self._ring_name)
        try:
            self.grants.unmap_grant(self._ring_grant, self.backend.domid)
            self.grants.end_access(self._ring_grant)
        except GrantError:
            if self.backend_alive:
                raise
        self.events.unbind(self._event_port)
