"""Split device drivers (§4.1).

    "The Domain-U installs a front-end driver, which is connected to a
     corresponding back-end driver in the Driver Domain which gets access
     to real hardware, and data is transferred using shared memory
     (asynchronous buffer descriptor rings)."

The model tracks ring occupancy, grant usage and event-channel kicks, and
charges :attr:`CostModel.netfront_ns` per request pair plus per-byte copy
costs — the network-path overhead Xen-Containers and X-Containers both pay
relative to native Docker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.events import EventChannelTable
from repro.xen.grant_table import GrantTable
from repro.xen.hypervisor import Domain

RING_SIZE = 256


@dataclass
class RingStats:
    requests: int = 0
    responses: int = 0
    bytes_moved: int = 0
    kicks: int = 0
    ring_full_stalls: int = 0


class SplitNetDriver:
    """One netfront/netback pair between a guest and the driver domain."""

    def __init__(
        self,
        guest: Domain,
        backend: Domain,
        grants: GrantTable,
        events: EventChannelTable,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.guest = guest
        self.backend = backend
        self.grants = grants
        self.events = events
        self.costs = costs or CostModel()
        self.clock = clock
        self.stats = RingStats()
        self._in_flight = 0
        # The shared ring page: granted by the guest, mapped by the backend.
        self._ring_grant = grants.grant_access(guest.domid, 0xF000)
        grants.map_grant(self._ring_grant, backend.domid)
        self._event_port = events.bind(self._on_backend_kick)
        self._completed_since_kick = 0

    def _on_backend_kick(self) -> None:
        self.stats.kicks += 1

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def transmit(self, nbytes: int) -> float:
        """Send one request of ``nbytes`` and receive its response.

        Returns the simulated cost.  If the ring is full the caller stalls
        until the backend drains (charged as one ring-service latency).
        """
        if nbytes < 0:
            raise ValueError(f"negative payload: {nbytes}")
        cost = self.costs.netfront_ns + nbytes * self.costs.copy_per_byte_ns
        if self._in_flight >= RING_SIZE:
            self.stats.ring_full_stalls += 1
            cost += self.costs.netfront_ns
            self._in_flight = 0
        self._in_flight += 1
        self.stats.requests += 1
        self.stats.responses += 1
        self.stats.bytes_moved += nbytes
        self.events.send(self._event_port)
        self.events.drain(via_hypercall=False)
        if self.clock is not None:
            self.clock.advance(cost)
        self._in_flight -= 1
        return cost

    def per_request_cost_ns(self, nbytes: int) -> float:
        """Pure cost query without charging (used by the macro models)."""
        return self.costs.netfront_ns + nbytes * self.costs.copy_per_byte_ns

    def close(self) -> None:
        self.grants.unmap_grant(self._ring_grant, self.backend.domid)
        self.grants.end_access(self._ring_grant)
        self.events.unbind(self._event_port)
