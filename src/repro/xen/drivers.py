"""Split device drivers (§4.1).

    "The Domain-U installs a front-end driver, which is connected to a
     corresponding back-end driver in the Driver Domain which gets access
     to real hardware, and data is transferred using shared memory
     (asynchronous buffer descriptor rings)."

The model tracks ring occupancy, grant usage and event-channel kicks, and
charges :attr:`CostModel.netfront_ns` per request pair plus per-byte copy
costs — the network-path overhead Xen-Containers and X-Containers both pay
relative to native Docker.

Resilience: the frontend survives backend death, ring stalls, lost kicks
and transient grant failures (all injectable via :mod:`repro.faults`) by
reconnecting — tear down the dead ring, re-grant, re-map, re-bind — under
a bounded :class:`~repro.faults.retry.RetryPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import sites as fault_sites
from repro.faults.retry import RetryPolicy
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.events import EventChannelTable
from repro.xen.grant_table import GrantError, GrantTable
from repro.xen.hypervisor import Domain

RING_SIZE = 256


class BackendDeadError(RuntimeError):
    """The backend driver domain died mid-ring; reconnect required."""


class NotificationLost(RuntimeError):
    """An event-channel kick was dropped; the frontend must re-kick."""


@dataclass
class RingStats:
    requests: int = 0
    responses: int = 0
    bytes_moved: int = 0
    kicks: int = 0
    ring_full_stalls: int = 0
    backend_deaths: int = 0
    backend_restarts: int = 0


class SplitNetDriver:
    """One netfront/netback pair between a guest and the driver domain."""

    def __init__(
        self,
        guest: Domain,
        backend: Domain,
        grants: GrantTable,
        events: EventChannelTable,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        faults=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.guest = guest
        self.backend = backend
        self.grants = grants
        self.events = events
        self.costs = costs or CostModel()
        self.clock = clock
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.stats = RingStats()
        self.backend_alive = True
        self._in_flight = 0
        # The shared ring page: granted by the guest, mapped by the backend.
        self._ring_grant = grants.grant_access(guest.domid, 0xF000)
        grants.map_grant(self._ring_grant, backend.domid)
        self._event_port = events.bind(self._on_backend_kick)
        self._completed_since_kick = 0

    def _on_backend_kick(self) -> None:
        self.stats.kicks += 1

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def transmit(self, nbytes: int) -> float:
        """Send one request of ``nbytes`` and receive its response.

        Returns the simulated cost.  If the ring is full the caller stalls
        until the backend drains (charged as one ring-service latency).
        Backend death, lost kicks and transient grant failures are retried
        under :attr:`retry`; the reconnect path re-establishes the ring.
        """
        if nbytes < 0:
            raise ValueError(f"negative payload: {nbytes}")
        return self.retry.run(
            lambda: self._transmit_once(nbytes),
            retriable=(BackendDeadError, NotificationLost, GrantError),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.NET_BACKEND,
        )

    def _transmit_once(self, nbytes: int) -> float:
        if not self.backend_alive:
            self._restart_backend()
        cost = self.costs.netfront_ns + nbytes * self.costs.copy_per_byte_ns
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.NET_BACKEND, bytes=nbytes)
            if fault is not None and fault.kind == "kill":
                self.backend_alive = False
                self.stats.backend_deaths += 1
                raise BackendDeadError(
                    f"netback in domain {self.backend.domid} died mid-ring"
                )
            stall = self.faults.fire(fault_sites.NET_RING, bytes=nbytes)
            if stall is not None and stall.kind == "stall":
                self.stats.ring_full_stalls += 1
                cost += self.costs.netfront_ns * max(1.0, stall.param)
        if self._in_flight >= RING_SIZE:
            self.stats.ring_full_stalls += 1
            cost += self.costs.netfront_ns
            self._in_flight = 0
        self._in_flight += 1
        try:
            if not self.events.send(self._event_port):
                raise NotificationLost(
                    f"kick lost on port {self._event_port}"
                )
        except BaseException:
            self._in_flight -= 1
            raise
        self.events.drain(via_hypercall=False)
        self.stats.requests += 1
        self.stats.responses += 1
        self.stats.bytes_moved += nbytes
        if self.clock is not None:
            self.clock.advance(cost)
        self._in_flight -= 1
        return cost

    def _restart_backend(self) -> None:
        """Reconnect after backend death: fresh grant, map, event port.

        Idempotent under partial failure — a :class:`GrantMapError` raised
        mid-restart leaves state the next attempt can clean up.
        """
        try:
            self.grants.unmap_grant(self._ring_grant, self.backend.domid)
        except GrantError:
            pass  # the dead backend's mapping died with it
        try:
            self.grants.end_access(self._ring_grant)
        except GrantError:
            pass
        self.events.unbind(self._event_port)
        self._in_flight = 0
        self._ring_grant = self.grants.grant_access(self.guest.domid, 0xF000)
        self.grants.map_grant(self._ring_grant, self.backend.domid)
        self._event_port = self.events.bind(self._on_backend_kick)
        self.backend_alive = True
        self.stats.backend_restarts += 1

    def per_request_cost_ns(self, nbytes: int) -> float:
        """Pure cost query without charging (used by the macro models)."""
        return self.costs.netfront_ns + nbytes * self.costs.copy_per_byte_ns

    def close(self) -> None:
        try:
            self.grants.unmap_grant(self._ring_grant, self.backend.domid)
            self.grants.end_access(self._ring_grant)
        except GrantError:
            if self.backend_alive:
                raise
        self.events.unbind(self._event_port)
