"""The Xen hypercall table.

The paper's isolation argument rests on the X-Kernel exposing "a small
number of well-documented system calls" (hypercalls) compared to Linux's
~350 syscalls.  This module enumerates the PV hypercalls the substrate
models, with relative costs, and keeps per-domain counters so experiments
can show the attack-surface difference quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.clock import SimClock
from repro.perf.costs import CostModel

#: Relative weight of each hypercall against the base hypercall cost.
#: (mmu operations validate page-table entries; iret/event ops are cheap.)
HYPERCALL_WEIGHTS: dict[str, float] = {
    "set_trap_table": 1.0,
    "mmu_update": 1.5,
    "set_gdt": 1.2,
    "stack_switch": 0.6,
    "fpu_taskswitch": 0.4,
    "update_descriptor": 1.0,
    "memory_op": 1.3,
    "multicall": 0.8,
    "update_va_mapping": 1.4,
    "xen_version": 0.3,
    "console_io": 0.8,
    "grant_table_op": 1.2,
    "sched_op": 0.7,
    "event_channel_op": 0.7,
    "physdev_op": 1.0,
    "iret": 0.9,
    "set_segment_base": 0.5,
    "mmuext_op": 1.5,
    "domctl": 2.0,
}

#: Linux exposes ~350 syscalls; Xen ~40 hypercalls — the TCB/attack-surface
#: comparison of §3.4.
LINUX_SYSCALL_SURFACE = 350
XEN_HYPERCALL_SURFACE = len(HYPERCALL_WEIGHTS)


class UnknownHypercall(Exception):
    pass


@dataclass
class HypercallTable:
    """Dispatches and accounts hypercalls for one hypervisor instance."""

    costs: CostModel = field(default_factory=CostModel)
    clock: SimClock | None = None
    counts: dict[str, int] = field(default_factory=dict)

    def call(self, name: str, batch: int = 1) -> float:
        """Execute ``batch`` invocations of hypercall ``name``.

        Returns the simulated cost in nanoseconds (also charged to the
        clock when one is attached).
        """
        weight = HYPERCALL_WEIGHTS.get(name)
        if weight is None:
            raise UnknownHypercall(name)
        if batch < 1:
            raise ValueError(f"batch must be >= 1: {batch}")
        self.counts[name] = self.counts.get(name, 0) + batch
        cost = self.costs.hypercall_ns * weight * batch
        if self.clock is not None:
            self.clock.advance(cost)
        return cost

    @property
    def total_calls(self) -> int:
        return sum(self.counts.values())

    @staticmethod
    def attack_surface_ratio() -> float:
        """How much smaller the exokernel interface is than Linux's."""
        return LINUX_SYSCALL_SURFACE / XEN_HYPERCALL_SURFACE
