"""XenStore — the hierarchical configuration bus of the Xen ecosystem.

Domain configuration, split-driver handshakes, and toolstack bookkeeping
all flow through XenStore.  The paper's §4.5 spawn-time problem is partly
XenStore's fault ("the overhead of Xen's 'xl' toolstack"): every domain
creation performs dozens of transactional writes and watch round-trips —
which is exactly what LightVM's toolstack bypasses.

Implemented: a path-tree store with per-path permissions, transactions
(snapshot isolation, abort on conflicting commits), and watches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


class XenstoreError(Exception):
    pass


class TransactionConflict(XenstoreError):
    pass


def _validate_path(path: str) -> None:
    if not path.startswith("/") or path != path.rstrip("/") and path != "/":
        raise XenstoreError(f"invalid xenstore path {path!r}")


def _parents(path: str):
    parts = path.strip("/").split("/")
    for i in range(1, len(parts)):
        yield "/" + "/".join(parts[:i])


@dataclass
class Watch:
    path: str
    callback: Callable[[str], None]
    token: int


class XenStore:
    """The shared store (one per hypervisor)."""

    def __init__(self) -> None:
        self._data: dict[str, str] = {"/": ""}
        self._owners: dict[str, int] = {"/": 0}
        self._watches: list[Watch] = []
        self._next_token = 1
        self._generation = 0
        self.writes = 0
        self.reads = 0

    # ------------------------------------------------------------------
    # Plain operations
    # ------------------------------------------------------------------
    def write(self, path: str, value: str, domid: int = 0) -> None:
        _validate_path(path)
        for parent in _parents(path):
            if parent not in self._data:
                self._data[parent] = ""
                self._owners[parent] = domid
        if path in self._owners and self._owners[path] != domid and domid != 0:
            raise XenstoreError(
                f"domain {domid} may not write {path} (owned by "
                f"{self._owners[path]})"
            )
        self._data[path] = value
        self._owners.setdefault(path, domid)
        self._generation += 1
        self.writes += 1
        self._fire_watches(path)

    def read(self, path: str, domid: int = 0) -> str:
        _validate_path(path)
        self.reads += 1
        if path not in self._data:
            raise XenstoreError(f"no such path {path}")
        return self._data[path]

    def exists(self, path: str) -> bool:
        return path in self._data

    def rm(self, path: str, domid: int = 0) -> None:
        """Remove a subtree."""
        _validate_path(path)
        victims = [
            p for p in self._data
            if p == path or p.startswith(path + "/")
        ]
        if not victims:
            raise XenstoreError(f"no such path {path}")
        for victim in victims:
            del self._data[victim]
            self._owners.pop(victim, None)
        self._generation += 1
        self._fire_watches(path)

    def ls(self, path: str) -> list[str]:
        """Direct children names of ``path``."""
        prefix = path.rstrip("/") + "/"
        children = set()
        for p in self._data:
            if p.startswith(prefix):
                children.add(p[len(prefix):].split("/")[0])
        return sorted(children)

    # ------------------------------------------------------------------
    # Watches
    # ------------------------------------------------------------------
    def watch(self, path: str, callback: Callable[[str], None]) -> int:
        _validate_path(path)
        token = self._next_token
        self._next_token += 1
        self._watches.append(Watch(path, callback, token))
        return token

    def unwatch(self, token: int) -> None:
        self._watches = [w for w in self._watches if w.token != token]

    def _fire_watches(self, changed: str) -> None:
        for watch in list(self._watches):
            if changed == watch.path or changed.startswith(
                watch.path.rstrip("/") + "/"
            ):
                watch.callback(changed)

    # ------------------------------------------------------------------
    # Transactions (snapshot isolation)
    # ------------------------------------------------------------------
    def transaction(self) -> "XsTransaction":
        return XsTransaction(self)


class XsTransaction:
    """A XenStore transaction: buffered ops, conflict-checked commit."""

    def __init__(self, store: XenStore) -> None:
        self._store = store
        self._start_generation = store._generation
        self._pending: list[tuple[str, str, str]] = []  # (op, path, value)
        self._read_set: set[str] = set()
        self.committed = False
        self.aborted = False

    def write(self, path: str, value: str) -> None:
        self._check_open()
        self._pending.append(("write", path, value))

    def rm(self, path: str) -> None:
        self._check_open()
        self._pending.append(("rm", path, ""))

    def read(self, path: str) -> str:
        self._check_open()
        self._read_set.add(path)
        for op, pending_path, value in reversed(self._pending):
            if op == "write" and pending_path == path:
                return value
        return self._store.read(path)

    def commit(self) -> None:
        self._check_open()
        if self._read_set and self._store._generation != (
            self._start_generation
        ):
            self.aborted = True
            raise TransactionConflict(
                "store changed since transaction start"
            )
        for op, path, value in self._pending:
            if op == "write":
                self._store.write(path, value)
            else:
                self._store.rm(path)
        self.committed = True

    def abort(self) -> None:
        self._check_open()
        self.aborted = True

    def _check_open(self) -> None:
        if self.committed or self.aborted:
            raise XenstoreError("transaction already finished")


#: Writes the stock xl toolstack performs per domain creation (console,
#: vifs, vbds, device handshakes...) — the §4.5 overhead, made visible.
XL_WRITES_PER_DOMAIN = 37
#: What a LightVM-style toolstack needs.
LIGHTVM_WRITES_PER_DOMAIN = 3


def populate_domain(store: XenStore, domid: int, name: str,
                    lightvm: bool = False) -> int:
    """Perform the store traffic of one domain creation; returns writes."""
    base = f"/local/domain/{domid}"
    store.write(f"{base}/name", name)
    store.write(f"{base}/memory/target", "131072")
    store.write(f"{base}/console/ring-ref", "1")
    count = 3
    if not lightvm:
        for index in range(XL_WRITES_PER_DOMAIN - count):
            store.write(f"{base}/device/misc/{index}", str(index))
            count += 1
    return count
