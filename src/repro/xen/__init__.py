"""Xen paravirtualization substrate (§4.1).

The pieces of the Xen PV architecture that the paper builds on and that the
baselines (Xen-Container / LightVM, Xen PV & HVM instances in Fig 8) need:

* :mod:`repro.xen.hypervisor` — domains, the stock PV syscall bounce
  (page-table switch + TLB flush both ways on x86-64), XPTI patch state;
* :mod:`repro.xen.hypercalls` — the hypercall table with per-call costs;
* :mod:`repro.xen.events` — event channels (virtualized interrupts);
* :mod:`repro.xen.grant_table` — shared-memory grants for split drivers;
* :mod:`repro.xen.drivers` — the netfront/netback split driver model;
* :mod:`repro.xen.scheduler` — the credit vCPU scheduler (Fig 8);
* :mod:`repro.xen.toolstack` — ``xl`` domain lifecycle timing (§4.5);
* :mod:`repro.xen.blanket` — Xen-Blanket for nested public-cloud use.
"""

from repro.xen.hypervisor import Domain, DomainKind, XenHypervisor
from repro.xen.events import EventChannelTable
from repro.xen.grant_table import GrantTable
from repro.xen.drivers import (
    BackendDeadError,
    NotificationLost,
    RingStats,
    SplitNetDriver,
)
from repro.xen.scheduler import CreditScheduler, VCpu
from repro.xen.toolstack import Toolstack
from repro.xen.blanket import XenBlanket
from repro.xen.migration import (
    Checkpoint,
    LiveMigration,
    MigrationReport,
    checkpoint_memory,
    restore_memory,
)
from repro.xen.memory_mgmt import (
    BalloonDriver,
    BalloonError,
    TranscendentMemory,
)
from repro.xen.xenstore import XenStore, XsTransaction
from repro.xen.blkdev import (
    BlockStats,
    BlockStore,
    SnapshotStore,
    SplitBlockDriver,
)
from repro.xen.remus import RemusReplicator

__all__ = [
    "Domain",
    "DomainKind",
    "XenHypervisor",
    "EventChannelTable",
    "GrantTable",
    "SplitNetDriver",
    "RingStats",
    "BackendDeadError",
    "NotificationLost",
    "CreditScheduler",
    "VCpu",
    "Toolstack",
    "XenBlanket",
    "Checkpoint",
    "LiveMigration",
    "MigrationReport",
    "checkpoint_memory",
    "restore_memory",
    "BalloonDriver",
    "BalloonError",
    "TranscendentMemory",
    "XenStore",
    "XsTransaction",
    "BlockStats",
    "BlockStore",
    "SnapshotStore",
    "SplitBlockDriver",
    "RemusReplicator",
]
