"""The Xen hypervisor model (stock PV, §4.1).

Models the control plane (domains, vCPUs) and — crucially for the
evaluation — the *stock* x86-64 PV syscall path that X-Containers
eliminates:

    "Each system call needs to be forwarded by the Xen hypervisor as a
     virtual exception, and incurs a page table switch and a TLB flush.
     This causes significant overheads..."

Xen-Containers (the LightVM-like baseline) run on this class; X-Containers
run on :class:`repro.core.xkernel.XKernel` instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.events import EventChannelTable
from repro.xen.grant_table import GrantTable
from repro.xen.hypercalls import HypercallTable


class DomainKind(enum.Enum):
    DOM0 = "dom0"
    DRIVER = "driver"
    DOMU = "domU"


@dataclass
class Domain:
    domid: int
    name: str
    kind: DomainKind
    vcpus: int
    memory_mb: int
    #: Xen's Meltdown mitigation state for this guest's kernel.
    guest_kpti: bool = False
    running: bool = True
    stats: dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + amount


class XenHypervisor:
    """Stock Xen: domain lifecycle plus the PV trap costs."""

    def __init__(
        self,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        total_memory_mb: int = 96 * 1024,
        xpti_patched: bool = True,
    ) -> None:
        self.costs = costs or CostModel()
        self.clock = clock if clock is not None else SimClock()
        self.total_memory_mb = total_memory_mb
        #: The Xen-side Meltdown patch (§5.1: "The same patch exists for
        #: Xen and we ported it to both Xen-Container and X-Container").
        self.xpti_patched = xpti_patched
        self.hypercalls = HypercallTable(self.costs, self.clock)
        self.grants = GrantTable(self.hypercalls)
        self._domains: dict[int, Domain] = {}
        self._next_domid = 0
        self.create_domain("Domain-0", DomainKind.DOM0, vcpus=4,
                           memory_mb=4096)

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def create_domain(
        self,
        name: str,
        kind: DomainKind = DomainKind.DOMU,
        vcpus: int = 1,
        memory_mb: int = 512,
    ) -> Domain:
        if memory_mb > self.free_memory_mb:
            raise MemoryError(
                f"cannot create {name}: needs {memory_mb} MB, "
                f"{self.free_memory_mb} MB free"
            )
        domain = Domain(self._next_domid, name, kind, vcpus, memory_mb)
        self._domains[domain.domid] = domain
        self._next_domid += 1
        return domain

    def destroy_domain(self, domid: int) -> None:
        if domid == 0:
            raise ValueError("cannot destroy Domain-0")
        if self.grants.sanitizer is not None:
            # LSan moment: grants still live against the dying domain
            # can never be cleaned up now.
            self.grants.sanitizer.on_domain_destroy(domid)
        self._domains.pop(domid, None)

    def domain(self, domid: int) -> Domain:
        return self._domains[domid]

    @property
    def domains(self) -> list[Domain]:
        return list(self._domains.values())

    @property
    def used_memory_mb(self) -> int:
        return sum(d.memory_mb for d in self._domains.values())

    @property
    def free_memory_mb(self) -> int:
        return self.total_memory_mb - self.used_memory_mb

    def event_channels(self) -> EventChannelTable:
        """A fresh per-domain event channel table."""
        return EventChannelTable(self.costs, self.clock)

    # ------------------------------------------------------------------
    # The stock PV syscall bounce (what X-Containers removes)
    # ------------------------------------------------------------------
    def pv_syscall_cost_ns(self) -> float:
        """Cost of one guest syscall under stock x86-64 PV.

        Trap into Xen, virtual-exception forward into the guest kernel's
        separate address space: page-table switch + TLB flush on the way
        in, and again on the way out; XPTI adds its own shadow-table work.
        """
        cost = self.costs.xen_pv_syscall_ns
        if self.xpti_patched:
            cost += self.costs.xpti_syscall_extra_ns
        return cost

    def pv_syscall(self, domain: Domain) -> float:
        """Charge one forwarded syscall for ``domain``."""
        cost = self.pv_syscall_cost_ns()
        self.clock.advance(cost)
        domain.bump("pv_syscalls")
        return cost

    def iret(self, domain: Domain) -> float:
        """The iret hypercall stock guests need to return from handlers."""
        domain.bump("irets")
        return self.hypercalls.call("iret")

    def context_switch_cost_ns(self, same_domain: bool) -> float:
        """Process switch inside a PV guest.

        The global bit is disabled for PV guests (§4.3), so every process
        switch pays a full TLB flush plus kernel-range refills; page-table
        installs are validated hypercalls.
        """
        cost = (
            self.costs.ctx_switch_process_ns
            + self.costs.pt_update_hypercall_ns
            + self.costs.tlb_flush_ns
            + self.costs.tlb_kernel_refill_ns
        )
        if not same_domain:
            cost += self.costs.vcpu_switch_ns
        return cost
