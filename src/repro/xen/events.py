"""Xen event channels — virtualized interrupts (§4.1, §4.2).

    "In the Xen PV architecture, interrupts are delivered as asynchronous
     events.  There is a variable shared by Xen and the guest kernel that
     indicates whether there is any event pending.  If so, the guest kernel
     issues a hypercall into Xen to have those events delivered."

Stock PV guests pay that hypercall; the X-LibOS instead "emulates the
interrupt stack frame when it sees any pending events and jumps directly
into interrupt handlers" — modelled by draining with ``via_hypercall=False``.

Interrupt coalescing: producers that raise many events back-to-back open a
:meth:`EventChannelTable.batch` scope.  Inside the scope every ``send``
only marks its port pending (the shared variable is set once and stays
set); the single :meth:`flush` on scope exit checks the shared pending
variable once and delivers everything, so a batch of N notifications costs
one delivery pass instead of N — the §4.2 optimization generalized to the
split-driver rings (see ``docs/io_batching.md``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.faults import sites as fault_sites
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


@dataclass
class EventChannel:
    port: int
    handler: Callable[[], None]
    pending: int = 0
    delivered: int = 0


class EventChannelTable:
    """Per-domain event channel state plus the shared pending flag."""

    def __init__(
        self,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        faults=None,
        sanitizer=None,
    ) -> None:
        self.costs = costs or CostModel()
        self.clock = clock
        #: Optional :class:`repro.faults.plan.FaultEngine`; ``None`` keeps
        #: every hook a single attribute test.
        self.faults = faults
        #: Optional :class:`repro.sanitize.suite.SanitizerSuite`; sends
        #: are release edges and deliveries acquire edges for the
        #: happens-before detector.  Same single-attribute-test budget.
        self.sanitizer = sanitizer
        self._channels: dict[int, EventChannel] = {}
        self._next_port = 1
        #: The shared "any event pending" variable.
        self.evtchn_upcall_pending = False
        self.hypercall_deliveries = 0
        self.direct_deliveries = 0
        self.notifications_dropped = 0
        self.notifications_delayed = 0
        #: Notifications absorbed into an open batch scope (their delivery
        #: was deferred to the scope's single flush).
        self.notifications_coalesced = 0
        #: Completed batch-scope flushes.
        self.flushes = 0
        self._batch_depth = 0
        #: Optional wake hub (:class:`repro.core.engine.ExecutionEngine`):
        #: a notification that lands on a port bound to a parked domain
        #: registers that domain's wake event with the engine.
        self.waker = None

    def bind_telemetry(self, registry) -> None:
        """Expose the ``xen_evtchn_*`` metrics on ``registry``."""
        from repro.obs import wire

        wire.wire_events(registry, self)

    def bind(self, handler: Callable[[], None]) -> int:
        port = self._next_port
        self._next_port += 1
        self._channels[port] = EventChannel(port, handler)
        return port

    def unbind(self, port: int) -> None:
        self._channels.pop(port, None)

    # ------------------------------------------------------------------
    # Batch scope (deferred / coalesced notification)
    # ------------------------------------------------------------------
    @property
    def in_batch(self) -> bool:
        return self._batch_depth > 0

    @contextmanager
    def batch(self, via_hypercall: bool = False) -> Iterator["EventChannelTable"]:
        """Defer event delivery until scope exit.

        Inside the scope ``send`` marks ports pending without delivering;
        leaving the outermost scope performs one :meth:`flush` that checks
        the shared pending variable once and delivers every accumulated
        event.  Scopes nest: only the outermost exit flushes.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self.flush(via_hypercall=via_hypercall)

    def flush(self, via_hypercall: bool = False) -> int:
        """Deliver everything marked pending with ONE shared-flag check.

        The stock PV path (``via_hypercall=True``) charges a single
        hypercall for the whole batch; the X-LibOS path emulates one
        interrupt stack frame per delivered event but shares the pending
        check.  Returns the number of events delivered.
        """
        if not self.evtchn_upcall_pending:
            return 0
        self.flushes += 1
        return self.drain(via_hypercall=via_hypercall)

    def send(self, port: int) -> bool:
        """Raise an event on ``port`` (from the hypervisor / another domain).

        Returns True when the notification landed (delivery pending),
        False when an injected ``drop`` lost it — the caller must re-kick;
        the shared pending flag never gets set by a dropped notify.  An
        injected ``delay`` charges ``param`` ns and increments
        :attr:`notifications_delayed` before the notification lands; the
        counter and charge behave identically whether the send happens
        inside or outside a :meth:`batch` scope (inside a scope only the
        *delivery* is deferred, never the fault accounting).
        """
        channel = self._channels.get(port)
        if channel is None:
            raise KeyError(f"no event channel bound on port {port}")
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.EVENT_NOTIFY, port=port)
            if fault is not None:
                if fault.kind == "drop":
                    self.notifications_dropped += 1
                    if self.sanitizer is not None:
                        self.sanitizer.on_event_drop(port)
                    return False
                if fault.kind == "delay":
                    self.notifications_delayed += 1
                    self._charge(fault.param)
        if self.sanitizer is not None:
            self.sanitizer.on_event_send(port)
        channel.pending += 1
        if self._batch_depth > 0 and self.evtchn_upcall_pending:
            # The shared variable is already set; this notify rides the
            # batch's single flush for free.
            self.notifications_coalesced += 1
        self.evtchn_upcall_pending = True
        if self.waker is not None:
            # Pending-channel delivery wakes a parked domain: the
            # engine fast-forwards it to this notification.
            self.waker.on_event(port)
        return True

    def pending_ports(self) -> list[int]:
        return [p for p, c in self._channels.items() if c.pending > 0]

    def drain(self, via_hypercall: bool) -> int:
        """Deliver all pending events; returns the number delivered.

        ``via_hypercall=True`` is the stock PV guest path (one hypercall
        charge); ``False`` is the X-LibOS direct-jump path (§4.2), which
        costs only the emulated stack-frame setup.
        """
        delivered = 0
        if via_hypercall and self.evtchn_upcall_pending:
            self._charge(self.costs.hypercall_ns)
            self.hypercall_deliveries += 1
        for channel in self._channels.values():
            while channel.pending > 0:
                channel.pending -= 1
                channel.delivered += 1
                delivered += 1
                if not via_hypercall:
                    # emulate the interrupt stack frame: a few stores.
                    self._charge(6 * self.costs.instruction_ns)
                    self.direct_deliveries += 1
                if self.sanitizer is not None:
                    self.sanitizer.on_event_deliver(channel.port)
                channel.handler()
        self.evtchn_upcall_pending = False
        return delivered

    def _charge(self, ns: float) -> None:
        if self.clock is not None:
            self.clock.advance(ns)
