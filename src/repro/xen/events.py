"""Xen event channels — virtualized interrupts (§4.1, §4.2).

    "In the Xen PV architecture, interrupts are delivered as asynchronous
     events.  There is a variable shared by Xen and the guest kernel that
     indicates whether there is any event pending.  If so, the guest kernel
     issues a hypercall into Xen to have those events delivered."

Stock PV guests pay that hypercall; the X-LibOS instead "emulates the
interrupt stack frame when it sees any pending events and jumps directly
into interrupt handlers" — modelled by draining with ``via_hypercall=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.faults import sites as fault_sites
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


@dataclass
class EventChannel:
    port: int
    handler: Callable[[], None]
    pending: int = 0
    delivered: int = 0


class EventChannelTable:
    """Per-domain event channel state plus the shared pending flag."""

    def __init__(
        self,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        faults=None,
    ) -> None:
        self.costs = costs or CostModel()
        self.clock = clock
        #: Optional :class:`repro.faults.plan.FaultEngine`; ``None`` keeps
        #: every hook a single attribute test.
        self.faults = faults
        self._channels: dict[int, EventChannel] = {}
        self._next_port = 1
        #: The shared "any event pending" variable.
        self.evtchn_upcall_pending = False
        self.hypercall_deliveries = 0
        self.direct_deliveries = 0
        self.notifications_dropped = 0
        self.notifications_delayed = 0

    def bind(self, handler: Callable[[], None]) -> int:
        port = self._next_port
        self._next_port += 1
        self._channels[port] = EventChannel(port, handler)
        return port

    def unbind(self, port: int) -> None:
        self._channels.pop(port, None)

    def send(self, port: int) -> bool:
        """Raise an event on ``port`` (from the hypervisor / another domain).

        Returns True when the notification landed.  Under fault injection
        a ``drop`` loses the notify (the caller must re-kick — the shared
        pending flag never gets set) and a ``delay`` charges ``param`` ns
        before delivery.
        """
        channel = self._channels.get(port)
        if channel is None:
            raise KeyError(f"no event channel bound on port {port}")
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.EVENT_NOTIFY, port=port)
            if fault is not None:
                if fault.kind == "drop":
                    self.notifications_dropped += 1
                    return False
                if fault.kind == "delay":
                    self.notifications_delayed += 1
                    self._charge(fault.param)
        channel.pending += 1
        self.evtchn_upcall_pending = True
        return True

    def pending_ports(self) -> list[int]:
        return [p for p, c in self._channels.items() if c.pending > 0]

    def drain(self, via_hypercall: bool) -> int:
        """Deliver all pending events; returns the number delivered.

        ``via_hypercall=True`` is the stock PV guest path (one hypercall
        charge); ``False`` is the X-LibOS direct-jump path (§4.2), which
        costs only the emulated stack-frame setup.
        """
        delivered = 0
        if via_hypercall and self.evtchn_upcall_pending:
            self._charge(self.costs.hypercall_ns)
            self.hypercall_deliveries += 1
        for channel in self._channels.values():
            while channel.pending > 0:
                channel.pending -= 1
                channel.delivered += 1
                delivered += 1
                if not via_hypercall:
                    # emulate the interrupt stack frame: a few stores.
                    self._charge(6 * self.costs.instruction_ns)
                    self.direct_deliveries += 1
                channel.handler()
        self.evtchn_upcall_pending = False
        return delivered

    def _charge(self, ns: float) -> None:
        if self.clock is not None:
            self.clock.advance(ns)
