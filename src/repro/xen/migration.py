"""Checkpoint/restore and live migration (§3.3).

    "there are many mature technologies in Xen's ecosystem enabling
     features such as live migration, fault tolerance, and
     checkpoint/restore, which are hard to implement with traditional
     containers."

Because an X-Container is a Xen domain, these come for free; this module
implements them over the simulated substrates:

* **checkpoint/restore** — serialize a domain's memory image and vCPU
  state, restore it into a fresh address space and continue execution
  (functionally real: a restored X-Container resumes mid-program);
* **live migration** — the classic pre-copy algorithm: iterative rounds
  of dirty-page transfer while the guest keeps running, then a brief
  stop-and-copy of the residual set.  The model tracks rounds, pages
  sent, total and downtime costs.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.arch.memory import PagedMemory, PAGE_SIZE
from repro.faults import sites as fault_sites
from repro.perf.costs import CostModel


@dataclass
class Checkpoint:
    """A serialized domain: memory pages + architectural state."""

    name: str
    pages: dict[int, bytes]
    page_flags: dict[int, int]
    registers: dict[str, int]
    wp_enabled: bool

    @property
    def memory_bytes(self) -> int:
        return len(self.pages) * PAGE_SIZE


def checkpoint_memory(memory: PagedMemory, registers: dict[str, int],
                      name: str = "ckpt") -> Checkpoint:
    """Snapshot a paged memory image plus register state."""
    pages = {
        index: bytes(page.data) for index, page in memory._pages.items()
    }
    flags = {
        index: int(page.flags) for index, page in memory._pages.items()
    }
    return Checkpoint(
        name=name,
        pages=pages,
        page_flags=flags,
        registers=dict(registers),
        wp_enabled=memory.wp_enabled,
    )


def restore_memory(checkpoint: Checkpoint) -> PagedMemory:
    """Materialize a fresh memory image from a checkpoint."""
    from repro.arch.memory import PageFlags, _Page

    memory = PagedMemory()
    for index, data in checkpoint.pages.items():
        page = _Page(PageFlags(checkpoint.page_flags[index]))
        page.data = bytearray(data)
        memory._pages[index] = page
    memory.wp_enabled = checkpoint.wp_enabled
    return memory


@dataclass
class MigrationReport:
    rounds: int
    pages_sent: int
    downtime_ms: float
    total_ms: float
    converged: bool
    #: True when the migration gave up cleanly (injected abort or
    #: non-convergence with ``abort_on_non_convergence``); the source
    #: keeps running, nothing was handed over.
    aborted: bool = False


class LiveMigration:
    """Pre-copy live migration of one domain's memory.

    The guest's write activity is summarized by ``dirty_rate_pages_s`` —
    pages dirtied per second while migration runs.  Each round sends the
    currently-dirty set over a link of ``bandwidth_mbps``; migration
    converges when the residual dirty set is small enough to stop-and-copy
    within the downtime budget.
    """

    def __init__(
        self,
        memory_mb: int,
        dirty_rate_pages_s: float,
        bandwidth_mbps: float = 10000.0,
        max_rounds: int = 30,
        downtime_budget_ms: float = 300.0,
        costs: CostModel | None = None,
        faults=None,
        #: Abort instead of forcing an over-budget stop-and-copy when the
        #: guest dirties faster than the link sends.
        abort_on_non_convergence: bool = False,
    ) -> None:
        if memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive: {memory_mb}")
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_mbps}")
        self.memory_pages = memory_mb * 1024 * 1024 // PAGE_SIZE
        self.dirty_rate_pages_s = dirty_rate_pages_s
        self.bandwidth_pages_s = (
            bandwidth_mbps * 1e6 / 8.0
        ) / PAGE_SIZE
        self.max_rounds = max_rounds
        self.downtime_budget_ms = downtime_budget_ms
        self.costs = costs or CostModel()
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        self.abort_on_non_convergence = abort_on_non_convergence

    def _send_time_s(self, pages: float) -> float:
        return pages / self.bandwidth_pages_s

    def run(self) -> MigrationReport:
        """Execute the pre-copy rounds; returns the migration report."""
        to_send = float(self.memory_pages)
        total_s = 0.0
        pages_sent = 0.0
        rounds = 0
        budget_pages = (
            self.downtime_budget_ms / 1e3
        ) * self.bandwidth_pages_s
        injected = 0
        while rounds < self.max_rounds:
            rounds += 1
            send_s = self._send_time_s(to_send)
            total_s += send_s
            pages_sent += to_send
            # Pages dirtied during this round must be resent.
            dirtied = min(
                self.dirty_rate_pages_s * send_s, float(self.memory_pages)
            )
            if self.faults is not None:
                fault = self.faults.fire(
                    fault_sites.MIGRATION_ROUND, round=rounds
                )
                if fault is not None:
                    if fault.kind == "abort":
                        # Clean abort: stop sending, nothing handed over.
                        self.faults.record_recovered(
                            fault_sites.MIGRATION_ROUND, round=rounds
                        )
                        return MigrationReport(
                            rounds=rounds,
                            pages_sent=int(pages_sent),
                            downtime_ms=0.0,
                            total_ms=total_s * 1e3,
                            converged=False,
                            aborted=True,
                        )
                    if fault.kind == "dirty":
                        # A burst re-dirties extra pages this round.
                        injected += 1
                        extra = (
                            fault.param
                            if fault.param > 0
                            else self.memory_pages * 0.1
                        )
                        dirtied = min(
                            dirtied + extra, float(self.memory_pages)
                        )
                        self.faults.record_retry(
                            fault_sites.MIGRATION_ROUND, round=rounds
                        )
            if dirtied <= budget_pages:
                # Stop-and-copy the residual set.
                downtime_s = self._send_time_s(dirtied)
                pages_sent += dirtied
                total_s += downtime_s
                if injected and self.faults is not None:
                    self.faults.record_recovered(
                        fault_sites.MIGRATION_ROUND, rounds=rounds
                    )
                return MigrationReport(
                    rounds=rounds,
                    pages_sent=int(pages_sent),
                    downtime_ms=downtime_s * 1e3,
                    total_ms=total_s * 1e3,
                    converged=True,
                )
            if dirtied >= to_send and rounds > 1:
                # Not converging: the guest dirties faster than we send.
                break
            to_send = dirtied
        if self.abort_on_non_convergence:
            # Clean abort instead of blowing the downtime budget.
            if self.faults is not None:
                self.faults.record_recovered(
                    fault_sites.MIGRATION_ROUND, rounds=rounds
                )
            return MigrationReport(
                rounds=rounds,
                pages_sent=int(pages_sent),
                downtime_ms=0.0,
                total_ms=total_s * 1e3,
                converged=False,
                aborted=True,
            )
        # Forced stop-and-copy of whatever remains.
        downtime_s = self._send_time_s(to_send)
        pages_sent += to_send
        total_s += downtime_s
        return MigrationReport(
            rounds=rounds,
            pages_sent=int(pages_sent),
            downtime_ms=downtime_s * 1e3,
            total_ms=total_s * 1e3,
            converged=False,
        )


@dataclass
class MigrationSession:
    """Live migration of one concrete domain, with abort safety.

    Wraps :class:`LiveMigration` around a source
    :class:`~repro.xen.hypervisor.Domain`: on completion the source is
    stopped (ownership moved to the destination); on a clean abort the
    source is left **runnable** — an aborted migration must never strand
    the domain paused (§3.3 regression; see
    ``tests/faults/test_failure_paths.py``).
    """

    source: object
    migration: LiveMigration
    report: MigrationReport | None = field(default=None)

    def run(self) -> MigrationReport:
        if not getattr(self.source, "running", True):
            raise ValueError(
                f"source domain {self.source.name!r} is not running"
            )
        report = self.migration.run()
        if report.aborted:
            # The source was paused for what would have been the final
            # stop-and-copy; abort resumes it where it was.
            self.source.running = True
        else:
            # Converged (or forced stop-and-copy): the destination owns
            # the domain now; the source copy is quiesced.
            self.source.running = False
        self.report = report
        return report
