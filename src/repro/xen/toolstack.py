"""The ``xl`` toolstack — domain creation and its cost (§4.5).

    "the overhead of Xen's 'xl' toolstack brings the total instantiation
     time up to 3 seconds.  LightVM has proposed a solution to reduce the
     overhead of the toolstack to 4ms, which can be also applied to
     X-Containers."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import sites as fault_sites
from repro.faults.retry import RetryPolicy
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.hypervisor import Domain, DomainKind, XenHypervisor


class SpawnTimeout(RuntimeError):
    """``xl create`` timed out; the half-built domain was torn down."""


@dataclass
class DomainCreation:
    domain: Domain
    toolstack_ms: float
    boot_ms: float

    @property
    def total_ms(self) -> float:
        return self.toolstack_ms + self.boot_ms


class Toolstack:
    """Creates and destroys domains through the hypervisor."""

    def __init__(
        self,
        xen: XenHypervisor,
        lightvm_mode: bool = False,
        faults=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.xen = xen
        #: LightVM's streamlined toolstack (no xenstore transactions, no
        #: device-model handshakes).
        self.lightvm_mode = lightvm_mode
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        #: Spawn retries back off in the millisecond range — xl restarts
        #: the whole create transaction, not a single hypercall.
        self.retry = retry or RetryPolicy(
            max_attempts=4, base_backoff_ns=1e6, max_backoff_ns=1e8
        )
        self.creations: list[DomainCreation] = []
        self.spawn_timeouts = 0
        #: Optional wake hub (:class:`repro.core.engine.ExecutionEngine`):
        #: boot completion is a timer wake for the new domain, so a
        #: fleet waiting on spawns fast-forwards to each boot's end.
        self.waker = None

    @property
    def costs(self) -> CostModel:
        return self.xen.costs

    @property
    def clock(self) -> SimClock:
        return self.xen.clock

    def create(
        self,
        name: str,
        vcpus: int = 1,
        memory_mb: int = 512,
        kind: DomainKind = DomainKind.DOMU,
        full_vm_boot: bool = True,
    ) -> DomainCreation:
        """Create a domain; ``full_vm_boot=False`` is the X-LibOS +
        bootloader path (180 ms instead of a full distro boot).

        Injected spawn timeouts tear the half-created domain down (no
        leaked memory accounting) and are retried under :attr:`retry`.
        """
        return self.retry.run(
            lambda: self._create_once(
                name, vcpus, memory_mb, kind, full_vm_boot
            ),
            retriable=(SpawnTimeout,),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.TOOLSTACK_SPAWN,
        )

    def _create_once(
        self,
        name: str,
        vcpus: int,
        memory_mb: int,
        kind: DomainKind,
        full_vm_boot: bool,
    ) -> DomainCreation:
        domain = self.xen.create_domain(name, kind, vcpus, memory_mb)
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.TOOLSTACK_SPAWN, domain=name)
            if fault is not None and fault.kind == "timeout":
                self.spawn_timeouts += 1
                self.xen.destroy_domain(domain.domid)
                # Charge the wasted wait before xl gives up on the stuck
                # xenstore/device handshake.
                wait_ns = fault.param or self.costs.xl_toolstack_ms * 1e6
                self.clock.advance(wait_ns)
                raise SpawnTimeout(f"xl create {name!r} timed out")
        toolstack_ms = (
            self.costs.lightvm_toolstack_ms
            if self.lightvm_mode
            else self.costs.xl_toolstack_ms
        )
        boot_ms = (
            self.costs.vm_boot_ms if full_vm_boot else self.costs.xlibos_boot_ms
        )
        creation = DomainCreation(domain, toolstack_ms, boot_ms)
        self.clock.advance(creation.total_ms * 1e6)
        self.creations.append(creation)
        if self.waker is not None:
            self.waker.on_timer(domain.domid, self.clock.now_ns)
        return creation

    def destroy(self, domid: int) -> None:
        self.xen.destroy_domain(domid)
