"""The ``xl`` toolstack — domain creation and its cost (§4.5).

    "the overhead of Xen's 'xl' toolstack brings the total instantiation
     time up to 3 seconds.  LightVM has proposed a solution to reduce the
     overhead of the toolstack to 4ms, which can be also applied to
     X-Containers."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.hypervisor import Domain, DomainKind, XenHypervisor


@dataclass
class DomainCreation:
    domain: Domain
    toolstack_ms: float
    boot_ms: float

    @property
    def total_ms(self) -> float:
        return self.toolstack_ms + self.boot_ms


class Toolstack:
    """Creates and destroys domains through the hypervisor."""

    def __init__(
        self,
        xen: XenHypervisor,
        lightvm_mode: bool = False,
    ) -> None:
        self.xen = xen
        #: LightVM's streamlined toolstack (no xenstore transactions, no
        #: device-model handshakes).
        self.lightvm_mode = lightvm_mode
        self.creations: list[DomainCreation] = []

    @property
    def costs(self) -> CostModel:
        return self.xen.costs

    @property
    def clock(self) -> SimClock:
        return self.xen.clock

    def create(
        self,
        name: str,
        vcpus: int = 1,
        memory_mb: int = 512,
        kind: DomainKind = DomainKind.DOMU,
        full_vm_boot: bool = True,
    ) -> DomainCreation:
        """Create a domain; ``full_vm_boot=False`` is the X-LibOS +
        bootloader path (180 ms instead of a full distro boot)."""
        domain = self.xen.create_domain(name, kind, vcpus, memory_mb)
        toolstack_ms = (
            self.costs.lightvm_toolstack_ms
            if self.lightvm_mode
            else self.costs.xl_toolstack_ms
        )
        boot_ms = (
            self.costs.vm_boot_ms if full_vm_boot else self.costs.xlibos_boot_ms
        )
        creation = DomainCreation(domain, toolstack_ms, boot_ms)
        self.clock.advance(creation.total_ms * 1e6)
        self.creations.append(creation)
        return creation

    def destroy(self, domid: int) -> None:
        self.xen.destroy_domain(domid)
