"""Split block driver (blkfront/blkback) and backing stores.

The §5.1 setup "used device-mapper as the back-end storage driver" for
every configuration; X-Containers and Xen-Containers additionally route
block I/O through the blkfront/blkback ring.  The model provides:

* :class:`BlockStore` — a sector-addressed RAM-backed disk;
* :class:`SnapshotStore` — copy-on-write snapshot over a base store
  (the device-mapper thin-snapshot behaviour Docker images rely on);
* :class:`SplitBlockDriver` — the ring between a guest and the backend,
  charging per-request and per-byte costs.

Batching: :meth:`SplitBlockDriver.read_many` / :meth:`write_many` push a
whole train of ring descriptors and charge one fixed ring service plus a
per-descriptor marginal cost (scaled by the same 0.6 amortization factor
as the single path, so a batch of one costs exactly what ``read``/``write``
always did).  The :data:`~repro.faults.sites.BLK_BACKEND` hook still fires
per descriptor; backend death fails the whole batch and the retry loop
resubmits it (sector writes are idempotent, so re-running is safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.faults import sites as fault_sites
from repro.faults.retry import RetryPolicy
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.drivers import BackendDeadError

SECTOR_SIZE = 512


class BlockError(OSError):
    pass


class BlockStore:
    """A flat RAM-backed virtual disk."""

    def __init__(self, capacity_sectors: int) -> None:
        if capacity_sectors <= 0:
            raise ValueError(
                f"capacity must be positive: {capacity_sectors}"
            )
        self.capacity_sectors = capacity_sectors
        self._sectors: dict[int, bytes] = {}

    def _check(self, sector: int) -> None:
        if not 0 <= sector < self.capacity_sectors:
            raise BlockError(
                f"sector {sector} out of range "
                f"(capacity {self.capacity_sectors})"
            )

    def read_sector(self, sector: int) -> bytes:
        self._check(sector)
        return self._sectors.get(sector, b"\x00" * SECTOR_SIZE)

    def write_sector(self, sector: int, data: bytes) -> None:
        self._check(sector)
        if len(data) != SECTOR_SIZE:
            raise BlockError(
                f"writes are whole sectors ({SECTOR_SIZE} B), got "
                f"{len(data)}"
            )
        self._sectors[sector] = bytes(data)

    @property
    def allocated_sectors(self) -> int:
        return len(self._sectors)


class SnapshotStore(BlockStore):
    """Copy-on-write snapshot over a base store (device-mapper thin).

    Reads fall through to the base until a sector is written; container
    layers share the base image's sectors until they diverge.
    """

    def __init__(self, base: BlockStore) -> None:
        super().__init__(base.capacity_sectors)
        self.base = base

    def read_sector(self, sector: int) -> bytes:
        self._check(sector)
        if sector in self._sectors:
            return self._sectors[sector]
        return self.base.read_sector(sector)

    @property
    def cow_sectors(self) -> int:
        """Sectors this snapshot has diverged on."""
        return len(self._sectors)


@dataclass
class BlockStats:
    reads: int = 0
    writes: int = 0
    bytes_moved: int = 0
    backend_deaths: int = 0
    backend_restarts: int = 0
    ring_stalls: int = 0
    #: Completed descriptor batches (a single read/write is a batch of one).
    batches: int = 0
    #: Ring kicks elided by batching (descriptors - batches).
    kicks_saved: int = 0

    @property
    def avg_batch_size(self) -> float:
        """Mean descriptors per completed batch."""
        if self.batches == 0:
            return 0.0
        return (self.reads + self.writes) / self.batches

    def as_dict(self) -> dict[str, float]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_moved": self.bytes_moved,
            "backend_deaths": self.backend_deaths,
            "backend_restarts": self.backend_restarts,
            "ring_stalls": self.ring_stalls,
            "batches": self.batches,
            "avg_batch_size": self.avg_batch_size,
            "kicks_saved": self.kicks_saved,
        }


class SplitBlockDriver:
    """blkfront/blkback pair: guest block I/O through a shared ring.

    Backend death is injectable (:data:`repro.faults.sites.BLK_BACKEND`)
    and always strikes *before* any sector is touched, so a failed write
    is never torn; blkfront reconnects and retries under :attr:`retry`.
    """

    def __init__(
        self,
        store: BlockStore,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        #: Native (non-split) backends skip the ring cost: Docker's
        #: device-mapper path.
        split: bool = True,
        faults=None,
        retry: RetryPolicy | None = None,
        sanitizer=None,
    ) -> None:
        self.store = store
        self.costs = costs or CostModel()
        self.clock = clock
        self.split = split
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        self.retry = retry or RetryPolicy()
        #: Optional :class:`repro.sanitize.suite.SanitizerSuite` — only
        #: meaningful on the split path (the native device-mapper path
        #: has no ring protocol to check).
        self.sanitizer = sanitizer if split else None
        self.stats = BlockStats()
        self.backend_alive = True
        #: Optional ring waker (``ExecutionEngine.ring_waker(domid)``):
        #: response reaps wake the frontend's parked domain.
        self.waker = None
        self._frontend_actor = "blkfront"
        self._backend_actor = "blkback"
        self._ring_name = "blk"
        if self.sanitizer is not None:
            self._ring_name = self.sanitizer.ring_register(
                self._ring_name, 256, 16
            )

    def bind_telemetry(self, registry, name: str = "blk") -> None:
        """Expose the ``xen_ring_*`` metrics with ``driver=name``."""
        from repro.obs import wire

        wire.wire_ring_driver(registry, name, self)

    def _ring_entry(self, op: str) -> None:
        """Fault hook at ring submission; no-op on the native path."""
        if not self.split:
            return
        if not self.backend_alive:
            # blkback reconnect: one ring re-setup charge.
            self.backend_alive = True
            self.stats.backend_restarts += 1
            if self.clock is not None:
                self.clock.advance(self.costs.netfront_ns)
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.BLK_BACKEND, op=op)
            if fault is not None:
                if fault.kind == "kill":
                    self.backend_alive = False
                    self.stats.backend_deaths += 1
                    raise BackendDeadError("blkback died mid-ring")
                if fault.kind == "stall":
                    self.stats.ring_stalls += 1
                    if self.clock is not None:
                        self.clock.advance(
                            self.costs.netfront_ns * max(1.0, fault.param)
                        )

    def _charge_batch(self, ndescs: int, nbytes: int) -> None:
        """Charge one descriptor batch: fixed ring service + marginals.

        The split path amortizes grant + ring + event work at the same
        0.6 factor as before; ``0.6 * (ring_batch_fixed_ns +
        ring_per_desc_ns)`` equals the legacy ``0.6 * netfront_ns`` per
        request at batch size one (calibration invariant in
        ``perf/costs.py``).  The native device-mapper path has no ring,
        so each descriptor keeps its full VFS charge.
        """
        cost = nbytes * self.costs.copy_per_byte_ns
        if self.split:
            cost += 0.6 * (
                self.costs.ring_batch_fixed_ns
                + ndescs * self.costs.ring_per_desc_ns
            )
        else:
            cost += ndescs * self.costs.vfs_op_ns
        if self.clock is not None:
            self.clock.advance(cost)

    def read(self, sector: int, count: int = 1) -> bytes:
        if count < 1:
            raise BlockError(f"count must be >= 1: {count}")
        return self.retry.run(
            lambda: self._read_many_once(((sector, count),)),
            retriable=(BackendDeadError,),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.BLK_BACKEND,
        )

    def read_many(self, ops: Iterable[tuple[int, int]]) -> list[bytes]:
        """Read a batch of ``(sector, count)`` extents through one ring pass.

        One fixed ring charge covers the whole train; the backend fault
        hook fires per descriptor, and backend death loses the batch (the
        retry loop resubmits it — reads are side-effect free).
        """
        batch = tuple(ops)
        for _, count in batch:
            if count < 1:
                raise BlockError(f"count must be >= 1: {count}")
        if not batch:
            return []
        return self.retry.run(
            lambda: self._read_many_once(batch),
            retriable=(BackendDeadError,),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.BLK_BACKEND,
        )

    def _read_many_once(
        self, batch: Sequence[tuple[int, int]]
    ) -> bytes | list[bytes]:
        san = self.sanitizer
        if san is not None:
            san.ring_batch_start(self._ring_name, self._frontend_actor)
        results = []
        total = 0
        pushed = 0
        try:
            for sector, count in batch:
                self._ring_entry("read")
                if san is not None:
                    san.ring_publish(self._ring_name, self._frontend_actor)
                    pushed += 1
                out = b"".join(
                    self.store.read_sector(sector + i) for i in range(count)
                )
                results.append(out)
                total += len(out)
                self.stats.reads += 1
        except BaseException:
            if san is not None:
                san.ring_abort(self._ring_name, pushed)
            raise
        if san is not None:
            san.ring_kick(self._ring_name, self._frontend_actor)
            san.ring_reap(self._ring_name, self._backend_actor, len(batch))
        self.stats.bytes_moved += total
        self.stats.batches += 1
        self.stats.kicks_saved += len(batch) - 1
        self._charge_batch(len(batch), total)
        if self.waker is not None:
            self.waker.on_ring_reap(len(batch))
        if len(batch) == 1:
            return results[0]
        return results

    def write(self, sector: int, data: bytes) -> None:
        if len(data) % SECTOR_SIZE:
            raise BlockError(
                f"write size {len(data)} not sector-aligned"
            )
        self.retry.run(
            lambda: self._write_many_once(((sector, data),)),
            retriable=(BackendDeadError,),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.BLK_BACKEND,
        )

    def write_many(self, ops: Iterable[tuple[int, bytes]]) -> None:
        """Write a batch of ``(sector, data)`` extents through one ring pass.

        Sector writes are idempotent, so a mid-batch backend death simply
        re-runs the whole train on reconnect; no write is ever torn
        (death always strikes before the failing descriptor's sectors).
        """
        batch = tuple(ops)
        for _, data in batch:
            if len(data) % SECTOR_SIZE:
                raise BlockError(
                    f"write size {len(data)} not sector-aligned"
                )
        if not batch:
            return
        self.retry.run(
            lambda: self._write_many_once(batch),
            retriable=(BackendDeadError,),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.BLK_BACKEND,
        )

    def _write_many_once(self, batch: Sequence[tuple[int, bytes]]) -> None:
        san = self.sanitizer
        if san is not None:
            san.ring_batch_start(self._ring_name, self._frontend_actor)
        total = 0
        pushed = 0
        try:
            for sector, data in batch:
                self._ring_entry("write")
                if san is not None:
                    san.ring_publish(self._ring_name, self._frontend_actor)
                    pushed += 1
                for i in range(len(data) // SECTOR_SIZE):
                    self.store.write_sector(
                        sector + i,
                        data[i * SECTOR_SIZE : (i + 1) * SECTOR_SIZE],
                    )
                self.stats.writes += 1
                total += len(data)
        except BaseException:
            if san is not None:
                san.ring_abort(self._ring_name, pushed)
            raise
        if san is not None:
            san.ring_kick(self._ring_name, self._frontend_actor)
            san.ring_reap(self._ring_name, self._backend_actor, len(batch))
        self.stats.bytes_moved += total
        self.stats.batches += 1
        self.stats.kicks_saved += len(batch) - 1
        self._charge_batch(len(batch), total)
        if self.waker is not None:
            self.waker.on_ring_reap(len(batch))
