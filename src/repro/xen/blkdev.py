"""Split block driver (blkfront/blkback) and backing stores.

The §5.1 setup "used device-mapper as the back-end storage driver" for
every configuration; X-Containers and Xen-Containers additionally route
block I/O through the blkfront/blkback ring.  The model provides:

* :class:`BlockStore` — a sector-addressed RAM-backed disk;
* :class:`SnapshotStore` — copy-on-write snapshot over a base store
  (the device-mapper thin-snapshot behaviour Docker images rely on);
* :class:`SplitBlockDriver` — the ring between a guest and the backend,
  charging per-request and per-byte costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import sites as fault_sites
from repro.faults.retry import RetryPolicy
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel
from repro.xen.drivers import BackendDeadError

SECTOR_SIZE = 512


class BlockError(OSError):
    pass


class BlockStore:
    """A flat RAM-backed virtual disk."""

    def __init__(self, capacity_sectors: int) -> None:
        if capacity_sectors <= 0:
            raise ValueError(
                f"capacity must be positive: {capacity_sectors}"
            )
        self.capacity_sectors = capacity_sectors
        self._sectors: dict[int, bytes] = {}

    def _check(self, sector: int) -> None:
        if not 0 <= sector < self.capacity_sectors:
            raise BlockError(
                f"sector {sector} out of range "
                f"(capacity {self.capacity_sectors})"
            )

    def read_sector(self, sector: int) -> bytes:
        self._check(sector)
        return self._sectors.get(sector, b"\x00" * SECTOR_SIZE)

    def write_sector(self, sector: int, data: bytes) -> None:
        self._check(sector)
        if len(data) != SECTOR_SIZE:
            raise BlockError(
                f"writes are whole sectors ({SECTOR_SIZE} B), got "
                f"{len(data)}"
            )
        self._sectors[sector] = bytes(data)

    @property
    def allocated_sectors(self) -> int:
        return len(self._sectors)


class SnapshotStore(BlockStore):
    """Copy-on-write snapshot over a base store (device-mapper thin).

    Reads fall through to the base until a sector is written; container
    layers share the base image's sectors until they diverge.
    """

    def __init__(self, base: BlockStore) -> None:
        super().__init__(base.capacity_sectors)
        self.base = base

    def read_sector(self, sector: int) -> bytes:
        self._check(sector)
        if sector in self._sectors:
            return self._sectors[sector]
        return self.base.read_sector(sector)

    @property
    def cow_sectors(self) -> int:
        """Sectors this snapshot has diverged on."""
        return len(self._sectors)


@dataclass
class BlockStats:
    reads: int = 0
    writes: int = 0
    bytes_moved: int = 0
    backend_deaths: int = 0
    backend_restarts: int = 0
    ring_stalls: int = 0


class SplitBlockDriver:
    """blkfront/blkback pair: guest block I/O through a shared ring.

    Backend death is injectable (:data:`repro.faults.sites.BLK_BACKEND`)
    and always strikes *before* any sector is touched, so a failed write
    is never torn; blkfront reconnects and retries under :attr:`retry`.
    """

    def __init__(
        self,
        store: BlockStore,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        #: Native (non-split) backends skip the ring cost: Docker's
        #: device-mapper path.
        split: bool = True,
        faults=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.store = store
        self.costs = costs or CostModel()
        self.clock = clock
        self.split = split
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.stats = BlockStats()
        self.backend_alive = True

    def _ring_entry(self, op: str) -> None:
        """Fault hook at ring submission; no-op on the native path."""
        if not self.split:
            return
        if not self.backend_alive:
            # blkback reconnect: one ring re-setup charge.
            self.backend_alive = True
            self.stats.backend_restarts += 1
            if self.clock is not None:
                self.clock.advance(self.costs.netfront_ns)
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.BLK_BACKEND, op=op)
            if fault is not None:
                if fault.kind == "kill":
                    self.backend_alive = False
                    self.stats.backend_deaths += 1
                    raise BackendDeadError("blkback died mid-ring")
                if fault.kind == "stall":
                    self.stats.ring_stalls += 1
                    if self.clock is not None:
                        self.clock.advance(
                            self.costs.netfront_ns * max(1.0, fault.param)
                        )

    def _charge(self, nbytes: int) -> None:
        cost = nbytes * self.costs.copy_per_byte_ns
        if self.split:
            # grant + ring descriptor + event per request (amortized).
            cost += self.costs.netfront_ns * 0.6
        else:
            cost += self.costs.vfs_op_ns
        if self.clock is not None:
            self.clock.advance(cost)

    def read(self, sector: int, count: int = 1) -> bytes:
        if count < 1:
            raise BlockError(f"count must be >= 1: {count}")
        return self.retry.run(
            lambda: self._read_once(sector, count),
            retriable=(BackendDeadError,),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.BLK_BACKEND,
        )

    def _read_once(self, sector: int, count: int) -> bytes:
        self._ring_entry("read")
        out = b"".join(
            self.store.read_sector(sector + i) for i in range(count)
        )
        self.stats.reads += 1
        self.stats.bytes_moved += len(out)
        self._charge(len(out))
        return out

    def write(self, sector: int, data: bytes) -> None:
        if len(data) % SECTOR_SIZE:
            raise BlockError(
                f"write size {len(data)} not sector-aligned"
            )
        self.retry.run(
            lambda: self._write_once(sector, data),
            retriable=(BackendDeadError,),
            clock=self.clock,
            faults=self.faults,
            site=fault_sites.BLK_BACKEND,
        )

    def _write_once(self, sector: int, data: bytes) -> None:
        self._ring_entry("write")
        for i in range(len(data) // SECTOR_SIZE):
            self.store.write_sector(
                sector + i,
                data[i * SECTOR_SIZE : (i + 1) * SECTOR_SIZE],
            )
        self.stats.writes += 1
        self.stats.bytes_moved += len(data)
        self._charge(len(data))
