"""Dynamic memory management: ballooning and Transcendent Memory (§4.5).

    "Dynamic memory allocation and over-subscription of Xen VMs have been
     studied in literature, leveraging mechanisms such as ballooning.  In
     addition, Xen provides native Transcendent Memory (tmem) support,
     which can be leveraged by Linux kernels in different VMs for
     efficiently sharing the page cache and RAM-based swap space."

The prototype's static-size limitation is lifted here:

* :class:`BalloonDriver` — a per-domain balloon that inflates (returns
  pages to Xen) and deflates (reclaims them), bounded by the domain's
  configured maximum and the hypervisor's free pool;
* :class:`TranscendentMemory` — the two tmem pools: *cleancache*
  (ephemeral second-chance page cache — pages may vanish under pressure)
  and *frontswap* (persistent RAM-based swap — pages must survive until
  the guest takes them back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xen.hypervisor import Domain, XenHypervisor


class BalloonError(RuntimeError):
    pass


@dataclass
class BalloonStats:
    inflations: int = 0
    deflations: int = 0


class BalloonDriver:
    """Adjusts one domain's memory allocation at run time."""

    def __init__(
        self,
        xen: XenHypervisor,
        domain: Domain,
        min_mb: int = 64,
        max_mb: int | None = None,
    ) -> None:
        if min_mb <= 0:
            raise ValueError(f"min_mb must be positive: {min_mb}")
        self.xen = xen
        self.domain = domain
        self.min_mb = min_mb
        self.max_mb = max_mb if max_mb is not None else domain.memory_mb * 4
        self.stats = BalloonStats()

    def inflate(self, mb: int) -> None:
        """Give ``mb`` back to the hypervisor (balloon grows)."""
        if mb <= 0:
            raise ValueError(f"inflate size must be positive: {mb}")
        target = self.domain.memory_mb - mb
        if target < self.min_mb:
            raise BalloonError(
                f"cannot balloon {self.domain.name} below its {self.min_mb}"
                f" MB floor (target {target} MB)"
            )
        self.xen.hypercalls.call("memory_op")
        self.domain.memory_mb = target
        self.stats.inflations += 1

    def deflate(self, mb: int) -> None:
        """Reclaim ``mb`` from the hypervisor (balloon shrinks)."""
        if mb <= 0:
            raise ValueError(f"deflate size must be positive: {mb}")
        target = self.domain.memory_mb + mb
        if target > self.max_mb:
            raise BalloonError(
                f"{self.domain.name} is capped at {self.max_mb} MB "
                f"(target {target} MB)"
            )
        if mb > self.xen.free_memory_mb:
            raise BalloonError(
                f"hypervisor has only {self.xen.free_memory_mb} MB free"
            )
        self.xen.hypercalls.call("memory_op")
        self.domain.memory_mb = target
        self.stats.deflations += 1


@dataclass
class TmemStats:
    cleancache_puts: int = 0
    cleancache_hits: int = 0
    cleancache_misses: int = 0
    cleancache_evictions: int = 0
    frontswap_puts: int = 0
    frontswap_gets: int = 0


class TranscendentMemory:
    """The tmem pools shared by all domains on one hypervisor."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ValueError(
                f"capacity must be positive: {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        #: (domid, key) -> page payload.  Insertion order doubles as the
        #: eviction (FIFO second-chance) order for cleancache.
        self._cleancache: dict[tuple[int, int], bytes] = {}
        self._frontswap: dict[tuple[int, int], bytes] = {}
        self.stats = TmemStats()

    @property
    def used_pages(self) -> int:
        return len(self._cleancache) + len(self._frontswap)

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self.used_pages

    # ------------------------------------------------------------------
    # Cleancache: ephemeral page cache. Puts may be dropped, cached pages
    # may be evicted; gets may therefore miss.
    # ------------------------------------------------------------------
    def cleancache_put(self, domid: int, key: int, page: bytes) -> bool:
        if self.free_pages <= 0 and not self._evict_cleancache():
            return False  # frontswap holds everything: drop the put
        self._cleancache[(domid, key)] = bytes(page)
        self.stats.cleancache_puts += 1
        return True

    def cleancache_get(self, domid: int, key: int) -> bytes | None:
        page = self._cleancache.pop((domid, key), None)
        if page is None:
            self.stats.cleancache_misses += 1
            return None
        self.stats.cleancache_hits += 1
        return page

    def cleancache_flush_domain(self, domid: int) -> int:
        victims = [k for k in self._cleancache if k[0] == domid]
        for key in victims:
            del self._cleancache[key]
        return len(victims)

    def _evict_cleancache(self) -> bool:
        if not self._cleancache:
            return False
        oldest = next(iter(self._cleancache))
        del self._cleancache[oldest]
        self.stats.cleancache_evictions += 1
        return True

    # ------------------------------------------------------------------
    # Frontswap: persistent RAM-based swap. Puts fail when full (the
    # guest falls back to disk); successful puts MUST be retrievable.
    # ------------------------------------------------------------------
    def frontswap_put(self, domid: int, key: int, page: bytes) -> bool:
        if (domid, key) in self._frontswap:
            self._frontswap[(domid, key)] = bytes(page)
            return True
        if self.free_pages <= 0 and not self._evict_cleancache():
            return False
        self._frontswap[(domid, key)] = bytes(page)
        self.stats.frontswap_puts += 1
        return True

    def frontswap_get(self, domid: int, key: int) -> bytes | None:
        page = self._frontswap.pop((domid, key), None)
        if page is not None:
            self.stats.frontswap_gets += 1
        return page
