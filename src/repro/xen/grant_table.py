"""Grant tables — Xen's shared-memory mechanism for split drivers (§4.1).

    "data is transferred using shared memory (asynchronous buffer
     descriptor rings)"

A domain *grants* access to one of its pages; the peer domain *maps* the
grant.  The split network/block drivers move payloads through granted ring
pages.  Costs: granting is cheap bookkeeping, mapping is a hypercall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xen.hypercalls import HypercallTable


@dataclass
class GrantRef:
    ref: int
    owner_domid: int
    page_addr: int
    readonly: bool
    mapped_by: int | None = None


class GrantError(Exception):
    pass


class GrantTable:
    """Grant bookkeeping for one hypervisor instance."""

    def __init__(self, hypercalls: HypercallTable) -> None:
        self.hypercalls = hypercalls
        self._grants: dict[int, GrantRef] = {}
        self._next_ref = 1

    def grant_access(
        self, owner_domid: int, page_addr: int, readonly: bool = False
    ) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self._grants[ref] = GrantRef(ref, owner_domid, page_addr, readonly)
        return ref

    def map_grant(self, ref: int, mapper_domid: int) -> GrantRef:
        grant = self._grants.get(ref)
        if grant is None:
            raise GrantError(f"no such grant ref {ref}")
        if grant.owner_domid == mapper_domid:
            raise GrantError("domain cannot map its own grant")
        if grant.mapped_by is not None:
            raise GrantError(f"grant {ref} already mapped")
        self.hypercalls.call("grant_table_op")
        grant.mapped_by = mapper_domid
        return grant

    def unmap_grant(self, ref: int, mapper_domid: int) -> None:
        grant = self._grants.get(ref)
        if grant is None:
            raise GrantError(f"no such grant ref {ref}")
        if grant.mapped_by != mapper_domid:
            raise GrantError(f"grant {ref} not mapped by domain {mapper_domid}")
        self.hypercalls.call("grant_table_op")
        grant.mapped_by = None

    def end_access(self, ref: int) -> None:
        grant = self._grants.get(ref)
        if grant is None:
            return
        if grant.mapped_by is not None:
            raise GrantError(f"grant {ref} still mapped")
        del self._grants[ref]

    @property
    def active_grants(self) -> int:
        return len(self._grants)
