"""Grant tables — Xen's shared-memory mechanism for split drivers (§4.1).

    "data is transferred using shared memory (asynchronous buffer
     descriptor rings)"

A domain *grants* access to one of its pages; the peer domain *maps* the
grant.  The split network/block drivers move payloads through granted ring
pages.  Costs: granting is cheap bookkeeping, mapping is a hypercall.

Batching: real ``GNTTABOP_copy`` takes an *array* of copy operations per
hypercall; :meth:`GrantTable.copy_grant_batch` mirrors that — one
visibility validation and one hypercall charge per batch, per-byte
accounting summed vectorized, while the injected-fault hook still fires
once per logical copy so chaos plans see every element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.faults import sites as fault_sites
from repro.xen.hypercalls import HypercallTable


@dataclass
class GrantRef:
    ref: int
    owner_domid: int
    page_addr: int
    readonly: bool
    mapped_by: int | None = None


class GrantError(Exception):
    pass


class GrantMapError(GrantError):
    """Transient map failure (resource pressure or injected); retriable."""


class GrantCopyError(GrantError):
    """Transient copy failure (resource pressure or injected); retriable."""


class GrantTable:
    """Grant bookkeeping for one hypervisor instance."""

    def __init__(
        self, hypercalls: HypercallTable, faults=None, sanitizer=None
    ) -> None:
        self.hypercalls = hypercalls
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        #: Optional :class:`repro.sanitize.suite.SanitizerSuite`; feeds
        #: the grant-lifecycle mirror.  ``None`` keeps every hook a
        #: single attribute test.
        self.sanitizer = sanitizer
        self._grants: dict[int, GrantRef] = {}
        self._next_ref = 1
        self.map_failures = 0
        self.copy_failures = 0
        self.copies = 0
        #: Batched ``GNTTABOP_copy`` invocations (one hypercall each).
        self.batched_copies = 0
        #: Per-copy hypercalls saved by batching.
        self.copy_hypercalls_saved = 0

    def bind_telemetry(self, registry) -> None:
        """Expose the ``xen_grant_*`` metrics on ``registry``."""
        from repro.obs import wire

        wire.wire_grants(registry, self)

    def grant_access(
        self, owner_domid: int, page_addr: int, readonly: bool = False
    ) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self._grants[ref] = GrantRef(ref, owner_domid, page_addr, readonly)
        if self.sanitizer is not None:
            self.sanitizer.on_grant(ref, owner_domid, page_addr)
        return ref

    def map_grant(self, ref: int, mapper_domid: int) -> GrantRef:
        if self.sanitizer is not None:
            # Before the existence check: mapping a retired ref raises
            # "no such grant", but the mirror knows it was ended.
            self.sanitizer.on_map_attempt(ref)
        grant = self._grants.get(ref)
        if grant is None:
            raise GrantError(f"no such grant ref {ref}")
        if grant.owner_domid == mapper_domid:
            raise GrantError("domain cannot map its own grant")
        if grant.mapped_by is not None:
            raise GrantError(f"grant {ref} already mapped")
        if self.faults is not None:
            fault = self.faults.fire(
                fault_sites.GRANT_MAP, ref=ref, mapper=mapper_domid
            )
            if fault is not None and fault.kind == "fail":
                self.map_failures += 1
                raise GrantMapError(
                    f"transient failure mapping grant {ref} "
                    f"for domain {mapper_domid}"
                )
        self.hypercalls.call("grant_table_op")
        grant.mapped_by = mapper_domid
        if self.sanitizer is not None:
            self.sanitizer.on_map(ref, mapper_domid)
        return grant

    def copy_grant(self, ref: int, requester_domid: int, nbytes: int) -> int:
        """``GNTTABOP_copy``: hypervisor-mediated copy through a grant.

        Returns the bytes copied; the grant must exist and be visible to
        the requester (its owner, or the domain it is mapped by).
        """
        if nbytes < 0:
            raise ValueError(f"negative copy size: {nbytes}")
        if self.sanitizer is not None:
            self.sanitizer.on_copy(ref)
        grant = self._grants.get(ref)
        if grant is None:
            raise GrantError(f"no such grant ref {ref}")
        if requester_domid not in (grant.owner_domid, grant.mapped_by):
            raise GrantError(
                f"grant {ref} not visible to domain {requester_domid}"
            )
        if self.faults is not None:
            fault = self.faults.fire(
                fault_sites.GRANT_COPY, ref=ref, bytes=nbytes
            )
            if fault is not None and fault.kind == "fail":
                self.copy_failures += 1
                raise GrantCopyError(
                    f"transient failure copying {nbytes} B via grant {ref}"
                )
        self.hypercalls.call("grant_table_op")
        self.copies += 1
        return nbytes

    def copy_grant_batch(
        self, ref: int, requester_domid: int, sizes: Iterable[int]
    ) -> int:
        """Vectorized ``GNTTABOP_copy``: one hypercall for many copies.

        Validates grant existence and visibility ONCE for the whole batch,
        charges a single ``grant_table_op`` hypercall, and accounts the
        per-byte cost as one vectorized sum.  The :data:`GRANT_COPY` fault
        hook still fires once per logical copy — an injected ``fail`` on
        any element fails the whole batch (nothing is partially copied;
        the caller's retry resubmits everything), exactly like a failed
        multi-op hypercall.  Returns the total bytes copied.
        """
        ops = list(sizes)
        for nbytes in ops:
            if nbytes < 0:
                raise ValueError(f"negative copy size: {nbytes}")
        if self.sanitizer is not None and ops:
            self.sanitizer.on_copy(ref)
        grant = self._grants.get(ref)
        if grant is None:
            raise GrantError(f"no such grant ref {ref}")
        if requester_domid not in (grant.owner_domid, grant.mapped_by):
            raise GrantError(
                f"grant {ref} not visible to domain {requester_domid}"
            )
        if not ops:
            return 0
        if self.faults is not None:
            for nbytes in ops:
                fault = self.faults.fire(
                    fault_sites.GRANT_COPY, ref=ref, bytes=nbytes
                )
                if fault is not None and fault.kind == "fail":
                    self.copy_failures += 1
                    raise GrantCopyError(
                        f"transient failure copying {nbytes} B via grant "
                        f"{ref} (batch of {len(ops)})"
                    )
        self.hypercalls.call("grant_table_op")
        self.copies += len(ops)
        self.batched_copies += 1
        self.copy_hypercalls_saved += len(ops) - 1
        return sum(ops)

    def unmap_grant(self, ref: int, mapper_domid: int) -> None:
        grant = self._grants.get(ref)
        if grant is None or grant.mapped_by != mapper_domid:
            if self.sanitizer is not None:
                self.sanitizer.on_unmap_attempt(ref, mapper_domid)
            if grant is None:
                raise GrantError(f"no such grant ref {ref}")
            raise GrantError(f"grant {ref} not mapped by domain {mapper_domid}")
        self.hypercalls.call("grant_table_op")
        grant.mapped_by = None
        if self.sanitizer is not None:
            self.sanitizer.on_unmap(ref, mapper_domid)

    def end_access(self, ref: int) -> None:
        grant = self._grants.get(ref)
        if self.sanitizer is not None:
            owner = -1 if grant is None else grant.owner_domid
            self.sanitizer.on_end(ref, owner)
        if grant is None:
            return
        if grant.mapped_by is not None:
            raise GrantError(f"grant {ref} still mapped")
        del self._grants[ref]

    @property
    def active_grants(self) -> int:
        return len(self._grants)
