"""Remus-style fault tolerance (§3.3's "fault tolerance").

High-frequency checkpoint replication: the primary's dirty state is
shipped to a backup every epoch, and *outbound network output is buffered
until the epoch that produced it is durably replicated* — the invariant
that makes failover externally transparent.

The model runs epochs over a workload description (dirty pages and output
packets per epoch) and accounts replication bandwidth, added output
latency, and failover position.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.memory import PAGE_SIZE


class FailoverError(RuntimeError):
    pass


@dataclass
class Epoch:
    index: int
    dirty_pages: int
    output_packets: int


@dataclass
class ReplicationStats:
    epochs: int = 0
    pages_shipped: int = 0
    packets_released: int = 0
    packets_buffered_peak: int = 0


class RemusReplicator:
    """Primary-side epoch engine with output commit."""

    def __init__(
        self,
        epoch_ms: float = 25.0,
        bandwidth_mbps: float = 10000.0,
    ) -> None:
        if epoch_ms <= 0:
            raise ValueError(f"epoch must be positive: {epoch_ms}")
        self.epoch_ms = epoch_ms
        self.bandwidth_pages_per_epoch = (
            bandwidth_mbps * 1e6 / 8.0 * (epoch_ms / 1e3) / PAGE_SIZE
        )
        self.stats = ReplicationStats()
        #: Packets generated but not yet released (their epoch is not yet
        #: acknowledged by the backup).
        self._buffered_output: list[int] = []
        #: Epoch index the backup has durably applied.
        self.backup_epoch = -1
        self._failed = False

    # ------------------------------------------------------------------
    # Epoch processing
    # ------------------------------------------------------------------
    def run_epoch(self, epoch: Epoch) -> float:
        """Replicate one epoch; returns the added output latency (ms) for
        packets produced in it."""
        if self._failed:
            raise FailoverError("primary already failed")
        if epoch.dirty_pages < 0 or epoch.output_packets < 0:
            raise ValueError("negative epoch accounting")
        self._buffered_output.append(epoch.output_packets)
        self.stats.packets_buffered_peak = max(
            self.stats.packets_buffered_peak,
            sum(self._buffered_output),
        )
        # Ship the dirty set; may take multiple epoch-lengths if large.
        ship_epochs = max(
            1.0, epoch.dirty_pages / self.bandwidth_pages_per_epoch
        )
        self.stats.epochs += 1
        self.stats.pages_shipped += epoch.dirty_pages
        # Backup acknowledges; output for this epoch is released.
        self.backup_epoch = epoch.index
        released = self._buffered_output.pop(0)
        self.stats.packets_released += released
        # Output latency: buffered for the replication time of its epoch.
        return ship_epochs * self.epoch_ms

    @property
    def buffered_packets(self) -> int:
        return sum(self._buffered_output)

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def fail_primary(self) -> int:
        """Kill the primary; returns the epoch the backup resumes from.

        Buffered (unreleased) output is discarded — clients never saw it,
        so the backup's re-execution is externally consistent.
        """
        self._failed = True
        discarded = self.buffered_packets
        self._buffered_output.clear()
        if self.backup_epoch < 0:
            raise FailoverError("backup never received a checkpoint")
        return self.backup_epoch

    def output_commit_invariant(self) -> bool:
        """No packet is released before its epoch is replicated."""
        return self.stats.packets_released >= 0 and (
            self.backup_epoch >= self.stats.epochs - 1
            or self.buffered_packets > 0
            or self.stats.epochs == 0
        )
