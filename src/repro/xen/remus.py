"""Remus-style fault tolerance (§3.3's "fault tolerance").

High-frequency checkpoint replication: the primary's dirty state is
shipped to a backup every epoch, and *outbound network output is buffered
until the epoch that produced it is durably replicated* — the invariant
that makes failover externally transparent.

The model runs epochs over a workload description (dirty pages and output
packets per epoch) and accounts replication bandwidth, added output
latency, and failover position.  Backup acknowledgements are injectable
(:data:`repro.faults.sites.REMUS_ACK`): a lost ack keeps the epoch's
output buffered — it is *never* released — until a later epoch's ack
covers it, and a failover with uncommitted epochs discards exactly the
unreleased output (clients never saw it, so the backup's re-execution
from the last acknowledged epoch is externally consistent).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.memory import PAGE_SIZE
from repro.faults import sites as fault_sites


class FailoverError(RuntimeError):
    pass


@dataclass
class Epoch:
    index: int
    dirty_pages: int
    output_packets: int


@dataclass
class ReplicationStats:
    epochs: int = 0
    pages_shipped: int = 0
    packets_released: int = 0
    packets_buffered_peak: int = 0
    acks_lost: int = 0
    packets_discarded: int = 0


class RemusReplicator:
    """Primary-side epoch engine with output commit."""

    def __init__(
        self,
        epoch_ms: float = 25.0,
        bandwidth_mbps: float = 10000.0,
        faults=None,
    ) -> None:
        if epoch_ms <= 0:
            raise ValueError(f"epoch must be positive: {epoch_ms}")
        self.epoch_ms = epoch_ms
        self.bandwidth_pages_per_epoch = (
            bandwidth_mbps * 1e6 / 8.0 * (epoch_ms / 1e3) / PAGE_SIZE
        )
        #: Optional :class:`repro.faults.plan.FaultEngine`.
        self.faults = faults
        self.stats = ReplicationStats()
        #: Output buffered per epoch: ``(epoch_index, packets)``, oldest
        #: first; an entry leaves the buffer only when its epoch (or a
        #: later one) is acknowledged, or when failover discards it.
        self._buffered_output: list[tuple[int, int]] = []
        #: Epoch index the backup has durably applied.
        self.backup_epoch = -1
        self._failed = False
        self._packets_produced = 0

    # ------------------------------------------------------------------
    # Epoch processing
    # ------------------------------------------------------------------
    def run_epoch(self, epoch: Epoch) -> float:
        """Replicate one epoch; returns the added output latency (ms) for
        packets produced in it.

        If the backup's acknowledgement is lost (injected), the epoch's
        output stays buffered and :attr:`backup_epoch` does not advance;
        the next acknowledged epoch releases everything up to itself.
        """
        if self._failed:
            raise FailoverError("primary already failed")
        if epoch.dirty_pages < 0 or epoch.output_packets < 0:
            raise ValueError("negative epoch accounting")
        self._buffered_output.append((epoch.index, epoch.output_packets))
        self._packets_produced += epoch.output_packets
        self.stats.packets_buffered_peak = max(
            self.stats.packets_buffered_peak,
            self.buffered_packets,
        )
        # Ship the dirty set; may take multiple epoch-lengths if large.
        ship_epochs = max(
            1.0, epoch.dirty_pages / self.bandwidth_pages_per_epoch
        )
        self.stats.epochs += 1
        self.stats.pages_shipped += epoch.dirty_pages
        acked = True
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.REMUS_ACK, epoch=epoch.index)
            if fault is not None and fault.kind == "fail":
                acked = False
                self.stats.acks_lost += 1
                self.faults.record_retry(
                    fault_sites.REMUS_ACK, epoch=epoch.index
                )
        if acked:
            was_lagging = len(self._buffered_output) > 1
            self.backup_epoch = epoch.index
            released = 0
            while (
                self._buffered_output
                and self._buffered_output[0][0] <= epoch.index
            ):
                released += self._buffered_output.pop(0)[1]
            self.stats.packets_released += released
            if was_lagging and self.faults is not None:
                # This ack also committed previously-unacked epochs.
                self.faults.record_recovered(
                    fault_sites.REMUS_ACK, epoch=epoch.index
                )
        # Output latency: buffered for the replication time of its epoch
        # (an unacknowledged epoch waits at least one more epoch-length).
        latency_epochs = ship_epochs if acked else ship_epochs + 1.0
        return latency_epochs * self.epoch_ms

    @property
    def buffered_packets(self) -> int:
        return sum(packets for _, packets in self._buffered_output)

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def fail_primary(self) -> int:
        """Kill the primary; returns the epoch the backup resumes from.

        Buffered (unreleased) output is discarded — clients never saw it,
        so the backup's re-execution is externally consistent.  Discarded
        packets are *never* counted as released.
        """
        if self.backup_epoch < 0:
            raise FailoverError("backup never received a checkpoint")
        self._failed = True
        discarded = self.buffered_packets
        self.stats.packets_discarded += discarded
        self._buffered_output.clear()
        return self.backup_epoch

    def output_commit_invariant(self) -> bool:
        """No packet escapes before its epoch is replicated.

        Holds exactly when (a) nothing buffered belongs to an epoch the
        backup already acknowledged, and (b) every packet ever produced is
        accounted for as released, still buffered, or discarded at
        failover.
        """
        if any(
            index <= self.backup_epoch for index, _ in self._buffered_output
        ):
            return False
        accounted = (
            self.stats.packets_released
            + self.buffered_packets
            + self.stats.packets_discarded
        )
        return accounted == self._packets_produced
