"""Process scheduler model (CFS-style runqueue).

Two cost effects matter for the paper's figures:

* per-switch cost grows with runqueue size (rbtree depth + cache/TLB
  pressure) — this is what makes Docker's *flat* scheduling of 4N
  processes degrade faster than hierarchical scheduling in Fig 8;
* switching between processes that share kernel global mappings (X-LibOS,
  §4.3) skips the kernel-range TLB refill that PV guests pay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.guest.process import Process, ProcessState
from repro.perf.costs import CostModel


@dataclass
class SwitchBreakdown:
    base_ns: float
    queue_ns: float
    tlb_ns: float
    mmu_ns: float
    cache_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return (
            self.base_ns
            + self.queue_ns
            + self.tlb_ns
            + self.mmu_ns
            + self.cache_ns
        )


class RunQueue:
    """One kernel's runqueue over all its runnable processes."""

    def __init__(
        self,
        costs: CostModel | None = None,
        kpti: bool = False,
        global_kernel_mappings: bool = False,
        mmu_hypercall_ns: float = 0.0,
    ) -> None:
        self.costs = costs or CostModel()
        self.kpti = kpti
        #: §4.3: true for the X-LibOS (kernel entries survive the switch).
        self.global_kernel_mappings = global_kernel_mappings
        #: >0 when page-table installs go through the hypervisor
        #: (X-Containers and PV guests).
        self.mmu_hypercall_ns = mmu_hypercall_ns
        self._procs: list[Process] = []
        self.switches = 0

    def add(self, proc: Process) -> None:
        self._procs.append(proc)

    def remove(self, proc: Process) -> None:
        self._procs.remove(proc)

    @property
    def nr_running(self) -> int:
        return sum(
            1 for p in self._procs if p.state is not ProcessState.ZOMBIE
        )

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def switch_cost(self, nr_running: int | None = None) -> SwitchBreakdown:
        """Cost of one context switch with the current queue depth."""
        n = nr_running if nr_running is not None else max(1, self.nr_running)
        base = self.costs.ctx_switch_process_ns
        if self.kpti:
            base += self.costs.ctx_switch_kpti_extra_ns
        # rbtree pick grows with queue depth.
        queue = base * 0.12 * math.log2(max(2, n))
        tlb = self.costs.tlb_flush_ns
        if not self.global_kernel_mappings:
            tlb += self.costs.tlb_kernel_refill_ns
        mmu = self.mmu_hypercall_ns
        # Working-set eviction: every runnable task's footprint competes
        # for the same caches (the Fig 8 flat-scheduling penalty).
        cache = self.costs.cache_pollution_per_task_ns * n
        return SwitchBreakdown(base, queue, tlb, mmu, cache)

    def switch_cost_ns(self, nr_running: int | None = None) -> float:
        return self.switch_cost(nr_running).total_ns

    def context_switch(self, clock=None) -> float:
        """Perform (account) one switch; returns its cost."""
        cost = self.switch_cost_ns()
        self.switches += 1
        if clock is not None:
            clock.advance(cost)
        return cost

    # ------------------------------------------------------------------
    # Throughput sharing (used by the scalability experiment)
    # ------------------------------------------------------------------
    def effective_capacity(
        self,
        interval_ns: float,
        cpus: int,
        quantum_ns: float = 6e6,
        nr_running: int | None = None,
    ) -> float:
        """CPU nanoseconds actually available to processes over
        ``interval_ns`` on ``cpus`` cores, after switch overhead.

        CFS spreads its scheduling latency over all runnable tasks, so the
        per-task quantum shrinks as the runqueue grows (down to a
        min-granularity floor) while each switch simultaneously gets more
        expensive (cache pollution).  Overhead therefore grows
        superlinearly with oversubscription — the Fig 8 effect.
        """
        n = nr_running if nr_running is not None else self.nr_running
        total = interval_ns * cpus
        if n <= cpus or n == 0:
            return total
        effective_quantum = max(quantum_ns * cpus / n, 0.1e6)
        switches = total / effective_quantum
        overhead = switches * self.switch_cost_ns(n)
        return max(0.0, total - overhead)
