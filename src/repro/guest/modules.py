"""Loadable kernel modules (§5.7).

    "The X-Containers platform enables applications that require customized
     kernel modules to run in containers ... In Docker environments, such
     modules require root privilege and expose the host network to the
     container directly, raising security concerns."
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Modules the substrate knows how to model.
KNOWN_MODULES = {
    "ip_vs": "IP Virtual Server (kernel-level load balancing)",
    "ip_vs_rr": "IPVS round-robin scheduler",
    "rdma_rxe": "Soft-RoCE software RDMA",
    "siw": "Soft-iWARP software RDMA",
    "nf_nat": "netfilter NAT engine",
}


class ModuleLoadError(PermissionError):
    pass


@dataclass
class ModuleRegistry:
    """Tracks which modules a kernel instance has loaded."""

    #: False inside a Docker container: no root on the host kernel.
    allowed: bool = True
    loaded: set[str] = field(default_factory=set)

    def load(self, name: str) -> None:
        if name not in KNOWN_MODULES:
            raise KeyError(f"unknown module {name!r}")
        if not self.allowed:
            raise ModuleLoadError(
                f"loading {name!r} requires root privilege on the host "
                "kernel, which containers do not have"
            )
        self.loaded.add(name)

    def unload(self, name: str) -> None:
        self.loaded.discard(name)

    def is_loaded(self, name: str) -> bool:
        return name in self.loaded

    def require(self, name: str) -> None:
        if not self.is_loaded(name):
            raise ModuleLoadError(f"module {name!r} is not loaded")
