"""A RAM filesystem with POSIX-ish file descriptors.

Backs the File Copy microbenchmark (Fig 5), ``open/read/write/close/dup``
syscalls, and the Docker-image contents the workloads serve.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field


class VfsError(OSError):
    def __init__(self, err: int, path: str = "") -> None:
        super().__init__(err, errno.errorcode.get(err, str(err)), path)


O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000


@dataclass
class Inode:
    path: str
    data: bytearray = field(default_factory=bytearray)
    mode: int = 0o644

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class OpenFile:
    """One open file description (shared by dup'ed descriptors)."""

    inode: Inode
    flags: int
    offset: int = 0

    @property
    def readable(self) -> bool:
        return (self.flags & 0o3) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & 0o3) in (O_WRONLY, O_RDWR)


class RamFS:
    """Flat-namespace in-memory filesystem."""

    def __init__(self) -> None:
        self._inodes: dict[str, Inode] = {}

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------
    def create(self, path: str, data: bytes = b"", mode: int = 0o644) -> Inode:
        inode = Inode(path, bytearray(data), mode)
        self._inodes[path] = inode
        return inode

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def stat_size(self, path: str) -> int:
        return self._lookup(path).size

    def unlink(self, path: str) -> None:
        if path not in self._inodes:
            raise VfsError(errno.ENOENT, path)
        del self._inodes[path]

    def paths(self) -> list[str]:
        return sorted(self._inodes)

    def _lookup(self, path: str) -> Inode:
        inode = self._inodes.get(path)
        if inode is None:
            raise VfsError(errno.ENOENT, path)
        return inode

    # ------------------------------------------------------------------
    # File operations (on open-file descriptions)
    # ------------------------------------------------------------------
    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644,
             umask: int = 0o022) -> OpenFile:
        if not self.exists(path):
            if not flags & O_CREAT:
                raise VfsError(errno.ENOENT, path)
            self.create(path, mode=mode & ~umask)
        inode = self._lookup(path)
        handle = OpenFile(inode, flags)
        if flags & O_TRUNC and handle.writable:
            inode.data.clear()
        if flags & O_APPEND:
            handle.offset = inode.size
        return handle

    def read(self, handle: OpenFile, count: int) -> bytes:
        if not handle.readable:
            raise VfsError(errno.EBADF, handle.inode.path)
        if count < 0:
            raise VfsError(errno.EINVAL, handle.inode.path)
        data = bytes(handle.inode.data[handle.offset : handle.offset + count])
        handle.offset += len(data)
        return data

    def write(self, handle: OpenFile, data: bytes) -> int:
        if not handle.writable:
            raise VfsError(errno.EBADF, handle.inode.path)
        end = handle.offset + len(data)
        inode_data = handle.inode.data
        if handle.offset > len(inode_data):
            inode_data.extend(b"\x00" * (handle.offset - len(inode_data)))
        inode_data[handle.offset : end] = data
        handle.offset = end
        return len(data)

    def lseek(self, handle: OpenFile, offset: int) -> int:
        if offset < 0:
            raise VfsError(errno.EINVAL, handle.inode.path)
        handle.offset = offset
        return offset
