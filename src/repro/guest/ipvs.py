"""IPVS — IP Virtual Server, kernel-level load balancing (§5.7).

    "X-Containers supports HAProxy, but can also use kernel-level load
     balancing solutions, such as IPVS ... IPVS requires inserting new
     kernel modules and changing iptable and ARP table rules, which is not
     possible in Docker without root privilege and access to the host
     network."

Two forwarding modes are modelled:

* **NAT** — the director rewrites both request and response; responses flow
  back through it, so it does roughly the work of a full proxy minus the
  user-space hop;
* **Direct routing (DR)** — the director only rewrites the inbound MAC;
  responses go straight from the real server to the client, so the
  director's per-request work collapses (the 2.5× shift in Fig 9).

Two schedulers are modelled (the ``ip_vs_rr`` / ``ip_vs_wlc`` modules):

* **wrr** — weighted round-robin, the paper's Fig 9 setup;
* **wlc** — weighted least-connection, what a production fleet runs:
  each new connection goes to the real server with the smallest
  ``(active + 1) / weight`` (ties break in insertion order, so
  scheduling is deterministic).

Real servers can be added and removed while connections are live:
``remove_server`` with draining stops routing *new* connections to the
server immediately and finalizes the removal when its last active
connection closes; ``kill_server`` models a backend death — every active
connection on it fails and the server never receives another one.  All
churn is accounted in :class:`IpvsStats`, and the conservation invariant
``scheduled == sum(served)`` holds across adds, drains, removals and
deaths (see ``tests/lb/test_ipvs.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.guest.modules import ModuleRegistry
from repro.perf.costs import CostModel


class IpvsMode(enum.Enum):
    NAT = "nat"
    DIRECT_ROUTING = "dr"


class ServerState(enum.Enum):
    ACTIVE = "active"
    DRAINING = "draining"
    DEAD = "dead"
    #: Removal finalized — off the director's books except accounting.
    REMOVED = "removed"


@dataclass
class RealServer:
    host: str
    port: int
    weight: int = 1
    served: int = 0
    #: Connections currently assigned to this server.
    active_conns: int = 0
    state: ServerState = ServerState.ACTIVE

    @property
    def schedulable(self) -> bool:
        return self.state is ServerState.ACTIVE


@dataclass
class IpvsStats:
    scheduled: int = 0
    nat_translations: int = 0
    dr_forwards: int = 0
    # -- connection churn ---------------------------------------------
    conns_opened: int = 0
    conns_closed: int = 0
    #: Connections that died with their server (kill / forced removal).
    conns_failed: int = 0
    # -- server churn --------------------------------------------------
    servers_added: int = 0
    servers_removed: int = 0
    drains_started: int = 0
    backend_deaths: int = 0


class IPVS:
    """One IPVS director instance living inside a kernel."""

    def __init__(
        self,
        modules: ModuleRegistry,
        mode: IpvsMode,
        costs: CostModel | None = None,
        scheduler: str = "wrr",
    ) -> None:
        modules.require("ip_vs")
        if mode is IpvsMode.DIRECT_ROUTING:
            # DR additionally needs ARP rules on the backends; the module
            # dependency stands in for that plumbing.
            modules.require("ip_vs_rr")
        if scheduler not in ("wrr", "wlc"):
            raise ValueError(
                f"unknown IPVS scheduler {scheduler!r} (known: wrr, wlc)"
            )
        self.mode = mode
        self.scheduler = scheduler
        self.costs = costs or CostModel()
        self._servers: list[RealServer] = []
        #: Finalized removals, kept so stats conservation can be audited.
        self._removed: list[RealServer] = []
        self._next = 0
        self.stats = IpvsStats()

    # ------------------------------------------------------------------
    # Server set management
    # ------------------------------------------------------------------
    def add_server(self, host: str, port: int, weight: int = 1) -> RealServer:
        if weight < 1:
            raise ValueError(f"weight must be >= 1: {weight}")
        server = RealServer(host, port, weight)
        self._servers.append(server)
        self.stats.servers_added += 1
        return server

    def _find(self, host: str, port: int) -> RealServer:
        for server in self._servers:
            if server.host == host and server.port == port:
                return server
        raise KeyError(f"no real server {host}:{port}")

    def remove_server(self, host: str, port: int, drain: bool = True) -> int:
        """Remove a real server; returns the number of connections failed.

        With ``drain=True`` (the default) the server stops receiving new
        connections immediately and the removal finalizes when its last
        active connection closes — no connection is reset.  With
        ``drain=False`` the removal is immediate and every active
        connection on the server fails.
        """
        server = self._find(host, port)
        if server.state is ServerState.DEAD:
            raise ValueError(f"server {host}:{port} is dead, not removable")
        if drain and server.active_conns > 0:
            if server.state is not ServerState.DRAINING:
                server.state = ServerState.DRAINING
                self.stats.drains_started += 1
            return 0
        failed = server.active_conns
        if failed:
            self.stats.conns_failed += failed
            server.active_conns = 0
        self._finalize_removal(server)
        return failed

    def kill_server(self, host: str, port: int) -> int:
        """A backend death: active connections fail, nothing new routed.

        The dead server stays on the books (``servers`` still lists it)
        so the director's accounting remains conserved; returns the
        number of connections that died with it.
        """
        server = self._find(host, port)
        if server.state is ServerState.DEAD:
            return 0
        failed = server.active_conns
        server.active_conns = 0
        server.state = ServerState.DEAD
        self.stats.conns_failed += failed
        self.stats.backend_deaths += 1
        return failed

    def _finalize_removal(self, server: RealServer) -> None:
        self._servers.remove(server)
        self._removed.append(server)
        server.state = ServerState.REMOVED
        self.stats.servers_removed += 1

    @property
    def servers(self) -> list[RealServer]:
        return list(self._servers)

    @property
    def active_servers(self) -> list[RealServer]:
        return [s for s in self._servers if s.state is ServerState.ACTIVE]

    @property
    def draining_servers(self) -> list[RealServer]:
        return [s for s in self._servers if s.state is ServerState.DRAINING]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self) -> RealServer:
        """Pick the next real server (wrr or wlc, per ``scheduler``).

        Draining and dead servers never receive new work ("no requests
        routed to a removed backend").
        """
        candidates = [s for s in self._servers if s.schedulable]
        if not candidates:
            raise RuntimeError("IPVS has no schedulable real servers")
        if self.scheduler == "wlc":
            server = min(
                candidates,
                key=lambda s: (s.active_conns + 1) / s.weight,
            )
        else:
            expanded: list[RealServer] = []
            for candidate in candidates:
                expanded.extend([candidate] * candidate.weight)
            server = expanded[self._next % len(expanded)]
            self._next += 1
        server.served += 1
        self.stats.scheduled += 1
        return server

    # ------------------------------------------------------------------
    # Connection lifecycle (IPVS balances per connection, not per request)
    # ------------------------------------------------------------------
    def open_connection(self) -> RealServer:
        """Schedule a new connection onto a real server."""
        server = self.schedule()
        server.active_conns += 1
        self.stats.conns_opened += 1
        return server

    def close_connection(self, server: RealServer) -> None:
        """Close one connection; finalizes a drained server's removal."""
        if server.active_conns < 1:
            raise ValueError(
                f"no active connections on {server.host}:{server.port}"
            )
        server.active_conns -= 1
        self.stats.conns_closed += 1
        if (
            server.state is ServerState.DRAINING
            and server.active_conns == 0
        ):
            self._finalize_removal(server)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_served(self) -> int:
        """Requests scheduled across live, dead and removed servers."""
        return sum(s.served for s in self._servers) + sum(
            s.served for s in self._removed
        )

    def active_connections(self) -> int:
        return sum(s.active_conns for s in self._servers)

    def conservation_ok(self) -> bool:
        """The director's books balance.

        Every scheduled decision landed on exactly one server (live,
        dead or removed), and every opened connection either closed,
        failed, or is still active.
        """
        conns_balanced = self.stats.conns_opened == (
            self.stats.conns_closed
            + self.stats.conns_failed
            + self.active_connections()
        )
        return self.stats.scheduled == self.total_served() and conns_balanced

    def director_cost_ns(self, request_bytes: int, response_bytes: int) -> float:
        """Per-request CPU cost on the director."""
        # IP-level processing plus connection tracking; no TCP endpoint.
        base = self.costs.host_netstack_ns * 0.75
        if self.mode is IpvsMode.NAT:
            self.stats.nat_translations += 1
            # Rewrite + forward both directions, plus response bytes
            # flowing back through the director.
            return (
                base
                + 2 * self.costs.iptables_dnat_ns
                + (request_bytes + response_bytes)
                * self.costs.copy_per_byte_ns
            )
        self.stats.dr_forwards += 1
        # DR: inbound MAC rewrite only; responses bypass the director.
        return (
            base * 0.45
            + self.costs.iptables_dnat_ns * 0.5
            + request_bytes * self.costs.copy_per_byte_ns
        )
