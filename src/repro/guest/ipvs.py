"""IPVS — IP Virtual Server, kernel-level load balancing (§5.7).

    "X-Containers supports HAProxy, but can also use kernel-level load
     balancing solutions, such as IPVS ... IPVS requires inserting new
     kernel modules and changing iptable and ARP table rules, which is not
     possible in Docker without root privilege and access to the host
     network."

Two forwarding modes are modelled:

* **NAT** — the director rewrites both request and response; responses flow
  back through it, so it does roughly the work of a full proxy minus the
  user-space hop;
* **Direct routing (DR)** — the director only rewrites the inbound MAC;
  responses go straight from the real server to the client, so the
  director's per-request work collapses (the 2.5× shift in Fig 9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.guest.modules import ModuleRegistry
from repro.perf.costs import CostModel


class IpvsMode(enum.Enum):
    NAT = "nat"
    DIRECT_ROUTING = "dr"


@dataclass
class RealServer:
    host: str
    port: int
    weight: int = 1
    served: int = 0


@dataclass
class IpvsStats:
    scheduled: int = 0
    nat_translations: int = 0
    dr_forwards: int = 0


class IPVS:
    """One IPVS director instance living inside a kernel."""

    def __init__(
        self,
        modules: ModuleRegistry,
        mode: IpvsMode,
        costs: CostModel | None = None,
    ) -> None:
        modules.require("ip_vs")
        if mode is IpvsMode.DIRECT_ROUTING:
            # DR additionally needs ARP rules on the backends; the module
            # dependency stands in for that plumbing.
            modules.require("ip_vs_rr")
        self.mode = mode
        self.costs = costs or CostModel()
        self._servers: list[RealServer] = []
        self._next = 0
        self.stats = IpvsStats()

    def add_server(self, host: str, port: int, weight: int = 1) -> None:
        if weight < 1:
            raise ValueError(f"weight must be >= 1: {weight}")
        self._servers.append(RealServer(host, port, weight))

    @property
    def servers(self) -> list[RealServer]:
        return list(self._servers)

    def schedule(self) -> RealServer:
        """Weighted round-robin pick of the next real server."""
        if not self._servers:
            raise RuntimeError("IPVS has no real servers configured")
        expanded: list[RealServer] = []
        for server in self._servers:
            expanded.extend([server] * server.weight)
        server = expanded[self._next % len(expanded)]
        self._next += 1
        server.served += 1
        self.stats.scheduled += 1
        return server

    def director_cost_ns(self, request_bytes: int, response_bytes: int) -> float:
        """Per-request CPU cost on the director."""
        # IP-level processing plus connection tracking; no TCP endpoint.
        base = self.costs.host_netstack_ns * 0.75
        if self.mode is IpvsMode.NAT:
            self.stats.nat_translations += 1
            # Rewrite + forward both directions, plus response bytes
            # flowing back through the director.
            return (
                base
                + 2 * self.costs.iptables_dnat_ns
                + (request_bytes + response_bytes)
                * self.costs.copy_per_byte_ns
            )
        self.stats.dr_forwards += 1
        # DR: inbound MAC rewrite only; responses bypass the director.
        return (
            base * 0.45
            + self.costs.iptables_dnat_ns * 0.5
            + request_bytes * self.costs.copy_per_byte_ns
        )
