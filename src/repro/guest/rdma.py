"""Software RDMA — Soft-iWARP / Soft-RoCE (§5.7).

    "For example, X-Containers can run software RDMA (both Soft-iwarp and
     Soft-ROCE) applications.  In Docker environments, such modules
     require root privilege and expose the host network to the container
     directly, raising security concerns."

The model: a software RDMA device is a kernel module providing queue
pairs whose data path bypasses the socket layer — per-message cost is a
fraction of a TCP round trip because there is no per-message syscall, no
sk_buff churn, and completion is polled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.guest.modules import ModuleRegistry
from repro.perf.costs import CostModel


class RdmaProvider(enum.Enum):
    SOFT_IWARP = "siw"
    SOFT_ROCE = "rdma_rxe"


class RdmaError(RuntimeError):
    pass


@dataclass
class QueuePairStats:
    sends: int = 0
    recvs: int = 0
    bytes_moved: int = 0
    completions_polled: int = 0


@dataclass
class WorkCompletion:
    wr_id: int
    nbytes: int
    opcode: str


class QueuePair:
    """One RDMA queue pair between two endpoints."""

    def __init__(self, device: "SoftRdmaDevice", qp_num: int) -> None:
        self.device = device
        self.qp_num = qp_num
        self.stats = QueuePairStats()
        self._completions: list[WorkCompletion] = []
        self._next_wr = 1
        self.connected = False

    def connect(self) -> None:
        self.connected = True

    def post_send(self, nbytes: int) -> int:
        """Post a send work request; returns the wr_id."""
        if not self.connected:
            raise RdmaError("queue pair is not connected")
        if nbytes < 0:
            raise RdmaError(f"negative message size {nbytes}")
        wr_id = self._next_wr
        self._next_wr += 1
        self.stats.sends += 1
        self.stats.bytes_moved += nbytes
        self._completions.append(WorkCompletion(wr_id, nbytes, "SEND"))
        self.device.charge_message(nbytes)
        return wr_id

    def post_recv(self, nbytes: int) -> int:
        if not self.connected:
            raise RdmaError("queue pair is not connected")
        wr_id = self._next_wr
        self._next_wr += 1
        self.stats.recvs += 1
        self._completions.append(WorkCompletion(wr_id, nbytes, "RECV"))
        return wr_id

    def poll_cq(self, max_entries: int = 16) -> list[WorkCompletion]:
        """Poll the completion queue — no syscall, no interrupt."""
        taken = self._completions[:max_entries]
        del self._completions[: len(taken)]
        self.stats.completions_polled += len(taken)
        return taken


class SoftRdmaDevice:
    """A software RDMA device inside one kernel.

    Creating it requires loading the provider's kernel module — which is
    exactly what a Docker tenant cannot do (§5.7).
    """

    #: Per-message CPU cost as a fraction of a TCP request/response.
    MESSAGE_COST_FRACTION = 0.35

    def __init__(
        self,
        modules: ModuleRegistry,
        provider: RdmaProvider,
        costs: CostModel | None = None,
        clock=None,
    ) -> None:
        modules.load(provider.value)  # raises ModuleLoadError in Docker
        self.provider = provider
        self.costs = costs or CostModel()
        self.clock = clock
        self._qps: list[QueuePair] = []

    def create_qp(self) -> QueuePair:
        qp = QueuePair(self, len(self._qps) + 1)
        self._qps.append(qp)
        return qp

    def per_message_cost_ns(self, nbytes: int) -> float:
        tcp_like = (
            self.costs.host_netstack_ns * self.MESSAGE_COST_FRACTION
            + nbytes * self.costs.copy_per_byte_ns
        )
        return tcp_like

    def charge_message(self, nbytes: int) -> None:
        if self.clock is not None:
            self.clock.advance(self.per_message_cost_ns(nbytes))

    def speedup_vs_sockets(self, nbytes: int, syscall_cost_ns: float) -> float:
        """How much one RDMA message saves vs a socket send of the same
        size (2 syscalls + full stack traversal)."""
        socket_cost = (
            2 * syscall_cost_ns
            + self.costs.host_netstack_ns
            + nbytes * self.costs.copy_per_byte_ns
        )
        return socket_cost / self.per_message_cost_ns(nbytes)
