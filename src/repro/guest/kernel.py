"""The guest kernel: process lifecycle, file descriptors, syscall services.

One :class:`GuestKernel` instance plays whichever role the platform needs —
shared host kernel, per-VM guest kernel, or X-LibOS backend.  Two interfaces
are exposed:

* a **Python-level API** (``fork`` / ``execve`` / ``open`` / ``pipe`` /...)
  used by the workload models and the UnixBench profiles; it charges
  *kernel work* to the clock (crossing costs are the platform's job);
* the **emulator services interface** (:meth:`invoke`), making the kernel a
  valid backend for :class:`repro.core.xlibos.XLibOS` so machine code can
  issue real syscalls against it.

Page-table manipulation goes through a pluggable MMU backend: native
(direct writes) for host kernels, hypercall-mediated for PV guests and
X-LibOS — the §5.4 reason X-Containers lose the Process Creation and
Context Switching microbenchmarks.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import Protocol

from repro.guest.config import KernelConfig
from repro.guest.modules import ModuleRegistry
from repro.guest.netfilter import Netfilter
from repro.guest.netstack import NetDevice, NetStack
from repro.guest.pipe import Pipe, PipeEnd
from repro.guest.process import AddressSpace, Process, ProcessState
from repro.guest.sched import RunQueue
from repro.guest.signals import SignalError, SignalSubsystem
from repro.guest.vfs import O_CREAT, O_RDONLY, OpenFile, RamFS, VfsError
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel

#: x86-64 syscall numbers used across the repository.
SYS = {
    "read": 0,
    "write": 1,
    "open": 2,
    "close": 3,
    "rt_sigreturn": 15,
    "pipe": 22,
    "dup": 32,
    "getpid": 39,
    "fork": 57,
    "execve": 59,
    "exit": 60,
    "wait4": 61,
    "umask": 95,
    "getuid": 102,
}


class MmuBackend(Protocol):
    """Who applies page-table updates, and at what cost."""

    def pt_update(self, entries: int) -> float:
        """Apply ``entries`` page-table updates; returns cost in ns."""


class NativeMmu:
    """Direct page-table writes (a kernel running in ring 0)."""

    def __init__(self, costs: CostModel, clock: SimClock | None = None) -> None:
        self.costs = costs
        self.clock = clock
        self.updates = 0

    def pt_update(self, entries: int) -> float:
        self.updates += entries
        cost = entries * self.costs.fork_per_pt_page_ns
        if self.clock is not None:
            self.clock.advance(cost)
        return cost


class HypercallMmu:
    """Page-table updates validated by the hypervisor (PV / X-Kernel)."""

    def __init__(
        self,
        costs: CostModel,
        clock: SimClock | None = None,
        mmu_update=None,
    ) -> None:
        self.costs = costs
        self.clock = clock
        #: Optional hook into an :class:`repro.core.xkernel.XKernel` so its
        #: hypercall counters see these updates too.
        self._mmu_update = mmu_update
        self.updates = 0

    def pt_update(self, entries: int) -> float:
        self.updates += entries
        if self._mmu_update is not None:
            self._mmu_update(entries)
            return entries * self.costs.pt_update_hypercall_ns
        cost = entries * self.costs.pt_update_hypercall_ns
        if self.clock is not None:
            self.clock.advance(cost)
        return cost


@dataclass
class KernelStats:
    forks: int = 0
    execs: int = 0
    exits: int = 0
    syscalls: int = 0


class GuestKernel:
    """A Linux-like kernel instance."""

    def __init__(
        self,
        config: KernelConfig | None = None,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        mmu: MmuBackend | None = None,
        net_device: NetDevice = NetDevice.BRIDGE,
    ) -> None:
        self.config = config or KernelConfig()
        self.costs = costs or CostModel()
        self.clock = clock
        self.mmu = mmu or NativeMmu(self.costs, clock)
        self.vfs = RamFS()
        self.modules = ModuleRegistry(allowed=self.config.modules_allowed)
        self.netfilter = Netfilter(self.costs)
        self.netstack = NetStack(self.costs, self.config, net_device)
        self.runqueue = RunQueue(
            self.costs,
            kpti=self.config.kpti,
            global_kernel_mappings=self.config.single_concern_tuned,
            mmu_hypercall_ns=(
                # CR3 install + validated PT update both go through the
                # hypervisor (§5.4).
                self.costs.pt_update_hypercall_ns + self.costs.hypercall_ns
                if isinstance(self.mmu, HypercallMmu)
                else 0.0
            ),
        )
        self.stats = KernelStats()
        self.signals = SignalSubsystem(
            terminate=lambda pid, sig: self.exit(pid, 128 + sig)
        )
        self._procs: dict[int, Process] = {}
        self._next_pid = 1
        self._next_asid = 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _charge(self, ns: float) -> None:
        if self.clock is not None:
            self.clock.advance(ns)

    def process(self, pid: int) -> Process:
        proc = self._procs.get(pid)
        if proc is None:
            raise KeyError(f"no such process {pid}")
        return proc

    @property
    def processes(self) -> list[Process]:
        return list(self._procs.values())

    @property
    def nr_processes(self) -> int:
        return len(self._procs)

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def spawn(self, name: str, pt_pages: int | None = None) -> Process:
        """Create an initial process (what the bootloader does, §4.5)."""
        aspace = AddressSpace(
            self._next_asid,
            pt_pages if pt_pages is not None else self.costs.default_pt_pages,
            kernel_global_mappings=self.config.single_concern_tuned,
        )
        self._next_asid += 1
        proc = Process(self._next_pid, 0, name, aspace)
        self._next_pid += 1
        self._procs[proc.pid] = proc
        self.runqueue.add(proc)
        return proc

    def fork(self, parent_pid: int) -> Process:
        """fork(2): COW-clone the parent."""
        parent = self.process(parent_pid)
        self.stats.forks += 1
        # The generic kernel work of fork scales with the kernel's tuning;
        # the page-table component below does not (it is mechanical).
        self._charge(
            self.costs.fork_base_ns * self.config.kernel_work_factor()
        )
        self.mmu.pt_update(parent.aspace.pt_pages)
        child_aspace = parent.aspace.cow_clone(self._next_asid)
        self._next_asid += 1
        child = Process(
            self._next_pid, parent.pid, parent.name, child_aspace,
            umask=parent.umask, uid=parent.uid,
        )
        self._next_pid += 1
        # fd table is shared by reference semantics of dup-on-fork.
        child.fds = dict(parent.fds)
        parent.children.append(child.pid)
        self._procs[child.pid] = child
        self.runqueue.add(child)
        return child

    def execve(self, pid: int, name: str) -> None:
        """execve(2): overlay a new image (the Execl benchmark, Fig 5)."""
        proc = self.process(pid)
        self.stats.execs += 1
        self._charge(
            self.costs.exec_base_ns * self.config.kernel_work_factor()
        )
        # Tear down and rebuild the address space.
        self.mmu.pt_update(proc.aspace.pt_pages)
        proc.name = name
        proc.aspace = AddressSpace(
            self._next_asid,
            self.costs.default_pt_pages,
            kernel_global_mappings=self.config.single_concern_tuned,
        )
        self._next_asid += 1

    def exit(self, pid: int, code: int = 0) -> None:
        proc = self.process(pid)
        self.stats.exits += 1
        proc.state = ProcessState.ZOMBIE
        proc.exit_code = code
        self.mmu.pt_update(proc.aspace.pt_pages // 2)

    def waitpid(self, parent_pid: int, child_pid: int) -> int:
        parent = self.process(parent_pid)
        child = self.process(child_pid)
        if child.ppid != parent.pid:
            raise VfsError(errno.ECHILD)
        if child.state is not ProcessState.ZOMBIE:
            raise VfsError(errno.EAGAIN)
        code = child.exit_code or 0
        self.runqueue.remove(child)
        del self._procs[child.pid]
        parent.children.remove(child.pid)
        return code

    def context_switch(self) -> float:
        """One process context switch on this kernel's runqueue."""
        return self.runqueue.context_switch(self.clock)

    # ------------------------------------------------------------------
    # File & pipe syscalls (Python-level)
    # ------------------------------------------------------------------
    def open(self, pid: int, path: str, flags: int = O_RDONLY) -> int:
        proc = self.process(pid)
        self._charge(self.costs.vfs_op_ns)
        handle = self.vfs.open(path, flags, umask=proc.umask)
        return proc.install_fd(handle)

    def read(self, pid: int, fd: int, count: int) -> bytes:
        proc = self.process(pid)
        obj = self._fd(proc, fd)
        if isinstance(obj, OpenFile):
            data = self.vfs.read(obj, count)
        elif isinstance(obj, PipeEnd):
            if obj.writable:
                raise VfsError(errno.EBADF)
            data = obj.pipe.read(count)
            self._charge(self.costs.pipe_op_ns)
        else:
            raise VfsError(errno.EBADF)
        self._charge(len(data) * self.costs.copy_per_byte_ns)
        return data

    def write(self, pid: int, fd: int, data: bytes) -> int:
        proc = self.process(pid)
        obj = self._fd(proc, fd)
        if isinstance(obj, OpenFile):
            written = self.vfs.write(obj, data)
        elif isinstance(obj, PipeEnd):
            if not obj.writable:
                raise VfsError(errno.EBADF)
            written = obj.pipe.write(data)
            self._charge(self.costs.pipe_op_ns)
        else:
            raise VfsError(errno.EBADF)
        self._charge(written * self.costs.copy_per_byte_ns)
        return written

    def close(self, pid: int, fd: int) -> None:
        proc = self.process(pid)
        obj = proc.fds.pop(fd, None)
        if obj is None:
            raise VfsError(errno.EBADF)
        if isinstance(obj, PipeEnd):
            obj.close()

    def dup(self, pid: int, fd: int) -> int:
        proc = self.process(pid)
        obj = self._fd(proc, fd)
        return proc.install_fd(obj)

    def pipe(self, pid: int) -> tuple[int, int]:
        proc = self.process(pid)
        self._charge(self.costs.vfs_op_ns)
        pipe = Pipe()
        rfd = proc.install_fd(PipeEnd(pipe, writable=False))
        wfd = proc.install_fd(PipeEnd(pipe, writable=True))
        return rfd, wfd

    def umask(self, pid: int, mask: int) -> int:
        proc = self.process(pid)
        old = proc.umask
        proc.umask = mask & 0o777
        return old

    @staticmethod
    def _fd(proc: Process, fd: int):
        obj = proc.fds.get(fd)
        if obj is None:
            raise VfsError(errno.EBADF)
        return obj

    # ------------------------------------------------------------------
    # Emulator services interface (SyscallServices)
    # ------------------------------------------------------------------
    def invoke(self, nr: int, cpu) -> int:
        """Serve a syscall issued by machine code on the interpreter.

        Arguments follow the x86-64 ABI: rdi, rsi, rdx.  Unknown syscall
        numbers are accepted as accounted no-ops so synthetic per-app
        traces (Table 1) can use realistic number mixes.
        """
        self.stats.syscalls += 1
        regs = cpu.regs if cpu is not None else None
        pid = self._ensure_emulator_process()
        try:
            if nr == SYS["getpid"]:
                return pid
            if nr == SYS["getuid"]:
                return self.process(pid).uid
            if nr == SYS["umask"]:
                return self.umask(pid, regs.read64(7) if regs else 0o22)
            if nr == SYS["dup"]:
                return self.dup(pid, regs.read64(7) if regs else 0)
            if nr == SYS["close"]:
                fd = regs.read64(7) if regs else 0
                try:
                    self.close(pid, fd)
                except VfsError:
                    return -errno.EBADF
                return 0
            if nr == SYS["exit"]:
                if cpu is not None:
                    cpu.halted = True
                return regs.read64(7) if regs else 0
            if nr == SYS["rt_sigreturn"]:
                try:
                    self.signals.sigreturn(pid)
                except SignalError:
                    pass  # bare sigreturn outside a handler: benign here
                return 0
            if nr == SYS["fork"]:
                return self.fork(pid).pid
            if nr == SYS["pipe"]:
                rfd, wfd = self.pipe(pid)
                return rfd | (wfd << 32)
            if nr == SYS["read"] and regs is not None:
                fd = regs.read64(7)
                buf = regs.read64(6)
                count = regs.read64(2)
                data = self.read(pid, fd, min(count, 1 << 20))
                if data:
                    cpu.mem.write(buf, data)
                return len(data)
            if nr == SYS["write"] and regs is not None:
                fd = regs.read64(7)
                buf = regs.read64(6)
                count = regs.read64(2)
                data = cpu.mem.read(buf, min(count, 1 << 20))
                return self.write(pid, fd, data)
            if nr == SYS["open"] and regs is not None:
                path = self._read_cstring(cpu, regs.read64(7))
                flags = regs.read64(6)
                return self.open(pid, path, flags)
        except VfsError as exc:
            return -exc.errno
        # Accounted no-op for anything else.
        self._charge(self.costs.vfs_op_ns * 0.2)
        return 0

    @staticmethod
    def _read_cstring(cpu, addr: int, limit: int = 256) -> str:
        out = bytearray()
        for offset in range(limit):
            byte = cpu.mem.read(addr + offset, 1)
            if byte == b"\x00":
                break
            out += byte
        return out.decode("ascii", errors="replace")

    def _ensure_emulator_process(self) -> int:
        if not self._procs:
            proc = self.spawn("emulated")
            # stdin/stdout/stderr stand-ins so dup(0)/close() work.
            stdio = self.vfs.open("/dev/null", O_RDONLY | O_CREAT)
            proc.fds[0] = stdio
            proc.fds[1] = stdio
            proc.fds[2] = stdio
            return proc.pid
        return next(iter(self._procs))
