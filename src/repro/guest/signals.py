"""POSIX signals.

``__restore_rt`` — the signal-return trampoline glibc installs as every
handler's return address — is literally the paper's Figure 2 example of a
9-byte ABOM patch (``rt_sigreturn`` is syscall 15).  This module gives the
guest kernel real signal semantics so that path can be exercised: masks,
dispositions, default actions, handler dispatch, and the ``sigreturn``
round trip that restores the interrupted context.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

SIGHUP = 1
SIGINT = 2
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGTERM = 15
SIGCHLD = 17
SIGSTOP = 19

NSIG = 64

#: Signals whose disposition cannot be changed.
UNBLOCKABLE = frozenset({SIGKILL, SIGSTOP})
#: Signals whose default action terminates the process.
DEFAULT_FATAL = frozenset({SIGHUP, SIGINT, SIGKILL, SIGSEGV, SIGTERM,
                           SIGUSR1, SIGUSR2})


class Disposition(enum.Enum):
    DEFAULT = "default"
    IGNORE = "ignore"
    HANDLER = "handler"


class SignalError(OSError):
    pass


@dataclass
class SigAction:
    disposition: Disposition = Disposition.DEFAULT
    handler: Callable[[int], None] | None = None


@dataclass
class SavedContext:
    """What the kernel stashes before running a handler and restores on
    ``rt_sigreturn`` (the __restore_rt path)."""

    mask: int
    interrupted_state: dict = field(default_factory=dict)


@dataclass
class SignalState:
    """Per-process signal bookkeeping."""

    actions: dict[int, SigAction] = field(default_factory=dict)
    #: Bitmask of blocked signals.
    mask: int = 0
    #: Bitmask of pending (delivered-but-blocked) signals.
    pending: int = 0
    #: Contexts saved across handler invocations (nesting allowed).
    saved: list[SavedContext] = field(default_factory=list)
    delivered: int = 0
    sigreturns: int = 0

    def action(self, sig: int) -> SigAction:
        return self.actions.get(sig, SigAction())


class SignalSubsystem:
    """Signal delivery for one kernel instance.

    The ``terminate`` callback is invoked when a default-fatal signal
    lands with no handler (the kernel's exit path).
    """

    def __init__(self, terminate: Callable[[int, int], None]) -> None:
        self._states: dict[int, SignalState] = {}
        self._terminate = terminate

    def state(self, pid: int) -> SignalState:
        return self._states.setdefault(pid, SignalState())

    # ------------------------------------------------------------------
    # sigaction / sigprocmask
    # ------------------------------------------------------------------
    def sigaction(
        self,
        pid: int,
        sig: int,
        disposition: Disposition,
        handler: Callable[[int], None] | None = None,
    ) -> None:
        self._check_sig(sig)
        if sig in UNBLOCKABLE and disposition is not Disposition.DEFAULT:
            raise SignalError(f"signal {sig} cannot be caught or ignored")
        if disposition is Disposition.HANDLER and handler is None:
            raise SignalError("HANDLER disposition needs a handler")
        self.state(pid).actions[sig] = SigAction(disposition, handler)

    def block(self, pid: int, sig: int) -> None:
        self._check_sig(sig)
        if sig in UNBLOCKABLE:
            raise SignalError(f"signal {sig} cannot be blocked")
        self.state(pid).mask |= 1 << sig

    def unblock(self, pid: int, sig: int) -> None:
        self._check_sig(sig)
        state = self.state(pid)
        state.mask &= ~(1 << sig)
        if state.pending & (1 << sig):
            state.pending &= ~(1 << sig)
            self._deliver(pid, sig)

    # ------------------------------------------------------------------
    # kill / delivery
    # ------------------------------------------------------------------
    def kill(self, pid: int, sig: int) -> None:
        self._check_sig(sig)
        state = self.state(pid)
        if state.mask & (1 << sig):
            state.pending |= 1 << sig
            return
        self._deliver(pid, sig)

    def _deliver(self, pid: int, sig: int) -> None:
        state = self.state(pid)
        action = state.action(sig)
        if action.disposition is Disposition.IGNORE:
            return
        if action.disposition is Disposition.HANDLER:
            # Save context, run the handler with the signal blocked (the
            # default SA behaviour), then expect rt_sigreturn.
            state.saved.append(SavedContext(mask=state.mask))
            state.mask |= 1 << sig
            state.delivered += 1
            action.handler(sig)
            return
        # Default action.
        if sig in DEFAULT_FATAL:
            self._terminate(pid, sig)
        # SIGCHLD etc.: default-ignore.

    def sigreturn(self, pid: int) -> None:
        """rt_sigreturn(2): restore the context saved before the handler
        — the syscall behind Figure 2's ``__restore_rt``."""
        state = self.state(pid)
        if not state.saved:
            raise SignalError("rt_sigreturn with no saved context")
        context = state.saved.pop()
        state.mask = context.mask
        state.sigreturns += 1
        # Anything that became deliverable while the handler ran.
        for sig in range(1, NSIG):
            if state.pending & (1 << sig) and not state.mask & (1 << sig):
                state.pending &= ~(1 << sig)
                self._deliver(pid, sig)

    @staticmethod
    def _check_sig(sig: int) -> None:
        if not 1 <= sig < NSIG:
            raise SignalError(f"invalid signal number {sig}")
