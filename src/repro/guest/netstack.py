"""Flow-level network stack.

Models the *CPU cost* of network service, which is what the closed-loop
throughput experiments need: every request/response pair costs TCP/IP
processing (scaled by the kernel's tuning factor), a device traversal
(which is where the platforms differ — bridge+veth, netfront/netback,
gVisor's Go netstack, nested virtio), and per-byte copy/NIC time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.faults import sites as fault_sites
from repro.faults.retry import RetryPolicy
from repro.guest.config import KernelConfig
from repro.perf.costs import CostModel


class NetstackTimeout(OSError):
    """Every retransmission of a segment was lost; the connection reset."""


class NetDevice(enum.Enum):
    """How packets get in and out of the serving kernel."""

    #: veth + bridge on the host kernel (Docker).
    BRIDGE = "bridge"
    #: Xen split driver (Xen-Containers, X-Containers).
    NETFRONT = "netfront"
    #: gVisor's user-space Go netstack.
    GVISOR = "gvisor"
    #: virtio-net inside a nested VM (Clear Containers).
    NESTED_VIRTIO = "nested-virtio"
    #: Direct NIC access (the bare-metal LibOS comparisons, Fig 6).
    DIRECT = "direct"
    #: Same-kernel loopback — no device traversal at all (the
    #: Dedicated&Merged configuration of Fig 6c).
    LOOPBACK = "loopback"


@dataclass
class NetStats:
    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    connections: int = 0
    retransmits: int = 0
    duplicates: int = 0
    reorders: int = 0


#: Device → (CostModel attribute, multiplier).  Module-level so
#: :meth:`NetStack.device_cost_ns` does not rebuild a dict per call —
#: that rebuild was ~24% of the functional HTTP request path.
_DEVICE_BASE: dict[NetDevice, tuple[str | None, float]] = {
    NetDevice.BRIDGE: ("bridge_hop_ns", 1.0),
    NetDevice.NETFRONT: ("netfront_ns", 1.0),
    NetDevice.GVISOR: ("gvisor_netstack_ns", 1.0),
    NetDevice.NESTED_VIRTIO: ("nested_virtio_ns", 1.0),
    NetDevice.DIRECT: ("bridge_hop_ns", 0.5),
    NetDevice.LOOPBACK: (None, 0.0),
}


@dataclass
class NetStack:
    """Per-kernel network stack cost model."""

    costs: CostModel = field(default_factory=CostModel)
    config: KernelConfig = field(default_factory=KernelConfig)
    device: NetDevice = NetDevice.BRIDGE
    #: Extra multiplier from virtualization layers below the device
    #: (Xen-Blanket in clouds, for instance).
    io_overhead_factor: float = 1.0
    stats: NetStats = field(default_factory=NetStats)
    #: Optional :class:`repro.faults.plan.FaultEngine`; ``None`` keeps the
    #: per-request hook a single attribute test.
    faults: object | None = None
    #: Retransmission budget: how many times one exchange's segments may
    #: be lost before the connection resets.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Memoized ``(device, io_overhead_factor, cost)`` — recomputed only
    #: when either key changes, never per request.
    _device_cache: tuple = field(
        default=(None, None, 0.0), repr=False, compare=False
    )
    #: Memoized ``(config, stack_base, wire_per_byte)`` — the per-request
    #: scalar factors, recomputed only when :attr:`config` is swapped
    #: (``CostModel`` is frozen, ``KernelConfig`` tuning is set at boot).
    _scalar_cache: tuple = field(
        default=(None, 0.0, 0.0), repr=False, compare=False
    )

    def bind_telemetry(self, registry) -> None:
        """Expose the ``net_stack_*`` metrics on ``registry``."""
        from repro.obs import wire

        wire.wire_netstack(registry, self)

    def _scalars(self) -> tuple[float, float]:
        config, stack_base, wire_per_byte = self._scalar_cache
        if config is self.config:
            return stack_base, wire_per_byte
        stack_base = self.costs.host_netstack_ns * self.config.netstack_factor()
        wire_per_byte = self.costs.net_per_byte_ns + self.costs.copy_per_byte_ns
        self._scalar_cache = (self.config, stack_base, wire_per_byte)
        return stack_base, wire_per_byte

    def device_cost_ns(self) -> float:
        device, factor, value = self._device_cache
        if device is self.device and factor == self.io_overhead_factor:
            return value
        attr, mult = _DEVICE_BASE[self.device]
        base = getattr(self.costs, attr) * mult if attr is not None else 0.0
        value = base * self.io_overhead_factor
        self._device_cache = (self.device, self.io_overhead_factor, value)
        return value

    def request_response_cost_ns(
        self, bytes_in: int, bytes_out: int, intensity: float = 1.0
    ) -> float:
        """CPU cost of serving one request/response pair.

        ``intensity`` scales the per-request TCP/IP work: key-value stores
        with tiny pipelined segments do less stack work per operation than
        a full HTTP exchange.
        """
        if bytes_in < 0 or bytes_out < 0:
            raise ValueError("negative payload size")
        if intensity <= 0:
            raise ValueError(f"intensity must be positive: {intensity}")
        stack_base, wire_per_byte = self._scalars()
        stack = stack_base * intensity
        if self.device is NetDevice.LOOPBACK:
            stack *= 0.45  # no checksums, no qdisc, no NIC interaction
        wire = (bytes_in + bytes_out) * wire_per_byte
        cost = stack + self.device_cost_ns() + wire
        if self.faults is not None:
            cost += self._packet_faults_cost_ns(
                cost, nbytes=bytes_in + bytes_out
            )
        self.stats.requests += 1
        self.stats.bytes_in += bytes_in
        self.stats.bytes_out += bytes_out
        return cost

    def _packet_faults_cost_ns(self, exchange_ns: float, nbytes: int) -> float:
        """Injected loss/duplication/reordering for one exchange.

        A drop costs a retransmission timeout plus a full resend — and the
        resend is itself subject to loss, bounded by :attr:`retry`; budget
        exhaustion resets the connection (:class:`NetstackTimeout`).
        Duplicates and reorders only add spurious processing work.
        """
        extra = 0.0
        losses = 0
        while True:
            fault = self.faults.fire(fault_sites.NET_PACKET, bytes=nbytes)
            if fault is None:
                if losses:
                    self.faults.record_recovered(
                        fault_sites.NET_PACKET, retransmits=losses
                    )
                return extra
            if fault.kind == "drop":
                losses += 1
                self.stats.retransmits += 1
                if losses >= self.retry.max_attempts:
                    self.faults.record_fatal(
                        fault_sites.NET_PACKET, retransmits=losses
                    )
                    raise NetstackTimeout(
                        f"segment lost {losses} times; connection reset"
                    )
                self.faults.record_retry(fault_sites.NET_PACKET)
                # RTO wait plus the full resend of the segment train.
                extra += self.retry.backoff_ns(losses) + exchange_ns
                continue
            if fault.kind == "duplicate":
                self.stats.duplicates += 1
                self.faults.record_recovered(
                    fault_sites.NET_PACKET, kind="duplicate"
                )
                # The dup is recognized by sequence number and dropped.
                extra += exchange_ns * 0.1
            elif fault.kind == "reorder":
                self.stats.reorders += 1
                self.faults.record_recovered(
                    fault_sites.NET_PACKET, kind="reorder"
                )
                # Out-of-order queueing until the gap fills.
                extra += exchange_ns * 0.25
            if losses:
                self.faults.record_recovered(
                    fault_sites.NET_PACKET, retransmits=losses
                )
            return extra

    def connection_setup_cost_ns(self) -> float:
        self.stats.connections += 1
        return self.costs.tcp_handshake_ns + self.device_cost_ns()

    def bulk_transfer_cost_ns(self, nbytes: int, mtu: int = 1448) -> float:
        """CPU cost of a bulk stream (iperf): per-segment device+stack
        costs amortized by segmentation offload plus per-byte time."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        segments = max(1, nbytes // (mtu * 16))  # GSO batches ~16 MSS
        per_segment = (
            self.costs.host_netstack_ns * 0.25
            * self.config.netstack_factor()
            + self.device_cost_ns() * 0.5
        )
        wire = nbytes * (
            self.costs.net_per_byte_ns + self.costs.copy_per_byte_ns
        )
        self.stats.bytes_out += nbytes
        return segments * per_segment + wire
