"""Flow-level network stack.

Models the *CPU cost* of network service, which is what the closed-loop
throughput experiments need: every request/response pair costs TCP/IP
processing (scaled by the kernel's tuning factor), a device traversal
(which is where the platforms differ — bridge+veth, netfront/netback,
gVisor's Go netstack, nested virtio), and per-byte copy/NIC time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.guest.config import KernelConfig
from repro.perf.costs import CostModel


class NetDevice(enum.Enum):
    """How packets get in and out of the serving kernel."""

    #: veth + bridge on the host kernel (Docker).
    BRIDGE = "bridge"
    #: Xen split driver (Xen-Containers, X-Containers).
    NETFRONT = "netfront"
    #: gVisor's user-space Go netstack.
    GVISOR = "gvisor"
    #: virtio-net inside a nested VM (Clear Containers).
    NESTED_VIRTIO = "nested-virtio"
    #: Direct NIC access (the bare-metal LibOS comparisons, Fig 6).
    DIRECT = "direct"
    #: Same-kernel loopback — no device traversal at all (the
    #: Dedicated&Merged configuration of Fig 6c).
    LOOPBACK = "loopback"


@dataclass
class NetStats:
    requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    connections: int = 0


@dataclass
class NetStack:
    """Per-kernel network stack cost model."""

    costs: CostModel = field(default_factory=CostModel)
    config: KernelConfig = field(default_factory=KernelConfig)
    device: NetDevice = NetDevice.BRIDGE
    #: Extra multiplier from virtualization layers below the device
    #: (Xen-Blanket in clouds, for instance).
    io_overhead_factor: float = 1.0
    stats: NetStats = field(default_factory=NetStats)

    def device_cost_ns(self) -> float:
        per_device = {
            NetDevice.BRIDGE: self.costs.bridge_hop_ns,
            NetDevice.NETFRONT: self.costs.netfront_ns,
            NetDevice.GVISOR: self.costs.gvisor_netstack_ns,
            NetDevice.NESTED_VIRTIO: self.costs.nested_virtio_ns,
            NetDevice.DIRECT: self.costs.bridge_hop_ns * 0.5,
            NetDevice.LOOPBACK: 0.0,
        }
        return per_device[self.device] * self.io_overhead_factor

    def request_response_cost_ns(
        self, bytes_in: int, bytes_out: int, intensity: float = 1.0
    ) -> float:
        """CPU cost of serving one request/response pair.

        ``intensity`` scales the per-request TCP/IP work: key-value stores
        with tiny pipelined segments do less stack work per operation than
        a full HTTP exchange.
        """
        if bytes_in < 0 or bytes_out < 0:
            raise ValueError("negative payload size")
        if intensity <= 0:
            raise ValueError(f"intensity must be positive: {intensity}")
        stack = (
            self.costs.host_netstack_ns
            * intensity
            * self.config.netstack_factor()
        )
        if self.device is NetDevice.LOOPBACK:
            stack *= 0.45  # no checksums, no qdisc, no NIC interaction
        wire = (bytes_in + bytes_out) * (
            self.costs.net_per_byte_ns + self.costs.copy_per_byte_ns
        )
        self.stats.requests += 1
        self.stats.bytes_in += bytes_in
        self.stats.bytes_out += bytes_out
        return stack + self.device_cost_ns() + wire

    def connection_setup_cost_ns(self) -> float:
        self.stats.connections += 1
        return self.costs.tcp_handshake_ns + self.device_cost_ns()

    def bulk_transfer_cost_ns(self, nbytes: int, mtu: int = 1448) -> float:
        """CPU cost of a bulk stream (iperf): per-segment device+stack
        costs amortized by segmentation offload plus per-byte time."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        segments = max(1, nbytes // (mtu * 16))  # GSO batches ~16 MSS
        per_segment = (
            self.costs.host_netstack_ns * 0.25
            * self.config.netstack_factor()
            + self.device_cost_ns() * 0.5
        )
        wire = nbytes * (
            self.costs.net_per_byte_ns + self.costs.copy_per_byte_ns
        )
        self.stats.bytes_out += nbytes
        return segments * per_segment + wire
