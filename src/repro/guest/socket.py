"""Sockets and a host-local virtual network.

A functional (not just priced) socket layer: kernels attach to a
:class:`VirtualNetwork`, servers listen, clients connect, and bytes flow
between processes living in *different* kernel instances — the substrate
under the PHP→MySQL queries of Fig 6c and the proxied connections of
Fig 9.

Costs: each send charges the sender's netstack (and the wire), each
receive charges the receiver's; connects pay the handshake on both ends.
"""

from __future__ import annotations

import enum
import errno
from collections import deque
from dataclasses import dataclass, field

from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


class SocketError(OSError):
    def __init__(self, err: int, message: str = "") -> None:
        super().__init__(err, message or errno.errorcode.get(err, str(err)))


class SocketState(enum.Enum):
    CREATED = "created"
    BOUND = "bound"
    LISTENING = "listening"
    CONNECTED = "connected"
    CLOSED = "closed"


Address = tuple[str, int]


@dataclass
class Socket:
    """One endpoint.  Stream semantics; rx buffering is unbounded (flow
    control is not what the experiments measure)."""

    state: SocketState = SocketState.CREATED
    local: Address | None = None
    peer: "Socket | None" = None
    rx: deque = field(default_factory=deque)
    backlog: deque = field(default_factory=deque)
    bytes_sent: int = 0
    bytes_received: int = 0

    def buffered(self) -> int:
        return sum(len(chunk) for chunk in self.rx)


class VirtualNetwork:
    """A host-local L3 fabric connecting kernel instances."""

    def __init__(
        self,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.costs = costs or CostModel()
        self.clock = clock
        #: (ip, port) -> (owning kernel's netstack, listening socket)
        self._listeners: dict[Address, tuple[object, Socket]] = {}
        self.connections = 0
        self.bytes_carried = 0

    def _charge(self, ns: float) -> None:
        if self.clock is not None:
            self.clock.advance(ns)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def register_listener(
        self, address: Address, netstack, sock: Socket
    ) -> None:
        if address in self._listeners:
            raise SocketError(errno.EADDRINUSE, str(address))
        self._listeners[address] = (netstack, sock)

    def unregister_listener(self, address: Address) -> None:
        self._listeners.pop(address, None)

    def connect(self, client_stack, client_sock: Socket,
                address: Address) -> None:
        """3-way handshake: enqueue a peer endpoint on the listener."""
        entry = self._listeners.get(address)
        if entry is None:
            raise SocketError(errno.ECONNREFUSED, str(address))
        server_stack, listener = entry
        server_side = Socket(state=SocketState.CONNECTED, local=address)
        client_sock.peer = server_side
        server_side.peer = client_sock
        client_sock.state = SocketState.CONNECTED
        listener.backlog.append(server_side)
        self.connections += 1
        self._charge(
            client_stack.connection_setup_cost_ns()
            + server_stack.connection_setup_cost_ns()
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def send(self, sender_stack, sock: Socket, data: bytes) -> int:
        if sock.state is not SocketState.CONNECTED or sock.peer is None:
            raise SocketError(errno.ENOTCONN)
        if sock.peer.state is SocketState.CLOSED:
            raise SocketError(errno.EPIPE)
        sock.peer.rx.append(bytes(data))
        sock.bytes_sent += len(data)
        sock.peer.bytes_received += len(data)
        self.bytes_carried += len(data)
        self._charge(sender_stack.request_response_cost_ns(len(data), 0))
        return len(data)

    def recv(self, receiver_stack, sock: Socket, count: int) -> bytes:
        if sock.state is not SocketState.CONNECTED:
            raise SocketError(errno.ENOTCONN)
        if count < 0:
            raise SocketError(errno.EINVAL)
        # Fast path: one buffered chunk that fits the read — hand the
        # bytes over without the copy loop (the common case on the HTTP
        # request path, where each exchange is a single segment train).
        if len(sock.rx) == 1 and len(sock.rx[0]) <= count:
            chunk = sock.rx.popleft()
            self._charge(
                receiver_stack.request_response_cost_ns(0, len(chunk))
            )
            return chunk
        out = bytearray()
        while sock.rx and len(out) < count:
            chunk = sock.rx.popleft()
            take = count - len(out)
            out += chunk[:take]
            if take < len(chunk):
                sock.rx.appendleft(chunk[take:])
        if out:
            self._charge(
                receiver_stack.request_response_cost_ns(0, len(out))
            )
        return bytes(out)


class SocketLayer:
    """Per-kernel socket API, installed into process fd tables."""

    def __init__(self, kernel, network: VirtualNetwork) -> None:
        self.kernel = kernel
        self.network = network

    def socket(self, pid: int) -> int:
        proc = self.kernel.process(pid)
        return proc.install_fd(Socket())

    def _sock(self, pid: int, fd: int) -> Socket:
        obj = self.kernel.process(pid).fds.get(fd)
        if not isinstance(obj, Socket):
            raise SocketError(errno.EBADF)
        return obj

    def resolve(self, pid: int, fd: int) -> Socket:
        """Resolve ``fd`` to its endpoint once, for callers that hold a
        descriptor across many operations (in-kernel servers) and don't
        want to pay the fd-table walk per I/O call.  The returned object
        is live — ``close`` on the fd marks it CLOSED."""
        return self._sock(pid, fd)

    def bind(self, pid: int, fd: int, address: Address) -> None:
        sock = self._sock(pid, fd)
        if sock.state is not SocketState.CREATED:
            raise SocketError(errno.EINVAL, "socket already bound")
        sock.local = address
        sock.state = SocketState.BOUND

    def listen(self, pid: int, fd: int) -> None:
        sock = self._sock(pid, fd)
        if sock.state is not SocketState.BOUND:
            raise SocketError(errno.EINVAL, "listen needs a bound socket")
        sock.state = SocketState.LISTENING
        self.network.register_listener(
            sock.local, self.kernel.netstack, sock
        )

    def accept(self, pid: int, fd: int) -> int:
        sock = self._sock(pid, fd)
        if sock.state is not SocketState.LISTENING:
            raise SocketError(errno.EINVAL, "accept needs a listener")
        if not sock.backlog:
            raise SocketError(errno.EAGAIN, "no pending connection")
        conn = sock.backlog.popleft()
        return self.kernel.process(pid).install_fd(conn)

    def connect(self, pid: int, fd: int, address: Address) -> None:
        sock = self._sock(pid, fd)
        self.network.connect(self.kernel.netstack, sock, address)

    def has_data(self, pid: int, fd: int) -> bool:
        """True when buffered bytes are waiting on ``fd`` (poll/epoll)."""
        return bool(self._sock(pid, fd).rx)

    def pending_connections(self, pid: int, fd: int) -> bool:
        """True when ``accept`` would succeed on listener ``fd`` —
        lets servers poll without paying an EAGAIN exception per idle
        pass."""
        return bool(self._sock(pid, fd).backlog)

    def peer_closed(self, pid: int, fd: int) -> bool:
        """True when the remote endpoint has closed (read would EOF)."""
        peer = self._sock(pid, fd).peer
        return peer is None or peer.state is SocketState.CLOSED

    def send(self, pid: int, fd: int, data: bytes) -> int:
        return self.network.send(
            self.kernel.netstack, self._sock(pid, fd), data
        )

    def recv(self, pid: int, fd: int, count: int) -> bytes:
        return self.network.recv(
            self.kernel.netstack, self._sock(pid, fd), count
        )

    def close(self, pid: int, fd: int) -> None:
        sock = self._sock(pid, fd)
        if sock.state is SocketState.LISTENING and sock.local:
            self.network.unregister_listener(sock.local)
        sock.state = SocketState.CLOSED
        del self.kernel.process(pid).fds[fd]
