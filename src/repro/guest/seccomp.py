"""seccomp syscall filtering (§6.1).

    "Although there are mitigations such as seccomp and SELinux which
     allow specification of system call filters for each container, in
     practice it is extremely difficult to define a policy for arbitrary,
     previously unknown applications."

The model lets experiments quantify that sentence: a filter either
*breaks* an application (blocks a syscall it needs) or leaves attack
surface (allows syscalls it never uses).  For a previously-unknown
application, a fixed profile cannot do better than the union of every
app's needs — which is the Docker default profile's predicament.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.xen.hypercalls import LINUX_SYSCALL_SURFACE


class SeccompAction(enum.Enum):
    ALLOW = "allow"
    ERRNO = "errno"  # fail the call with EPERM
    KILL = "kill"


class SeccompViolation(Exception):
    def __init__(self, nr: int, action: SeccompAction) -> None:
        super().__init__(f"syscall {nr} blocked by seccomp ({action.value})")
        self.nr = nr
        self.action = action


@dataclass
class SeccompFilter:
    """An allowlist filter, like Docker's default profile."""

    name: str
    allowed: frozenset[int]
    default_action: SeccompAction = SeccompAction.ERRNO
    checks: int = 0
    violations: list[int] = field(default_factory=list)

    def check(self, nr: int) -> None:
        """Raise unless ``nr`` is allowed."""
        self.checks += 1
        if nr in self.allowed:
            return
        self.violations.append(nr)
        raise SeccompViolation(nr, self.default_action)

    # ------------------------------------------------------------------
    # Policy analysis
    # ------------------------------------------------------------------
    def breaks(self, needed: set[int]) -> set[int]:
        """Syscalls the application needs but the filter blocks."""
        return needed - self.allowed

    def residual_surface(self, needed: set[int]) -> int:
        """Allowed syscalls the application never uses — pure attack
        surface kept open 'just in case'."""
        return len(self.allowed - needed)

    def surface_reduction(self) -> float:
        """Fraction of the kernel interface the filter closes."""
        return 1.0 - len(self.allowed) / LINUX_SYSCALL_SURFACE


#: Docker's default profile blocks ~44 of ~350 syscalls; everything else
#: stays open because SOME container might need it.
DOCKER_DEFAULT_BLOCKED = 44


def docker_default_profile() -> SeccompFilter:
    """The shape of Docker's default seccomp profile: a large allowlist
    chosen so arbitrary unknown applications keep working."""
    allowed = frozenset(
        range(LINUX_SYSCALL_SURFACE - DOCKER_DEFAULT_BLOCKED)
    )
    return SeccompFilter("docker-default", allowed)


def tailored_profile(name: str, needed: set[int]) -> SeccompFilter:
    """A per-application minimal profile — possible only when you know
    the application in advance (which is the paper's point: you don't)."""
    return SeccompFilter(f"tailored-{name}", frozenset(needed))


@dataclass
class PolicyDilemma:
    """Quantifies §6.1 for a set of applications and one shared filter."""

    filter_name: str
    apps_broken: list[str]
    mean_residual_surface: float
    surface_reduction: float


def evaluate_policy(
    seccomp: SeccompFilter, app_needs: dict[str, set[int]]
) -> PolicyDilemma:
    broken = [
        name for name, needed in app_needs.items()
        if seccomp.breaks(needed)
    ]
    residuals = [
        seccomp.residual_surface(needed) for needed in app_needs.values()
    ]
    return PolicyDilemma(
        filter_name=seccomp.name,
        apps_broken=broken,
        mean_residual_surface=sum(residuals) / len(residuals),
        surface_reduction=seccomp.surface_reduction(),
    )
