"""MiniDB — the in-container SQL database substrate.

The paper's Fig 6c workload drives PHP pages that issue read and write
queries against MySQL.  This is the functional stand-in: a small SQL
engine supporting the statement shapes the workload needs::

    CREATE TABLE kv (k, v)
    INSERT INTO kv VALUES ('alpha', 1)
    SELECT v FROM kv WHERE k = 'alpha'
    SELECT * FROM kv
    UPDATE kv SET v = 2 WHERE k = 'alpha'
    DELETE FROM kv WHERE k = 'alpha'

Values are integers or single-quoted strings.  The engine is
deterministic and dependency-free; a per-query cost is charged when a
clock is attached.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.perf.clock import SimClock


class SqlError(ValueError):
    pass


_CREATE = re.compile(
    r"^\s*CREATE\s+TABLE\s+(\w+)\s*\(([^)]*)\)\s*$", re.IGNORECASE
)
_INSERT = re.compile(
    r"^\s*INSERT\s+INTO\s+(\w+)\s+VALUES\s*\(([^)]*)\)\s*$", re.IGNORECASE
)
_SELECT = re.compile(
    r"^\s*SELECT\s+(.+?)\s+FROM\s+(\w+)(?:\s+WHERE\s+(\w+)\s*=\s*(.+?))?\s*$",
    re.IGNORECASE,
)
_UPDATE = re.compile(
    r"^\s*UPDATE\s+(\w+)\s+SET\s+(\w+)\s*=\s*(.+?)"
    r"(?:\s+WHERE\s+(\w+)\s*=\s*(.+?))?\s*$",
    re.IGNORECASE,
)
_DELETE = re.compile(
    r"^\s*DELETE\s+FROM\s+(\w+)(?:\s+WHERE\s+(\w+)\s*=\s*(.+?))?\s*$",
    re.IGNORECASE,
)


def _parse_value(token: str):
    token = token.strip()
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1]
    try:
        return int(token)
    except ValueError as exc:
        raise SqlError(f"bad value {token!r}") from exc


@dataclass
class Table:
    name: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise SqlError(
                f"no column {column!r} in table {self.name!r}"
            ) from exc


@dataclass
class DbStats:
    queries: int = 0
    reads: int = 0
    writes: int = 0


class MiniDB:
    """The engine: one instance per database server process."""

    #: CPU cost per executed query (charged when a clock is attached).
    QUERY_COST_NS = 18000.0

    def __init__(self, clock: SimClock | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self.clock = clock
        self.stats = DbStats()

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise SqlError(f"no such table {name!r}")
        return table

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Run one statement.

        Returns a list of row tuples for SELECT, or the affected-row
        count for writes/DDL.
        """
        self.stats.queries += 1
        if self.clock is not None:
            self.clock.advance(self.QUERY_COST_NS)
        match = _CREATE.match(sql)
        if match:
            return self._create(match.group(1), match.group(2))
        match = _INSERT.match(sql)
        if match:
            return self._insert(match.group(1), match.group(2))
        match = _SELECT.match(sql)
        if match:
            return self._select(*match.groups())
        match = _UPDATE.match(sql)
        if match:
            return self._update(*match.groups())
        match = _DELETE.match(sql)
        if match:
            return self._delete(*match.groups())
        raise SqlError(f"cannot parse statement: {sql!r}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _create(self, name: str, columns_spec: str) -> int:
        if name in self._tables:
            raise SqlError(f"table {name!r} already exists")
        columns = [c.strip() for c in columns_spec.split(",") if c.strip()]
        if not columns:
            raise SqlError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise SqlError("duplicate column names")
        self._tables[name] = Table(name, columns)
        self.stats.writes += 1
        return 0

    def _insert(self, name: str, values_spec: str) -> int:
        table = self.table(name)
        values = [_parse_value(v) for v in _split_values(values_spec)]
        if len(values) != len(table.columns):
            raise SqlError(
                f"{table.name} has {len(table.columns)} columns, got "
                f"{len(values)} values"
            )
        table.rows.append(values)
        self.stats.writes += 1
        return 1

    def _match_rows(self, table: Table, where_col, where_val):
        if where_col is None:
            return list(range(len(table.rows)))
        index = table.column_index(where_col)
        value = _parse_value(where_val)
        return [
            i for i, row in enumerate(table.rows) if row[index] == value
        ]

    def _select(self, columns_spec, name, where_col, where_val):
        table = self.table(name)
        matches = self._match_rows(table, where_col, where_val)
        self.stats.reads += 1
        if columns_spec.strip() == "*":
            indices = range(len(table.columns))
        else:
            indices = [
                table.column_index(c.strip())
                for c in columns_spec.split(",")
            ]
        return [
            tuple(table.rows[i][j] for j in indices) for i in matches
        ]

    def _update(self, name, set_col, set_val, where_col, where_val) -> int:
        table = self.table(name)
        set_index = table.column_index(set_col)
        value = _parse_value(set_val)
        matches = self._match_rows(table, where_col, where_val)
        for i in matches:
            table.rows[i][set_index] = value
        self.stats.writes += 1
        return len(matches)

    def _delete(self, name, where_col, where_val) -> int:
        table = self.table(name)
        matches = set(self._match_rows(table, where_col, where_val))
        before = len(table.rows)
        table.rows = [
            row for i, row in enumerate(table.rows) if i not in matches
        ]
        self.stats.writes += 1
        return before - len(table.rows)


def _split_values(spec: str) -> list[str]:
    """Split a VALUES list on commas outside quotes."""
    out, current, quoted = [], [], False
    for char in spec:
        if char == "'":
            quoted = not quoted
            current.append(char)
        elif char == "," and not quoted:
            out.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        out.append("".join(current))
    return [piece for piece in out if piece.strip()]


# ----------------------------------------------------------------------
# Text wire protocol (the "MySQL protocol" of the Fig 6c substrate)
# ----------------------------------------------------------------------
def serve_query(db: MiniDB, request: bytes) -> bytes:
    """Handle one ``QUERY <sql>`` request; returns the wire response."""
    if not request.startswith(b"QUERY "):
        return b"ERR bad request"
    sql = request[len(b"QUERY "):].decode("utf-8", errors="replace")
    try:
        result = db.execute(sql)
    except SqlError as exc:
        return f"ERR {exc}".encode()
    if isinstance(result, int):
        return f"OK {result}".encode()
    rows = ";".join(",".join(str(v) for v in row) for row in result)
    return f"ROWS {rows}".encode()
