"""Kernel configuration knobs (§3.2).

    "It has hundreds of booting parameters, thousands of compilation
     configurations, and many fine-grained runtime tuning knobs ...
     Turning the Linux kernel into a LibOS and dedicating it to a single
     application can unlock its full potential."

Only the knobs with modelled performance effects are exposed; the point is
that a *dedicated* kernel can set them per application where a shared one
cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelConfig:
    """Build/boot configuration of one kernel instance."""

    name: str = "generic"
    #: Symmetric multi-processing.  Disabling it for single-threaded
    #: applications "can eliminate unnecessary locking and TLB shoot-downs"
    #: (§3.2).
    smp: bool = True
    nr_cpus: int = 8
    #: Meltdown/KPTI page-table isolation (§5.1 patched vs -unpatched).
    kpti: bool = True
    #: Whether root may load kernel modules (false inside Docker, §5.7).
    modules_allowed: bool = True
    #: True when the kernel is dedicated to a single concern and tuned for
    #: it (the X-LibOS case).
    single_concern_tuned: bool = False
    #: Extra boot parameters, recorded for documentation purposes.
    boot_params: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nr_cpus < 1:
            raise ValueError(f"nr_cpus must be >= 1: {self.nr_cpus}")
        if not self.smp and self.nr_cpus > 1:
            # nosmp boots uniprocessor regardless of hardware threads.
            self.nr_cpus = 1

    def kernel_work_factor(self) -> float:
        """Multiplier on per-request kernel work for this configuration.

        Composes the §3.2 effects: single-concern tuning removes shared
        locking/config compromises; disabling SMP on a uniprocessor
        workload removes lock prefixes and TLB shootdowns on top.
        """
        factor = 1.0
        if self.single_concern_tuned:
            factor *= 0.72
        if not self.smp:
            factor *= 0.88
        return factor

    def netstack_factor(self) -> float:
        """Multiplier on per-request TCP/IP stack work.

        A dedicated single-concern kernel gains more on the network stack
        than on generic kernel work: buffer sizes and interrupt coalescing
        tuned for exactly one server, no softirq contention with other
        applications, busy-polling where it pays (§3.2).
        """
        if self.single_concern_tuned:
            return 0.45
        return 1.0 if self.smp else 0.88

    @classmethod
    def host_default(cls) -> "KernelConfig":
        """Ubuntu-16 style shared host kernel (the Docker baseline)."""
        return cls(name="ubuntu-16-generic", smp=True, kpti=True,
                   modules_allowed=False)

    @classmethod
    def xlibos(cls, smp: bool = True) -> "KernelConfig":
        """An X-LibOS dedicated to one container."""
        return cls(
            name="x-libos",
            smp=smp,
            kpti=False,  # no user/kernel boundary left to protect
            modules_allowed=True,
            single_concern_tuned=True,
        )

    @classmethod
    def clear_guest(cls) -> "KernelConfig":
        """Clear Containers' stripped guest kernel (always unpatched,
        §5.1)."""
        return cls(name="clear-guest-4.14", smp=True, kpti=False,
                   modules_allowed=False, single_concern_tuned=False)
