"""Processes, threads and address spaces.

In the X-Containers model "processes are used for concurrency, while
X-Containers provide isolation between containers" (§1) — but they still
exist, still have separate address spaces for resource management, and
still need dedicated kernel stacks (§4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ProcessState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"
    ZOMBIE = "zombie"


@dataclass
class AddressSpace:
    """Page-table footprint of one process."""

    asid: int
    pt_pages: int = 48
    #: §4.3: X-LibOS mappings carry the global bit, so intra-container
    #: switches keep kernel TLB entries.
    kernel_global_mappings: bool = False

    def cow_clone(self, new_asid: int) -> "AddressSpace":
        return AddressSpace(
            asid=new_asid,
            pt_pages=self.pt_pages,
            kernel_global_mappings=self.kernel_global_mappings,
        )


@dataclass
class Process:
    pid: int
    ppid: int
    name: str
    aspace: AddressSpace
    state: ProcessState = ProcessState.RUNNABLE
    threads: int = 1
    exit_code: int | None = None
    #: File-descriptor table: fd -> kernel object (file, pipe end, socket).
    fds: dict[int, object] = field(default_factory=dict)
    umask: int = 0o022
    uid: int = 0
    children: list[int] = field(default_factory=list)

    def lowest_free_fd(self) -> int:
        fd = 0
        while fd in self.fds:
            fd += 1
        return fd

    def install_fd(self, obj: object) -> int:
        fd = self.lowest_free_fd()
        self.fds[fd] = obj
        return fd
