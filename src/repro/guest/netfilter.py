"""netfilter / iptables — DNAT port forwarding (§5.3).

    "Since Amazon EC2 and Google GCE do not support bridged networks
     natively, the servers were exposed to clients via port forwarding in
     iptables."

Every macro-benchmark request passes one DNAT translation each way; IPVS
NAT mode (§5.7) reuses the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.costs import CostModel


@dataclass(frozen=True)
class DnatRule:
    public_port: int
    dest_host: str
    dest_port: int


@dataclass
class NetfilterStats:
    translations: int = 0
    dropped: int = 0


class Netfilter:
    """A host kernel's NAT table."""

    def __init__(self, costs: CostModel | None = None) -> None:
        self.costs = costs or CostModel()
        self._rules: dict[int, DnatRule] = {}
        self.stats = NetfilterStats()

    def add_dnat(self, public_port: int, dest_host: str, dest_port: int) -> None:
        if public_port in self._rules:
            raise ValueError(f"port {public_port} already forwarded")
        self._rules[public_port] = DnatRule(public_port, dest_host, dest_port)

    def remove_dnat(self, public_port: int) -> None:
        self._rules.pop(public_port, None)

    def lookup(self, public_port: int) -> DnatRule | None:
        return self._rules.get(public_port)

    def translate(self, public_port: int) -> tuple[DnatRule, float]:
        """Translate one request; returns (rule, cost_ns)."""
        rule = self._rules.get(public_port)
        if rule is None:
            self.stats.dropped += 1
            raise KeyError(f"no DNAT rule for port {public_port}")
        self.stats.translations += 1
        return rule, self.costs.iptables_dnat_ns

    @property
    def rules(self) -> list[DnatRule]:
        return list(self._rules.values())
