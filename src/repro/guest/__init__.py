"""Guest Linux kernel substrate.

A functional model of the Linux services the experiments exercise:
processes and fork/exec, a CFS-style runqueue, a RAM filesystem, pipes,
signals, sockets with a flow-level TCP model, netfilter DNAT (the port
forwarding of §5.3), and loadable modules including IPVS (§5.7).

The same :class:`~repro.guest.kernel.GuestKernel` backs three roles:

* the shared host kernel under Docker/gVisor;
* the per-VM guest kernel of Xen-Containers and Clear Containers;
* the X-LibOS's service backend (with a hypercall MMU and a
  single-concern-tuned :class:`~repro.guest.config.KernelConfig`).
"""

from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel
from repro.guest.process import AddressSpace, Process, ProcessState
from repro.guest.sched import RunQueue
from repro.guest.vfs import RamFS
from repro.guest.pipe import Pipe
from repro.guest.modules import ModuleRegistry, ModuleLoadError
from repro.guest.netstack import NetStack, NetDevice
from repro.guest.netfilter import Netfilter
from repro.guest.ipvs import IPVS, IpvsMode
from repro.guest.signals import Disposition, SignalSubsystem
from repro.guest.seccomp import SeccompFilter, docker_default_profile
from repro.guest.rdma import RdmaProvider, SoftRdmaDevice
from repro.guest.socket import SocketLayer, VirtualNetwork
from repro.guest.minidb import MiniDB

__all__ = [
    "KernelConfig",
    "GuestKernel",
    "AddressSpace",
    "Process",
    "ProcessState",
    "RunQueue",
    "RamFS",
    "Pipe",
    "ModuleRegistry",
    "ModuleLoadError",
    "NetStack",
    "NetDevice",
    "Netfilter",
    "IPVS",
    "IpvsMode",
    "Disposition",
    "SignalSubsystem",
    "SeccompFilter",
    "docker_default_profile",
    "RdmaProvider",
    "SoftRdmaDevice",
    "SocketLayer",
    "VirtualNetwork",
    "MiniDB",
]
