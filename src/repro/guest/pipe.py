"""Pipes — back the Pipe Throughput and Context Switching benchmarks
(Fig 5) and fork/exec plumbing."""

from __future__ import annotations

import errno
from collections import deque
from dataclasses import dataclass

PIPE_BUF_CAPACITY = 65536


class PipeError(OSError):
    def __init__(self, err: int) -> None:
        super().__init__(err, errno.errorcode.get(err, str(err)))


class Pipe:
    """A byte pipe with a bounded kernel buffer."""

    def __init__(self, capacity: int = PIPE_BUF_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._buffer = deque()
        self._buffered = 0
        self.read_open = True
        self.write_open = True
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def buffered(self) -> int:
        return self._buffered

    @property
    def free_space(self) -> int:
        return self.capacity - self._buffered

    def write(self, data: bytes) -> int:
        """Write up to the free space; returns bytes accepted (0 = would
        block)."""
        if not self.write_open:
            raise PipeError(errno.EBADF)
        if not self.read_open:
            raise PipeError(errno.EPIPE)
        accepted = data[: self.free_space]
        if accepted:
            self._buffer.append(bytes(accepted))
            self._buffered += len(accepted)
            self.bytes_written += len(accepted)
        return len(accepted)

    def read(self, count: int) -> bytes:
        """Read up to ``count`` buffered bytes (b"" = empty: EOF if the
        write end closed, otherwise would-block)."""
        if not self.read_open:
            raise PipeError(errno.EBADF)
        if count < 0:
            raise PipeError(errno.EINVAL)
        out = bytearray()
        while self._buffer and len(out) < count:
            chunk = self._buffer.popleft()
            take = count - len(out)
            out += chunk[:take]
            if take < len(chunk):
                self._buffer.appendleft(chunk[take:])
        self._buffered -= len(out)
        self.bytes_read += len(out)
        return bytes(out)

    def close_read(self) -> None:
        self.read_open = False

    def close_write(self) -> None:
        self.write_open = False

    @property
    def eof(self) -> bool:
        return not self.write_open and self._buffered == 0


@dataclass
class PipeEnd:
    """One fd's view of a pipe (installed into a process fd table)."""

    pipe: Pipe
    writable: bool

    def close(self) -> None:
        if self.writable:
            self.pipe.close_write()
        else:
            self.pipe.close_read()
