"""The decorator-based scenario registry (the canonical Scenario API).

PR 3 shipped the chaos catalog as a hand-maintained ``SCENARIOS`` dict in
:mod:`repro.faults.scenarios`; every new scenario meant editing a
module-level literal, and nothing stopped a body from registering under
one name and rendering under another.  This module replaces that with a
decorator registry:

* :func:`scenario` — declare a scenario by decorating its body::

      @scenario(
          name="backend-death-memcached",
          description="netback dies under load ...",
          substrates=("xen.drivers",),
          plan=_plan_backend_death,
      )
      def _run_backend_death(ctx: ScenarioContext) -> dict:
          ...

* :func:`register` — register an already-built :class:`Scenario`
  (what :meth:`Scenario.from_steps` promotions use);
* :func:`get_scenario` / :func:`list_scenarios` /
  :func:`scenario_names` — the lookup surface.

Ordering contract: the catalog keeps **registration order** (the chaos
report's row order is part of the byte-identical-replay bar), while the
unknown-name error and ``repro chaos --list`` sort names so messages are
deterministic regardless of registration order.

The old surface — ``scenarios.SCENARIOS`` / ``scenarios.get`` /
``scenarios.names`` — survives as deprecation shims that resolve through
this registry (the ``wire.*_LEGACY`` pattern: shims that *cannot* drift
because they are views over the new source of truth).  Migration table in
``docs/stateful_fuzzing.md``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.faults.chaos import Scenario, ScenarioContext
from repro.faults.plan import FaultPlan

#: Registration-ordered catalog (insertion order is the report order).
_REGISTRY: dict[str, Scenario] = {}


def _ensure_catalog() -> None:
    """Materialize the shipped catalog on first lookup.

    The shipped scenarios register themselves at
    :mod:`repro.faults.scenarios` import time; importing it lazily here
    keeps ``repro.faults`` cheap for substrates that only need site
    names and retry policies.
    """
    import repro.faults.scenarios  # noqa: F401  (import-for-effect)


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Register a built :class:`Scenario`; returns it for chaining.

    Promoted shrunk fuzz failures (:meth:`Scenario.from_steps`) enter the
    catalog through here and become first-class entries — they run under
    ``repro chaos``, the sanitize harness, and the CI recovery gate like
    any hand-written scenario.
    """
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a scenario (test isolation helper)."""
    _REGISTRY.pop(name, None)


def scenario(
    *,
    name: str,
    description: str,
    substrates: Iterable[str] = (),
    plan: Callable[[int | str], FaultPlan],
    replace: bool = False,
) -> Callable[[Callable[[ScenarioContext], dict]], Scenario]:
    """Decorator: declare the decorated body as a catalog scenario.

    The decorated function is replaced by the registered
    :class:`Scenario` (the body stays reachable as ``scenario.body``).
    """

    def decorate(body: Callable[[ScenarioContext], dict]) -> Scenario:
        return register(
            Scenario(
                name=name,
                description=description,
                substrates=tuple(substrates),
                default_plan=plan,
                body=body,
            ),
            replace=replace,
        )

    return decorate


def get_scenario(name: str) -> Scenario:
    """Look up one scenario; unknown names list the catalog *sorted*."""
    _ensure_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None


def scenario_names() -> list[str]:
    """Catalog names in registration (= report) order."""
    _ensure_catalog()
    return list(_REGISTRY)


def list_scenarios() -> list[Scenario]:
    """The catalog in registration (= report) order."""
    _ensure_catalog()
    return list(_REGISTRY.values())
