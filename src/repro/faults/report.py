"""Chaos run reports — deterministic, replayable, diffable.

``run_scenarios(seed)`` executes the shipped catalog under one run seed
and returns a :class:`ChaosReport` whose :meth:`ChaosReport.render` is
byte-identical for the same seed + plan (the acceptance bar for
``repro chaos --seed S``): fixed column widths, stable ordering, integer
counters only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.registry import get_scenario, scenario_names
from repro.faults.chaos import ChaosHarness, ScenarioResult
from repro.faults.sites import CORE_SUBSTRATES

_RULE = "-" * 72


@dataclass(frozen=True)
class ChaosReport:
    """All scenario results for one run seed."""

    seed: int | str
    results: tuple[ScenarioResult, ...]

    @property
    def all_recovered(self) -> bool:
        return all(result.ok for result in self.results)

    def substrates_injected(self) -> tuple[str, ...]:
        covered: set[str] = set()
        for result in self.results:
            covered.update(result.injected_substrates)
        return tuple(sorted(covered))

    def core_coverage_ok(self) -> bool:
        """Did the run inject ≥1 fault into every core substrate?"""
        return set(CORE_SUBSTRATES) <= set(self.substrates_injected())

    def totals(self) -> tuple[int, int, int, int]:
        return (
            sum(r.injected for r in self.results),
            sum(r.retried for r in self.results),
            sum(r.recovered for r in self.results),
            sum(r.fatal for r in self.results),
        )

    def as_dict(self) -> dict:
        """JSON-ready view (``repro chaos --format json``) — same data
        as :meth:`render`, deterministically ordered."""
        injected, retried, recovered, fatal = self.totals()
        return {
            "seed": self.seed,
            "scenarios": [
                {
                    "name": r.name,
                    "outcome": r.outcome,
                    "injected": r.injected,
                    "retried": r.retried,
                    "recovered": r.recovered,
                    "fatal": r.fatal,
                    "injected_sites": list(r.injected_sites),
                    "injected_substrates": list(r.injected_substrates),
                    "details": {k: str(v) for k, v in r.details},
                    "invariants": list(r.invariants),
                    "failure": r.failure,
                }
                for r in self.results
            ],
            "totals": {
                "injected": injected,
                "retried": retried,
                "recovered": recovered,
                "fatal": fatal,
            },
            "substrates_injected": list(self.substrates_injected()),
            "all_recovered": self.all_recovered,
            "core_coverage_ok": self.core_coverage_ok(),
        }

    def render(self) -> str:
        lines = [
            f"chaos run  seed={self.seed}  scenarios={len(self.results)}",
            _RULE,
            f"{'scenario':<28}{'outcome':<20}"
            f"{'inj':>6}{'rty':>6}{'rec':>6}{'fat':>6}",
            _RULE,
        ]
        for result in self.results:
            lines.append(
                f"{result.name:<28}{result.outcome:<20}"
                f"{result.injected:>6}{result.retried:>6}"
                f"{result.recovered:>6}{result.fatal:>6}"
            )
            for key, value in result.details:
                lines.append(f"    {key} = {value}")
            for invariant in result.invariants:
                lines.append(f"    [{invariant[:2].strip()}] {invariant[5:]}")
            if result.failure:
                lines.append(f"    !! {result.failure}")
        lines.append(_RULE)
        injected, retried, recovered, fatal = self.totals()
        lines.append(
            f"totals: injected={injected} retried={retried} "
            f"recovered={recovered} fatal={fatal}"
        )
        lines.append("substrates injected:")
        covered = set(self.substrates_injected())
        for substrate in sorted(covered | set(CORE_SUBSTRATES)):
            mark = "x" if substrate in covered else " "
            core = " (core)" if substrate in CORE_SUBSTRATES else ""
            lines.append(f"  [{mark}] {substrate}{core}")
        verdict = (
            "ALL RECOVERED"
            if self.all_recovered
            else "FAILURES: "
            + ", ".join(r.name for r in self.results if not r.ok)
        )
        coverage = (
            "core substrate coverage: complete"
            if self.core_coverage_ok()
            else "core substrate coverage: INCOMPLETE"
        )
        lines.append(verdict)
        lines.append(coverage)
        return "\n".join(lines) + "\n"


def run_scenarios(
    seed: int | str = 0, names: list[str] | None = None
) -> ChaosReport:
    """Run the named scenarios (default: the whole catalog) under ``seed``."""
    harness = ChaosHarness(seed)
    selected = names if names is not None else scenario_names()
    results = tuple(
        harness.run(get_scenario(name)) for name in selected
    )
    return ChaosReport(seed=seed, results=results)
