"""The chaos scenario harness.

A :class:`Scenario` names a failure story (backend death under memcached
load, migration under a dirty-page storm, NGINX at 5 % packet loss...),
carries a default :class:`~repro.faults.plan.FaultPlan` factory, and a
body that drives real substrate objects while asserting *recovery
invariants* — properties that must hold even while faults are landing.

Runs are deterministic end to end: the harness derives each scenario's
plan seed from the run seed and the scenario name, the body draws any
randomness it needs from a :class:`~repro.perf.rand.DeterministicRng`
fork, and the clock is simulated — so two runs with the same seed
produce byte-identical :class:`ScenarioResult` sequences, making every
chaos failure replayable with ``repro chaos --seed S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.faults.plan import FaultEngine, FaultPlan, SiteCounters
from repro.faults.retry import RetryExhausted
from repro.perf.clock import SimClock
from repro.perf.rand import DeterministicRng

if TYPE_CHECKING:
    from repro.fuzz.steps import Step


class InvariantViolation(AssertionError):
    """A recovery invariant failed while (or after) faults were injected."""


@dataclass
class ScenarioContext:
    """What a scenario body gets to work with."""

    clock: SimClock
    engine: FaultEngine
    rng: DeterministicRng
    #: Invariants checked so far (descriptions, pass/fail recorded).
    invariants: list[str] = field(default_factory=list)
    #: Optional :class:`repro.sanitize.suite.SanitizerSuite` the body
    #: wires into the substrates it constructs (``repro sanitize``).
    sanitizers: object | None = None

    def check(self, condition: bool, invariant: str) -> None:
        """Assert a recovery invariant; failures abort the scenario."""
        if not condition:
            self.invariants.append(f"FAIL {invariant}")
            raise InvariantViolation(invariant)
        self.invariants.append(f"ok   {invariant}")


@dataclass(frozen=True)
class Scenario:
    """One named failure story with its default fault plan."""

    name: str
    description: str
    #: Substrates this scenario guarantees ≥1 injection into (with its
    #: default plan) — the acceptance-coverage ledger.
    substrates: tuple[str, ...]
    #: Builds the default plan for a given seed.
    default_plan: Callable[[int | str], FaultPlan]
    #: Drives the substrates; returns deterministic result details.
    body: Callable[[ScenarioContext], dict]

    @classmethod
    def from_steps(
        cls,
        name: str,
        description: str,
        steps: Iterable[Step],
        substrates: Iterable[str] = (),
        world_seed: int | str = 0,
    ) -> "Scenario":
        """Build a scenario from a serialized fuzzer step sequence.

        The declarative constructor over the same :class:`Step` type the
        stateful fuzzer (:mod:`repro.fuzz`) emits: the body replays the
        steps through a :class:`~repro.fuzz.world.FuzzWorld` wired to the
        scenario context's clock, fault engine, and sanitizers, checking
        the full fuzz invariant set after every step.  Promoted shrunk
        failures become first-class catalog entries this way — register
        the result with :func:`repro.faults.registry.register`.

        The default plan is empty: faults enter through ``inject_fault``
        steps, which :meth:`~repro.faults.plan.FaultEngine.arm` specs on
        the context's engine so injections land in the chaos report like
        any hand-written scenario's.
        """
        step_tuple = tuple(steps)

        def body(ctx: ScenarioContext) -> dict:
            from repro.fuzz.replay import run_steps_in_context

            return run_steps_in_context(ctx, step_tuple, world_seed)

        return cls(
            name=name,
            description=description,
            substrates=tuple(substrates),
            default_plan=lambda seed: FaultPlan((), seed),
            body=body,
        )


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run (deterministic for a given seed)."""

    name: str
    outcome: str  # "recovered" | "fatal" | "invariant-violated"
    injected: int
    retried: int
    recovered: int
    fatal: int
    #: Sites that actually saw an injection.
    injected_sites: tuple[str, ...]
    #: Substrates those sites belong to.
    injected_substrates: tuple[str, ...]
    #: Scenario-specific counters (ints/strings only — kept render-stable).
    details: tuple[tuple[str, object], ...]
    invariants: tuple[str, ...]
    failure: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "recovered"


class ChaosHarness:
    """Runs scenarios deterministically under a run seed."""

    def __init__(self, seed: int | str = 0) -> None:
        self.seed = seed

    def scenario_seed(self, scenario: Scenario) -> str:
        return f"{self.seed}:{scenario.name}"

    def run(
        self,
        scenario: Scenario,
        plan: FaultPlan | None = None,
        sanitizers: Any = None,
    ) -> ScenarioResult:
        """Run one scenario under its (or an explicit) fault plan."""
        seed = self.scenario_seed(scenario)
        if plan is None:
            plan = scenario.default_plan(seed)
        clock = SimClock()
        engine = plan.compile(clock)
        context = ScenarioContext(
            clock=clock,
            engine=engine,
            rng=DeterministicRng(seed).fork("body"),
            sanitizers=sanitizers,
        )
        failure = ""
        details: dict = {}
        try:
            details = scenario.body(context) or {}
            outcome = "recovered"
        except InvariantViolation as exc:
            outcome = "invariant-violated"
            failure = str(exc)
        except RetryExhausted as exc:
            outcome = "fatal"
            failure = str(exc)
        except Exception as exc:  # noqa: BLE001 — chaos must not hang the run
            outcome = "fatal"
            failure = f"{type(exc).__name__}: {exc}"
        totals: SiteCounters = engine.totals()
        if outcome == "recovered" and totals.fatal > 0:
            # A substrate recorded an unrecovered fault even though the
            # body completed — e.g. a swallowed reset.  Not a recovery.
            outcome = "fatal"
            failure = f"{totals.fatal} unrecovered fault(s) in counters"
        return ScenarioResult(
            name=scenario.name,
            outcome=outcome,
            injected=totals.injected,
            retried=totals.retried,
            recovered=totals.recovered,
            fatal=totals.fatal,
            injected_sites=engine.injected_sites(),
            injected_substrates=tuple(sorted(engine.injected_substrates())),
            details=tuple(sorted(details.items())),
            invariants=tuple(context.invariants),
            failure=failure,
        )
