"""The fault-injection site catalog.

Every injectable point in the simulator has a stable dotted name
(``"<package>.<module>.<operation>"``).  Substrates carry an optional
``faults`` attribute (default ``None``); when it is unset the hook is a
single attribute test — zero simulated cost and no measurable wall cost
(see ``benchmarks/test_faults_overhead.py``).  When a
:class:`repro.faults.plan.FaultEngine` is attached, the substrate calls
``faults.fire(SITE, ...)`` at the site and interprets the returned
:class:`~repro.faults.plan.Fault` (or ``None``).

The catalog is the contract between :mod:`repro.faults.plan` (which
validates specs against it), the substrates (which fire the sites), and
:mod:`repro.faults.report` (which groups counters by substrate).
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Site names (one constant per hook threaded through the substrates)
# ---------------------------------------------------------------------------

#: Event-channel notification (``EventChannelTable.send``): ``drop`` loses
#: the notify (the caller must re-kick), ``delay`` charges ``param`` ns.
EVENT_NOTIFY = "xen.events.notify"

#: Grant map hypercall (``GrantTable.map_grant``): ``fail`` raises a
#: transient :class:`~repro.xen.grant_table.GrantMapError`.
GRANT_MAP = "xen.grant_table.map"

#: Grant copy hypercall (``GrantTable.copy_grant``): ``fail`` raises a
#: transient :class:`~repro.xen.grant_table.GrantCopyError`.
GRANT_COPY = "xen.grant_table.copy"

#: Netfront/netback ring (``SplitNetDriver.transmit``): ``stall`` charges
#: an extra ring-service latency (× ``param``, default 1).
NET_RING = "xen.drivers.ring"

#: Netback process (``SplitNetDriver.transmit``): ``kill`` marks the
#: backend dead; the frontend must reconnect (re-grant + re-map + re-bind).
NET_BACKEND = "xen.drivers.backend"

#: Blkback process (``SplitBlockDriver.read``/``write``): ``kill`` fails
#: the request *before* any sector is touched (no torn writes); ``stall``
#: charges extra ring latency.
BLK_BACKEND = "xen.blkdev.backend"

#: ``xl`` domain creation (``Toolstack.create``): ``timeout`` tears the
#: half-created domain down, charges the wasted wait, and raises
#: :class:`~repro.xen.toolstack.SpawnTimeout`.
TOOLSTACK_SPAWN = "xen.toolstack.spawn"

#: One request/response exchange (``NetStack.request_response_cost_ns``):
#: ``drop`` forces a retransmission (re-fired — a retransmit can drop
#: again), ``duplicate``/``reorder`` add spurious processing cost.
NET_PACKET = "guest.netstack.packet"

#: vCPU scheduling (``CreditScheduler.schedule_interval``): ``stall``
#: parks one runnable vCPU for the interval, ``storm`` multiplies the
#: switch overhead by ``param`` (default 8).
VCPU = "xen.scheduler.vcpu"

#: ABOM's ≤8-byte compare-exchange (``ABOM._cmpxchg``): ``contend`` makes
#: the CAS lose to a phantom racing vCPU, forcing the documented retry
#: paths (re-trap for 7-byte sites, the phase-1-only state for 9-byte).
ABOM_CMPXCHG = "core.abom.cmpxchg"

#: Remus backup acknowledgement (``RemusReplicator.run_epoch``): ``fail``
#: loses the ack — the epoch's output must stay buffered.
REMUS_ACK = "xen.remus.ack"

#: One pre-copy round (``LiveMigration.run``): ``dirty`` re-dirties
#: ``param`` extra pages (default 10 % of the domain), ``abort`` aborts
#: the migration cleanly.
MIGRATION_ROUND = "xen.migration.round"

#: Wake-kick delivery to a parked domain (``ExecutionEngine._deliver``):
#: ``drop`` loses the kick (the published work stays stranded until the
#: bounded watchdog re-kick — the classic lost-wakeup race), ``delay``
#: defers delivery by ``param`` ns.
SCHED_WAKE = "core.engine.wake"


@dataclass(frozen=True)
class SiteInfo:
    """One injectable site: where it lives and which fault kinds apply."""

    name: str
    substrate: str
    kinds: tuple[str, ...]
    description: str


SITES: dict[str, SiteInfo] = {
    info.name: info
    for info in (
        SiteInfo(EVENT_NOTIFY, "xen.events", ("drop", "delay"),
                 "event-channel notify lost or delayed"),
        SiteInfo(GRANT_MAP, "xen.grant_table", ("fail",),
                 "transient grant map failure"),
        SiteInfo(GRANT_COPY, "xen.grant_table", ("fail",),
                 "transient grant copy failure"),
        SiteInfo(NET_RING, "xen.drivers", ("stall",),
                 "netfront ring stall"),
        SiteInfo(NET_BACKEND, "xen.drivers", ("kill",),
                 "netback death mid-ring"),
        SiteInfo(BLK_BACKEND, "xen.blkdev", ("kill", "stall"),
                 "blkback death or stall mid-ring"),
        SiteInfo(TOOLSTACK_SPAWN, "xen.toolstack", ("timeout",),
                 "xl domain creation timeout"),
        SiteInfo(NET_PACKET, "guest.netstack",
                 ("drop", "duplicate", "reorder"),
                 "packet loss / duplication / reordering"),
        SiteInfo(VCPU, "xen.scheduler", ("stall", "storm"),
                 "vCPU stall or preemption storm"),
        SiteInfo(ABOM_CMPXCHG, "core.abom", ("contend",),
                 "cmpxchg contention from a racing vCPU"),
        SiteInfo(REMUS_ACK, "xen.remus", ("fail",),
                 "backup acknowledgement lost"),
        SiteInfo(MIGRATION_ROUND, "xen.migration", ("dirty", "abort"),
                 "pre-copy dirty-page fault or clean abort"),
        SiteInfo(SCHED_WAKE, "core.engine", ("drop", "delay"),
                 "wake kick to a parked domain lost or delayed"),
    )
}

#: The substrates the acceptance criteria require chaos coverage for.
CORE_SUBSTRATES = (
    "xen.events",
    "xen.grant_table",
    "xen.drivers",
    "guest.netstack",
    "xen.scheduler",
    "core.abom",
    "core.engine",
)


def substrate_of(site: str) -> str:
    """Substrate a site name belongs to (``"xen.events.notify"`` →
    ``"xen.events"``)."""
    info = SITES.get(site)
    if info is not None:
        return info.substrate
    return site.rsplit(".", 1)[0]


def validate(site: str, kind: str) -> None:
    """Reject unknown sites and kinds a site does not support."""
    info = SITES.get(site)
    if info is None:
        known = ", ".join(sorted(SITES))
        raise ValueError(f"unknown fault site {site!r} (known: {known})")
    if kind not in info.kinds:
        raise ValueError(
            f"site {site!r} does not support kind {kind!r} "
            f"(supported: {', '.join(info.kinds)})"
        )


# ---------------------------------------------------------------------------
# Drift check: every catalog entry must match a live injector hook
# ---------------------------------------------------------------------------

def _constant_names() -> dict[str, str]:
    """Site name → the UPPER_CASE constant it is exported as."""
    return {
        value: name
        for name, value in globals().items()
        if name.isupper() and isinstance(value, str) and value in SITES
    }


def verify_hooks() -> list[str]:
    """Cross-check the catalog against the substrates' source.

    A :class:`SiteInfo` whose substrate module no longer references its
    constant (or no longer calls ``.fire(`` at all) is a *dead* catalog
    entry: plans naming it would validate but inject nothing.  Returns
    the list of drift descriptions (empty = catalog is live); import of
    this module fails loudly on drift so the rot can't land silently.
    """
    from pathlib import Path

    src_root = Path(__file__).resolve().parents[1]
    constants = _constant_names()
    problems: list[str] = []
    for name in sorted(SITES):
        info = SITES[name]
        module_path = src_root / (info.substrate.replace(".", "/") + ".py")
        if not module_path.is_file():
            problems.append(
                f"{name}: substrate module {module_path.name} is missing"
            )
            continue
        source = module_path.read_text(encoding="utf-8")
        constant = constants.get(name)
        if constant is None:
            problems.append(f"{name}: no exported site constant")
            continue
        if f"fault_sites.{constant}" not in source:
            problems.append(
                f"{name}: {info.substrate} never references "
                f"fault_sites.{constant}"
            )
        elif ".fire(" not in source and ".run(" not in source:
            problems.append(
                f"{name}: {info.substrate} references the constant but "
                "never fires or retries through it"
            )
    return problems


_drift = verify_hooks()
if _drift:
    raise RuntimeError(
        "fault-site catalog drifted from the substrates:\n  "
        + "\n  ".join(_drift)
    )
del _drift
