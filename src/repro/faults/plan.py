"""The ``FaultPlan`` DSL and its compiled per-site injectors.

A plan is a list of :class:`FaultSpec` — *what* to inject (site + kind),
*when* (a trigger: nth occurrence, every-nth, sim-time window, or
probability), and *how hard* (``param``, ``limit``).  Compiling a plan
produces a :class:`FaultEngine`: the object the substrates poke via
``engine.fire(site)`` on every occurrence of an injectable operation.

Determinism is by construction: probability triggers draw from
:class:`repro.perf.rand.DeterministicRng` streams forked per spec from
the plan seed, and every other trigger depends only on the occurrence
counter and the simulated clock.  Same seed + same plan + same workload
⇒ the identical fault sequence, so every chaos failure is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.faults import sites
from repro.perf.clock import SimClock
from repro.perf.rand import DeterministicRng

# ---------------------------------------------------------------------------
# Triggers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Nth:
    """Fire on exactly the ``n``-th occurrence of the site (1-based)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"occurrence index is 1-based: {self.n}")

    def describe(self) -> str:
        return f"nth={self.n}"


@dataclass(frozen=True)
class Every:
    """Fire on every ``n``-th occurrence (n, 2n, 3n, ...)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"period must be >= 1: {self.n}")

    def describe(self) -> str:
        return f"every={self.n}"


@dataclass(frozen=True)
class TimeWindow:
    """Fire on every occurrence while ``start_ns <= now < end_ns``."""

    start_ns: float
    end_ns: float

    def __post_init__(self) -> None:
        if self.end_ns <= self.start_ns:
            raise ValueError(
                f"empty window: [{self.start_ns}, {self.end_ns})"
            )

    def describe(self) -> str:
        return f"window=[{self.start_ns:g},{self.end_ns:g})ns"


@dataclass(frozen=True)
class Probability:
    """Fire each occurrence with probability ``p`` (seeded, replayable)."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p <= 1.0:
            raise ValueError(f"probability must be in (0, 1]: {self.p}")

    def describe(self) -> str:
        return f"p={self.p:g}"


Trigger = Nth | Every | TimeWindow | Probability


# ---------------------------------------------------------------------------
# Specs and plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: fault *kind* at *site* when *trigger* matches."""

    site: str
    kind: str
    trigger: Trigger
    #: Kind-specific magnitude (delay ns, stall factor, extra dirty pages).
    param: float = 0.0
    #: Cap on injections from this spec (``None`` = unbounded).
    limit: int | None = None

    def __post_init__(self) -> None:
        sites.validate(self.site, self.kind)
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1: {self.limit}")

    def describe(self) -> str:
        parts = [f"{self.site} {self.kind} [{self.trigger.describe()}"]
        if self.param:
            parts.append(f" param={self.param:g}")
        if self.limit is not None:
            parts.append(f" limit={self.limit}")
        return "".join(parts) + "]"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs plus the seed that replays them."""

    specs: tuple[FaultSpec, ...]
    seed: int | str = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def compile(
        self,
        clock: SimClock | None = None,
        tracer: Any = None,
    ) -> "FaultEngine":
        """Build the engine the substrates fire into."""
        return FaultEngine(self, clock=clock, tracer=tracer)

    def reseeded(self, seed: int | str) -> "FaultPlan":
        return FaultPlan(self.specs, seed)

    def describe(self) -> str:
        lines = [f"seed={self.seed}"]
        lines += [f"  {spec.describe()}" for spec in self.specs]
        return "\n".join(lines)


@dataclass(frozen=True)
class Fault:
    """One injected fault, as handed to the substrate that fired it."""

    site: str
    kind: str
    param: float
    #: Occurrence index (1-based) of the site at injection time.
    occurrence: int


# ---------------------------------------------------------------------------
# The compiled engine
# ---------------------------------------------------------------------------


class _Injector:
    """One spec armed with its own deterministic RNG stream."""

    __slots__ = ("spec", "rng", "injected")

    def __init__(self, spec: FaultSpec, rng: DeterministicRng) -> None:
        self.spec = spec
        self.rng = rng
        self.injected = 0

    def should_fire(self, occurrence: int, now_ns: float) -> bool:
        spec = self.spec
        if spec.limit is not None and self.injected >= spec.limit:
            return False
        trigger = spec.trigger
        if isinstance(trigger, Nth):
            return occurrence == trigger.n
        if isinstance(trigger, Every):
            return occurrence % trigger.n == 0
        if isinstance(trigger, TimeWindow):
            return trigger.start_ns <= now_ns < trigger.end_ns
        # Probability: one deterministic draw per occurrence.
        return self.rng.random() < trigger.p


@dataclass
class SiteCounters:
    """Per-site lifecycle counters (the report's columns)."""

    occurrences: int = 0
    injected: int = 0
    retried: int = 0
    recovered: int = 0
    fatal: int = 0

    def merged(self, other: "SiteCounters") -> "SiteCounters":
        return SiteCounters(
            self.occurrences + other.occurrences,
            self.injected + other.injected,
            self.retried + other.retried,
            self.recovered + other.recovered,
            self.fatal + other.fatal,
        )


@dataclass
class _EngineState:
    counters: dict[str, SiteCounters] = field(default_factory=dict)


class FaultEngine:
    """Compiled plan: per-site injectors plus lifecycle accounting.

    Substrates call :meth:`fire` on every occurrence of a site; retry
    policies and recovery paths report back through :meth:`record_retry`,
    :meth:`record_recovered`, and :meth:`record_fatal`.  All four emit
    into an attached :class:`repro.perf.trace.Tracer` under the ``fault``
    category.
    """

    def __init__(
        self,
        plan: FaultPlan,
        clock: SimClock | None = None,
        tracer: Any = None,
    ) -> None:
        self.plan = plan
        self.clock = clock
        #: Optional :class:`repro.perf.trace.Tracer`; events carry the
        #: ``fault`` category with names injected/retried/recovered/fatal.
        self.tracer = tracer
        self._root = DeterministicRng(plan.seed)
        self._injectors: dict[str, list[_Injector]] = {}
        self._n_specs = 0
        for spec in plan.specs:
            self._attach(spec)
        self._state = _EngineState()

    def _attach(self, spec: FaultSpec) -> _Injector:
        """Arm one spec with its deterministic per-spec RNG stream.

        The fork label depends only on the arrival index, site, and kind,
        so a compiled plan and the same specs :meth:`arm`-ed one by one
        produce identical probability draws.
        """
        stream = self._root.fork(f"{self._n_specs}:{spec.site}:{spec.kind}")
        injector = _Injector(spec, stream)
        self._injectors.setdefault(spec.site, []).append(injector)
        self._n_specs += 1
        return injector

    # ------------------------------------------------------------------
    # Dynamic (re)arming — the stateful fuzzer's inject/clear rules
    # ------------------------------------------------------------------
    def arm(self, spec: FaultSpec) -> None:
        """Add a spec to the live engine (after ``compile``).

        Deterministic by construction: the new injector's RNG stream is
        forked from the plan seed using the same labeling scheme as
        compile-time specs, so any arm *sequence* replays identically.
        Occurrence counters are per-site and keep counting across
        arm/disarm, so ``Nth``/``Every`` triggers see the site's full
        history.
        """
        self._attach(spec)

    def disarm(self, site: str | None = None) -> int:
        """Remove armed injectors (``site=None`` clears every site).

        Returns the number of injectors removed.  Lifecycle counters and
        per-site occurrence counts are preserved — disarming stops future
        injections without rewriting history.
        """
        if site is not None:
            return len(self._injectors.pop(site, []))
        removed = sum(len(v) for v in self._injectors.values())
        self._injectors.clear()
        return removed

    def armed_specs(self) -> tuple[FaultSpec, ...]:
        """Currently armed specs, in deterministic (site, arm) order."""
        return tuple(
            injector.spec
            for site in sorted(self._injectors)
            for injector in self._injectors[site]
        )

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        return self.clock.now_ns if self.clock is not None else 0.0

    def _counters(self, site: str) -> SiteCounters:
        counters = self._state.counters.get(site)
        if counters is None:
            counters = self._state.counters[site] = SiteCounters()
        return counters

    def fire(self, site: str, **detail) -> Fault | None:
        """One occurrence of ``site``; returns the fault to apply, if any.

        The first matching spec (plan order) wins; its injection is
        counted and traced.  Returns ``None`` when nothing fires.
        """
        counters = self._counters(site)
        counters.occurrences += 1
        injectors = self._injectors.get(site)
        if not injectors:
            return None
        now_ns = self.now_ns
        for injector in injectors:
            if injector.should_fire(counters.occurrences, now_ns):
                injector.injected += 1
                counters.injected += 1
                fault = Fault(
                    site,
                    injector.spec.kind,
                    injector.spec.param,
                    counters.occurrences,
                )
                self._emit("injected", site, kind=fault.kind, **detail)
                return fault
        return None

    # ------------------------------------------------------------------
    # Lifecycle reporting (called by retry policies / recovery paths)
    # ------------------------------------------------------------------
    def record_retry(self, site: str, **detail) -> None:
        self._counters(site).retried += 1
        self._emit("retried", site, **detail)

    def record_recovered(self, site: str, **detail) -> None:
        self._counters(site).recovered += 1
        self._emit("recovered", site, **detail)

    def record_fatal(self, site: str, **detail) -> None:
        self._counters(site).fatal += 1
        self._emit("fatal", site, **detail)

    def _emit(self, name: str, site: str, **detail) -> None:
        if self.tracer is not None:
            # Substrate detail keys must not shadow the event's own
            # fields (or Tracer.emit's parameters).
            detail = {
                key: value
                for key, value in detail.items()
                if key not in ("site", "name", "category")
            }
            self.tracer.emit("fault", name, site=site, **detail)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, SiteCounters]:
        return self._state.counters

    def totals(self) -> SiteCounters:
        total = SiteCounters()
        for counters in self._state.counters.values():
            total = total.merged(counters)
        return total

    def injected_sites(self) -> tuple[str, ...]:
        return tuple(
            sorted(
                site
                for site, counters in self._state.counters.items()
                if counters.injected > 0
            )
        )

    def injected_substrates(self) -> set[str]:
        return {sites.substrate_of(s) for s in self.injected_sites()}
