"""Bounded retry/backoff and timeout policies.

Injected faults are *survivable*, not just observable: the netfront,
blkfront, toolstack, and netstack paths route their transient failures
through a :class:`RetryPolicy`, which bounds attempts, charges
exponential backoff to the simulated clock, and reports the lifecycle
(retried → recovered | fatal) into the fault engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.perf.clock import SimClock

T = TypeVar("T")


class RetryExhausted(RuntimeError):
    """The retry budget ran out; the last failure is chained as cause."""

    def __init__(self, site: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"{site or 'operation'} still failing after {attempts} attempts: "
            f"{last}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a hard attempt cap.

    ``max_attempts`` counts *calls* of the protected operation: with the
    default 5, an operation may fail four times and succeed on the fifth.
    """

    max_attempts: int = 5
    base_backoff_ns: float = 2_000.0
    multiplier: float = 2.0
    max_backoff_ns: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_backoff_ns < 0 or self.max_backoff_ns < 0:
            raise ValueError("backoff must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")

    def backoff_ns(self, failures: int) -> float:
        """Backoff charged after the ``failures``-th failure (1-based)."""
        if failures < 1:
            raise ValueError(f"failures is 1-based: {failures}")
        return min(
            self.base_backoff_ns * self.multiplier ** (failures - 1),
            self.max_backoff_ns,
        )

    def total_budget_ns(self) -> float:
        """Worst-case simulated time spent backing off before giving up."""
        return sum(
            self.backoff_ns(failure)
            for failure in range(1, self.max_attempts)
        )

    def run(
        self,
        fn: Callable[[], T],
        retriable: tuple[type[BaseException], ...] | type[BaseException],
        *,
        clock: SimClock | None = None,
        faults: Any = None,
        site: str = "",
        on_retry: Callable[[BaseException, int], None] | None = None,
    ) -> T:
        """Call ``fn`` until it succeeds or the attempt cap is hit.

        ``on_retry(exc, failures)`` runs before each re-attempt (e.g. the
        netfront reconnect); exceptions it raises are themselves subject
        to the ``retriable`` filter.  On eventual success after at least
        one failure the engine records a recovery; on exhaustion it
        records a fatal and :class:`RetryExhausted` is raised with the
        last failure chained.
        """
        failures = 0
        while True:
            try:
                result = fn()
            except retriable as exc:
                failures += 1
                if failures >= self.max_attempts:
                    if faults is not None:
                        faults.record_fatal(
                            site, error=type(exc).__name__, attempts=failures
                        )
                    raise RetryExhausted(site, failures, exc) from exc
                if faults is not None:
                    faults.record_retry(site, error=type(exc).__name__)
                if clock is not None:
                    clock.advance(self.backoff_ns(failures))
                if on_retry is not None:
                    try:
                        on_retry(exc, failures)
                    except retriable:
                        # Recovery itself failed transiently; the next
                        # loop iteration re-attempts from scratch.
                        pass
                continue
            if failures and faults is not None:
                faults.record_recovered(site, attempts=failures + 1)
            return result
