"""The shipped chaos scenario catalog.

Each scenario tells one failure story against the real substrates and
asserts the recovery invariants the platform promises (§3.3's "mature
technologies in Xen's ecosystem" are only worth reproducing if they
actually survive failures).  Under its default plan every scenario must
end ``recovered``, and the union of the default plans injects at least
one fault into every substrate in
:data:`repro.faults.sites.CORE_SUBSTRATES` — both facts are enforced by
``tests/faults/test_chaos.py`` and the ``repro chaos`` CI job.

Determinism: plans use occurrence-based triggers wherever an exact count
is asserted, and seeded :class:`~repro.faults.plan.Probability` triggers
where realism matters more (packet loss, vCPU stalls); either way the
whole run replays byte-identically from ``repro chaos --seed S``.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Mapping
from typing import Any

from repro.faults import sites
from repro.faults.chaos import Scenario, ScenarioContext
from repro.faults.plan import Every, FaultPlan, FaultSpec, Nth, Probability
from repro.faults.retry import RetryPolicy


# ---------------------------------------------------------------------------
# 1. Backend death under memcached load, then Remus failover
# ---------------------------------------------------------------------------


def _plan_backend_death(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(sites.NET_BACKEND, "kill", Every(120), limit=3),
            FaultSpec(sites.NET_RING, "stall", Every(100), param=3.0),
            FaultSpec(sites.GRANT_MAP, "fail", Nth(2), limit=1),
            FaultSpec(sites.EVENT_NOTIFY, "drop", Probability(0.01)),
            FaultSpec(sites.REMUS_ACK, "fail", Nth(8)),
        ),
        seed,
    )


def _run_backend_death(ctx: ScenarioContext) -> dict:
    from repro.workloads.profiles import MEMCACHED
    from repro.xen.drivers import SplitNetDriver
    from repro.xen.events import EventChannelTable
    from repro.xen.hypervisor import DomainKind, XenHypervisor
    from repro.xen.remus import Epoch, RemusReplicator

    xen = XenHypervisor(clock=ctx.clock)
    guest = xen.create_domain("memcached-xc")
    backend = xen.create_domain("netback", DomainKind.DRIVER)
    xen.grants.faults = ctx.engine
    xen.grants.sanitizer = ctx.sanitizers
    events = EventChannelTable(
        xen.costs, ctx.clock, faults=ctx.engine, sanitizer=ctx.sanitizers
    )
    driver = SplitNetDriver(
        guest, backend, xen.grants, events, xen.costs, ctx.clock,
        faults=ctx.engine, sanitizer=ctx.sanitizers,
    )
    remus = RemusReplicator(epoch_ms=25.0, faults=ctx.engine)
    nbytes = MEMCACHED.bytes_in + MEMCACHED.bytes_out
    epochs, per_epoch = 8, 50
    latency_ms = 0.0
    for index in range(epochs):
        for _ in range(per_epoch):
            driver.transmit(nbytes)
        dirty = 200 + (index * 37) % 100
        latency_ms += remus.run_epoch(Epoch(index, dirty, per_epoch))
        ctx.check(
            remus.output_commit_invariant(),
            "output-commit invariant holds after every epoch",
        )
    ctx.check(
        driver.stats.requests == epochs * per_epoch,
        "every memcached request completed despite backend deaths",
    )
    ctx.check(
        driver.stats.backend_deaths == 3 and driver.stats.backend_restarts == 3,
        "netfront reconnected after each injected backend death",
    )
    ctx.check(
        remus.stats.acks_lost == 1 and remus.buffered_packets == per_epoch,
        "the unacknowledged epoch's output stayed buffered",
    )
    # Primary dies with the last epoch never acknowledged: failover must
    # discard exactly the uncommitted output — clients never saw it.
    resume_epoch = remus.fail_primary()
    ctx.check(
        resume_epoch == epochs - 2,
        "backup resumes from the last acknowledged epoch",
    )
    ctx.check(
        remus.stats.packets_released == (epochs - 1) * per_epoch
        and remus.stats.packets_discarded == per_epoch,
        "zero committed-output loss: released exactly the acked epochs",
    )
    ctx.check(
        remus.output_commit_invariant(),
        "output-commit invariant holds across failover",
    )
    return {
        "requests": driver.stats.requests,
        "backend_deaths": driver.stats.backend_deaths,
        "ring_stalls": driver.stats.ring_full_stalls,
        "notify_drops": events.notifications_dropped,
        "acks_lost": remus.stats.acks_lost,
        "packets_released": remus.stats.packets_released,
        "packets_discarded": remus.stats.packets_discarded,
        "resume_epoch": resume_epoch,
        "output_latency_ms": int(latency_ms),
    }


# ---------------------------------------------------------------------------
# 2. Live migration under repeated dirty-page bursts (and injected abort)
# ---------------------------------------------------------------------------


def _plan_migration_storm(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(
                sites.MIGRATION_ROUND, "dirty", Every(2),
                param=1000.0, limit=4,
            ),
            FaultSpec(sites.MIGRATION_ROUND, "abort", Nth(5)),
        ),
        seed,
    )


def _run_migration_storm(ctx: ScenarioContext) -> dict:
    from repro.xen.hypervisor import XenHypervisor
    from repro.xen.migration import LiveMigration, MigrationSession

    xen = XenHypervisor(clock=ctx.clock)

    def migrate(name: str, dirty_rate: float) -> tuple[Any, Any]:
        domain = xen.create_domain(name, memory_mb=128)
        session = MigrationSession(
            domain,
            LiveMigration(
                memory_mb=128,
                dirty_rate_pages_s=dirty_rate,
                downtime_budget_ms=5.0,
                faults=ctx.engine,
                abort_on_non_convergence=True,
            ),
        )
        return domain, session.run()

    # Moderate writer + injected dirty bursts: still converges.
    source1, report1 = migrate("steady-writer", 20_000)
    ctx.check(
        report1.converged and not report1.aborted,
        "migration converges despite injected dirty bursts",
    )
    ctx.check(
        not source1.running,
        "converged migration hands the domain to the destination",
    )
    # Pathological writer: never converges — must abort cleanly.
    source2, report2 = migrate("write-storm", 1_000_000)
    ctx.check(
        report2.aborted and not report2.converged
        and report2.downtime_ms == 0.0,
        "non-convergence aborts cleanly with zero downtime",
    )
    ctx.check(
        source2.running,
        "aborted migration leaves the source domain runnable",
    )
    # Injected mid-copy abort: same guarantee.
    source3, report3 = migrate("aborted-mid-copy", 20_000)
    ctx.check(
        report3.aborted and source3.running,
        "injected abort leaves the source domain runnable",
    )
    return {
        "rounds_converged": report1.rounds,
        "pages_sent_converged": report1.pages_sent,
        "downtime_us": int(report1.downtime_ms * 1e3),
        "rounds_storm": report2.rounds,
        "rounds_aborted": report3.rounds,
    }


# ---------------------------------------------------------------------------
# 3. NGINX under 5 % packet loss
# ---------------------------------------------------------------------------


def _plan_nginx_loss(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(sites.NET_PACKET, "drop", Probability(0.05)),
            FaultSpec(sites.NET_PACKET, "duplicate", Probability(0.01)),
            FaultSpec(sites.NET_PACKET, "reorder", Probability(0.01)),
        ),
        seed,
    )


def _run_nginx_loss(ctx: ScenarioContext) -> dict:
    from repro.guest.netstack import NetDevice, NetStack
    from repro.workloads.profiles import NGINX

    requests = 2000
    lossy = NetStack(
        device=NetDevice.NETFRONT,
        faults=ctx.engine,
        retry=RetryPolicy(max_attempts=8),
    )
    clean = NetStack(device=NetDevice.NETFRONT)
    lossy_ns = clean_ns = 0.0
    for _ in range(requests):
        lossy_ns += lossy.request_response_cost_ns(
            NGINX.bytes_in, NGINX.bytes_out
        )
        clean_ns += clean.request_response_cost_ns(
            NGINX.bytes_in, NGINX.bytes_out
        )
    ctx.check(
        lossy.stats.requests == requests,
        "every request was eventually served (no hang, no reset)",
    )
    ctx.check(
        lossy.stats.retransmits > 0,
        "the loss plan actually cost retransmissions",
    )
    ctx.check(
        lossy_ns > clean_ns,
        "throughput degrades under loss",
    )
    ctx.check(
        lossy_ns < clean_ns * 3.0,
        "degradation is bounded (retransmits, not collapse)",
    )
    return {
        "requests": requests,
        "retransmits": lossy.stats.retransmits,
        "duplicates": lossy.stats.duplicates,
        "reorders": lossy.stats.reorders,
        "slowdown_permille": int(lossy_ns * 1000 / clean_ns),
    }


# ---------------------------------------------------------------------------
# 4. Grant flaps during netfront reconnect, plus GNTTABOP_copy failures
# ---------------------------------------------------------------------------


def _plan_grant_flaps(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(sites.NET_BACKEND, "kill", Every(25), limit=4),
            FaultSpec(sites.GRANT_MAP, "fail", Nth(2)),
            FaultSpec(sites.GRANT_MAP, "fail", Nth(4)),
            FaultSpec(sites.GRANT_COPY, "fail", Every(7)),
        ),
        seed,
    )


def _run_grant_flaps(ctx: ScenarioContext) -> dict:
    from repro.xen.drivers import SplitNetDriver
    from repro.xen.events import EventChannelTable
    from repro.xen.grant_table import GrantCopyError
    from repro.xen.hypervisor import DomainKind, XenHypervisor

    xen = XenHypervisor(clock=ctx.clock)
    guest = xen.create_domain("guest")
    backend = xen.create_domain("netback", DomainKind.DRIVER)
    xen.grants.faults = ctx.engine
    xen.grants.sanitizer = ctx.sanitizers
    events = EventChannelTable(
        xen.costs, ctx.clock, sanitizer=ctx.sanitizers
    )
    driver = SplitNetDriver(
        guest, backend, xen.grants, events, xen.costs, ctx.clock,
        faults=ctx.engine, sanitizer=ctx.sanitizers,
    )
    for _ in range(120):
        driver.transmit(1500)
    ctx.check(
        driver.stats.requests == 120,
        "all requests completed across four backend deaths",
    )
    ctx.check(
        driver.stats.backend_deaths == 4
        and driver.stats.backend_restarts == 4,
        "each death ended in exactly one successful reconnect",
    )
    ctx.check(
        xen.grants.map_failures == 2,
        "both injected re-map failures were absorbed by the retry loop",
    )
    # Hypervisor-mediated copies (GNTTABOP_copy) under transient failure.
    ref = xen.grants.grant_access(guest.domid, 0xE000)
    xen.grants.map_grant(ref, backend.domid)
    policy = RetryPolicy()
    copied = 0
    for _ in range(30):
        copied += policy.run(
            lambda: xen.grants.copy_grant(ref, backend.domid, 2048),
            retriable=(GrantCopyError,),
            clock=ctx.clock,
            faults=ctx.engine,
            site=sites.GRANT_COPY,
        )
    ctx.check(
        xen.grants.copies == 30 and copied == 30 * 2048,
        "every grant copy eventually succeeded",
    )
    ctx.check(
        xen.grants.copy_failures > 0,
        "the copy path actually saw injected failures",
    )
    return {
        "requests": driver.stats.requests,
        "backend_restarts": driver.stats.backend_restarts,
        "map_failures": xen.grants.map_failures,
        "copy_failures": xen.grants.copy_failures,
        "copies": xen.grants.copies,
    }


# ---------------------------------------------------------------------------
# 5. Toolstack spawn timeouts during a container burst
# ---------------------------------------------------------------------------


def _plan_spawn_timeouts(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (FaultSpec(sites.TOOLSTACK_SPAWN, "timeout", Every(4), limit=3),),
        seed,
    )


def _run_spawn_timeouts(ctx: ScenarioContext) -> dict:
    from repro.xen.hypervisor import XenHypervisor
    from repro.xen.toolstack import Toolstack

    xen = XenHypervisor(clock=ctx.clock)
    xen.grants.sanitizer = ctx.sanitizers
    toolstack = Toolstack(xen, faults=ctx.engine)
    per_domain_mb = 512
    for index in range(12):
        toolstack.create(
            f"xc{index}", memory_mb=per_domain_mb, full_vm_boot=False
        )
    ctx.check(
        len(toolstack.creations) == 12 and len(xen.domains) == 13,
        "every requested domain exists exactly once (dom0 + 12)",
    )
    ctx.check(
        toolstack.spawn_timeouts == 3,
        "the injected spawn timeouts actually struck",
    )
    ctx.check(
        xen.used_memory_mb == 4096 + 12 * per_domain_mb,
        "no memory accounting leaked from torn-down half-creations",
    )
    return {
        "domains": len(xen.domains),
        "spawn_timeouts": toolstack.spawn_timeouts,
        "used_memory_mb": xen.used_memory_mb,
    }


# ---------------------------------------------------------------------------
# 6. vCPU stalls and a preemption storm on the credit scheduler
# ---------------------------------------------------------------------------


def _plan_scheduler_storm(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(
                sites.VCPU, "storm", Every(40), param=6.0, limit=4
            ),
            FaultSpec(sites.VCPU, "stall", Probability(0.1)),
        ),
        seed,
    )


def _run_scheduler_storm(ctx: ScenarioContext) -> dict:
    from repro.xen.scheduler import CreditScheduler

    scheduler = CreditScheduler(physical_cpus=2, faults=ctx.engine)
    for domid in (1, 2, 3):
        scheduler.add_vcpu(domid)
        scheduler.add_vcpu(domid)
    totals: dict[int, float] = {1: 0.0, 2: 0.0, 3: 0.0}
    for _ in range(200):
        for domid, share in scheduler.schedule_interval(10e6).items():
            totals[domid] += share
    ctx.check(
        scheduler.storm_events == 4,
        "the preemption storms actually struck",
    )
    ctx.check(
        all(ns > 0.0 for ns in totals.values()),
        "no domain starved",
    )
    ctx.check(
        min(totals.values()) >= 0.8 * max(totals.values()),
        "equal-weight domains stayed within 20 % of each other",
    )
    return {
        "stall_events": scheduler.stall_events,
        "storm_events": scheduler.storm_events,
        "switches": scheduler.switches,
        "min_share_permille": int(
            min(totals.values()) * 1000 / max(totals.values())
        ),
    }


# ---------------------------------------------------------------------------
# 7. ABOM cmpxchg contention (§4.4's race-retry arguments)
# ---------------------------------------------------------------------------


def _plan_abom_contention(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(sites.ABOM_CMPXCHG, "contend", Nth(1)),
            FaultSpec(sites.ABOM_CMPXCHG, "contend", Nth(3)),
        ),
        seed,
    )


def _run_abom_contention(ctx: ScenarioContext) -> dict:
    from repro.arch import Assembler, Reg
    from repro.core import CountingServices, XContainer
    from repro.perf.trace import Tracer

    xc = XContainer(
        CountingServices(results={}), clock=ctx.clock, faults=ctx.engine,
        sanitizers=ctx.sanitizers,
    )
    tracer = Tracer(ctx.clock, capacity=256)
    xc.attach_tracer(tracer)
    # One 7-byte site and one 9-byte site, executed four times each.
    # Contention on occurrence 1 makes the 7-byte patch lose its CAS
    # (retried on the next trap); contention on occurrence 3 makes the
    # 9-byte patch lose phase 2, leaving the still-correct phase-1 state.
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, 4)
    asm.label("loop")
    asm.syscall_site(39, style="mov_eax")
    asm.syscall_site(15, style="mov_rax")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    xc.run(asm.build())
    stats = xc.abom_stats
    ctx.check(
        stats.cmpxchg_contentions == 2,
        "both injected CAS losses actually struck",
    )
    ctx.check(
        stats.total_patches == 2 and len(stats.patched_sites) == 2,
        "both sites ended up patched despite losing their first CAS",
    )
    ctx.check(
        stats.unrecognized_sites == 0,
        "a lost CAS is never misclassified as an unrecognized site",
    )
    ctx.check(
        xc.libos_stats.lightweight_syscalls >= 5,
        "later invocations dispatch lightweight through the patches",
    )
    fault_events = tracer.events("fault")
    ctx.check(
        any(e.name == "injected" for e in fault_events)
        and any(e.name == "recovered" for e in fault_events),
        "fault lifecycle events flowed into the attached tracer",
    )
    return {
        "contentions": stats.cmpxchg_contentions,
        "patches": stats.total_patches,
        "patch_failures": stats.patch_failures,
        "forwarded": xc.libos_stats.forwarded_syscalls,
        "lightweight": xc.libos_stats.lightweight_syscalls,
        "trace_fault_events": len(fault_events),
    }


# ---------------------------------------------------------------------------
# 8. Event storm over blkfront: lost kicks, delays, blkback deaths
# ---------------------------------------------------------------------------


def _plan_event_storm(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(sites.EVENT_NOTIFY, "drop", Every(40)),
            FaultSpec(
                sites.EVENT_NOTIFY, "delay", Every(17), param=5000.0
            ),
            FaultSpec(sites.BLK_BACKEND, "kill", Every(13), limit=5),
            FaultSpec(sites.BLK_BACKEND, "stall", Nth(7), param=4.0),
        ),
        seed,
    )


def _run_event_storm(ctx: ScenarioContext) -> dict:
    from repro.xen.blkdev import SECTOR_SIZE, BlockStore, SplitBlockDriver
    from repro.xen.drivers import SplitNetDriver
    from repro.xen.events import EventChannelTable
    from repro.xen.hypervisor import DomainKind, XenHypervisor

    xen = XenHypervisor(clock=ctx.clock)
    guest = xen.create_domain("guest")
    backend = xen.create_domain("driver", DomainKind.DRIVER)
    xen.grants.sanitizer = ctx.sanitizers
    events = EventChannelTable(
        xen.costs, ctx.clock, faults=ctx.engine, sanitizer=ctx.sanitizers
    )
    net = SplitNetDriver(
        guest, backend, xen.grants, events, xen.costs, ctx.clock,
        faults=ctx.engine, sanitizer=ctx.sanitizers,
    )
    blk = SplitBlockDriver(
        BlockStore(4096), xen.costs, ctx.clock, faults=ctx.engine,
        sanitizer=ctx.sanitizers,
    )
    for _ in range(100):
        net.transmit(1500)
    sectors = 150
    for sector in range(sectors):
        blk.write(sector, bytes([sector % 256]) * SECTOR_SIZE)
    torn = sum(
        1
        for sector in range(sectors)
        if blk.read(sector) != bytes([sector % 256]) * SECTOR_SIZE
    )
    ctx.check(
        torn == 0,
        "no write was torn by a mid-ring backend death",
    )
    ctx.check(
        net.stats.requests == 100
        and blk.stats.writes == sectors
        and blk.stats.reads == sectors,
        "every request completed despite the event storm",
    )
    ctx.check(
        events.notifications_dropped == 2
        and events.notifications_delayed == 6,
        "the kick drops and delays struck on schedule",
    )
    ctx.check(
        blk.stats.backend_deaths == 5
        and blk.stats.backend_restarts == 5,
        "blkfront reconnected after each blkback death",
    )
    return {
        "net_requests": net.stats.requests,
        "blk_writes": blk.stats.writes,
        "blk_reads": blk.stats.reads,
        "notify_drops": events.notifications_dropped,
        "notify_delays": events.notifications_delayed,
        "blk_deaths": blk.stats.backend_deaths,
        "ring_stalls": blk.stats.ring_stalls,
    }


# ---------------------------------------------------------------------------
# 9. Lost wake-kicks against a parked fleet (hybrid execution engine)
# ---------------------------------------------------------------------------


def _plan_wake_drop(seed: int | str) -> FaultPlan:
    return FaultPlan(
        (
            FaultSpec(sites.SCHED_WAKE, "drop", Every(5), limit=4),
            FaultSpec(sites.SCHED_WAKE, "delay", Nth(12), param=3e6),
        ),
        seed,
    )


def _run_wake_drop(ctx: ScenarioContext) -> dict:
    from repro.core.engine import ExecutionEngine

    engine = ExecutionEngine(
        hybrid=True,
        clock=ctx.clock,
        faults=ctx.engine,
        sanitizer=ctx.sanitizers,
    )
    fleet = 6
    for _ in range(fleet):
        engine.spawn()
    posted = 0
    for domid in range(fleet):
        for wave in range(4):
            units = 1 + (domid + wave) % 3
            engine.post_work(
                domid, units, at_ns=(2 + 5 * wave + domid) * 1e6
            )
            posted += units
    engine.run_until(40 * 1e6)
    engine.run_to_quiescence()
    ctx.check(
        engine.stats.drops == 4 and engine.stats.delays == 1,
        "the wake-kick drops and delays struck on schedule",
    )
    ctx.check(
        engine.stats.redeliveries == engine.stats.drops
        and engine.stats.abandoned == 0,
        "every dropped kick was re-kicked by the bounded watchdog",
    )
    ctx.check(
        engine.total_completed() == posted,
        "every published work unit completed despite lost wakeups",
    )
    ctx.check(
        engine.pending_total() == 0 and engine.n_parked == fleet,
        "no units stranded; the whole fleet re-parked at quiescence",
    )
    return {
        "domains": fleet,
        "units_posted": posted,
        "units_completed": engine.total_completed(),
        "kick_drops": engine.stats.drops,
        "kick_delays": engine.stats.delays,
        "redeliveries": engine.stats.redeliveries,
        "spurious_wakes": engine.stats.spurious_wakes,
        "fastforward_ns": engine.stats.fastforward_ns,
        "guest_instructions": engine.stats.instructions,
    }


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

def _build_catalog() -> tuple[Scenario, ...]:
    """The shipped scenarios, in catalog (registration) order."""
    from repro.fuzz.steps import step

    return (
        Scenario(
            name="backend-death-memcached",
            description=(
                "netback dies three times under memcached load while Remus "
                "replicates; failover with an unacked epoch loses zero "
                "committed output"
            ),
            substrates=("xen.drivers", "xen.grant_table", "xen.remus"),
            default_plan=_plan_backend_death,
            body=_run_backend_death,
        ),
        Scenario(
            name="migration-dirty-storm",
            description=(
                "pre-copy migration under injected dirty bursts converges; "
                "non-convergence and injected aborts leave the source "
                "runnable"
            ),
            substrates=("xen.migration",),
            default_plan=_plan_migration_storm,
            body=_run_migration_storm,
        ),
        Scenario(
            name="nginx-packet-loss",
            description=(
                "NGINX at 5% packet loss: throughput degrades boundedly, "
                "every request is served, nothing hangs"
            ),
            substrates=("guest.netstack",),
            default_plan=_plan_nginx_loss,
            body=_run_nginx_loss,
        ),
        Scenario(
            name="grant-flaps-reconnect",
            description=(
                "grant re-map failures during netfront reconnect and "
                "GNTTABOP_copy flakes, all absorbed by bounded retry"
            ),
            substrates=("xen.drivers", "xen.grant_table"),
            default_plan=_plan_grant_flaps,
            body=_run_grant_flaps,
        ),
        Scenario(
            name="toolstack-spawn-timeouts",
            description=(
                "xl create times out repeatedly during a 12-container "
                "burst; every domain comes up, nothing leaks"
            ),
            substrates=("xen.toolstack",),
            default_plan=_plan_spawn_timeouts,
            body=_run_spawn_timeouts,
        ),
        Scenario(
            name="scheduler-preemption-storm",
            description=(
                "vCPU stalls and preemption storms on the credit "
                "scheduler: no starvation, fairness within 20%"
            ),
            substrates=("xen.scheduler",),
            default_plan=_plan_scheduler_storm,
            body=_run_scheduler_storm,
        ),
        Scenario(
            name="abom-cmpxchg-contention",
            description=(
                "ABOM loses CAS races on both the 7-byte and the 9-byte "
                "phase-2 store; every site still ends up patched"
            ),
            substrates=("core.abom",),
            default_plan=_plan_abom_contention,
            body=_run_abom_contention,
        ),
        Scenario(
            name="wake-drop-fleet",
            description=(
                "wake kicks to parked fleet domains dropped and delayed "
                "under the hybrid engine; the watchdog re-kick recovers "
                "every lost wakeup, no unit strands"
            ),
            substrates=("core.engine",),
            default_plan=_plan_wake_drop,
            body=_run_wake_drop,
        ),
        Scenario(
            name="event-storm-blkdev",
            description=(
                "dropped and delayed event kicks plus five blkback deaths "
                "under a write/read storm; no torn writes"
            ),
            substrates=("xen.events", "xen.blkdev"),
            default_plan=_plan_event_storm,
            body=_run_event_storm,
        ),
        # Promoted from a shrunk repro.fuzz counterexample candidate: the
        # step sequence is the scenario (Scenario.from_steps), so it runs
        # through the same FuzzWorld + invariant set the fuzzer uses.
        Scenario.from_steps(
            name="fuzz-notify-drop-burst",
            description=(
                "promoted fuzzer step sequence: two dropped event kicks "
                "inside an unbatched transmit burst, then a clean batched "
                "burst after disarm; the full fuzz invariant set holds"
            ),
            steps=(
                step("spawn", memory_mb=128, lightvm=True),
                step(
                    "inject_fault",
                    name="notify-drop",
                    mode="every",
                    n=2,
                    limit=2,
                ),
                # Unbatched on purpose: each transmit sends its own event
                # kick, so Every(2) actually lands (a batched burst sends
                # ONE kick for the whole train and would starve the spec).
                step("net_burst", count=6, size=1500, batched=False),
                step("clear_faults", name="notify-drop"),
                step("net_burst", count=4, size=700, batched=True),
            ),
            substrates=("xen.events",),
            world_seed=0,
        ),
    )


def _register_catalog() -> None:
    from repro.faults.registry import register

    for scenario in _build_catalog():
        register(scenario)


_register_catalog()


# ---------------------------------------------------------------------------
# Deprecated module-level catalog API (pre-registry).  New call sites use
# repro.faults.registry; these shims keep old code working unchanged.
# ---------------------------------------------------------------------------


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.faults.scenarios.{old} is deprecated; use "
        f"repro.faults.registry.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class _DeprecatedCatalog(Mapping[str, Scenario]):
    """Read-only view of the registry, kept for ``SCENARIOS[...]`` users.

    Emits a :class:`DeprecationWarning` per access; iteration order is
    registration order, exactly like the old dict literal.
    """

    def __getitem__(self, name: str) -> Scenario:
        _warn_deprecated("SCENARIOS[...]", "get_scenario(name)")
        from repro.faults.registry import get_scenario

        return get_scenario(name)

    def __iter__(self) -> Iterator[str]:
        _warn_deprecated("SCENARIOS", "scenario_names()")
        from repro.faults.registry import scenario_names

        return iter(scenario_names())

    def __len__(self) -> int:
        from repro.faults.registry import scenario_names

        return len(scenario_names())

    def __repr__(self) -> str:
        from repro.faults.registry import scenario_names

        return f"<deprecated scenario catalog: {', '.join(scenario_names())}>"


#: Deprecated — use :func:`repro.faults.registry.list_scenarios`.
SCENARIOS: Mapping[str, Scenario] = _DeprecatedCatalog()


def names() -> list[str]:
    """Deprecated — use :func:`repro.faults.registry.scenario_names`."""
    _warn_deprecated("names()", "scenario_names()")
    from repro.faults.registry import scenario_names

    return list(scenario_names())


def get(name: str) -> Scenario:
    """Deprecated — use :func:`repro.faults.registry.get_scenario`."""
    _warn_deprecated("get()", "get_scenario(name)")
    from repro.faults.registry import get_scenario

    return get_scenario(name)
