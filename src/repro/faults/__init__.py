"""Deterministic fault injection and resilience (``repro.faults``).

§3.3 claims X-Containers inherit VM-grade resilience (Remus fault
tolerance, checkpoint/restore live migration); this package is how the
repository *tests* that claim instead of asserting it.  It provides:

* :mod:`~repro.faults.plan` — the seed-driven ``FaultPlan`` DSL and the
  compiled :class:`~repro.faults.plan.FaultEngine`;
* :mod:`~repro.faults.sites` — the catalog of injection points threaded
  through the substrates behind no-op defaults;
* :mod:`~repro.faults.retry` — bounded retry/backoff policies the
  frontends adopt so injected faults are survivable;
* :mod:`~repro.faults.chaos` / :mod:`~repro.faults.scenarios` — named
  failure scenarios with recovery invariants;
* :mod:`~repro.faults.registry` — the decorator-based scenario registry
  (:func:`~repro.faults.registry.scenario`,
  :func:`~repro.faults.registry.register`,
  :func:`~repro.faults.registry.get_scenario`) that replaced the old
  module-level ``SCENARIOS`` dict (kept as a deprecation shim);
* :mod:`~repro.faults.report` — the ``repro chaos`` run report.

Only the light pieces are imported eagerly (substrates import site names
and retry policies from here); the chaos harness is imported on demand.
"""

from repro.faults.plan import (
    Every,
    Fault,
    FaultEngine,
    FaultPlan,
    FaultSpec,
    Nth,
    Probability,
    SiteCounters,
    TimeWindow,
)
from repro.faults.registry import (
    get_scenario,
    list_scenarios,
    register,
    scenario,
    scenario_names,
)
from repro.faults.retry import RetryExhausted, RetryPolicy

__all__ = [
    "Every",
    "Fault",
    "FaultEngine",
    "FaultPlan",
    "FaultSpec",
    "Nth",
    "Probability",
    "RetryExhausted",
    "RetryPolicy",
    "SiteCounters",
    "TimeWindow",
    "get_scenario",
    "list_scenarios",
    "register",
    "scenario",
    "scenario_names",
]
