"""Cloud testbed models (§5.1)."""

from repro.cloud.instances import (
    CloudSite,
    EC2,
    GCE,
    LOCAL_CLUSTER,
    site_by_name,
)

__all__ = ["CloudSite", "EC2", "GCE", "LOCAL_CLUSTER", "site_by_name"]
