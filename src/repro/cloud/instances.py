"""The three testbeds of §5.1 and §5.5.

* **EC2** — c4.2xlarge on a dedicated host; no nested hardware
  virtualization, so Clear Containers cannot run there;
* **GCE** — custom 4-core/8-thread instances with nested virtualization
  enabled (needed for Clear Containers, at the documented cost [15]);
* **LOCAL_CLUSTER** — the Dell R720s used for the LibOS comparisons
  (Fig 6), scalability (Fig 8) and load balancing (Fig 9).

A :class:`CloudSite` contributes a cost-model scale factor (CPU generation
and virtualization tax differ per cloud) and availability constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.costs import (
    DELL_R720,
    EC2_C4_2XLARGE,
    GCE_CUSTOM,
    CostModel,
    MachineSpec,
)


@dataclass(frozen=True)
class CloudSite:
    name: str
    machine: MachineSpec
    #: Whether nested hardware virtualization is available (Clear
    #: Containers' prerequisite).
    nested_hw_virt: bool
    #: Scale applied to all time costs on this site.
    cost_scale: float = 1.0
    #: Extra multiplier on I/O costs from the cloud's own virtualization
    #: (the Xen-Blanket / virtio layer underneath our platforms).
    io_scale: float = 1.0

    def costs(self, base: CostModel | None = None) -> CostModel:
        model = base or CostModel()
        if self.cost_scale != 1.0:
            model = model.scaled(self.cost_scale)
        return model

    def supports(self, platform) -> bool:
        """Whether ``platform`` can run on this site at all."""
        return self.nested_hw_virt or not platform.needs_nested_hw_virt


EC2 = CloudSite(
    name="amazon",
    machine=EC2_C4_2XLARGE,
    nested_hw_virt=False,
    cost_scale=1.0,
    io_scale=1.18,  # Xen-Blanket ring traversal in EC2 (§4)
)

GCE = CloudSite(
    name="google",
    machine=GCE_CUSTOM,
    nested_hw_virt=True,
    cost_scale=1.07,  # slightly slower cores in the custom instance type
    io_scale=1.12,
)

LOCAL_CLUSTER = CloudSite(
    name="local",
    machine=DELL_R720,
    nested_hw_virt=True,
    cost_scale=0.95,
    io_scale=1.0,
)

_SITES = {site.name: site for site in (EC2, GCE, LOCAL_CLUSTER)}


def site_by_name(name: str) -> CloudSite:
    site = _SITES.get(name.lower())
    if site is None:
        raise KeyError(
            f"unknown site {name!r}; known: {', '.join(sorted(_SITES))}"
        )
    return site
