"""Calibrated cost model.

Every nanosecond constant used anywhere in the simulator lives here.  The
paper's testbed (EC2 ``c4.2xlarge``, GCE custom instances, Dell R720s) is not
available, so absolute values are *synthetic but physically plausible*; each
constant is annotated with the mechanism it models and, where applicable, the
paper ratio it anchors.  Calibration tests (``tests/experiments``) assert the
paper's qualitative shapes, never absolute numbers.

The constants are grouped by mechanism:

* **kernel crossings** — native syscall traps, Meltdown/KPTI page-table
  switches, Xen PV syscall bounces, gVisor ptrace stops, function-call
  syscalls (the paper's headline mechanism);
* **context switches** — process switches, vCPU switches, TLB flushes,
  hypercalls for page-table updates;
* **process lifecycle** — fork / exec costs and their page-table components;
* **memory & I/O** — copies, VFS ops, pipe ops;
* **networking** — host stack, iptables DNAT, Xen split drivers, gVisor
  netstack, nested virtio;
* **spawning** — container/VM instantiation (§4.5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class MachineSpec:
    """A physical or virtual machine hosting the experiments."""

    name: str
    cores: int
    threads: int
    memory_gb: float
    ghz: float = 2.9
    #: multiplicative jitter applied by the cloud model (1.0 = the
    #: calibration reference machine).
    speed_factor: float = 1.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.ghz


@dataclass(frozen=True)
class CostModel:
    """All simulated costs, in nanoseconds unless stated otherwise."""

    # ------------------------------------------------------------------
    # Kernel crossings
    # ------------------------------------------------------------------
    #: ``syscall`` into a shared host Linux kernel with the usual mitigation
    #: set but WITHOUT the Meltdown/KPTI patch (Docker-unpatched).
    native_syscall_ns: float = 80.0
    #: Extra cost per syscall under KPTI (CR3 switch in and out plus the TLB
    #: refills it causes).  Anchors the patched-vs-unpatched Docker gap in
    #: Fig 4.
    kpti_syscall_extra_ns: float = 420.0
    #: x86-64 Xen PV syscall: trap into Xen, virtual-exception forward into
    #: the guest kernel in a *separate address space* — page-table switch and
    #: full TLB flush on entry and exit (§4.1).  Anchors Xen-Container being
    #: far below Docker in Fig 4.
    xen_pv_syscall_ns: float = 1500.0
    #: Extra cost of the Xen Meltdown (XPTI) patch per forwarded syscall.
    xpti_syscall_extra_ns: float = 600.0
    #: gVisor ptrace interception: two ptrace stops plus Sentry dispatch per
    #: syscall.  Anchors gVisor at 7–9 % of Docker in Fig 4.
    gvisor_syscall_ns: float = 4700.0
    #: Extra per-syscall cost for gVisor on a KPTI-patched host (the ptrace
    #: hops are themselves kernel crossings).
    gvisor_kpti_extra_ns: float = 900.0
    #: Syscall inside a Clear Container guest: stripped-down, unpatched guest
    #: kernel with "most security features disabled" (§5.4).  Anchors Clear
    #: Containers ≈16× Docker-patched and X/Clear ≈ 1.6 in Fig 4.
    clear_guest_syscall_ns: float = 30.0
    #: The paper's headline mechanism: a syscall converted by ABOM into a
    #: function call through the vsyscall entry table (§4.4).  Anchors the
    #: up-to-27× claim in Fig 4.
    xc_func_call_syscall_ns: float = 18.5
    #: An *unconverted* X-Container syscall: traps to the X-Kernel which
    #: immediately transfers to the X-LibOS in the SAME address space — no
    #: page-table switch, no TLB flush (§4.2).
    xc_forwarded_syscall_ns: float = 260.0
    #: Graphene LibOS syscall: library call plus PAL indirection and the
    #: host-kernel exits the PAL still performs.  Anchors X ≈ 2× Graphene
    #: with one NGINX worker (Fig 6a).
    graphene_syscall_ns: float = 900.0
    #: Graphene IPC round-trip used to coordinate the shared POSIX state
    #: between processes (§5.5 / §6.2).  Anchors Graphene losing ≥50 % with
    #: 4 NGINX workers in Fig 6b.
    graphene_ipc_ns: float = 12000.0
    #: Unikernel (Rumprun) syscall: direct function call into the rump
    #: kernel.
    unikernel_syscall_ns: float = 12.0

    # ------------------------------------------------------------------
    # Context switches, TLB, hypercalls
    # ------------------------------------------------------------------
    #: Linux process context switch (register state + CR3 + scheduler).
    ctx_switch_process_ns: float = 1500.0
    #: Extra process-switch cost on a KPTI-patched kernel (shadow page
    #: tables touch more state).
    ctx_switch_kpti_extra_ns: float = 250.0
    #: A validated hypercall into Xen / the X-Kernel (trap + validation).
    hypercall_ns: float = 550.0
    #: Page-table update batch submitted via hypercall (mmu_update).  Process
    #: switches and fork inside an X-Container pay this; anchors X-Container
    #: losing Process Creation and Context Switching in Fig 5 (§5.4).
    pt_update_hypercall_ns: float = 800.0
    #: vCPU context switch in the hypervisor credit scheduler (full flush).
    vcpu_switch_ns: float = 3000.0
    #: Full TLB flush (non-global entries).
    tlb_flush_ns: float = 300.0
    #: TLB refill cost after a kernel-range flush — avoided by X-LibOS's
    #: global-bit mapping on intra-container switches (§4.3).
    tlb_kernel_refill_ns: float = 350.0
    #: Nested hardware virtualization: a VM exit handled by L1+L0 (Clear
    #: Containers on GCE).  Anchors Clear Containers' macro penalty (Fig 3).
    nested_vmexit_ns: float = 9000.0
    #: Cache/TLB pollution per runnable task on a flat runqueue: with 4N
    #: processes on one shared kernel, every switch lands on a colder
    #: cache.  This linear term is what makes Docker's throughput decay
    #: faster than hierarchical scheduling in Fig 8 (§5.6).
    cache_pollution_per_task_ns: float = 18.0
    #: Round-trip wall latency between two containers/VMs on one host
    #: (event-channel wakeup + scheduling + two stack traversals).  A
    #: synchronous PHP→MySQL query blocks on this (Fig 6c).
    inter_vm_rtt_ns: float = 280000.0
    #: Same-kernel loopback round trip (the Dedicated&Merged case).
    loopback_rtt_ns: float = 25000.0

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    #: Base cost of ``fork`` excluding page-table copying.
    fork_base_ns: float = 45000.0
    #: Copying / COW-marking one page-table page during ``fork``.
    fork_per_pt_page_ns: float = 420.0
    #: Base cost of ``execve`` (binary load, mapping setup).
    exec_base_ns: float = 220000.0
    #: Page-table pages touched by a typical UnixBench child.
    default_pt_pages: int = 48

    # ------------------------------------------------------------------
    # Memory & I/O
    # ------------------------------------------------------------------
    #: Per-byte memcpy cost (~30 GB/s).
    copy_per_byte_ns: float = 0.033
    #: VFS operation (path lookup, dentry/inode work) beyond the crossing.
    vfs_op_ns: float = 300.0
    #: Per-operation pipe buffer management beyond the crossing and copy.
    pipe_op_ns: float = 120.0

    # ------------------------------------------------------------------
    # Networking (per request unless stated)
    # ------------------------------------------------------------------
    #: Host kernel TCP/IP work for one request/response pair.
    host_netstack_ns: float = 3800.0
    #: iptables DNAT port-forwarding cost per request (both platforms use it
    #: to expose servers, §5.3).
    iptables_dnat_ns: float = 700.0
    #: Linux bridge / veth hop per request.
    bridge_hop_ns: float = 500.0
    #: Xen split-driver (netfront/netback) cost per request: grant mapping,
    #: event channel, copy through the ring (amortized by ring batching).
    #: Paid by Xen-Containers and X-Containers.
    netfront_ns: float = 1200.0
    #: Fixed cost of servicing one split-driver ring *batch*: the single
    #: event-channel kick, the one shared pending-flag check, and the ring
    #: push/reap bookkeeping.  Calibration invariant (asserted by
    #: ``tests/xen/test_batching.py``): ``ring_batch_fixed_ns +
    #: ring_per_desc_ns == netfront_ns`` so a batch of one descriptor
    #: costs exactly the legacy per-request price and the Fig 3/8/9
    #: shapes are unchanged.
    ring_batch_fixed_ns: float = 900.0
    #: Marginal cost per ring descriptor within a batch (grant-reference
    #: bookkeeping plus one descriptor read/write on the shared ring).
    ring_per_desc_ns: float = 300.0
    #: gVisor's user-space Go netstack per request.
    gvisor_netstack_ns: float = 9000.0
    #: Clear Containers' virtio-net inside a nested VM per request.
    nested_virtio_ns: float = 5200.0
    #: Per-byte wire/NIC cost (~10 Gbit/s).
    net_per_byte_ns: float = 0.08
    #: TCP connection establishment (3-way handshake CPU cost).
    tcp_handshake_ns: float = 6000.0

    # ------------------------------------------------------------------
    # Kernel-dedication efficiency (§3.2): a LibOS dedicated to one
    # application can disable SMP locking, tune the scheduler, etc.  These
    # multipliers scale the *kernel work* component of a workload.
    # ------------------------------------------------------------------
    #: Shared general-purpose host kernel (reference).
    shared_kernel_efficiency: float = 1.0
    #: X-LibOS tuned for a single concern (no cross-application locking,
    #: tailored config).  Anchors the macro wins in Fig 3 together with the
    #: syscall conversion.
    xlibos_efficiency: float = 0.62
    #: Unmodified guest Linux in a Xen-Container (no tuning, PV overheads
    #: inside the guest too).
    xen_guest_efficiency: float = 1.08
    #: Clear Containers' minimal guest kernel.
    clear_guest_efficiency: float = 0.88
    #: gVisor Sentry re-implementation of kernel services in Go.
    gvisor_efficiency: float = 2.6
    #: Rumprun (NetBSD-derived) kernel: competitive for static serving but
    #: slower than Linux for database-style work (§5.5).
    rumprun_efficiency: float = 1.25
    #: Graphene's shared POSIX library implementation.
    graphene_efficiency: float = 1.5

    # ------------------------------------------------------------------
    # Spawning (§4.5), in milliseconds
    # ------------------------------------------------------------------
    #: X-LibOS boot with the special bootloader straight into one process.
    xlibos_boot_ms: float = 180.0
    #: Overhead of Xen's stock ``xl`` toolstack per domain creation.
    xl_toolstack_ms: float = 2820.0
    #: LightVM-style streamlined toolstack (§4.5 cites 4 ms).
    lightvm_toolstack_ms: float = 4.0
    #: Docker container start (runc, namespaces, overlay mounts).
    docker_spawn_ms: float = 650.0
    #: Full Ubuntu guest boot inside a Xen VM.
    vm_boot_ms: float = 28000.0

    # ------------------------------------------------------------------
    # Interpreter accounting
    # ------------------------------------------------------------------
    #: Charged per retired instruction by the ``repro.arch`` CPU interpreter
    #: (≈2 IPC at 2.9 GHz — only relative magnitudes matter).
    instruction_ns: float = 0.17
    #: ABOM patch application (pattern check + cmpxchg writes); paid once
    #: per patched site (§4.4: "only needs to be performed once").
    abom_patch_ns: float = 2200.0
    #: #UD fixup in the X-Kernel for a jump into a patched call's tail.
    ud_fixup_ns: float = 1800.0

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every time cost multiplied by ``factor``.

        Used by the cloud model to express that e.g. GCE's cores differ
        slightly from EC2's.  Counts (``default_pt_pages``) and efficiency
        multipliers are left untouched.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        unscaled = {
            "default_pt_pages",
            "shared_kernel_efficiency",
            "xlibos_efficiency",
            "xen_guest_efficiency",
            "clear_guest_efficiency",
            "gvisor_efficiency",
            "rumprun_efficiency",
            "graphene_efficiency",
        }
        updates = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
            if name not in unscaled
        }
        return replace(self, **updates)


#: The reference cost model used when an experiment does not ask for a
#: cloud-specific variant.
DEFAULT_COSTS = CostModel()


# Machines from §5.1 of the paper.
EC2_C4_2XLARGE = MachineSpec(
    name="ec2-c4.2xlarge", cores=4, threads=8, memory_gb=15.0, ghz=2.9,
    speed_factor=1.0,
)
GCE_CUSTOM = MachineSpec(
    name="gce-custom-4c8t", cores=4, threads=8, memory_gb=16.0, ghz=2.6,
    speed_factor=0.94,
)
DELL_R720 = MachineSpec(
    name="dell-r720", cores=16, threads=32, memory_gb=96.0, ghz=2.9,
    speed_factor=1.05,
)
