"""Performance substrate: simulated time, calibrated costs, statistics.

Everything in the repository that "measures" performance does so against the
:class:`~repro.perf.clock.SimClock` and charges costs taken from a single
:class:`~repro.perf.costs.CostModel` instance.  Keeping every nanosecond
constant in one module makes the calibration auditable: each constant carries
a comment naming the paper ratio it anchors.
"""

from repro.perf.clock import SimClock
from repro.perf.costs import CostModel, MachineSpec
from repro.perf.rand import DeterministicRng
from repro.perf.stats import RunStats, percentile, summarize
from repro.perf.trace import TraceEvent, Tracer

__all__ = [
    "SimClock",
    "CostModel",
    "MachineSpec",
    "DeterministicRng",
    "RunStats",
    "percentile",
    "summarize",
    "TraceEvent",
    "Tracer",
]
