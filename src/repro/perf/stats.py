"""Statistics helpers for experiment results.

The paper reports "the average and standard deviation of five runs" (§5.1);
:class:`RunStats` collects exactly that, plus the latency percentiles the
macro benchmarks need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def percentile(values: list[float], pct: float) -> float:
    """Linear-interpolation percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("cannot take the percentile of no values")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


@dataclass
class Summary:
    """Mean / std / extrema of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float


def summarize(values: list[float]) -> Summary:
    if not values:
        raise ValueError("cannot summarize no values")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )


@dataclass
class RunStats:
    """Accumulates observations across repeated runs of one experiment."""

    label: str = ""
    samples: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    def extend(self, values: list[float]) -> None:
        self.samples.extend(values)

    @property
    def mean(self) -> float:
        return summarize(self.samples).mean

    @property
    def std(self) -> float:
        return summarize(self.samples).std

    def pct(self, p: float) -> float:
        return percentile(self.samples, p)

    def summary(self) -> Summary:
        return summarize(self.samples)

    def __len__(self) -> int:
        return len(self.samples)
