"""Simulated clock.

Every simulated component charges time against a :class:`SimClock`.  The unit
is the nanosecond, stored as a float so that sub-nanosecond costs (per-byte
copy costs, per-instruction interpreter costs) accumulate without rounding.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock.

    The clock never moves backwards: :meth:`advance` rejects negative deltas
    and :meth:`advance_to` is a no-op when the target is in the past.
    """

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: float = 0.0) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot start before zero: {start_ns}")
        self._now_ns = float(start_ns)

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        return self._now_ns / 1e3

    @property
    def now_ms(self) -> float:
        return self._now_ns / 1e6

    @property
    def now_s(self) -> float:
        return self._now_ns / 1e9

    def advance(self, delta_ns: float) -> float:
        """Advance the clock by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta_ns}")
        self._now_ns += delta_ns
        return self._now_ns

    def advance_to(self, target_ns: float) -> float:
        """Advance the clock to ``target_ns`` if it is in the future."""
        if target_ns > self._now_ns:
            self._now_ns = target_ns
        return self._now_ns

    def reset(self, start_ns: float = 0.0) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot reset before zero: {start_ns}")
        self._now_ns = float(start_ns)

    def __repr__(self) -> str:
        return f"SimClock(now_ns={self._now_ns:.1f})"


class Stopwatch:
    """Measures elapsed simulated time between :meth:`start` and :meth:`stop`."""

    __slots__ = ("_clock", "_started_at", "elapsed_ns")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._started_at: float | None = None
        self.elapsed_ns = 0.0

    def start(self) -> None:
        self._started_at = self._clock.now_ns

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch stopped before it was started")
        self.elapsed_ns = self._clock.now_ns - self._started_at
        self._started_at = None
        return self.elapsed_ns

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
