"""Deterministic randomness helpers.

All stochastic behaviour in the simulator (request inter-arrival jitter,
run-to-run noise used to produce error bars) flows through a
:class:`DeterministicRng` seeded from the experiment id, so every experiment
is exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A seeded RNG with a few convenience distributions."""

    def __init__(self, seed: int | str) -> None:
        if isinstance(seed, str):
            digest = hashlib.sha256(seed.encode("utf-8")).digest()
            seed = int.from_bytes(digest[:8], "big")
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream named ``label``."""
        return DeterministicRng(f"{self.seed}:{label}")

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        return self._rng.expovariate(rate)

    def gauss_factor(self, rel_std: float) -> float:
        """A multiplicative noise factor centred on 1.0, clamped positive."""
        return max(0.05, self._rng.gauss(1.0, rel_std))

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq):
        return self._rng.choice(seq)

    def choices(self, seq, weights, k: int):
        return self._rng.choices(seq, weights=weights, k=k)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)
