"""Event tracing — ftrace for the simulator.

§3.1 argues that X-Containers keep "existing software development,
profiling, debugging, and deploying tools" usable; this module is the
repository's own instance of that idea: a ring-buffer tracer any
component can emit into, with filtering and a text renderer.

Attach a :class:`Tracer` to an :class:`~repro.core.xcontainer.XContainer`
(``xc.attach_tracer(tracer)``) to capture syscall forwards, lightweight
dispatches, and ABOM patches with simulated timestamps.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.perf.clock import SimClock


@dataclass(frozen=True)
class TraceEvent:
    ts_ns: float
    category: str
    name: str
    detail: dict = field(default_factory=dict)

    def render(self) -> str:
        extras = " ".join(
            f"{key}={_fmt(value)}" for key, value in self.detail.items()
        )
        return f"[{self.ts_ns / 1e3:12.3f}us] {self.category:10s} " \
               f"{self.name:24s} {extras}".rstrip()


def _fmt(value) -> str:
    if isinstance(value, int) and value > 4096:
        return hex(value)
    return str(value)


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, clock: SimClock, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.clock = clock
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.enabled = True
        self.dropped = 0
        self._overflow_warned = False

    @property
    def capacity(self) -> int:
        """Ring size; assign a larger value to grow the buffer live."""
        assert self._events.maxlen is not None
        return self._events.maxlen

    @capacity.setter
    def capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        if capacity == self._events.maxlen:
            return
        grew = capacity > self._events.maxlen
        # deque maxlen is immutable: rebuild, keeping the newest events.
        self._events = deque(self._events, maxlen=capacity)
        if grew:
            # Headroom exists again — re-arm the warn-once flag so the
            # *next* overflow episode is reported too (previously only
            # clear() re-armed it, so a raised capacity overflowed
            # silently).
            self._overflow_warned = False

    def emit(self, category: str, name: str, **detail) -> None:
        if not self.enabled:
            return
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
            if not self._overflow_warned:
                # Warn once per overflow episode (chaos runs emit far more
                # than the default capacity) instead of silently dropping;
                # ``dropped`` keeps the exact count either way.
                self._overflow_warned = True
                warnings.warn(
                    f"Tracer ring overflowed its capacity of "
                    f"{self._events.maxlen}; oldest events are being "
                    f"dropped (raise Tracer(capacity=...) to keep them)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self._events.append(
            TraceEvent(self.clock.now_ns, category, name, detail)
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def events(self, category: str | None = None,
               name: str | None = None) -> list[TraceEvent]:
        out: Iterable[TraceEvent] = self._events
        if category is not None:
            out = (e for e in out if e.category == category)
        if name is not None:
            out = (e for e in out if e.name == name)
        return list(out)

    def count(self, category: str | None = None) -> int:
        return len(self.events(category))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._overflow_warned = False

    def render(self, limit: int = 50) -> str:
        return "\n".join(e.render() for e in list(self._events)[-limit:])

    def span_ns(self, category: str) -> float:
        """Time between the first and last event of a category."""
        events = self.events(category)
        if len(events) < 2:
            return 0.0
        return events[-1].ts_ns - events[0].ts_ns
