"""repro — a Python reproduction of *X-Containers: Breaking Down Barriers
to Improve Performance and Isolation of Cloud-Native Containers*
(Shen et al., ASPLOS 2019).

The package implements the paper's platform over simulated substrates:

* :mod:`repro.arch` — a byte-accurate x86-64 subset (assembler, decoder,
  CPU interpreter) over which the binary-patching contribution runs;
* :mod:`repro.core` — the X-Kernel, X-LibOS, vsyscall entry table, the
  ABOM online binary optimizer, and the offline patching tool;
* :mod:`repro.xen` / :mod:`repro.guest` — the Xen PV and Linux guest
  kernel substrates;
* :mod:`repro.platforms` — models of every comparison runtime (Docker,
  gVisor, Clear Containers, Xen-Containers, Graphene, Unikernel);
* :mod:`repro.workloads`, :mod:`repro.lb`, :mod:`repro.cloud` — the
  evaluation workloads, load balancers, and testbeds;
* :mod:`repro.experiments` — one module per table/figure in §5.

Quick start::

    from repro import XContainer, CountingServices, Assembler, Reg

    asm = Assembler()
    asm.mov_imm32(Reg.RBX, 1000)
    asm.label("loop")
    asm.syscall_site(39, style="mov_eax", symbol="getpid")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()

    xc = XContainer(CountingServices(results={39: 42}))
    xc.run(asm.build())
    print(xc.syscall_reduction())   # ~0.999: ABOM converted the site
"""

from repro.arch import Assembler, Binary, CPU, PagedMemory, Reg
from repro.core import (
    ABOM,
    CountingServices,
    DockerImage,
    DockerWrapper,
    OfflinePatcher,
    XContainer,
    XKernel,
    XLibOS,
)
from repro.guest import GuestKernel, KernelConfig
from repro.perf import CostModel, SimClock
from repro.platforms import get_platform, platform_names
from repro.xen import XenHypervisor

__version__ = "1.0.0"

__all__ = [
    "Assembler",
    "Binary",
    "CPU",
    "PagedMemory",
    "Reg",
    "ABOM",
    "CountingServices",
    "DockerImage",
    "DockerWrapper",
    "OfflinePatcher",
    "XContainer",
    "XKernel",
    "XLibOS",
    "GuestKernel",
    "KernelConfig",
    "CostModel",
    "SimClock",
    "get_platform",
    "platform_names",
    "XenHypervisor",
    "__version__",
]
