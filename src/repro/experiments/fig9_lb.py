"""Figure 9 — kernel-level load balancing (§5.7)."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Row
from repro.lb.cluster import LoadBalancedCluster

CONFIG_LABELS = {
    "docker-haproxy": "Docker (haproxy)",
    "xcontainer-haproxy": "X-Container (haproxy)",
    "xcontainer-ipvs-nat": "X-Container (ipvs NAT)",
    "xcontainer-ipvs-dr": "X-Container (ipvs Route)",
}


def run() -> ExperimentResult:
    cluster = LoadBalancedCluster()
    assert cluster.docker_cannot_use_ipvs(), (
        "IPVS module loading must be impossible inside Docker (§5.7)"
    )
    rows = []
    for config, label in CONFIG_LABELS.items():
        result = cluster.measure(config)
        rows.append(
            Row(
                label,
                {
                    "throughput_rps": result.throughput_rps,
                    "bottleneck": result.bottleneck,
                },
            )
        )
    return ExperimentResult(
        "fig9",
        "Figure 9: load-balancer throughput, 3 NGINX backends "
        "(requests/s)",
        ["throughput_rps", "bottleneck"],
        rows,
        notes="IPVS requires kernel-module loading — denied inside "
        "Docker, allowed in an X-LibOS",
    )
