"""Cross-validation: the functional stack must agree with the priced
model wherever both can measure the same thing.

Two checks, runnable as experiment id ``validate``:

* **device ordering** — serving the same page through loopback, bridge,
  netfront, nested-virtio, and the gVisor netstack must rank the same
  functionally (measured simulated time of real requests) as in the
  analytic device-cost table;
* **merged-vs-dedicated** — the functional PHP+MiniDB deployment must
  show the loopback saving the Fig 6c model predicts, in the same
  direction and comparable magnitude.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Row
from repro.guest.netstack import NetDevice, NetStack
from repro.perf.clock import SimClock
from repro.workloads.php_mysql_app import (
    build_dedicated_deployment,
    build_merged_deployment,
)
from repro.workloads.wrk_functional import FunctionalWrk

DEVICES = [
    NetDevice.LOOPBACK,
    NetDevice.BRIDGE,
    NetDevice.NETFRONT,
    NetDevice.NESTED_VIRTIO,
    NetDevice.GVISOR,
]


def run() -> list[ExperimentResult]:
    return [device_ordering(), merged_vs_dedicated()]


def device_ordering(requests: int = 40) -> ExperimentResult:
    rows = []
    for device in DEVICES:
        wrk = FunctionalWrk(server_device=device)
        report = wrk.run(requests)
        analytic = NetStack(device=device).device_cost_ns()
        rows.append(
            Row(
                device.value,
                {
                    "functional_us_per_req": (
                        report.duration_ms * 1e3 / report.requests
                    ),
                    "analytic_device_ns": analytic,
                },
            )
        )
    functional = [row.values["functional_us_per_req"] for row in rows]
    analytic = [row.values["analytic_device_ns"] for row in rows]
    agree = all(
        (functional[i] <= functional[i + 1])
        == (analytic[i] <= analytic[i + 1])
        for i in range(len(rows) - 1)
    )
    return ExperimentResult(
        "validate-devices",
        "Validation: functional vs analytic network-device ordering",
        ["functional_us_per_req", "analytic_device_ns"],
        rows,
        notes=f"orderings agree: {agree}",
    )


def merged_vs_dedicated(pages: int = 15) -> ExperimentResult:
    dedicated_clock = SimClock()
    php_d, _ = build_dedicated_deployment(dedicated_clock)
    for _ in range(pages):
        php_d.render_page()
    merged_clock = SimClock()
    php_m, _ = build_merged_deployment(merged_clock)
    for _ in range(pages):
        php_m.render_page()
    dedicated_us = dedicated_clock.now_us / pages
    merged_us = merged_clock.now_us / pages
    rows = [
        Row("dedicated", {"us_per_page": dedicated_us}),
        Row("dedicated&merged", {"us_per_page": merged_us}),
        Row(
            "saving",
            {"us_per_page": dedicated_us - merged_us},
        ),
    ]
    return ExperimentResult(
        "validate-merged",
        "Validation: functional PHP+MiniDB, merged vs dedicated "
        "(the Fig 6c mechanism, measured on real requests)",
        ["us_per_page"],
        rows,
        notes="merging must be cheaper, as the Fig 6c model predicts",
    )
