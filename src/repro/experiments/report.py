"""Result containers and table formatting shared by all experiments."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field


@dataclass
class Row:
    label: str
    values: dict[str, object] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[Row]
    notes: str = ""

    def value(self, row_label: str, column: str):
        for row in self.rows:
            if row.label == row_label:
                return row.values.get(column)
        raise KeyError(f"no row {row_label!r} in {self.experiment}")

    def format_table(self) -> str:
        """Render as an aligned text table (the bench harness prints this)."""
        headers = ["", *self.columns]
        body = []
        for row in self.rows:
            cells = [row.label]
            for column in self.columns:
                value = row.values.get(column)
                cells.append(_fmt(value))
            body.append(cells)
        widths = [
            max(len(line[i]) for line in [headers, *body])
            for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
        )
        lines.append("  ".join("-" * w for w in widths))
        for cells in body:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable form for downstream plotting."""
        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "columns": self.columns,
                "rows": [
                    {"label": row.label, "values": row.values}
                    for row in self.rows
                ],
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    def to_csv(self) -> str:
        """One row per label with the experiment's columns."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["label", *self.columns])
        for row in self.rows:
            writer.writerow(
                [row.label]
                + [row.values.get(column) for column in self.columns]
            )
        return buffer.getvalue()


def _fmt(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def relative_to(rows: list[Row], baseline_label: str,
                columns: list[str]) -> list[Row]:
    """Divide every numeric cell by the baseline row's cell."""
    baseline = next(r for r in rows if r.label == baseline_label)
    out = []
    for row in rows:
        values: dict[str, object] = {}
        for column in columns:
            value = row.values.get(column)
            base = baseline.values.get(column)
            if value is None or not base:
                values[column] = None
            else:
                values[column] = value / base
        out.append(Row(row.label, values))
    return out
