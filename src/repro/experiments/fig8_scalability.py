"""Figure 8 — throughput scalability up to 400 containers (§5.6).

One Dell R720 (16 cores / 32 threads, 96 GB) runs N containers of the
webdevops NGINX+PHP-FPM image (4 processes each), each driven by a
dedicated wrk thread with 5 connections.  Four bare-metal configurations:

* **Docker** — one shared kernel flat-schedules 4N processes.  Cheap
  switches and 4-way per-container parallelism win at small N; the
  shrinking CFS quantum and per-task cache pollution of a 4N-deep
  runqueue lose at large N.
* **X-Container** — hierarchical: the X-Kernel schedules N vCPUs (30 ms
  credit quanta, overhead flat in N), each X-LibOS schedules its own 4
  processes on a queue of constant depth 4.  One vCPU and 128 MB per
  container: the vCPU cap and page-cache pressure cost throughput at
  small N; flat overhead wins by ~18 % at N = 400.
* **Xen PV / Xen HVM** — Docker inside ordinary 512 MB VMs (256 MB past
  200): idle full-distro userspace eats capacity as N grows; PV cannot
  boot more than 250 instances, HVM more than 200, and past 200 the
  network starts dropping packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import LOCAL_CLUSTER
from repro.experiments.report import ExperimentResult, Row
from repro.platforms.docker import DockerPlatform
from repro.platforms.x_container import XContainerPlatform
from repro.platforms.xen_container import XenContainerPlatform
from repro.workloads.base import ServerModel
from repro.workloads.profiles import NGINX_PHP_FPM

SITE = LOCAL_CLUSTER
CORES = SITE.machine.threads  # 32 hardware threads
PROCS_PER_CONTAINER = 4
CONNS_PER_CONTAINER = 5
N_VALUES = [1, 2, 5, 10, 25, 50, 100, 150, 200, 250, 300, 350, 400]

#: §5.6 memory limits: the paper could not boot more than 250 PV or 200
#: HVM instances on 96 GB.
XEN_PV_MAX = 250
XEN_HVM_MAX = 200
#: Past 200 VMs the paper shrank VM memory to 256 MB and "the network
#: started dropping packets".
XEN_DEGRADE_AFTER = 200
XEN_DEGRADE_FACTOR = 0.85

#: Idle userspace of a full VM (systemd, getty, cron...) as a fraction of
#: one core — absent in X-Containers, whose bootloader "spawns the
#: processes of the container directly without running any unnecessary
#: services" (§4.5).
VM_IDLE_OVERHEAD_CORES = 0.012

#: Page-cache/memory pressure of squeezing NGINX+PHP-FPM into 128 MB
#: (§5.6) versus Docker containers sharing a 96 GB page cache.
XC_MEMORY_PRESSURE = 1.31

#: HVM guests take hardware VM exits for timer/APIC/virtio interrupts.
HVM_EXIT_OVERHEAD_NS = 60000.0

#: Client-side round trip seen by a wrk connection (wall time per
#: request beyond server CPU) — bounds the demand each container's 5
#: connections can generate.
CLIENT_RTT_NS = 1.0e6
#: Queueing multiplier for 5 connections contending for 1 vCPU running 4
#: processes (the X-Container / Xen-VM per-container wall-time penalty).
SINGLE_VCPU_QUEUE_FACTOR = 3.0


@dataclass
class CurvePoint:
    n: int
    throughput_rps: float | None


def _demand_limited(n: int, per_request_ns: float,
                    single_vcpu: bool) -> float:
    wall = CLIENT_RTT_NS + per_request_ns * (
        SINGLE_VCPU_QUEUE_FACTOR if single_vcpu else 1.0
    )
    return n * CONNS_PER_CONTAINER / (wall / 1e9)


def docker_throughput(n: int, costs) -> float:
    platform = DockerPlatform(costs)
    kernel = platform.make_kernel()
    switch_ns = kernel.runqueue.switch_cost_ns(2 * PROCS_PER_CONTAINER)
    per_request = (
        ServerModel(platform, SITE, port_forwarding=False).per_request_ns(
            NGINX_PHP_FPM
        )
        + NGINX_PHP_FPM.ctx_switches * switch_ns
    )
    capacity_ns = kernel.runqueue.effective_capacity(
        1e9, CORES, nr_running=n * PROCS_PER_CONTAINER
    )
    capacity = capacity_ns / per_request
    return min(_demand_limited(n, per_request, single_vcpu=False), capacity)


def xcontainer_throughput(n: int, costs) -> float:
    platform = XContainerPlatform(costs)
    kernel = platform.make_kernel()
    # Hierarchical scheduling: intra-container queue depth is always 4.
    switch_ns = kernel.runqueue.switch_cost_ns(PROCS_PER_CONTAINER)
    per_request = (
        ServerModel(platform, SITE, port_forwarding=False).per_request_ns(
            NGINX_PHP_FPM
        )
        * XC_MEMORY_PRESSURE
        + NGINX_PHP_FPM.ctx_switches * switch_ns
    )
    # The X-Kernel's credit scheduler uses 30 ms quanta: overhead per
    # pCPU-second is flat in N.
    if n > CORES:
        quanta_per_s = 1e9 / 30e6
        efficiency = 1.0 - quanta_per_s * costs.vcpu_switch_ns / 1e9
    else:
        efficiency = 1.0
    capacity = CORES * efficiency * 1e9 / per_request
    per_container = 1e9 / per_request  # 1 vCPU cap
    return min(
        _demand_limited(n, per_request, single_vcpu=True),
        n * per_container,
        capacity,
    )


def xen_vm_throughput(n: int, costs, hvm: bool) -> float | None:
    limit = XEN_HVM_MAX if hvm else XEN_PV_MAX
    if n > limit:
        return None
    if hvm:
        platform = DockerPlatform(costs)  # native syscalls inside the VM
        extra = HVM_EXIT_OVERHEAD_NS
        switch_ns = platform.make_kernel().runqueue.switch_cost_ns(
            PROCS_PER_CONTAINER
        )
    else:
        platform = XenContainerPlatform(costs)
        extra = 0.0
        switch_ns = platform.ctx_switch_cost_ns(PROCS_PER_CONTAINER)
    per_request = (
        ServerModel(platform, SITE, port_forwarding=False).per_request_ns(
            NGINX_PHP_FPM
        )
        + extra
        + NGINX_PHP_FPM.ctx_switches * switch_ns
    )
    idle_cores = min(float(CORES) - 0.5, n * VM_IDLE_OVERHEAD_CORES)
    usable = CORES - idle_cores
    throughput = min(
        _demand_limited(n, per_request, single_vcpu=True),
        n * 1e9 / per_request,
        usable * 1e9 / per_request,
    )
    if n > XEN_DEGRADE_AFTER:
        throughput *= XEN_DEGRADE_FACTOR
    return throughput


def curve(config: str) -> list[CurvePoint]:
    costs = SITE.costs()
    out = []
    for n in N_VALUES:
        if config == "docker":
            value = docker_throughput(n, costs)
        elif config == "x-container":
            value = xcontainer_throughput(n, costs)
        elif config == "xen-pv":
            value = xen_vm_throughput(n, costs, hvm=False)
        elif config == "xen-hvm":
            value = xen_vm_throughput(n, costs, hvm=True)
        else:
            raise KeyError(f"unknown Fig 8 configuration {config!r}")
        out.append(CurvePoint(n, value))
    return out


#: Metric name the curve phase publishes and the table phase reads.
SCALABILITY_METRIC = "experiment_fig8_throughput_rps"

#: Fleet sizes the execution-engine sweep boots (kept small: the sweep
#: runs real guest code; the analytic curve still covers all of
#: :data:`N_VALUES`).
EXEC_SWEEP_N = (1, 10, 50)


def _exec_sweep(n: int, engine_kind: str) -> dict[str, float]:
    """Boot ``n`` real X-Container domains and drive a request wave.

    Every published value is engine-invariant: running this under
    ``hybrid`` and ``stepped`` produces identical numbers (the figure's
    byte-identity contract, pinned by ``tests/experiments``)."""
    from repro.core.engine import ExecutionEngine

    engine = ExecutionEngine(hybrid=engine_kind == "hybrid")
    for _ in range(n):
        engine.spawn()
    waves = 4
    for wave in range(waves):
        for domid in range(n):
            units = 1 + (domid + wave) % 3
            engine.post_work(
                domid, units, at_ns=(1 + 10 * wave + domid % 7) * 1e6
            )
    engine.run_until((10 * waves + 10) * 1e6)
    engine.run_to_quiescence()
    return {
        "units": float(engine.total_completed()),
        "instructions": float(engine.stats.instructions),
        "wake_events": float(engine.stats.wake_events),
        "fastforward_ns": engine.stats.fastforward_ns,
    }


def run(registry=None, engine: str | None = None) -> ExperimentResult:
    """All numbers flow through ``registry`` (one is created when not
    given): each curve point lands as an ``experiment_fig8_*`` gauge
    (labels: config, n) and the table is built from registry reads —
    configurations that cannot boot at an N publish nothing there.

    ``engine`` (``"hybrid"`` or ``"stepped"``) additionally boots real
    X-Container fleets through :class:`repro.core.engine.ExecutionEngine`
    at the :data:`EXEC_SWEEP_N` sizes and publishes the (engine-
    invariant) ``experiment_fig8_exec_*`` gauges; the figure table is
    identical with or without the sweep."""
    from repro.obs.registry import Registry

    if registry is None:
        registry = Registry()
    configs = ("docker", "x-container", "xen-pv", "xen-hvm")
    for config in configs:
        for point in curve(config):
            if point.throughput_rps is None:
                continue
            registry.gauge(
                SCALABILITY_METRIC,
                help="aggregate throughput vs container count, Fig 8",
                config=config,
                n=point.n,
            ).set(point.throughput_rps)
    if engine is not None:
        if engine not in ("stepped", "hybrid"):
            raise ValueError(
                f"engine must be 'stepped' or 'hybrid': {engine!r}"
            )
        for n in EXEC_SWEEP_N:
            for key, value in sorted(_exec_sweep(n, engine).items()):
                registry.gauge(
                    f"experiment_fig8_exec_{key}",
                    help="real-fleet execution sweep behind Fig 8",
                    n=n,
                ).set(value)

    def read(config: str, n: int) -> float | None:
        try:
            return registry.value(SCALABILITY_METRIC, config=config, n=n)
        except KeyError:
            return None

    rows = [
        Row(str(n), {config: read(config, n) for config in configs})
        for n in N_VALUES
    ]
    return ExperimentResult(
        "fig8",
        "Figure 8: aggregate throughput vs number of containers "
        "(requests/s)",
        list(configs),
        rows,
        notes="Xen PV stops at 250 and HVM at 200 instances (boot "
        "failures, §5.6)",
    )
