"""§4.5 — container spawning costs.

Not a numbered figure, but the paper reports concrete numbers: 180 ms for
an X-LibOS boot, ~3 s with the stock ``xl`` toolstack, 4 ms with a
LightVM-style toolstack, and a large gap to booting an ordinary VM.
"""

from __future__ import annotations

from repro.core.docker_wrapper import DockerImage, DockerWrapper
from repro.experiments.report import ExperimentResult, Row
from repro.perf.costs import CostModel


def run() -> ExperimentResult:
    costs = CostModel()
    stock = DockerWrapper(costs)
    _, stock_timing = stock.spawn(DockerImage("bash"))
    fast = DockerWrapper(costs, fast_toolstack=True)
    _, fast_timing = fast.spawn(DockerImage("bash"))
    rows = [
        Row("docker (runc)", {"total_ms": costs.docker_spawn_ms}),
        Row(
            "x-container (xl toolstack)",
            {
                "total_ms": stock_timing.total_ms,
                "boot_ms": stock_timing.boot_ms,
                "toolstack_ms": stock_timing.toolstack_ms,
            },
        ),
        Row(
            "x-container (lightvm toolstack)",
            {
                "total_ms": fast_timing.total_ms,
                "boot_ms": fast_timing.boot_ms,
                "toolstack_ms": fast_timing.toolstack_ms,
            },
        ),
        Row(
            "ordinary VM",
            {"total_ms": stock.ordinary_vm_spawn_ms()},
        ),
    ]
    return ExperimentResult(
        "spawn",
        "Section 4.5: container instantiation time (ms)",
        ["total_ms", "boot_ms", "toolstack_ms"],
        rows,
        notes="paper: 180 ms X-LibOS boot, ~3 s with xl, 4 ms LightVM "
        "toolstack",
    )
