"""Experiment runner: regenerate any table or figure by id."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    fig1_architectures,
    fig3_macro,
    fig4_syscall,
    fig5_micro,
    fig6_libos,
    fig8_scalability,
    fig9_lb,
    spawn,
    sweep,
    table1,
    validation,
)
from repro.experiments.report import ExperimentResult


def _as_list(result) -> list[ExperimentResult]:
    if isinstance(result, ExperimentResult):
        return [result]
    return list(result)


_EXPERIMENTS: dict[str, Callable[[], object]] = {
    "table1": table1.run,
    "fig1": fig1_architectures.run,
    "fig3": fig3_macro.run,
    "fig4": fig4_syscall.run,
    "fig5": fig5_micro.run,
    "fig6": fig6_libos.run,
    "fig8": fig8_scalability.run,
    "fig9": fig9_lb.run,
    "spawn": spawn.run,
    "validate": validation.run,
    "sweep": sweep.run,
}


def experiment_ids() -> list[str]:
    return sorted(_EXPERIMENTS)


def run_experiment(experiment_id: str) -> list[ExperimentResult]:
    runner = _EXPERIMENTS.get(experiment_id)
    if runner is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(experiment_ids())}"
        )
    return _as_list(runner())


def run_all() -> dict[str, list[ExperimentResult]]:
    return {eid: run_experiment(eid) for eid in experiment_ids()}


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help=f"one of: {', '.join(experiment_ids())}, or 'all'",
    )
    args = parser.parse_args(argv)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for eid in ids:
        for result in run_experiment(eid):
            print(result.format_table())
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
