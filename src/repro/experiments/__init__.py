"""Experiment modules — one per table/figure in the paper's evaluation.

==========  =====================================================
id          paper artifact
==========  =====================================================
``table1``  ABOM syscall reduction for 12 applications
``fig3``    macrobenchmark throughput + latency (EC2/GCE)
``fig4``    relative syscall throughput (4 panels)
``fig5``    UnixBench microbenchmarks + iperf (4 panels)
``fig6``    LibOS comparison (NGINX, PHP+MySQL)
``fig8``    scalability to 400 containers
``fig9``    kernel-level load balancing
``spawn``   §4.5 instantiation times
==========  =====================================================

Use :func:`repro.experiments.runner.run_experiment` or
``python -m repro.experiments.runner <id>``.
"""

from repro.experiments.report import ExperimentResult, Row

__all__ = ["ExperimentResult", "Row"]
