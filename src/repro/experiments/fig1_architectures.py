"""Figure 1 — comparison of container architectures, as a table.

The paper's Figure 1 is a diagram; this experiment renders the same
comparison quantitatively: what stands on each architecture's isolation
boundary, how big it is, how many interfaces a tenant can drive against
it, and what one syscall costs on the way through.
"""

from __future__ import annotations

from repro.core.tcb import profile
from repro.experiments.report import ExperimentResult, Row
from repro.platforms.registry import get_platform

ARCHITECTURES = [
    "docker",
    "gvisor",
    "clear-container",
    "xen-container",
    "x-container",
    "graphene",
    "unikernel",
]


def run() -> ExperimentResult:
    rows = []
    for name in ARCHITECTURES:
        isolation = profile(name)
        platform = get_platform(name)
        rows.append(
            Row(
                name,
                {
                    "isolation TCB (kLoC)": float(isolation.tcb_kloc),
                    "attack surface": isolation.attack_surface,
                    "syscall ns": platform.syscall_cost_ns(),
                    "multicore": str(platform.multicore_processing),
                    "binary compat": str(
                        name not in ("unikernel",)
                        and name != "graphene"  # one third of syscalls
                    ),
                },
            )
        )
    return ExperimentResult(
        "fig1",
        "Figure 1 (quantified): container architectures compared",
        [
            "isolation TCB (kLoC)",
            "attack surface",
            "syscall ns",
            "multicore",
            "binary compat",
        ],
        rows,
        notes="§2.3/§3.4: only X-Containers pair a small exokernel TCB "
        "with binary compatibility AND multicore processing",
    )
