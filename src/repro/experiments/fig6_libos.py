"""Figure 6 — LibOS comparison: Graphene vs Unikernel vs X-Containers.

All three panels run on the local Dell R720 cluster (§5.5), servers pinned
to one core each, no port forwarding:

* **6a** — NGINX, one worker, static pages (G vs U vs X);
* **6b** — NGINX, four workers (G vs X; Unikernel cannot run four
  processes);
* **6c** — two PHP CGI servers backed by MySQL in three configurations
  (Fig 7): Shared (one MySQL), Dedicated (one MySQL each), and
  Dedicated&Merged (PHP+MySQL inside ONE X-Container over loopback —
  impossible on Unikernel).
"""

from __future__ import annotations

from dataclasses import replace

from repro.cloud.instances import LOCAL_CLUSTER
from repro.experiments.report import ExperimentResult, Row
from repro.platforms.graphene import GraphenePlatform
from repro.platforms.unikernel import UnikernelPlatform, UnsupportedWorkload
from repro.platforms.x_container import XContainerPlatform
from repro.workloads.base import ServerModel
from repro.workloads.profiles import MYSQL_QUERY, NGINX, PHP_SERVER

SITE = LOCAL_CLUSTER
#: Queries per PHP page (one read + one write, §5.5).
QUERIES_PER_PAGE = 2


def _throughput(platform, profile, processes: int = 1) -> float:
    """Requests/s with ``processes`` workers on ``processes`` cores,
    capped by the 10 Gbit/s line rate of the §5.5 cluster."""
    model = ServerModel(platform, SITE, port_forwarding=False)
    per_request = model.per_request_ns(profile.with_processes(processes))
    cpu_rate = processes * 1e9 / per_request
    return min(cpu_rate, model.line_rate_rps(profile))


def run_fig6a() -> ExperimentResult:
    costs = SITE.costs()
    platforms = {
        "G": GraphenePlatform(costs),
        "U": UnikernelPlatform(costs),
        "X": XContainerPlatform(costs, smp=False),
    }
    rows = [
        Row(label, {"throughput_rps": _throughput(p, NGINX)})
        for label, p in platforms.items()
    ]
    return ExperimentResult(
        "fig6a",
        "Figure 6a: NGINX throughput, 1 worker (requests/s)",
        ["throughput_rps"],
        rows,
    )


def run_fig6b() -> ExperimentResult:
    costs = SITE.costs()
    rows = []
    graphene = GraphenePlatform(costs, processes=4)
    rows.append(
        Row("G", {"throughput_rps": _throughput(graphene, NGINX, 4)})
    )
    unikernel = UnikernelPlatform(costs)
    try:
        unikernel.require_processes(4)
        raise AssertionError("Unikernel must reject 4 workers")
    except UnsupportedWorkload:
        rows.append(Row("U", {"throughput_rps": None}))
    x = XContainerPlatform(costs)
    rows.append(Row("X", {"throughput_rps": _throughput(x, NGINX, 4)}))
    return ExperimentResult(
        "fig6b",
        "Figure 6b: NGINX throughput, 4 workers (requests/s; Unikernel "
        "unsupported)",
        ["throughput_rps"],
        rows,
    )


# ----------------------------------------------------------------------
# Fig 6c: 2×PHP + MySQL in the Fig 7 configurations
# ----------------------------------------------------------------------
def _inter_vm_rtt_ns(platform) -> float:
    """Round-trip wall latency of a query between two VMs on one host.

    The PHP CGI server is single-threaded and blocks on every query, so
    this latency directly gates page throughput.  Rumprun's network path
    adds scheduling latency over the Linux-based X-LibOS (§5.5: "the
    Linux kernel outperforms the Rumprun kernel for this benchmark").
    """
    rtt = platform.costs.inter_vm_rtt_ns * SITE.cost_scale
    if isinstance(platform, UnikernelPlatform):
        rtt *= 1.75
    return rtt


def _php_mysql_throughput(
    platform,
    mysql_instances: int,
    merged: bool = False,
) -> float:
    """Total throughput of two PHP servers (requests/s).

    Every page costs one PHP execution plus QUERIES_PER_PAGE synchronous
    MySQL queries.  The PHP server blocks on each query's round trip —
    which is why merging PHP and MySQL into one X-Container (loopback
    instead of the inter-VM network) roughly triples throughput even
    though the merged pair shares a core (§5.5).
    """
    model = ServerModel(platform, SITE, port_forwarding=False)
    php_ns = model.per_request_ns(PHP_SERVER)
    if merged:
        loopback_query = replace(MYSQL_QUERY, net_intensity=0.3)
        query_cpu = model.per_request_ns(loopback_query)
        rtt = platform.costs.loopback_rtt_ns * SITE.cost_scale
        # PHP and MySQL share one core; the wall time per page is the CPU
        # of both plus the (tiny) loopback round trips.
        per_page_wall = php_ns + QUERIES_PER_PAGE * (query_cpu + rtt)
        return 2 * 1e9 / per_page_wall  # two merged containers
    query_cpu = model.per_request_ns(MYSQL_QUERY)
    rtt = _inter_vm_rtt_ns(platform)
    per_page_wall = php_ns + QUERIES_PER_PAGE * (query_cpu + rtt)
    php_throughput = 2 * 1e9 / per_page_wall  # two PHP servers
    # MySQL capacity: shared deployments queue on one instance.
    mysql_capacity = mysql_instances * 1e9 / query_cpu / QUERIES_PER_PAGE
    utilization = min(0.95, php_throughput / mysql_capacity)
    if utilization > 0.5:
        # M/M/1-ish slowdown once the shared database saturates.
        per_page_wall += QUERIES_PER_PAGE * query_cpu * (
            utilization / (1.0 - utilization)
        )
        php_throughput = 2 * 1e9 / per_page_wall
    return min(php_throughput, mysql_capacity)


def run_fig6c() -> ExperimentResult:
    costs = SITE.costs()
    unikernel = UnikernelPlatform(costs)
    x = XContainerPlatform(costs, smp=False)
    rows = [
        Row(
            "U",
            {
                "shared": _php_mysql_throughput(unikernel, 1),
                "dedicated": _php_mysql_throughput(unikernel, 2),
                # One process per Unikernel: merging is impossible (§5.5).
                "dedicated&merged": None,
            },
        ),
        Row(
            "X",
            {
                "shared": _php_mysql_throughput(x, 1),
                "dedicated": _php_mysql_throughput(x, 2),
                "dedicated&merged": _php_mysql_throughput(
                    x, 2, merged=True
                ),
            },
        ),
    ]
    return ExperimentResult(
        "fig6c",
        "Figure 6c: total throughput of 2 PHP servers + MySQL (requests/s)",
        ["shared", "dedicated", "dedicated&merged"],
        rows,
    )


def run() -> list[ExperimentResult]:
    return [run_fig6a(), run_fig6b(), run_fig6c()]
