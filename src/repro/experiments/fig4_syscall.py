"""Figure 4 — relative system call throughput.

The UnixBench System Call loop (dup, close, getpid, getuid, umask) runs as
real machine code on the CPU interpreter, through every §5.1
configuration's syscall path — with real ABOM patching in the X-Container
case.  Four panels: {EC2, GCE} × {single, 4-way concurrent}; all values
normalized to patched Docker.
"""

from __future__ import annotations

from repro.cloud.instances import EC2, GCE
from repro.experiments.report import ExperimentResult, Row
from repro.platforms.registry import cloud_configurations
from repro.workloads.unixbench import syscall_bench

PANELS = [
    ("amazon/single", EC2, 1),
    ("amazon/concurrent", EC2, 4),
    ("google/single", GCE, 1),
    ("google/concurrent", GCE, 4),
]
#: Enough iterations to amortize the one-time ABOM patch cost, as a real
#: UnixBench run (seconds of looping) would.
ITERATIONS = 1000


def run() -> ExperimentResult:
    rows: dict[str, Row] = {}
    columns = [name for name, _, _ in PANELS]
    for panel, site, concurrency in PANELS:
        costs = site.costs()
        configs = cloud_configurations(costs)
        scores = {}
        for config_name, platform in configs.items():
            if not site.supports(platform):
                scores[config_name] = None
                continue
            scores[config_name] = syscall_bench(
                platform, ITERATIONS, concurrency
            ).iterations_per_s
        docker = scores["docker"]
        for config_name, score in scores.items():
            row = rows.setdefault(config_name, Row(config_name))
            row.values[panel] = None if score is None else score / docker
    return ExperimentResult(
        "fig4",
        "Figure 4: relative system call throughput (normalized to patched "
        "Docker; higher is better)",
        columns,
        list(rows.values()),
        notes="X-Container and Clear-Container are unaffected by the "
        "Meltdown patch (§5.4)",
    )
