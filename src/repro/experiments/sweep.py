"""Parameter sweeps — sensitivity analysis over the cost model.

The calibration constants are explicit; these sweeps show how the
headline results move when they change, answering "how much of the win
depends on assumption X?":

* :func:`sweep_conversion_fraction` — Fig 3 macro gains as ABOM converts
  0→100 % of syscalls (Table 1's per-app spread made continuous);
* :func:`sweep_kpti_cost` — how Docker's patched/unpatched gap and the
  X-Container advantage scale with the Meltdown tax;
* :func:`sweep_netfront_cost` — when the split-driver cost would erase
  the macro wins.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cloud.instances import EC2
from repro.experiments.report import ExperimentResult, Row
from repro.perf.costs import CostModel
from repro.platforms.docker import DockerPlatform
from repro.platforms.x_container import XContainerPlatform
from repro.workloads.base import ServerModel
from repro.workloads.profiles import MEMCACHED, NGINX


def _ratio(costs: CostModel, profile, x_kwargs=None) -> float:
    docker = ServerModel(DockerPlatform(costs), EC2)
    x = ServerModel(
        XContainerPlatform(costs, **(x_kwargs or {})), EC2
    )
    return docker.per_request_ns(profile) / x.per_request_ns(profile)


def sweep_conversion_fraction(
    fractions=(0.0, 0.25, 0.5, 0.75, 0.923, 1.0),
) -> ExperimentResult:
    costs = CostModel()
    rows = []
    for fraction in fractions:
        rows.append(
            Row(
                f"{fraction:.0%}",
                {
                    "memcached_vs_docker": _ratio(
                        costs, MEMCACHED,
                        {"converted_fraction": fraction},
                    ),
                    "nginx_vs_docker": _ratio(
                        costs, NGINX, {"converted_fraction": fraction}
                    ),
                },
            )
        )
    return ExperimentResult(
        "sweep-conversion",
        "Sweep: X-Container macro advantage vs ABOM conversion fraction",
        ["memcached_vs_docker", "nginx_vs_docker"],
        rows,
        notes="Table 1 reductions (92–100 %) sit on the flat top of the "
        "curve — which is why ABOM only needs the common patterns",
    )


def sweep_kpti_cost(
    extras=(0.0, 200.0, 420.0, 800.0, 1600.0),
) -> ExperimentResult:
    rows = []
    for extra in extras:
        costs = replace(CostModel(), kpti_syscall_extra_ns=extra)
        rows.append(
            Row(
                f"{extra:.0f}ns",
                {
                    "memcached_vs_docker": _ratio(costs, MEMCACHED),
                    "docker_unpatched_gain": (
                        ServerModel(DockerPlatform(costs), EC2)
                        .per_request_ns(MEMCACHED)
                        / ServerModel(
                            DockerPlatform(costs, patched=False), EC2
                        ).per_request_ns(MEMCACHED)
                    ),
                },
            )
        )
    return ExperimentResult(
        "sweep-kpti",
        "Sweep: the Meltdown tax vs the X-Container advantage",
        ["memcached_vs_docker", "docker_unpatched_gain"],
        rows,
        notes="X-Containers keep a large advantage even at zero KPTI "
        "cost: conversion + dedication, not just the patch",
    )


def sweep_netfront_cost(
    costs_ns=(600.0, 1200.0, 2400.0, 4800.0, 9600.0),
) -> ExperimentResult:
    rows = []
    for netfront in costs_ns:
        costs = replace(CostModel(), netfront_ns=netfront)
        rows.append(
            Row(
                f"{netfront:.0f}ns",
                {
                    "memcached_vs_docker": _ratio(costs, MEMCACHED),
                    "nginx_vs_docker": _ratio(costs, NGINX),
                },
            )
        )
    return ExperimentResult(
        "sweep-netfront",
        "Sweep: split-driver cost vs the X-Container macro advantage",
        ["memcached_vs_docker", "nginx_vs_docker"],
        rows,
        notes="the crossover shows how much ring overhead the syscall "
        "and dedication wins can absorb",
    )


def run() -> list[ExperimentResult]:
    return [
        sweep_conversion_fraction(),
        sweep_kpti_cost(),
        sweep_netfront_cost(),
    ]
