"""Table 1 — Evaluation of the Automatic Binary Optimization Module.

Runs every Table 1 application's synthetic syscall trace through a real
X-Container (real ABOM, real bytes) and reports the measured reduction in
forwarded syscalls next to the paper's number.  MySQL additionally gets the
offline patching pass over its two libpthread sites (§5.2).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Row
from repro.workloads.apps import TABLE1_APPS, measure_reduction

COLUMNS = [
    "implementation",
    "benchmark",
    "measured",
    "paper",
    "measured-offline",
    "paper-manual",
]


def run() -> ExperimentResult:
    rows = []
    for app in TABLE1_APPS:
        result = measure_reduction(app)
        rows.append(
            Row(
                app.name,
                {
                    "implementation": app.language,
                    "benchmark": app.benchmark,
                    "measured": f"{result.abom_reduction:.1%}",
                    "paper": f"{app.paper_reduction:.1%}",
                    "measured-offline": (
                        f"{result.offline_reduction:.1%}"
                        if result.offline_reduction is not None
                        else None
                    ),
                    "paper-manual": (
                        f"{app.paper_manual_reduction:.1%}"
                        if app.paper_manual_reduction is not None
                        else None
                    ),
                },
            )
        )
    return ExperimentResult(
        experiment="table1",
        title="Table 1: ABOM syscall reduction (measured over synthetic "
        "per-app traces)",
        columns=COLUMNS,
        rows=rows,
        notes="reduction = lightweight / total syscall invocations in the "
        "steady-state round",
    )
