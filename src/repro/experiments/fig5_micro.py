"""Figure 5 — UnixBench microbenchmarks + iperf, four panels.

Execl, File Copy, Pipe Throughput, Context Switching, Process Creation and
iperf for the ten §5.1 configurations, normalized to patched Docker.
Panels: {EC2, GCE} × {single, concurrent}; concurrency mildly amplifies
the KPTI tax of syscall-heavy benches on patched kernels (as in Fig 4).
"""

from __future__ import annotations

from repro.cloud.instances import EC2, GCE, CloudSite
from repro.experiments.report import ExperimentResult, Row
from repro.platforms.base import Platform
from repro.platforms.registry import cloud_configurations
from repro.workloads import unixbench
from repro.workloads.iperf import iperf_bench

BENCHES = [
    "execl",
    "file_copy",
    "pipe_throughput",
    "context_switching",
    "process_creation",
    "iperf",
]

#: Syscall-heavy benches whose patched-kernel scores dip further under
#: concurrent load (same §5.4 effect as Fig 4).
_CONTENTION_SENSITIVE = {"file_copy", "pipe_throughput"}


def _score(bench: str, platform: Platform, site: CloudSite) -> float:
    if bench == "execl":
        return unixbench.execl_bench(platform, iterations=20).iterations_per_s
    if bench == "file_copy":
        return unixbench.file_copy_bench(platform, file_kb=64).iterations_per_s
    if bench == "pipe_throughput":
        return unixbench.pipe_bench(platform, iterations=400).iterations_per_s
    if bench == "context_switching":
        return unixbench.context_switch_bench(
            platform, iterations=300
        ).iterations_per_s
    if bench == "process_creation":
        return unixbench.process_creation_bench(
            platform, iterations=40
        ).iterations_per_s
    if bench == "iperf":
        return iperf_bench(platform, site, transfer_mb=64).gbits_per_s
    raise KeyError(bench)


def _contention_factor(bench: str, platform: Platform,
                       concurrency: int) -> float:
    if concurrency <= 1 or bench not in _CONTENTION_SENSITIVE:
        return 1.0
    if not platform.patched:
        return 1.0
    name = platform.name.lower()
    if "x-container" in name or "clear" in name:
        return 1.0  # no patched kernel crossing on the hot path (§5.4)
    return 1.0 / (1.0 + 0.02 * concurrency)


def run_panel(site: CloudSite, concurrency: int) -> ExperimentResult:
    costs = site.costs()
    configs = cloud_configurations(costs)
    rows: dict[str, Row] = {}
    raw: dict[str, dict[str, float | None]] = {b: {} for b in BENCHES}
    for config_name, platform in configs.items():
        for bench in BENCHES:
            if not site.supports(platform):
                raw[bench][config_name] = None
                continue
            score = _score(bench, platform, site)
            score *= _contention_factor(bench, platform, concurrency)
            raw[bench][config_name] = score
    for config_name in configs:
        row = rows.setdefault(config_name, Row(config_name))
        for bench in BENCHES:
            docker = raw[bench]["docker"]
            score = raw[bench][config_name]
            row.values[bench] = None if score is None else score / docker
    mode = "single" if concurrency == 1 else "concurrent"
    return ExperimentResult(
        f"fig5-{site.name}-{mode}",
        f"Figure 5 ({site.name}, {mode}): relative microbenchmark "
        "performance (normalized to patched Docker; higher is better)",
        BENCHES,
        list(rows.values()),
    )


def run() -> list[ExperimentResult]:
    return [
        run_panel(EC2, 1),
        run_panel(EC2, 4),
        run_panel(GCE, 1),
        run_panel(GCE, 4),
    ]
