"""Figure 3 — macrobenchmarks: NGINX, memcached, Redis on EC2 and GCE.

Ten §5.1 configurations per workload per cloud; throughput and latency
normalized to patched Docker.  Clear Containers only exist on GCE (no
nested hardware virtualization on EC2).
"""

from __future__ import annotations

from repro.cloud.instances import EC2, GCE, CloudSite
from repro.experiments.report import ExperimentResult, Row
from repro.platforms.registry import cloud_configurations
from repro.workloads.base import ServerModel
from repro.workloads.clients import ApacheBench, MemtierBenchmark
from repro.workloads.profiles import MEMCACHED, NGINX, REDIS

WORKLOADS = [
    ("nginx", NGINX, ApacheBench),
    ("memcached", MEMCACHED, MemtierBenchmark),
    ("redis", REDIS, MemtierBenchmark),
]
SITES = (EC2, GCE)


def _measure_site(site: CloudSite):
    costs = site.costs()
    configs = cloud_configurations(costs)
    results = {}
    for workload_name, profile, client_cls in WORKLOADS:
        client = client_cls(seed=f"fig3:{site.name}:{workload_name}")
        per_config = {}
        for config_name, platform in configs.items():
            if not site.supports(platform):
                per_config[config_name] = None
                continue
            report = client.drive(ServerModel(platform, site), profile)
            per_config[config_name] = report
        results[workload_name] = per_config
    return results


def run() -> tuple[ExperimentResult, ExperimentResult]:
    """Returns (relative throughput, relative latency) — Fig 3a and 3b."""
    throughput_rows = []
    latency_rows = []
    columns = []
    for site in SITES:
        measured = _measure_site(site)
        for workload_name, per_config in measured.items():
            column = f"{site.name}/{workload_name}"
            columns.append(column)
            docker = per_config["docker"]
            for config_name, report in per_config.items():
                t_row = _row(throughput_rows, config_name)
                l_row = _row(latency_rows, config_name)
                if report is None:
                    t_row.values[column] = None
                    l_row.values[column] = None
                else:
                    t_row.values[column] = (
                        report.mean_throughput / docker.mean_throughput
                    )
                    l_row.values[column] = (
                        report.mean_latency_ms / docker.mean_latency_ms
                    )
    throughput = ExperimentResult(
        "fig3a",
        "Figure 3a: relative throughput (normalized to patched Docker; "
        "higher is better)",
        columns,
        throughput_rows,
    )
    latency = ExperimentResult(
        "fig3b",
        "Figure 3b: relative latency (normalized to patched Docker; "
        "lower is better)",
        columns,
        latency_rows,
    )
    return throughput, latency


def _row(rows: list[Row], label: str) -> Row:
    for row in rows:
        if row.label == label:
            return row
    row = Row(label)
    rows.append(row)
    return row
