"""Figure 3 — macrobenchmarks: NGINX, memcached, Redis on EC2 and GCE.

Ten §5.1 configurations per workload per cloud; throughput and latency
normalized to patched Docker.  Clear Containers only exist on GCE (no
nested hardware virtualization on EC2).
"""

from __future__ import annotations

from repro.cloud.instances import EC2, GCE, CloudSite
from repro.experiments.report import ExperimentResult, Row
from repro.obs.registry import Registry
from repro.platforms.registry import cloud_configurations
from repro.workloads.base import ServerModel
from repro.workloads.clients import ApacheBench, MemtierBenchmark
from repro.workloads.profiles import MEMCACHED, NGINX, REDIS

WORKLOADS = [
    ("nginx", NGINX, ApacheBench),
    ("memcached", MEMCACHED, MemtierBenchmark),
    ("redis", REDIS, MemtierBenchmark),
]
SITES = (EC2, GCE)

#: Metric names the measurement phase publishes and the table phase reads.
THROUGHPUT_METRIC = "experiment_fig3_throughput_rps"
LATENCY_METRIC = "experiment_fig3_latency_ms"


def _measure_site(site: CloudSite, registry: Registry) -> list[str]:
    """Drive every workload × configuration; publish absolute numbers as
    ``experiment_fig3_*`` gauges (labels: site, workload, config).
    Unsupported configurations publish nothing.  Returns the
    configuration names in table order."""
    costs = site.costs()
    configs = cloud_configurations(costs)
    for workload_name, profile, client_cls in WORKLOADS:
        client = client_cls(seed=f"fig3:{site.name}:{workload_name}")
        for config_name, platform in configs.items():
            if not site.supports(platform):
                continue
            report = client.drive(ServerModel(platform, site), profile)
            scope = registry.child(
                site=site.name, workload=workload_name, config=config_name
            )
            scope.gauge(
                THROUGHPUT_METRIC,
                help="absolute mean throughput, Fig 3 macrobenchmarks",
            ).set(report.mean_throughput)
            scope.gauge(
                LATENCY_METRIC,
                help="absolute mean latency, Fig 3 macrobenchmarks",
            ).set(report.mean_latency_ms)
    return list(configs)


def run(
    registry: Registry | None = None,
) -> tuple[ExperimentResult, ExperimentResult]:
    """Returns (relative throughput, relative latency) — Fig 3a and 3b.

    All numbers flow through ``registry`` (one is created when not
    given): measurement publishes absolute gauges, and the normalized
    tables below are computed purely from registry reads — callers can
    pass their own registry to export the absolute values alongside.
    """
    if registry is None:
        registry = Registry()
    throughput_rows = []
    latency_rows = []
    columns = []
    for site in SITES:
        config_names = _measure_site(site, registry)
        for workload_name, _profile, _client_cls in WORKLOADS:
            column = f"{site.name}/{workload_name}"
            columns.append(column)

            def read(metric: str, config: str) -> float | None:
                try:
                    return registry.value(
                        metric,
                        site=site.name,
                        workload=workload_name,
                        config=config,
                    )
                except KeyError:
                    return None

            docker_tp = read(THROUGHPUT_METRIC, "docker")
            docker_lat = read(LATENCY_METRIC, "docker")
            for config_name in config_names:
                t_row = _row(throughput_rows, config_name)
                l_row = _row(latency_rows, config_name)
                tp = read(THROUGHPUT_METRIC, config_name)
                lat = read(LATENCY_METRIC, config_name)
                if tp is None or lat is None:
                    t_row.values[column] = None
                    l_row.values[column] = None
                else:
                    t_row.values[column] = tp / docker_tp
                    l_row.values[column] = lat / docker_lat
    throughput = ExperimentResult(
        "fig3a",
        "Figure 3a: relative throughput (normalized to patched Docker; "
        "higher is better)",
        columns,
        throughput_rows,
    )
    latency = ExperimentResult(
        "fig3b",
        "Figure 3b: relative latency (normalized to patched Docker; "
        "lower is better)",
        columns,
        latency_rows,
    )
    return throughput, latency


def _row(rows: list[Row], label: str) -> Row:
    for row in rows:
        if row.label == label:
            return row
    row = Row(label)
    rows.append(row)
    return row
