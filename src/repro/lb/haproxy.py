"""HAProxy — the user-level load balancer baseline (§5.7).

    "HAProxy is a single-threaded, event-driven proxy server widely
     deployed in production systems."

Per proxied request the director terminates the client connection and opens
(or reuses) a backend connection: two full passes through its network
stack, a batch of syscalls (epoll/accept/recv/send on both sides), and the
proxy's own event-loop work.  Being user-level is exactly why the syscall
path dominates — and why X-Containers double its throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.base import Platform

#: Syscalls per proxied request across both connections.
HAPROXY_SYSCALLS = 22.0
#: Event-loop + header rewrite work per request (ns).
HAPROXY_APP_NS = 3400.0
#: Socket/kernel work beyond the network stack (ns, reference kernel).
HAPROXY_KERNEL_NS = 2000.0


@dataclass
class HAProxyModel:
    """HAProxy running on ``platform`` (Docker or an X-Container)."""

    platform: Platform
    request_bytes: int = 500
    response_bytes: int = 6000

    def per_request_ns(self) -> float:
        p = self.platform
        netstack = p.make_netstack(p.make_kernel())
        client_side = netstack.request_response_cost_ns(
            self.request_bytes, self.response_bytes
        )
        backend_side = netstack.request_response_cost_ns(
            self.request_bytes, self.response_bytes
        )
        return (
            HAPROXY_SYSCALLS * p.syscall_cost_ns()
            + HAPROXY_KERNEL_NS * p.kernel_work_factor()
            + HAPROXY_APP_NS
            + client_side
            + backend_side
        )

    def capacity_rps(self) -> float:
        """Single-threaded: one core, period."""
        return 1e9 / self.per_request_ns()
