"""The general N-backend load-balanced fleet model (Fig 9 and beyond).

The paper's Fig 9 cluster — one load balancer in front of three NGINX
servers — is the ``n_backends=3`` instance of this model.  Four
configurations:

* ``docker-haproxy`` — HAProxy in a Docker container;
* ``xcontainer-haproxy`` — HAProxy in an X-Container;
* ``xcontainer-ipvs-nat`` — IPVS (kernel module inside the X-LibOS) in NAT
  mode: responses flow back through the director;
* ``xcontainer-ipvs-dr`` — IPVS direct routing: the director only forwards
  requests; responses go straight to clients, shifting the bottleneck to
  the NGINX backends (§5.7: "+12 %" then "another factor of 2.5").

System throughput is the min of director capacity and aggregate backend
capacity; each component is pinned to one vCPU as in the paper.  The
``repro.serve`` fleet scenarios reuse the same per-component service
costs (:meth:`LoadBalancedCluster.backend_service_ns` /
:meth:`LoadBalancedCluster.director_service_ns`) so the Fig 9 numbers
and the fleet-scale simulation share one cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cloud.instances import LOCAL_CLUSTER, CloudSite
from repro.guest.ipvs import IPVS, IpvsMode
from repro.lb.haproxy import HAProxyModel
from repro.platforms.base import Platform
from repro.platforms.docker import DockerPlatform
from repro.platforms.x_container import XContainerPlatform
from repro.workloads.base import RequestProfile, ServerModel
from repro.workloads.profiles import NGINX

#: Fig 9 uses one worker process per NGINX server and a lighter static
#: page than the Fig 3 macrobenchmark.
BACKEND_PROFILE = replace(
    NGINX, bytes_out=6000, app_work_ns=6000, processes=1
)
#: The paper's Fig 9 backend count — the default fleet size.
N_BACKENDS = 3

#: IPVS director per-request stack intensity: NAT terminates nothing but
#: tracks and rewrites BOTH flows, with every response byte transiting the
#: director; DR only rewrites the inbound frame's MAC.
NAT_STACK_INTENSITY = 2.6
DR_STACK_INTENSITY = 0.22


@dataclass
class LbResult:
    config: str
    throughput_rps: float
    bottleneck: str  # "director" or "backends"
    director_capacity_rps: float
    backend_capacity_rps: float


class LoadBalancedCluster:
    """Builds and measures a director + N-backend fleet.

    The defaults (``n_backends=3``, the Fig 9 NGINX profile) reproduce
    the paper's four configurations exactly; ``repro.serve`` instantiates
    the same model with hundreds of backends and its own request mixes.
    """

    def __init__(
        self,
        site: CloudSite = LOCAL_CLUSTER,
        n_backends: int = N_BACKENDS,
        backend_profile: RequestProfile = BACKEND_PROFILE,
    ) -> None:
        if n_backends < 1:
            raise ValueError(f"fleet needs >= 1 backend: {n_backends}")
        self.site = site
        self.costs = site.costs()
        self.n_backends = n_backends
        self.backend_profile = backend_profile

    # ------------------------------------------------------------------
    # Component capacities
    # ------------------------------------------------------------------
    def backend_service_ns(self, platform: Platform,
                           direct_routing: bool = False) -> float:
        """Per-request service time of one backend on one vCPU."""
        model = ServerModel(platform, self.site, port_forwarding=False)
        per_request = model.per_request_ns(self.backend_profile)
        if direct_routing:
            # DR backends answer directly to clients: they do the VIP's ARP
            # handling and full response transmission themselves.
            per_request *= 1.08
        return per_request

    def backend_capacity(self, platform: Platform,
                         direct_routing: bool = False) -> float:
        """One backend server on one vCPU, in requests/sec."""
        return 1e9 / self.backend_service_ns(platform, direct_routing)

    def make_director(
        self,
        platform: Platform,
        mode: IpvsMode,
        scheduler: str = "wrr",
    ) -> IPVS:
        """An IPVS director on ``platform`` with the fleet registered."""
        kernel = platform.make_kernel()
        kernel.modules.load("ip_vs")
        kernel.modules.load("ip_vs_rr")
        ipvs = IPVS(kernel.modules, mode, self.costs, scheduler=scheduler)
        for i in range(self.n_backends):
            ipvs.add_server(f"10.0.0.{i + 2}", 80)
        return ipvs

    def director_service_ns(self, platform: Platform,
                            mode: IpvsMode) -> float:
        """Per-request service time on the IPVS director."""
        ipvs = self.make_director(platform, mode)
        profile = self.backend_profile
        netstack = platform.make_netstack(platform.make_kernel())
        if mode is IpvsMode.NAT:
            stack = netstack.request_response_cost_ns(
                profile.bytes_in,
                profile.bytes_out,
                NAT_STACK_INTENSITY,
            )
        else:
            stack = netstack.request_response_cost_ns(
                profile.bytes_in, 0, DR_STACK_INTENSITY
            )
        return stack + ipvs.director_cost_ns(
            profile.bytes_in, profile.bytes_out
        )

    def ipvs_director_capacity(self, platform: Platform,
                               mode: IpvsMode) -> float:
        return 1e9 / self.director_service_ns(platform, mode)

    # ------------------------------------------------------------------
    # The four configurations
    # ------------------------------------------------------------------
    def measure(self, config: str) -> LbResult:
        xc = XContainerPlatform(self.costs)
        if config == "docker-haproxy":
            docker = DockerPlatform(self.costs)
            director = HAProxyModel(docker).capacity_rps()
            backend = self.backend_capacity(docker)
        elif config == "xcontainer-haproxy":
            director = HAProxyModel(xc).capacity_rps()
            backend = self.backend_capacity(xc)
        elif config == "xcontainer-ipvs-nat":
            director = self.ipvs_director_capacity(xc, IpvsMode.NAT)
            backend = self.backend_capacity(xc)
        elif config == "xcontainer-ipvs-dr":
            director = self.ipvs_director_capacity(
                xc, IpvsMode.DIRECT_ROUTING
            )
            backend = self.backend_capacity(xc, direct_routing=True)
        else:
            raise KeyError(f"unknown Fig 9 configuration {config!r}")
        aggregate_backend = self.n_backends * backend
        throughput = min(director, aggregate_backend)
        return LbResult(
            config=config,
            throughput_rps=throughput,
            bottleneck="director" if director < aggregate_backend
            else "backends",
            director_capacity_rps=director,
            backend_capacity_rps=aggregate_backend,
        )

    def measure_all(self) -> dict[str, LbResult]:
        return {
            config: self.measure(config)
            for config in (
                "docker-haproxy",
                "xcontainer-haproxy",
                "xcontainer-ipvs-nat",
                "xcontainer-ipvs-dr",
            )
        }

    def docker_cannot_use_ipvs(self) -> bool:
        """§5.7: IPVS needs module loading — impossible inside Docker."""
        from repro.guest.modules import ModuleLoadError

        docker = DockerPlatform(self.costs)
        kernel = docker.make_kernel()
        try:
            kernel.modules.load("ip_vs")
        except ModuleLoadError:
            return True
        return False
