"""Load balancing front-ends for the §5.7 case study."""

from repro.lb.haproxy import HAProxyModel
from repro.lb.cluster import LoadBalancedCluster, LbResult

__all__ = ["HAProxyModel", "LoadBalancedCluster", "LbResult"]
