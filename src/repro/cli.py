"""Command-line interface.

::

    repro experiments [id|all]   # regenerate tables/figures
    repro platforms              # list runtime models + key costs
    repro tcb                    # §3.4 isolation TCB comparison
    repro abom-demo              # patch a binary live, show the bytes
    repro analyze [example]      # static §4.4 patch-safety analysis
    repro chaos [scenario]       # deterministic fault-injection scenarios
    repro fuzz                   # stateful whole-stack scenario fuzzing
    repro sanitize [target]      # cross-vCPU sanitizer suite
    repro metrics                # telemetry demo: registry snapshot
    repro trace                  # telemetry demo: span timeline

``analyze``, ``chaos``, ``fuzz``, ``sanitize``, ``metrics`` and ``trace``
share one output surface: ``--format {table,json}`` picks the rendering
and ``--output PATH`` redirects it to a file (default: stdout).

(also reachable as ``python -m repro``)
"""

from __future__ import annotations

import argparse
import json
import sys

#: Exit-code contract, shown in ``repro --help``.
EXIT_CODES = """\
exit codes:
  0  success (analyze: all findings safe; chaos: all scenarios recovered;
     fuzz: no invariant violation found)
  1  gate failure (analyze: unsafe finding or differential mismatch;
     chaos: unrecovered scenario, missing core-substrate coverage, or a
     --replay that violated an invariant;
     fuzz: a shrunk failing step sequence was found;
     sanitize: any finding — or, for fixtures, a silenced checker;
     serve: SLO missed or director accounting unbalanced)
  2  usage error (unknown subcommand/argument; raised by argparse)
"""


def _emit(args: argparse.Namespace, text: str) -> None:
    """Write ``text`` to ``--output PATH`` (or stdout)."""
    output = getattr(args, "output", None)
    if output is None:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")


def _json_text(payload: object) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import experiment_ids, run_experiment

    ids = experiment_ids() if args.id == "all" else [args.id]
    for eid in ids:
        for result in run_experiment(eid):
            print(result.format_table())
            print()
    return 0


def cmd_platforms(args: argparse.Namespace) -> int:
    from repro.platforms import get_platform, platform_names

    print(f"{'platform':16s} {'syscall ns':>11s} {'multicore':>10s} "
          f"{'modules':>8s} {'nested-virt':>12s}")
    for name in platform_names():
        platform = get_platform(name)
        print(
            f"{name:16s} {platform.syscall_cost_ns():11.1f} "
            f"{str(platform.multicore_processing):>10s} "
            f"{str(platform.supports_kernel_modules):>8s} "
            f"{str(platform.needs_nested_hw_virt):>12s}"
        )
    return 0


def cmd_tcb(args: argparse.Namespace) -> int:
    from repro.core.tcb import compare_to_docker

    print(f"{'platform':16s} {'TCB kLoC':>10s} {'surface':>8s} "
          f"{'TCB vs docker':>14s} {'surface vs docker':>18s}")
    for row in compare_to_docker():
        print(
            f"{row.platform:16s} {row.tcb_kloc:10,d} "
            f"{row.attack_surface:8d} {row.tcb_vs_docker:13.3f}x "
            f"{row.surface_vs_docker:17.2f}x"
        )
    return 0


def cmd_abom_demo(args: argparse.Namespace) -> int:
    from repro import Assembler, CountingServices, Reg, XContainer
    from repro.arch.disasm import disassemble_memory, format_listing

    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, args.iterations)
    asm.label("loop")
    asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.syscall_site(15, style="mov_rax", symbol="__restore_rt")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build("demo")
    xc = XContainer(CountingServices())
    xc.load(binary)
    print("before:")
    print(format_listing(
        disassemble_memory(xc.memory, binary.base, len(binary.code))
    ))
    xc.run_loaded(binary.entry)
    print()
    print("after ABOM:")
    print(format_listing(
        disassemble_memory(xc.memory, binary.base, len(binary.code))
    ))
    print()
    print(f"forwarded: {xc.libos_stats.forwarded_syscalls}, "
          f"lightweight: {xc.libos_stats.lightweight_syscalls}, "
          f"reduction: {xc.syscall_reduction():.1%}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Static CFG/site/safety analysis + ABOM differential (§4.4).

    Without a target, analyzes every *safe* example binary — the CI
    gate — and exits nonzero if any unsafe finding or differential
    mismatch shows up.  Naming an example analyzes just that one
    (including the deliberately unsafe demonstrations).
    """
    from repro.analysis.examples import EXAMPLES, safe_examples
    from repro.analysis.report import analyze

    if args.list:
        for example in EXAMPLES.values():
            marker = "" if example.safe else "  [unsafe demo]"
            print(f"{example.name:16s} {example.description}{marker}")
        return 0
    if args.target is None:
        selected = safe_examples()
    elif args.target in EXAMPLES:
        selected = [EXAMPLES[args.target]]
    else:
        known = ", ".join(EXAMPLES)
        raise SystemExit(
            f"unknown example {args.target!r} (known: {known})"
        )
    unsafe = 0
    reports = []
    for example in selected:
        binary = example.build()
        report = analyze(
            binary,
            differential=example.runnable and not args.no_differential,
        )
        reports.append(report)
        if report.has_unsafe:
            unsafe += 1
    total = len(selected)
    if args.format == "json":
        _emit(args, _json_text({
            "reports": [report.as_dict() for report in reports],
            "analyzed": total,
            "unsafe": unsafe,
        }))
    else:
        lines = []
        for report in reports:
            lines.append(report.render())
            lines.append("")
        lines.append(
            f"analyzed {total} binar{'y' if total == 1 else 'ies'}: "
            f"{total - unsafe} safe, {unsafe} unsafe"
        )
        _emit(args, "\n".join(lines))
    return 1 if unsafe else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos scenario catalog under a deterministic seed.

    Same seed + same plan ⇒ byte-identical report; exits nonzero when
    any scenario fails to recover (or, when running the whole catalog,
    when the run misses a core substrate).  ``--replay steps.json``
    re-executes a serialized fuzzer step sequence (``repro fuzz``
    output) on a fresh world instead and prints the deterministic
    trace; replaying the same file is byte-identical.
    """
    from repro.faults.registry import get_scenario, scenario_names
    from repro.faults.report import run_scenarios

    if args.replay is not None:
        from repro.fuzz.replay import replay_steps
        from repro.fuzz.steps import loads

        with open(args.replay, encoding="utf-8") as handle:
            world_seed, steps = loads(handle.read())
        trace = replay_steps(steps, world_seed=world_seed)
        _emit(args, trace)
        return 0 if "\noutcome: clean\n" in trace else 1
    if args.list:
        for name in sorted(scenario_names()):
            scenario = get_scenario(name)
            print(f"{scenario.name:28s} {scenario.description}")
        return 0
    names = None
    if args.scenario is not None:
        if args.scenario not in scenario_names():
            known = ", ".join(sorted(scenario_names()))
            raise SystemExit(
                f"unknown scenario {args.scenario!r} (known: {known})"
            )
        names = [args.scenario]
    report = run_scenarios(args.seed, names)
    if args.format == "json":
        _emit(args, _json_text(report.as_dict()))
    else:
        _emit(args, report.render())
    if not report.all_recovered:
        return 1
    if names is None and not report.core_coverage_ok():
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a serving-fleet scenario (IPVS director + N backends).

    Open-loop seeded traffic, metrics-driven autoscaling, optional
    chaos overlay.  Same seed + same scenario ⇒ byte-identical report
    regardless of ``--workers``; exits 1 when the run misses its SLO
    (no post-chaos recovery inside the window) or the director's
    accounting fails to balance.
    """
    from repro.obs import prometheus_text
    from repro.serve import SCENARIOS, run_serve

    if args.list:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:12s} {scenario.description}")
        return 0
    if args.scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise SystemExit(
            f"unknown serve scenario {args.scenario!r} (known: {known})"
        )
    report = run_serve(
        args.scenario, seed=args.seed, workers=args.workers,
        engine=args.engine,
    )
    if args.prometheus:
        _emit(args, prometheus_text(report.result.telemetry.registry))
    elif args.format == "json":
        _emit(args, _json_text(report.as_dict()))
    else:
        _emit(args, report.render())
    if not report.result.slo_ok or not report.result.conservation_ok:
        return 1
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run the cross-vCPU sanitizer suite over end-to-end workloads.

    Targets: ``chaos`` (the fault catalog — retried faults must leave
    the checkers clean), ``workloads`` (fig3 request profiles + fig8
    scale-out), ``fixtures`` (the seeded-race units, which are SUPPOSED
    to fire), or ``all`` (chaos + workloads; the CI clean-run gate).
    Exits 1 on any finding except under ``fixtures``, where it exits 1
    if any fixture FAILS to produce a finding (a silenced checker).
    """
    from repro.sanitize import FIXTURES, run_sanitize

    if args.list:
        from repro.faults.registry import scenario_names

        for name in scenario_names():
            print(f"chaos:{name}")
        for name in ("nginx", "memcached", "redis", "scaleout"):
            print(f"workload:{name}")
        for name in FIXTURES:
            print(f"fixture:{name}")
        return 0
    if args.target not in ("chaos", "workloads", "fixtures", "all"):
        raise SystemExit(
            f"unknown sanitize target {args.target!r} "
            "(known: chaos, workloads, fixtures, all)"
        )
    report = run_sanitize(args.seed, args.target)
    if args.format == "json":
        _emit(args, _json_text(report.as_dict()))
    else:
        _emit(args, report.render())
    if args.target == "fixtures":
        # The inverted gate: every seeded race must still be caught.
        return 0 if all(not u.clean for u in report.units) else 1
    return 0 if report.clean else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Stateful whole-stack fuzzing: a bounded, seeded Hypothesis run.

    The rule machine drives domains, migration, Remus, ABOM, split
    drivers, fault arm/disarm, and the fleet engines at once, checking
    the invariant catalog after every step.  Same ``--seed`` ⇒ same
    result.  On a find, the shrunk step sequence is printed as JSON —
    save it and re-execute with ``repro chaos --replay steps.json``.
    """
    from repro.fuzz.machine import run_fuzz

    report = run_fuzz(
        seed=args.seed,
        max_examples=args.max_examples,
        steps=args.steps,
        defect=args.defect,
    )
    if args.format == "json":
        _emit(args, _json_text(report.as_dict()))
    else:
        _emit(args, report.render())
    return 0 if report.ok else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run the deterministic telemetry demo and export its registry.

    ``--format table`` renders the fixed-width metric table, ``--format
    json`` the full :meth:`Telemetry.snapshot`; ``--prometheus``
    switches to the Prometheus text exposition format instead.  Same
    ``--seed`` ⇒ byte-identical output (the golden tests pin this).
    """
    from repro.obs.demo import run_demo

    tel = run_demo(seed=args.seed, requests=args.requests)
    if args.prometheus:
        _emit(args, tel.prometheus_text())
    elif args.format == "json":
        _emit(args, _json_text(tel.snapshot()))
    else:
        _emit(args, tel.render_table())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the telemetry demo and export its span timeline.

    ``--format table`` prints the span table; ``--format json`` emits
    Chrome trace-event JSON loadable in about://tracing or Perfetto.
    """
    from repro.obs.demo import run_demo

    tel = run_demo(seed=args.seed, requests=args.requests)
    if args.format == "json":
        _emit(args, tel.chrome_trace_json(pretty=args.pretty))
    else:
        _emit(args, tel.spans.render(limit=args.limit))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="X-Containers (ASPLOS'19) reproduction toolkit",
        epilog=EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared output surface for analyze / chaos / metrics / trace.
    common_output = argparse.ArgumentParser(add_help=False)
    common_output.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output rendering (default: table)",
    )
    common_output.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the output to PATH instead of stdout",
    )

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables/figures"
    )
    experiments.add_argument("id", nargs="?", default="all")
    experiments.set_defaults(func=cmd_experiments)

    platforms = sub.add_parser("platforms", help="list runtime models")
    platforms.set_defaults(func=cmd_platforms)

    tcb = sub.add_parser("tcb", help="isolation TCB comparison (§3.4)")
    tcb.set_defaults(func=cmd_tcb)

    demo = sub.add_parser("abom-demo", help="live binary-patching demo")
    demo.add_argument("--iterations", type=int, default=3)
    demo.set_defaults(func=cmd_abom_demo)

    analyze = sub.add_parser(
        "analyze", help="static §4.4 patch-safety analysis + ABOM diff",
        parents=[common_output],
    )
    analyze.add_argument(
        "target", nargs="?", default=None,
        help="example binary to analyze (default: all safe examples)",
    )
    analyze.add_argument(
        "--list", action="store_true", help="list example binaries"
    )
    analyze.add_argument(
        "--no-differential", action="store_true",
        help="skip executing the binary under online ABOM",
    )
    analyze.set_defaults(func=cmd_analyze)

    chaos = sub.add_parser(
        "chaos", help="run deterministic fault-injection scenarios",
        parents=[common_output],
    )
    chaos.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario to run (default: the whole catalog)",
    )
    chaos.add_argument(
        "--seed", default="0",
        help="run seed; same seed + same plan replays byte-identically",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list the scenario catalog"
    )
    chaos.add_argument(
        "--replay", metavar="STEPS_JSON", default=None,
        help="replay a serialized fuzzer step sequence (repro fuzz "
             "output) on a fresh world and print the deterministic trace",
    )
    chaos.set_defaults(func=cmd_chaos)

    fuzz = sub.add_parser(
        "fuzz", help="stateful whole-stack scenario fuzzing (Hypothesis)",
        parents=[common_output],
    )
    fuzz.add_argument(
        "--seed", default="0",
        help="fuzz seed (int or string); same seed reruns the same "
             "example sequence byte-identically",
    )
    fuzz.add_argument(
        "--max-examples", type=int, default=25,
        help="Hypothesis example budget (default: 25)",
    )
    fuzz.add_argument(
        "--steps", type=int, default=30,
        help="max rule steps per example (default: 30)",
    )
    fuzz.add_argument(
        "--defect", choices=("blk-lost-write", "fleet-skew"), default=None,
        help="enable a known seeded defect (self-test: the fuzzer must "
             "find and shrink it)",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    serve = sub.add_parser(
        "serve", help="run a serving-fleet scenario (IPVS + autoscaler)",
        parents=[common_output],
    )
    serve.add_argument(
        "scenario", nargs="?", default="ci-small",
        help="scenario to run (default: ci-small; see --list)",
    )
    serve.add_argument(
        "--seed", default="0",
        help="run seed; same seed + same scenario replays byte-identically",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the arrival shards (default: host "
             "cores; never changes results, only wall-clock speed)",
    )
    serve.add_argument(
        "--engine", choices=("stepped", "hybrid"), default="hybrid",
        help="backend-domain execution engine: 'hybrid' fast-forwards "
             "parked domains on the wake-event queue, 'stepped' walks "
             "every tick (the oracle; byte-identical results)",
    )
    serve.add_argument(
        "--prometheus", action="store_true",
        help="emit the run's metrics registry as Prometheus text "
             "(latency histogram, counters, gauges) instead of a report",
    )
    serve.add_argument(
        "--list", action="store_true", help="list the scenario catalog"
    )
    serve.set_defaults(func=cmd_serve)

    sanitize = sub.add_parser(
        "sanitize", help="run the cross-vCPU sanitizer suite",
        parents=[common_output],
    )
    sanitize.add_argument(
        "target", nargs="?", default="all",
        choices=("chaos", "workloads", "fixtures", "all"),
        help="what to sanitize (default: all = chaos + workloads)",
    )
    sanitize.add_argument(
        "--seed", default="0",
        help="run seed; same seed replays byte-identically",
    )
    sanitize.add_argument(
        "--list", action="store_true", help="list sanitized units"
    )
    sanitize.set_defaults(func=cmd_sanitize)

    metrics = sub.add_parser(
        "metrics", help="telemetry demo: unified registry snapshot",
        parents=[common_output],
    )
    metrics.add_argument(
        "--seed", type=int, default=1234,
        help="fault-plan seed; same seed replays byte-identically",
    )
    metrics.add_argument(
        "--requests", type=int, default=8,
        help="HTTP requests the demo workload issues",
    )
    metrics.add_argument(
        "--prometheus", action="store_true",
        help="emit the Prometheus text exposition format",
    )
    metrics.set_defaults(func=cmd_metrics)

    trace = sub.add_parser(
        "trace", help="telemetry demo: span timeline / Chrome trace",
        parents=[common_output],
    )
    trace.add_argument(
        "--seed", type=int, default=1234,
        help="fault-plan seed; same seed replays byte-identically",
    )
    trace.add_argument(
        "--requests", type=int, default=8,
        help="HTTP requests the demo workload issues",
    )
    trace.add_argument(
        "--limit", type=int, default=64,
        help="max spans in the table rendering",
    )
    trace.add_argument(
        "--pretty", action="store_true",
        help="indent the Chrome trace JSON",
    )
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
