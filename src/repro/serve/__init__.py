"""``repro.serve`` — the multi-tenant IPVS serving fleet.

Turns the Fig 9 toy cluster (one IPVS director, three backends) into a
fleet-scale serving scenario: hundreds of backend X-Container domains
behind the live :class:`repro.guest.ipvs.IPVS` director, a seeded
open-loop traffic generator with heavy-tailed inter-arrivals and
keep-alive connection churn, a metrics-driven autoscaler, and a
``repro.faults`` chaos overlay with an SLO-recovery verdict — all on
the simulated clock, byte-identical per seed, with the arrival shards
optionally spread across worker processes (``repro serve --workers``).

See ``docs/serving.md`` for the scenario model and the determinism /
sharding contract.
"""

from repro.serve.autoscaler import AutoscaleDecision, Autoscaler
from repro.serve.engine import IntervalRow, ServeEngine, ServeResult
from repro.serve.fleet import BackendFleet, backend_host
from repro.serve.report import ServeReport, run_serve
from repro.serve.scenario import (
    SCENARIOS,
    AutoscalerPolicy,
    ChaosOverlay,
    RequestClass,
    ServeScenario,
    SloPolicy,
    get_scenario,
    scenario_names,
)
from repro.serve.traffic import SERVE_LATENCY_BUCKETS_NS

__all__ = [
    "SCENARIOS",
    "SERVE_LATENCY_BUCKETS_NS",
    "AutoscaleDecision",
    "Autoscaler",
    "AutoscalerPolicy",
    "BackendFleet",
    "ChaosOverlay",
    "IntervalRow",
    "RequestClass",
    "ServeEngine",
    "ServeReport",
    "ServeResult",
    "ServeScenario",
    "SloPolicy",
    "backend_host",
    "get_scenario",
    "run_serve",
    "scenario_names",
]
