"""Shard runners: the same work, serially or across worker processes.

The scenario fixes the number of arrival shards; the *runner* only
decides where each shard's pure interval function executes.  Because
:func:`repro.serve.traffic.run_shard_interval` takes everything it
needs as arguments and seeds its RNG from ``(seed, shard, interval)``,
results are byte-identical for any worker count — the process pool buys
wall-clock throughput, never different numbers.

The pool uses the ``fork`` start method (the static
:class:`ShardConfig` rides a module global set by the pool
initializer); on hosts without ``fork`` the runner silently degrades to
serial execution, which is always correct.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

from repro.serve.traffic import (
    ShardConfig,
    ShardIntervalResult,
    ShardSnapshot,
    ShardState,
    run_shard_interval,
)

_WORKER_CFG: ShardConfig | None = None

ShardTask = tuple[int, ShardState, ShardSnapshot]
ShardOutcome = tuple[ShardIntervalResult, ShardState]


def _init_worker(cfg: ShardConfig) -> None:
    global _WORKER_CFG
    _WORKER_CFG = cfg


def _run_task(task: ShardTask) -> ShardOutcome:
    assert _WORKER_CFG is not None
    shard_idx, state, snap = task
    return run_shard_interval(_WORKER_CFG, shard_idx, state, snap)


class SerialRunner:
    """Every shard in-process; the reference semantics."""

    workers = 1

    def __init__(self, cfg: ShardConfig) -> None:
        self.cfg = cfg

    def run(self, tasks: Sequence[ShardTask]) -> list[ShardOutcome]:
        return [
            run_shard_interval(self.cfg, shard_idx, state, snap)
            for shard_idx, state, snap in tasks
        ]

    def close(self) -> None:
        pass


class ProcessRunner:
    """Shards fan out over a fork pool; results merge in shard order."""

    def __init__(self, cfg: ShardConfig, workers: int) -> None:
        self.cfg = cfg
        self.workers = workers
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(cfg,),
        )

    def run(self, tasks: Sequence[ShardTask]) -> list[ShardOutcome]:
        # Pool.map preserves task order, so the merge downstream is the
        # same as the serial runner's.
        return self._pool.map(_run_task, list(tasks), chunksize=1)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()


def default_workers(shards: int) -> int:
    return max(1, min(shards, (os.cpu_count() or 1) - 1))


def make_runner(
    cfg: ShardConfig,
    shards: int,
    workers: int | None = None,
) -> SerialRunner | ProcessRunner:
    """Pick a runner; ``workers=None`` sizes the pool from the host."""
    if workers is None:
        workers = default_workers(shards)
    if workers <= 1:
        return SerialRunner(cfg)
    try:
        return ProcessRunner(cfg, min(workers, shards))
    except ValueError:  # no fork start method on this platform
        return SerialRunner(cfg)
