"""The backend fleet: X-Container domains behind one IPVS director.

Owns the live :class:`repro.guest.ipvs.IPVS` instance for the run and
the backend-id bookkeeping around it: spawning (with a cold-start
delay), draining removal on scale-down, deaths injected by the chaos
overlay, and the connection-lifecycle plumbing the traffic shards'
keep-alive pools ride on.  All scheduling decisions — which backend a
new or re-scheduled connection lands on — are made by the director
itself (weighted least-connection by default), so the serve subsystem
exercises exactly the code path the Fig 9 experiment models.
"""

from __future__ import annotations

from repro.guest.ipvs import IPVS, IpvsMode, RealServer, ServerState
from repro.lb.cluster import LoadBalancedCluster
from repro.platforms.base import Platform


def backend_host(backend_id: int) -> str:
    """A unique RFC1918 address per backend id (fleet-scale safe)."""
    return f"10.0.{backend_id // 250}.{backend_id % 250 + 2}"


class BackendFleet:
    """Dynamic backend set behind one live IPVS director."""

    def __init__(
        self,
        cluster: LoadBalancedCluster,
        platform: Platform,
        mode: IpvsMode,
        scheduler: str = "wlc",
    ) -> None:
        kernel = platform.make_kernel()
        kernel.modules.load("ip_vs")
        kernel.modules.load("ip_vs_rr")
        self.ipvs = IPVS(kernel.modules, mode, cluster.costs,
                         scheduler=scheduler)
        self._next_id = 0
        self._server_of: dict[int, RealServer] = {}
        self._id_of: dict[tuple[str, int], int] = {}
        self._dead: set[int] = set()
        #: (backend_id, ready_at_ns) cold spawns not yet serving.
        self._pending: list[tuple[int, float]] = []
        for _ in range(cluster.n_backends):
            self._activate(self._allocate_id())

    # -- lifecycle -----------------------------------------------------
    def _allocate_id(self) -> int:
        backend_id = self._next_id
        self._next_id += 1
        return backend_id

    def _activate(self, backend_id: int) -> None:
        host = backend_host(backend_id)
        server = self.ipvs.add_server(host, 80)
        self._server_of[backend_id] = server
        self._id_of[(host, 80)] = backend_id

    def spawn(self, ready_at_ns: float) -> int:
        """Provision a backend; it joins the fleet once warmed up."""
        backend_id = self._allocate_id()
        self._pending.append((backend_id, ready_at_ns))
        return backend_id

    def activate_ready(self, now_ns: float) -> list[int]:
        """Admit every pending backend whose cold start has finished."""
        ready = [b for b, at in self._pending if at <= now_ns]
        self._pending = [
            (b, at) for b, at in self._pending if at > now_ns
        ]
        for backend_id in ready:
            self._activate(backend_id)
        return ready

    def drain(self, backend_id: int) -> None:
        """Scale-down removal: no new connections, existing ones finish."""
        server = self._server_of[backend_id]
        self.ipvs.remove_server(server.host, server.port, drain=True)

    def kill(self, backend_id: int) -> int:
        """Chaos backend death; returns the connections that died."""
        server = self._server_of[backend_id]
        failed = self.ipvs.kill_server(server.host, server.port)
        self._dead.add(backend_id)
        return failed

    # -- connections ---------------------------------------------------
    def open_conn(self) -> int:
        """New connection, scheduled by the director; returns backend id."""
        server = self.ipvs.open_connection()
        return self._id_of[(server.host, server.port)]

    def close_conn(self, backend_id: int) -> None:
        self.ipvs.close_connection(self._server_of[backend_id])

    # -- views ---------------------------------------------------------
    @property
    def dead_ids(self) -> frozenset[int]:
        return frozenset(self._dead)

    def alive_ids(self) -> list[int]:
        """Backends accepting new connections, in id order."""
        return sorted(
            backend_id
            for backend_id, server in self._server_of.items()
            if server.state is ServerState.ACTIVE
        )

    def n_alive(self) -> int:
        return len(self.alive_ids())

    def n_provisioned(self) -> int:
        """Alive plus still-warming backends (the autoscaler's count)."""
        return self.n_alive() + len(self._pending)

    def n_draining(self) -> int:
        return len(self.ipvs.draining_servers)

    def active_conns(self, backend_id: int) -> int:
        return self._server_of[backend_id].active_conns
